#!/usr/bin/env sh
# Repo gate: offline release build, offline tests, formatting.
# Everything must pass with no network (the workspace has no external
# dependencies by design — see ROADMAP.md).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "== cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== cargo fmt --check"
cargo fmt --check

echo "check.sh: all green"
