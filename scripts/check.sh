#!/usr/bin/env sh
# Repo gate: offline release build, offline tests, formatting.
# Everything must pass with no network (the workspace has no external
# dependencies by design — see ROADMAP.md).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "== cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== cargo fmt --check"
cargo fmt --check

echo "== checkpoint/restore smoke test"
# Serve, load 10k keys, checkpoint over the wire, restart --restore, and
# assert the restored server answers the same queries bit-for-bit.
BIN=target/release/she
ADDR=127.0.0.1:7497
CKDIR=$(mktemp -d)
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$CKDIR"
}
trap cleanup EXIT INT TERM

wait_ready() {
    i=0
    until "$BIN" query --addr "$ADDR" --op card >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "server at $ADDR never came up"; exit 1; }
        sleep 0.1
    done
}

queries() {
    for key in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16; do
        "$BIN" query --addr "$ADDR" --op member --key "$key"
        "$BIN" query --addr "$ADDR" --op freq --key "$key"
    done
    "$BIN" query --addr "$ADDR" --op card
    "$BIN" query --addr "$ADDR" --op sim
}

"$BIN" serve --addr "$ADDR" --shards 4 --window 64k --memory 64k >/dev/null &
SERVER_PID=$!
wait_ready
"$BIN" loadgen --addr "$ADDR" --items 10000 --queries 100 --universe 5000 \
    --verify yes --window 64k --shards 4 --memory 64k >/dev/null
"$BIN" checkpoint --addr "$ADDR" --dir "$CKDIR" >/dev/null
queries >"$CKDIR/before.txt"
"$BIN" shutdown --addr "$ADDR" >/dev/null
wait "$SERVER_PID" || true
SERVER_PID=

"$BIN" serve --addr "$ADDR" --restore "$CKDIR" >/dev/null &
SERVER_PID=$!
wait_ready
queries >"$CKDIR/after.txt"
"$BIN" shutdown --addr "$ADDR" >/dev/null
wait "$SERVER_PID" || true
SERVER_PID=

diff "$CKDIR/before.txt" "$CKDIR/after.txt" || {
    echo "restored server diverged from checkpoint"
    exit 1
}
echo "checkpoint/restore: bit-for-bit identical answers"

echo "check.sh: all green"
