#!/usr/bin/env sh
# Repo gate: offline release build, offline tests, formatting.
# Everything must pass with no network (the workspace has no external
# dependencies by design — see ROADMAP.md).
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "== cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "== cargo clippy --offline --workspace -- -D warnings"
cargo clippy --offline --workspace -- -D warnings

echo "== cargo fmt --check"
cargo fmt --check

echo "== she audit"
# Workspace-wide static-analysis gate (docs/ANALYSIS.md): call-graph
# reachability rules (blocking, reachable-panic, wiresize), lock-order
# manifest + mined acquisition edges, unsafe inventory, cast/growth
# ratchets, protocol drift. Hard gate — any finding above a committed
# baseline fails the build. The audit prints per-rule timings itself;
# the wall-time budget below keeps the whole pass interactive.
AUDIT_START=$(date +%s%N)
target/release/she audit --root .
AUDIT_MS=$(( ($(date +%s%N) - AUDIT_START) / 1000000 ))
echo "she audit: ${AUDIT_MS}ms wall"
[ "$AUDIT_MS" -le 10000 ] || {
    echo "she audit took ${AUDIT_MS}ms (budget 10000ms) — profile the graph build"
    exit 1
}

echo "== checkpoint/restore smoke test"
# Serve, load 10k keys, checkpoint over the wire, restart --restore, and
# assert the restored server answers the same queries bit-for-bit.
BIN=target/release/she
ADDR=127.0.0.1:7497
CKDIR=$(mktemp -d)
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$CKDIR"
}
trap cleanup EXIT INT TERM

wait_ready() {
    i=0
    until "$BIN" query --addr "$ADDR" --op card >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "server at $ADDR never came up"; exit 1; }
        sleep 0.1
    done
}

queries() {
    for key in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16; do
        "$BIN" query --addr "$ADDR" --op member --key "$key"
        "$BIN" query --addr "$ADDR" --op freq --key "$key"
    done
    "$BIN" query --addr "$ADDR" --op card
    "$BIN" query --addr "$ADDR" --op sim
}

"$BIN" serve --addr "$ADDR" --shards 4 --window 64k --memory 64k >/dev/null &
SERVER_PID=$!
wait_ready
"$BIN" loadgen --addr "$ADDR" --items 10000 --queries 100 --universe 5000 \
    --verify yes --window 64k --shards 4 --memory 64k >/dev/null
"$BIN" checkpoint --addr "$ADDR" --dir "$CKDIR" >/dev/null
queries >"$CKDIR/before.txt"
"$BIN" shutdown --addr "$ADDR" >/dev/null
wait "$SERVER_PID" || true
SERVER_PID=

"$BIN" serve --addr "$ADDR" --restore "$CKDIR" >/dev/null &
SERVER_PID=$!
wait_ready
queries >"$CKDIR/after.txt"
"$BIN" shutdown --addr "$ADDR" >/dev/null
wait "$SERVER_PID" || true
SERVER_PID=

diff "$CKDIR/before.txt" "$CKDIR/after.txt" || {
    echo "restored server diverged from checkpoint"
    exit 1
}
echo "checkpoint/restore: bit-for-bit identical answers"

echo "== replication smoke test"
# Primary + replica, 120k items streamed open-loop; a second replica
# joins mid-stream (snapshot bootstrap + log tail, boot_seq > 0); the
# primary is then killed -9 and both replicas must answer bit-for-bit
# against an in-process mirror of everything the primary acknowledged.
PADDR=127.0.0.1:7498
R1ADDR=127.0.0.1:7499
R2ADDR=127.0.0.1:7500
ITEMS=120000
BATCH=256
N_BATCHES=$(( (ITEMS + BATCH - 1) / BATCH ))
R1_PID=
R2_PID=
cleanup2() {
    for pid in $SERVER_PID $R1_PID $R2_PID; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$CKDIR"
}
trap cleanup2 EXIT INT TERM

# Non-mutating readiness probe (queries would advance lazy cleaning).
wait_status() {
    i=0
    until "$BIN" cluster-status --addr "$1" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 100 ] && { echo "node at $1 never came up"; exit 1; }
        sleep 0.1
    done
}

# Poll until the node at $1 reports applied=$2.
wait_applied() {
    i=0
    until "$BIN" cluster-status --addr "$1" 2>/dev/null | grep -q "applied=$2 "; do
        i=$((i + 1))
        [ "$i" -ge 200 ] && {
            echo "replica at $1 never converged to seq $2:"
            "$BIN" cluster-status --addr "$1" || true
            exit 1
        }
        sleep 0.1
    done
}

"$BIN" serve --addr "$PADDR" --shards 4 --window 64k --memory 64k \
    --repl-log 4096 >/dev/null &
SERVER_PID=$!
wait_status "$PADDR"

"$BIN" serve --addr "$R1ADDR" --replica-of "$PADDR" >/dev/null &
R1_PID=$!
wait_status "$R1ADDR"

# Open-loop stream in the background (~3s at 40k items/s), no queries so
# the log position maps 1:1 onto workload batches.
"$BIN" loadgen --addr "$PADDR" --items "$ITEMS" --batch "$BATCH" --queries 0 \
    --open 40000 --universe 5000 >/dev/null &
LOADGEN_PID=$!

# Second replica joins mid-stream: it must bootstrap from a snapshot cut
# past sequence 0 and then tail the log, not replay from scratch.
sleep 1
"$BIN" serve --addr "$R2ADDR" --replica-of "$PADDR" >/dev/null &
R2_PID=$!
wait_status "$R2ADDR"
BOOT_SEQ=$("$BIN" cluster-status --addr "$R2ADDR" | sed -n 's/.*boot_seq=\([0-9]*\).*/\1/p')
[ "$BOOT_SEQ" -gt 0 ] || {
    echo "mid-stream join did not bootstrap from a snapshot (boot_seq=$BOOT_SEQ)"
    exit 1
}
echo "mid-stream join bootstrapped at seq $BOOT_SEQ"

wait "$LOADGEN_PID" || { echo "loadgen failed"; exit 1; }
wait_applied "$R1ADDR" "$N_BATCHES"
wait_applied "$R2ADDR" "$N_BATCHES"

# Read scaling: queries fan out to the replica while the primary owns
# writes (--items 0 keeps the op log untouched for the mirror check).
"$BIN" loadgen --addr "$PADDR" --items 0 --queries 200 --connections 2 \
    --read-from "$R1ADDR" >/dev/null

# Writes to a replica are rejected, naming the primary.
if OUT=$("$BIN" loadgen --addr "$R1ADDR" --items 100 --queries 0 2>&1); then
    echo "replica accepted a write:"; echo "$OUT"; exit 1
fi
echo "$OUT" | grep -q "read-only replica" || {
    echo "replica write rejection did not name the primary:"; echo "$OUT"; exit 1
}

# Kill the primary without ceremony; the replicas keep serving at the
# last acknowledged sequence number.
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

for R in "$R1ADDR" "$R2ADDR"; do
    "$BIN" mirror-check --addr "$R" --items "$ITEMS" --batch "$BATCH" \
        --universe 5000 --sim-every 8 --probes 32 \
        --window 64k --shards 4 --memory 64k || {
        echo "replica at $R diverged from the mirror"
        exit 1
    }
done
echo "replication: both replicas bit-for-bit at seq $N_BATCHES after primary kill -9"

"$BIN" shutdown --addr "$R1ADDR" >/dev/null
"$BIN" shutdown --addr "$R2ADDR" >/dev/null
wait "$R1_PID" || true
wait "$R2_PID" || true
ALL_PIDS="$R1_PID $R2_PID"
R1_PID=
R2_PID=

# Smokes must not leak server processes: everything we spawned has been
# waited on above; a survivor here means a shutdown path regressed.
for pid in $ALL_PIDS; do
    if kill -0 "$pid" 2>/dev/null; then
        echo "LEAKED PROCESS: pid $pid survived its smoke test"
        kill -9 "$pid" 2>/dev/null || true
        exit 1
    fi
done

echo "== cluster failover smoke test (docs/CLUSTER.md)"
# Three cluster nodes at RF=2 (each a partition primary + a replica
# slot per map assignment + gossip monitor); a cluster-aware loadgen
# rides per-partition fault proxies with exactly-once head-ledger
# resync while verifying scatter-gather answers against an in-process
# mirror; partition 0's primary is then killed -9, the lowest-id live
# holder must be promoted and gossiped (and the holder set topped back
# up), writes continue, then the freshly promoted node is killed -9
# too, and a final mirror-check proves the twice-failed-over cluster
# is still bit-for-bit identical to one single-process engine of the
# same global sizing.
C1=127.0.0.1:7601
C2=127.0.0.1:7602
C3=127.0.0.1:7603
ROSTER="1@$C1,2@$C2,3@$C3"
CWIN=65536
CMEM=65536
CITEMS=30720     # 120 batches of 256
CMORE=10240      # 40 more after each failover (offset stays batch-aligned)
CTOTAL=$((CITEMS + CMORE + CMORE))
N1_PID=
N2_PID=
N3_PID=
cleanup3() {
    for pid in $N1_PID $N2_PID $N3_PID; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup3 EXIT INT TERM

"$BIN" cluster-serve --node-id 1 --roster "$ROSTER" --window "$CWIN" \
    --memory "$CMEM" --replication 2 --anti-entropy-ms 500 \
    --gossip-ms 100 --heartbeat-timeout-ms 1000 >/dev/null &
N1_PID=$!
"$BIN" cluster-serve --node-id 2 --roster "$ROSTER" --window "$CWIN" \
    --memory "$CMEM" --replication 2 --anti-entropy-ms 500 \
    --gossip-ms 100 --heartbeat-timeout-ms 1000 >/dev/null &
N2_PID=$!
"$BIN" cluster-serve --node-id 3 --roster "$ROSTER" --window "$CWIN" \
    --memory "$CMEM" --replication 2 --anti-entropy-ms 500 \
    --gossip-ms 100 --heartbeat-timeout-ms 1000 >/dev/null &
N3_PID=$!
for C in "$C1" "$C2" "$C3"; do
    wait_status "$C"
done

# Cluster-aware load through per-partition fault proxies, with
# interleaved verified scatter-gather queries: injected partials,
# delays, and resets must be absorbed by the exactly-once op-log-head
# ledger without disturbing bit-for-bit verification.
"$BIN" loadgen --addr "$C1" --cluster yes --items "$CITEMS" --batch 256 \
    --queries 60 --universe 5000 --sim-every 8 --seed 1 \
    --faults yes --fault-seed 42 \
    --verify yes --window "$CWIN" --shards 3 --memory "$CMEM" >/dev/null

# Drain: each primary's replica must have acked the log head before the
# kill (a kill before the tail drains would test data loss, not failover).
wait_drained() {
    i=0
    while :; do
        OUT=$("$BIN" cluster-status --addr "$1" 2>/dev/null) || OUT=""
        HEAD=$(echo "$OUT" | sed -n 's/^role=primary head=\([0-9]*\) .*/\1/p')
        if [ -n "$HEAD" ]; then
            if [ "$HEAD" = "0" ] || echo "$OUT" | grep -q "acked=$HEAD\$"; then
                break
            fi
        fi
        i=$((i + 1))
        [ "$i" -ge 200 ] && {
            echo "replica of the primary at $1 never drained:"
            echo "$OUT"
            exit 1
        }
        sleep 0.1
    done
}
for C in "$C1" "$C2" "$C3"; do
    wait_drained "$C"
done

# cluster-status must name each partition's full holder list and its
# replicas' apply-lag; after the drain above, partition 0 reads
# holders 1,2 with replica 2 fully caught up (lag 0).
"$BIN" cluster-status --addr "$C1" \
    | grep -q "^partition=0 primary=1@.*holders=1,2 .*lag=2:0\$" || {
    echo "cluster-status is missing the per-partition holder/lag line:"
    "$BIN" cluster-status --addr "$C1" || true
    exit 1
}
echo "cluster-status reports holders + apply-lag per partition"

# Drain every partition named by the freshest map (promoted primaries
# listen on ephemeral addresses, so the addresses come from the map):
# all replica holders must have acked the log head before a kill.
drain_all() {
    for ADDR in $("$BIN" cluster-map --addr "$1" \
            | sed -n 's/^partition=[0-9]* primary=[0-9]*@\([^ ]*\) .*/\1/p'); do
        wait_drained "$ADDR"
    done
}

# Kill partition 0's primary (node 1) without ceremony.
kill -9 "$N1_PID" 2>/dev/null || true
wait "$N1_PID" 2>/dev/null || true
N1_PID=

# The survivors must gossip their way to a map where partition 0 is
# served by the promoted replica (node 2: the lowest-id live holder).
i=0
until "$BIN" cluster-map --addr "$C2" 2>/dev/null \
        | grep "^partition=0 " | grep -qv "primary=1@"; do
    i=$((i + 1))
    [ "$i" -ge 200 ] && {
        echo "failover never converged:"
        "$BIN" cluster-map --addr "$C2" || true
        exit 1
    }
    sleep 0.1
done
"$BIN" cluster-map --addr "$C2" | grep "^partition=0 " | grep -q "primary=2@" || {
    echo "wrong node promoted for partition 0:"
    "$BIN" cluster-map --addr "$C2"
    exit 1
}
echo "partition 0 failed over to node 2"

# Writes keep flowing against the new map (offset continues the keygen
# exactly where the pre-kill run stopped), then every partition —
# including the freshly drafted RF top-up holders — drains, so the
# second kill tests failover, not data loss.
"$BIN" loadgen --addr "$C2" --cluster yes --items "$CMORE" --offset "$CITEMS" \
    --batch 256 --queries 0 --universe 5000 --sim-every 8 --seed 1 >/dev/null
drain_all "$C2"

# Round two: kill the node that just won the election. Partition 0's
# drafted replacement holder (node 3) must promote this time, along
# with node 2's own partition.
kill -9 "$N2_PID" 2>/dev/null || true
wait "$N2_PID" 2>/dev/null || true
N2_PID=
i=0
until OUT=$("$BIN" cluster-map --addr "$C3" 2>/dev/null) && [ -n "$OUT" ] \
        && ! echo "$OUT" | grep "^partition=" \
            | grep -Eq "primary=(1|2)@"; do
    i=$((i + 1))
    [ "$i" -ge 200 ] && {
        echo "second failover never converged:"
        "$BIN" cluster-map --addr "$C3" || true
        exit 1
    }
    sleep 0.1
done
echo "promoted node killed; every partition failed over to node 3"

# Writes continue against the twice-failed-over map.
"$BIN" loadgen --addr "$C3" --cluster yes --items "$CMORE" \
    --offset "$((CITEMS + CMORE))" \
    --batch 256 --queries 0 --universe 5000 --sim-every 8 --seed 1 >/dev/null

# The whole cluster — now entirely promoted replicas plus node 3's own
# partition — must still equal one single-process engine of the same
# global sizing, bit-for-bit: zero acknowledged writes lost across two
# kill -9s.
"$BIN" mirror-check --addr "$C3" --cluster yes --items "$CTOTAL" --batch 256 \
    --universe 5000 --sim-every 8 --seed 1 --probes 32 \
    --window "$CWIN" --shards 3 --memory "$CMEM" || {
    echo "cluster diverged from the single-engine mirror after double failover"
    exit 1
}
echo "cluster failover: bit-for-bit vs single engine after two kill -9s"

"$BIN" shutdown --addr "$C3" >/dev/null
wait "$N3_PID" || true
for pid in $N3_PID; do
    if kill -0 "$pid" 2>/dev/null; then
        echo "LEAKED PROCESS: cluster node pid $pid survived its smoke test"
        kill -9 "$pid" 2>/dev/null || true
        exit 1
    fi
done
N3_PID=

echo "== chaos soak smoke test (docs/ROBUSTNESS.md)"
# Deterministic fault-injection soak: primary + replica through a fault
# proxy, 3 disconnect/kill-restart cycles, bit-for-bit mirror verdict,
# stalled-client eviction, torn-checkpoint detection. Runs in-process —
# nothing to leak. Fixed seed; a failure prints it for an exact replay.
CHAOS_SEED=3405691582
CHAOS_DIR=$(mktemp -d)
"$BIN" chaos-soak --seed "$CHAOS_SEED" --cycles 3 --keys 2000 \
    --dir "$CHAOS_DIR" || {
    echo "chaos soak FAILED — replay with: she chaos-soak --seed $CHAOS_SEED"
    rm -rf "$CHAOS_DIR"
    exit 1
}
rm -rf "$CHAOS_DIR"

echo "== cluster double-kill drill under gossip chaos (docs/CLUSTER.md)"
# In-process failover drill: seeded workload on a real 3-node RF=2
# cluster with every gossip exchange routed through fault proxies
# (drops, delays, resets, duplicated deliveries), partition 0's primary
# killed and then its freshly promoted successor killed too; survivors
# must converge after each kill, writes continue between kills, and the
# final scatter-gather battery must match the mirror bit-for-bit.
DRILL_SEED=274951162221585
"$BIN" chaos-cluster --seed "$DRILL_SEED" --replication 2 --kills 2 \
    --gossip-faults yes || {
    echo "cluster drill FAILED — replay with: she chaos-cluster --seed $DRILL_SEED"
    exit 1
}

echo "== epoll reactor smoke test (docs/SERVER.md)"
# The event-driven serving tier under its two hardest loads, one server:
# (1) a verified loadgen run rides injected transport faults (resets,
# partial/torn writes, delays) via reconnect + op-log-head resync, and
# must stay bit-for-bit despite the chaos; (2) 1024 concurrent
# connections hammer the same reactor with batched queries interleaved;
# (3) a from-log mirror-check subscribes to the server's own op log,
# replays the union of both workloads in admission order, and must match
# bit-for-bit.
EADDR=127.0.0.1:7501
E_PID=
cleanup4() { [ -n "$E_PID" ] && kill "$E_PID" 2>/dev/null || true; }
trap cleanup4 EXIT INT TERM

"$BIN" serve --addr "$EADDR" --shards 4 --window 64k --memory 64k \
    --repl-log 8192 >/dev/null &
E_PID=$!
wait_status "$EADDR"

"$BIN" loadgen --addr "$EADDR" --items 20000 --batch 128 --queries 400 \
    --query-batch 16 --universe 5000 --seed 7 --faults yes --fault-seed 3 \
    --verify yes --window 64k --shards 4 --memory 64k >/dev/null || {
    echo "fault-riding verified loadgen failed"
    exit 1
}

"$BIN" loadgen --addr "$EADDR" --items 65536 --batch 64 --queries 1024 \
    --query-batch 8 --connections 1024 --universe 5000 --seed 11 >/dev/null || {
    echo "1024-connection loadgen failed"
    exit 1
}

"$BIN" mirror-check --addr "$EADDR" --from-log yes --universe 5000 --seed 7 \
    --probes 64 --window 64k --shards 4 --memory 64k || {
    echo "reactor diverged from its own op log"
    exit 1
}
echo "reactor: fault-riding verify + 1024 connections, log replay bit-for-bit"

"$BIN" shutdown --addr "$EADDR" >/dev/null
wait "$E_PID" || true
if kill -0 "$E_PID" 2>/dev/null; then
    echo "LEAKED PROCESS: reactor smoke server pid $E_PID survived"
    kill -9 "$E_PID" 2>/dev/null || true
    exit 1
fi
E_PID=

echo "== read-path smoke test (docs/READPATH.md)"
# Serve with the mark-cached read mirror on, drive the canonical 95/5
# zipfian read-heavy profile (hit rate measured server-side, must be
# non-zero), then `she fastcheck` verifies the staleness bound at
# quiescence: every fast answer bit-for-bit vs the authoritative path,
# second asks all cache hits.
FADDR=127.0.0.1:7502
F_PID=
cleanup5() { [ -n "$F_PID" ] && kill "$F_PID" 2>/dev/null || true; }
trap cleanup5 EXIT INT TERM

"$BIN" serve --addr "$FADDR" --shards 4 --window 64k --memory 64k \
    --repl-log 8192 --readpath yes >/dev/null &
F_PID=$!
wait_status "$FADDR"

OUT=$("$BIN" loadgen --addr "$FADDR" --items 20000 --batch 256 --queries 0 \
    --universe 5000 --seed 7 --read-ratio 0.95 --zipf 1.1) || {
    echo "read-heavy loadgen failed:"; echo "$OUT"; exit 1
}
RATE=$(echo "$OUT" | sed -n 's/.*fast_hit_rate=\([0-9.]*\).*/\1/p')
[ -n "$RATE" ] || { echo "loadgen reported no fast_hit_rate:"; echo "$OUT"; exit 1; }
case "$RATE" in
    0 | 0.000) echo "read path never hit (rate $RATE)"; exit 1 ;;
esac
echo "read-heavy 95/5 profile: cache hit rate $RATE"

"$BIN" fastcheck --addr "$FADDR" --keys 256 --universe 5000 --skew 1.1 --seed 7 || {
    echo "fastcheck found a staleness-bound violation"
    exit 1
}

"$BIN" shutdown --addr "$FADDR" >/dev/null
wait "$F_PID" || true
if kill -0 "$F_PID" 2>/dev/null; then
    echo "LEAKED PROCESS: read-path smoke server pid $F_PID survived"
    kill -9 "$F_PID" 2>/dev/null || true
    exit 1
fi
F_PID=

echo "== bench ratchet (bench-ratchet.toml)"
# A committed BENCH_<date>.json records the numbers; the ratchet gates a
# fresh measurement against deliberately loose structural floors.
ls BENCH_*.json >/dev/null 2>&1 || {
    echo "no committed BENCH_<date>.json snapshot at the repo root"
    exit 1
}
target/release/bench_snapshot --check bench-ratchet.toml || {
    echo "bench ratchet breached — a structural perf regression"
    exit 1
}

echo "check.sh: all green"
