//! Time-based sliding windows (§3.1): the engine's logical clock can be
//! driven by wall time instead of the item counter, covering the paper's
//! time-based variant with *non-uniform* arrivals (the paper itself assumes
//! uniform arrival and analyzes the count-based case; `advance_time` covers
//! the gap).

use she::core::{SheBloomFilter, SheCountMin};

/// Items inserted in a burst expire together once the time window passes,
/// regardless of how few items arrived since.
#[test]
fn burst_then_silence_expires_by_time() {
    let window_units = 1_000u64; // time units, not items
    let mut bf = SheBloomFilter::builder()
        .window(window_units)
        .memory_bytes(32 << 10)
        .alpha(1.0)
        .seed(1)
        .build();

    // Burst: 500 items within 500 time units (1 unit per arrival).
    for i in 0..500u64 {
        bf.insert(&i);
    }
    // All present while the window still covers the burst.
    assert!((0..500u64).all(|ref k| bf.contains(k)));

    // Slow phase: traffic drops to one arrival per two time units (the
    // on-demand cleaning still needs *some* traffic to fire — a fully
    // silent structure is the §5.1 failure mode, tested in engine.rs).
    let t_cycle = bf.engine().config().t_cycle;
    let steps = t_cycle + 300;
    for step in 0..steps {
        bf.advance_time(1);
        bf.insert(&(1_000_000 + step));
    }
    let survivors = (0..500u64).filter(|k| bf.contains(k)).count();
    assert!(survivors < 50, "{survivors} burst items survived past the time window");
    // The slow phase's recent items are still present.
    assert!(bf.contains(&(1_000_000 + steps - 1)));
}

/// Frequencies measured over a time window shrink when arrivals slow down,
/// even without new occurrences of other keys flushing them out.
#[test]
fn frequency_decays_with_idle_time() {
    let window_units = 2_000u64;
    let mut cm = SheCountMin::builder()
        .window(window_units)
        .memory_bytes(1 << 20)
        .alpha(1.0)
        .seed(2)
        .build();
    for _ in 0..200 {
        cm.insert(&7u64);
        cm.advance_time(4); // 1 arrival per 5 time units
    }
    let while_active = cm.query(&7u64);
    assert!(while_active >= 150, "active-phase estimate {while_active}");

    // Idle long enough for every group to pass its cleaning deadline once.
    let t_cycle = cm.engine().config().t_cycle;
    cm.advance_time(t_cycle);
    // Touch the structure with sparse unrelated traffic so queries observe
    // the cleaned groups.
    for i in 0..50u64 {
        cm.insert(&(900_000 + i));
        cm.advance_time(50);
    }
    let after_idle = cm.query(&7u64);
    assert!(after_idle < while_active / 4, "estimate {after_idle} did not decay");
}

/// Uniform arrival makes time-based and count-based windows coincide — the
/// paper's stated reduction (§5 intro).
#[test]
fn uniform_arrival_matches_count_based() {
    let window = 4_096u64;
    let mut count_based =
        SheBloomFilter::builder().window(window).memory_bytes(16 << 10).alpha(2.0).seed(3).build();
    let mut time_based =
        SheBloomFilter::builder().window(window).memory_bytes(16 << 10).alpha(2.0).seed(3).build();
    // Count-based: insert() ticks the clock. Time-based with 1 arrival per
    // unit: identical sequence of (t, key).
    for i in 0..20_000u64 {
        count_based.insert(&i);
        time_based.insert(&i);
    }
    for probe in (0..25_000u64).step_by(37) {
        assert_eq!(
            count_based.contains(&probe),
            time_based.contains(&probe),
            "divergence at {probe}"
        );
    }
}
