//! Robustness under adversarial workloads (the failure modes the
//! `she_streams::adversarial` generators target).

use she::core::{SheBitmap, SheBloomFilter, SheCountMin};
use she::streams::{KeyStream, OnOffBurst, RepeatedKey, SlidingPhase};
use she::window::WindowTruth;

/// One key forever: frequency must saturate at the window size (never
/// above), cardinality at ~1, and nothing panics as marks alias.
#[test]
fn repeated_key_stream() {
    let window = 1u64 << 12;
    let mut cm = SheCountMin::builder().window(window).memory_bytes(1 << 20).seed(1).build();
    let mut bm = SheBitmap::builder().window(window).memory_bytes(8 << 10).seed(1).build();
    let mut s = RepeatedKey::new(0xABCD);
    for _ in 0..10 * window {
        let k = s.next_key();
        cm.insert(&k);
        bm.insert(&k);
    }
    let f = cm.query(&0xABCDu64);
    // Aged counters may hold up to (1+α)·N occurrences of the key.
    let t_cycle = cm.engine().config().t_cycle;
    assert!(f <= t_cycle, "frequency {f} above the cycle bound {t_cycle}");
    assert!(f >= window, "frequency {f} below the window count {window}");
    let c = bm.estimate();
    assert!(c < 50.0, "cardinality {c} for a single-key stream");
}

/// Bursts separated by silence: items from a finished burst must expire
/// even though the traffic between bursts is a single filler key.
#[test]
fn on_off_bursts_expire() {
    // The window must cover one whole burst+gap period (1200 items) so the
    // most recent completed burst is still inside it.
    let window = 1u64 << 11;
    let mut bf =
        SheBloomFilter::builder().window(window).memory_bytes(64 << 10).alpha(1.0).seed(2).build();
    let mut gen = OnOffBurst::new(200, 1_000, 3);
    let mut bursts: Vec<Vec<u64>> = vec![Vec::new()];
    for _ in 0..30_000 {
        let k = gen.next_key();
        if k == 0x00F1_11E4 {
            if !bursts.last().expect("non-empty").is_empty() {
                bursts.push(Vec::new());
            }
        } else {
            bursts.last_mut().expect("non-empty").push(k);
        }
        bf.insert(&k);
    }
    // The last completed burst is within the relaxed window... the most
    // recent burst's keys are in-window and must be found.
    let complete: Vec<&Vec<u64>> = bursts.iter().filter(|b| !b.is_empty()).collect();
    let last = complete.last().expect("at least one burst");
    let found = last.iter().filter(|&&k| bf.contains(&k)).count();
    assert!(found * 10 >= last.len() * 9, "{found}/{} of the last burst found", last.len());
    // Bursts from many cycles ago are gone (up to the collision floor).
    let first = complete[0];
    let stale = first.iter().filter(|&&k| bf.contains(&k)).count();
    assert!(stale * 4 <= first.len(), "{stale}/{} of the first burst lingers", first.len());
}

/// Rotating key space: the cardinality estimate must track the moving
/// truth at every checkpoint, not just in steady state.
#[test]
fn sliding_phase_tracks_moving_truth() {
    let window = 1u64 << 12;
    let mut bm = SheBitmap::builder().window(window).memory_bytes(16 << 10).seed(4).build();
    let mut truth = WindowTruth::new(window as usize);
    let mut gen = SlidingPhase::new(2_000, 8, 5);
    let mut worst: f64 = 0.0;
    for i in 0..12 * window {
        let k = gen.next_key();
        bm.insert(&k);
        truth.insert(k);
        if i > 3 * window && i % window == 0 {
            let exact = truth.cardinality() as f64;
            let est = bm.estimate();
            worst = worst.max((est - exact).abs() / exact);
        }
    }
    assert!(worst < 0.25, "worst checkpoint RE {worst}");
}

/// Clock jumps (enormous idle gaps) never panic and never resurrect
/// expired items as long as the idle period is not an exact even multiple
/// of the cycle (the documented §5.1 parity alias).
#[test]
fn giant_clock_jumps() {
    let window = 1u64 << 10;
    let mut bf =
        SheBloomFilter::builder().window(window).memory_bytes(32 << 10).alpha(1.0).seed(6).build();
    for i in 0..window {
        bf.insert(&i);
    }
    let t_cycle = bf.engine().config().t_cycle;
    bf.advance_time(1_001 * t_cycle); // odd multiple: all marks flip
                                      // Everything is cleaned; the only acceptable "hits" are the vacuous
                                      // ones where all 8 hashed groups happen to be young (≈ (N/Tc)^8).
    let survivors = (0..window).filter(|k| bf.contains(k)).count();
    assert!(
        survivors <= window as usize / 100,
        "{survivors} items survived an odd-multiple idle gap"
    );
    // The structure keeps working normally afterwards.
    for i in 0..window {
        bf.insert(&(1_000_000 + i));
    }
    assert!(bf.contains(&1_000_000u64));
}
