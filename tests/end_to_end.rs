//! Cross-crate integration tests: the paper's headline comparisons as
//! executable accuracy budgets, run end-to-end through the experiment
//! harness (workload generator → algorithm → ground truth → metric).

use she::metrics::*;
use she::streams::{CaidaLike, DistinctStream, KeyStream, RelevantPair};

const WINDOW: u64 = 1 << 12;

fn caida(n: usize, seed: u64) -> Vec<u64> {
    CaidaLike::new(16_000, 1.05, seed).take_vec(n)
}

/// Fig. 9d's headline: at the same scarce memory, SHE-BF's FPR is orders of
/// magnitude below the timestamp-based filters and SWAMP.
#[test]
fn membership_she_bf_dominates_at_scarce_memory() {
    let keys = DistinctStream::new(1).take_vec(8 * WINDOW as usize);
    let guard = 5 * WINDOW as usize;
    let bytes = 16 << 10;

    let mut she = SheBfAdapter::sized(WINDOW, bytes, 1);
    let she_fpr = membership_fpr(&mut she, &keys, guard, 3, 4_000).value;

    let mut tobf = TobfAdapter::sized(WINDOW, bytes, 1);
    let tobf_fpr = membership_fpr(&mut tobf, &keys, guard, 3, 4_000).value;

    let mut tbf = TbfAdapter::sized(WINDOW, bytes, 1);
    let tbf_fpr = membership_fpr(&mut tbf, &keys, guard, 3, 4_000).value;

    let mut swamp = SwampMember::sized(WINDOW, bytes, 1);
    let swamp_fpr = membership_fpr(&mut swamp, &keys, guard, 3, 4_000).value;

    assert!(she_fpr < 0.05, "SHE-BF FPR {she_fpr}");
    assert!(tobf_fpr > 10.0 * she_fpr, "TOBF {tobf_fpr} vs SHE {she_fpr}");
    assert!(tbf_fpr > 10.0 * she_fpr, "TBF {tbf_fpr} vs SHE {she_fpr}");
    assert!(swamp_fpr > 5.0 * she_fpr, "SWAMP {swamp_fpr} vs SHE {she_fpr}");
}

/// Fig. 9a's headline: SHE-BM estimates well with ~1 KB-scale memory while
/// SWAMP and TSV cannot.
#[test]
fn cardinality_she_bm_wins_small_memory() {
    let keys = caida(8 * WINDOW as usize, 2);
    let bytes = 256; // bytes! SHE-BM thrives, O(W)/timestamp structures can't.

    let mut she = SheBmAdapter::sized(WINDOW, bytes, 2);
    let she_re = cardinality_re(&mut she, &keys, WINDOW as usize, 3).value;

    let mut swamp = SwampCard::sized(WINDOW, bytes, 2);
    let swamp_re = cardinality_re(&mut swamp, &keys, WINDOW as usize, 3).value;

    let mut tsv = TsvAdapter::sized(WINDOW, bytes, 2);
    let tsv_re = cardinality_re(&mut tsv, &keys, WINDOW as usize, 3).value;

    assert!(she_re < 0.15, "SHE-BM RE {she_re}");
    assert!(swamp_re > 3.0 * she_re, "SWAMP {swamp_re} vs SHE {she_re}");
    assert!(tsv_re > 3.0 * she_re, "TSV {tsv_re} vs SHE {she_re}");
}

/// Fig. 9b: SHE-HLL beats SHLL at equal (small) memory.
#[test]
fn cardinality_she_hll_beats_shll() {
    let keys = caida(8 * WINDOW as usize, 3);
    let bytes = 512;

    let mut she = SheHllAdapter::sized(WINDOW, bytes, 3);
    let she_re = cardinality_re(&mut she, &keys, WINDOW as usize, 3).value;

    let mut shll = ShllAdapter::sized(WINDOW, bytes, 3);
    let shll_re = cardinality_re(&mut shll, &keys, WINDOW as usize, 3).value;

    assert!(she_re < 0.25, "SHE-HLL RE {she_re}");
    assert!(shll_re > she_re, "SHLL {shll_re} vs SHE-HLL {she_re}");
}

/// Fig. 9c: with scarce memory SHE-CM is far more accurate than ECM, and
/// SWAMP is unusable; the Ideal stays best.
#[test]
fn frequency_she_cm_wins_scarce_memory() {
    let keys = caida(8 * WINDOW as usize, 4);
    let bytes = 16 << 10;

    let mut she = SheCmAdapter::sized(WINDOW, bytes, 4);
    let she_are = frequency_are(&mut she, &keys, WINDOW as usize, 3, 300).value;

    let mut ecm = EcmAdapter::sized(WINDOW, bytes, 4);
    let ecm_are = frequency_are(&mut ecm, &keys, WINDOW as usize, 3, 300).value;

    let mut ideal = IdealCm::sized(WINDOW, bytes, 4);
    let ideal_are = frequency_are(&mut ideal, &keys, WINDOW as usize, 3, 300).value;

    assert!(ecm_are > 3.0 * she_are, "ECM {ecm_are} vs SHE-CM {she_are}");
    assert!(ideal_are <= she_are * 1.5 + 0.05, "Ideal {ideal_are} vs SHE-CM {she_are}");
}

/// Fig. 9e: SHE-MH beats the straw-man at equal scarce memory.
///
/// A single (stream seed, checkpoint) draw is high-variance at 512 B —
/// both estimators hold only a handful of hashes — so the comparison
/// aggregates several independently-seeded streams and checkpoints, the
/// way the paper averages across trace slices.
#[test]
fn similarity_she_mh_beats_strawman() {
    // The paper's separation is starkest at scarce memory, where the
    // straw-man's 88-bit timestamped cells leave it with very few hashes.
    let bytes = 512;
    let seeds = 8u64;
    let (mut she_sum, mut straw_sum) = (0.0, 0.0);
    for seed in 1..=seeds {
        let mut gen = RelevantPair::new(WINDOW as usize, 0.5, seed);
        let pairs: Vec<(u64, u64)> = (0..8 * WINDOW as usize).map(|_| gen.next_pair()).collect();

        let mut she = SheMhAdapter::sized(WINDOW, bytes, seed as u32);
        she_sum += similarity_re(&mut she, &pairs, WINDOW as usize, 8).value;

        let mut straw = StrawmanMhAdapter::sized(WINDOW, bytes, seed as u32);
        straw_sum += similarity_re(&mut straw, &pairs, WINDOW as usize, 8).value;
    }
    let she_re = she_sum / seeds as f64;
    let straw_re = straw_sum / seeds as f64;
    assert!(she_re < 0.4, "SHE-MH RE {she_re}");
    assert!(straw_re > 1.25 * she_re, "Straw {straw_re} vs SHE-MH {she_re}");
}

/// The Ideal goal brackets SHE from below on every cardinality run — SHE
/// adds sliding error on top of the original's sketch error, never removes
/// it (sanity of the harness itself).
#[test]
fn ideal_is_a_lower_envelope() {
    let keys = caida(6 * WINDOW as usize, 6);
    let bytes = 2 << 10;
    let mut she = SheBmAdapter::sized(WINDOW, bytes, 6);
    let she_re = cardinality_re(&mut she, &keys, WINDOW as usize, 4).value;
    let mut ideal = IdealBitmap::sized(WINDOW, bytes, 6);
    let ideal_re = cardinality_re(&mut ideal, &keys, WINDOW as usize, 4).value;
    assert!(ideal_re <= she_re + 0.02, "ideal {ideal_re} vs SHE {she_re}");
}
