//! Empirical validation of §5.1 (Eq. 1): the expected number of groups
//! that fail to be refreshed within one full cleaning cycle after their
//! deadline matches `E = G · e^{-(1+α)·C·H / G}` under the real hash
//! process (not just the balls-in-bins idealization the paper assumes).

use she::core::{analysis, SheConfig};
use she::sketch::{BloomSpec, CellUpdate, CsmSpec};

/// Monte Carlo over the actual hashed-touch process: stream distinct keys
/// for two cycles, record each group's touch times, and count groups that
/// receive no touch within `(deadline, deadline + Tcycle]`.
fn measure_unswept(g: usize, alpha: f64, h: usize, window: u64, trials: usize) -> f64 {
    let w = 4usize; // cells per group
    let m = g * w;
    let cfg = SheConfig::builder().window(window).alpha(alpha).group_cells(w).build();
    let t_cycle = cfg.t_cycle;
    let mut total = 0usize;
    let mut ups: Vec<CellUpdate> = Vec::new();
    for trial in 0..trials {
        let spec = BloomSpec::new(m, h, 7_000 + trial as u32);
        // Deadline of group gid: its offset (first mark flip after t = 0).
        let deadlines: Vec<u64> = (0..g)
            .map(|gid| {
                let ofs = ((t_cycle as u128 * gid as u128) / g as u128) as u64;
                if ofs > 0 {
                    ofs
                } else {
                    t_cycle
                }
            })
            .collect();
        let mut swept = vec![false; g];
        for t in 1..=2 * t_cycle {
            let key = she::hash::mix64(trial as u64 * 1_000_000_007 + t);
            spec.updates(&key, &mut ups);
            for u in &ups {
                let gid = u.index / w;
                if t > deadlines[gid] && t <= deadlines[gid] + t_cycle {
                    swept[gid] = true;
                }
            }
        }
        total += swept.iter().filter(|&&s| !s).count();
    }
    total as f64 / trials as f64
}

#[test]
fn unswept_count_tracks_equation_one() {
    // Regime where misses are measurable: many groups, one hash,
    // all-distinct traffic (C = N).
    let window = 1u64 << 10;
    let alpha = 0.5;
    for g in [512usize, 1024, 2048] {
        let measured = measure_unswept(g, alpha, 1, window, 8);
        let expected = analysis::expected_unswept_groups(g, alpha, window, 1);
        let tol = 0.35 * expected + 2.0;
        assert!(
            (measured - expected).abs() <= tol,
            "G={g}: measured {measured:.2}, Eq.1 {expected:.2}"
        );
    }
}

#[test]
fn more_hashes_eliminate_misses() {
    // With H = 8 the per-cycle touch count is 8x: the paper's defaults
    // make missed groups essentially impossible.
    let measured = measure_unswept(1024, 0.5, 8, 1 << 10, 4);
    let expected = analysis::expected_unswept_groups(1024, 0.5, 1 << 10, 8);
    assert!(expected < 0.1, "Eq.1 predicts {expected}");
    assert!(measured < 1.0, "measured {measured}");
}

#[test]
fn miss_rate_grows_with_group_count() {
    let window = 1u64 << 10;
    let few = measure_unswept(256, 0.5, 1, window, 4);
    let many = measure_unswept(4096, 0.5, 1, window, 4);
    assert!(many > few, "few={few} many={many}");
}
