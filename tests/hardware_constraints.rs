//! Integration tests for the hardware story: the simulated pipeline and
//! the §2.3 constraints, checked end-to-end against `she-core` semantics.

use she::hwsim::{ResourceReport, ShePipeline, SheVariant};

/// The paper's exact FPGA configurations pass the full constraint audit on
/// a long realistic stream — this is the mechanical core of Section 6.
#[test]
fn paper_configs_satisfy_constraints() {
    for variant in [SheVariant::Bitmap, SheVariant::Bloom { k: 8 }] {
        let mut p = ShePipeline::paper_config(variant);
        let stats = p.run((0..300_000u64).map(she::hash::mix64));
        assert_eq!(
            stats.violations,
            0,
            "{variant:?} violated constraints: {:?}",
            p.memory().violations()
        );
        // Fully pipelined: one item per cycle after fill.
        assert_eq!(stats.cycles, stats.items + 3);
    }
}

/// The simulated state matches the paper's inventory: a 1024-bit array per
/// lane, one mark bit per 64-bit group, one 32-bit counter, zero block RAM.
#[test]
fn resource_inventory_matches_paper_structure() {
    let bm = ResourceReport::for_pipeline(&ShePipeline::paper_config(SheVariant::Bitmap));
    assert_eq!((bm.cell_bits, bm.mark_bits, bm.counter_bits), (1024, 16, 32));
    let bf = ResourceReport::for_pipeline(&ShePipeline::paper_config(SheVariant::Bloom { k: 8 }));
    assert_eq!((bf.cell_bits, bf.mark_bits), (8 * 1024, 8 * 16));
    assert_eq!(bf.block_ram_bits, 0);
    // Table 3 shape: SHE-BF clocks slightly lower, both > 200 MHz.
    assert!(bf.clock_mhz < bm.clock_mhz);
    assert!(bf.clock_mhz > 200.0 && bm.clock_mhz > 200.0);
}

/// The pipeline's sliding-window semantics agree with `she-core`'s
/// SHE-BF: items inside the window are found, long-expired ones are not.
#[test]
fn pipeline_semantics_match_core() {
    let window = 2_000u64;
    let mut p = ShePipeline::new(SheVariant::Bloom { k: 4 }, 1 << 15, 64, window, 2 * window);
    let keys: Vec<u64> = (0..10_000).map(she::hash::mix64).collect();
    for &k in &keys {
        p.insert(k);
    }
    let fn_count = keys.iter().rev().take(window as usize).filter(|&&k| !p.contains(k)).count();
    assert_eq!(fn_count, 0, "pipeline produced false negatives in-window");
    let stale: Vec<u64> = keys[..2_000].to_vec();
    let stale_hits = stale.iter().filter(|&&k| p.contains(k)).count();
    assert!(stale_hits < 600, "stale hits {stale_hits} / 2000");
}

/// The memory budget constraint triggers when a configuration would not
/// fit the Virtex-7's SRAM.
#[test]
fn oversized_configuration_is_flagged() {
    use she::hwsim::{AccessKind, MemorySystem};
    let mut ms = MemorySystem::new(1 << 20); // 128 KB budget
    let big = ms.register("huge_table", 2 << 20, 64);
    assert!(!ms.violations().is_empty());
    ms.begin_item();
    ms.access(1, big, AccessKind::Read, 64);
}
