//! FPGA pipeline walkthrough: the hardware story of Section 6.
//!
//! ```sh
//! cargo run --release --example fpga_pipeline
//! ```
//!
//! Runs the paper's exact FPGA configuration (1024-bit array, 64-bit
//! groups, 32-bit item counter; 8 lanes for SHE-BF) through the audited
//! four-stage pipeline simulator, prints the per-region access profile, the
//! constraint audit, the state-bit inventory, and the modeled throughput —
//! then deliberately mis-designs a pipeline to show what a constraint
//! violation looks like.

use she::hwsim::{AccessKind, MemorySystem, ResourceReport, ShePipeline, SheVariant};

fn main() {
    for variant in [SheVariant::Bitmap, SheVariant::Bloom { k: 8 }] {
        let mut p = ShePipeline::paper_config(variant);
        let stats = p.run((0..1_000_000u64).map(she::hash::mix64));
        let report = ResourceReport::for_pipeline(&p);

        println!("=== {variant:?} ===");
        println!(
            "pipeline: {} items in {} cycles ({:.4} items/cycle), {} stages",
            stats.items,
            stats.cycles,
            stats.items as f64 / stats.cycles as f64,
            stats.stages
        );
        println!("constraint audit: {} violations", stats.violations);
        println!("memory regions (name, bits, port, reads, writes):");
        for (name, bits, port, r, w) in p.memory().region_summary() {
            println!("  {name:14} {bits:>6} {port:>4} {r:>10} {w:>10}");
        }
        println!(
            "state bits: {} | modeled clock {:.2} MHz | throughput {:.1} Mips",
            report.total_bits(),
            report.clock_mhz,
            report.throughput_mips
        );
        println!();
    }

    // What the auditor catches: a naive design that lets two stages share
    // the cell memory (a read-write hazard on real hardware).
    println!("=== deliberately broken design ===");
    let mut ms = MemorySystem::default();
    let cells = ms.register("cell_array", 1024, 64);
    ms.begin_item();
    ms.access(3, cells, AccessKind::Read, 64); // stage 3 peeks at the cells...
    ms.access(4, cells, AccessKind::Write, 64); // ...stage 4 writes them back
    for v in ms.violations() {
        println!("caught: {v}");
    }
    assert!(!ms.violations().is_empty());
}
