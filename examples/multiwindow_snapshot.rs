//! Multi-window queries and state snapshots.
//!
//! ```sh
//! cargo run --release --example multiwindow_snapshot
//! ```
//!
//! Two extension features built on the SHE structure's age machinery:
//!
//! * **multi-window queries** — because group ages are spread uniformly
//!   over the cleaning cycle, one SHE-BM answers "how many distinct keys in
//!   the last n items?" for *any* n below `Tcycle`, not just the configured
//!   window (`estimate_at` / `cardinality_curve`);
//! * **snapshots** — the engine state serializes to a compact binary buffer
//!   (`save_state`), so a monitoring daemon can restart without losing its
//!   window.

use she::core::{She, SheBitmap, SheConfig};
use she::sketch::BloomSpec;
use she::streams::{CaidaLike, KeyStream};
use she::window::WindowTruth;

fn main() {
    let window = 1u64 << 15;
    // group_cells = 256 keeps the group count G = M/w ≈ 2048 well below the
    // smallest sub-window we will query (see `estimate_at`'s guidance).
    let mut bm = SheBitmap::builder()
        .window(window)
        .memory_bytes(64 << 10)
        .alpha(0.5)
        .group_cells(256)
        .seed(3)
        .build();
    let mut truth = WindowTruth::new((2 * window) as usize);

    let mut trace = CaidaLike::new(150_000, 1.02, 17);
    for _ in 0..6 * window {
        let k = trace.next_key();
        bm.insert(&k);
        truth.insert(k);
    }

    println!("one structure, many windows (window configured = {window}):");
    println!("{:>12} {:>12} {:>12} {:>8}", "last n", "estimate", "exact", "err%");
    for frac in [0.25f64, 0.5, 1.0, 1.4] {
        let n = (window as f64 * frac) as u64;
        let est = bm.estimate_at(n, 0.25);
        // Exact distinct count over the last n items, from the oracle.
        let all: Vec<u64> = truth.iter_items().collect();
        let tail: std::collections::HashSet<u64> =
            all[all.len() - n as usize..].iter().copied().collect();
        let exact = tail.len() as f64;
        println!("{n:>12} {est:>12.0} {exact:>12.0} {:>7.2}%", 100.0 * (est - exact).abs() / exact);
    }

    println!(
        "\ncardinality-vs-age curve (first/last points of {} groups):",
        bm.engine().num_groups()
    );
    let curve = bm.cardinality_curve();
    for (age, est) in curve.iter().take(3).chain(curve.iter().rev().take(3).rev()) {
        println!("  age {age:>7}  F(age) ~= {est:.0}");
    }

    // --- snapshots -------------------------------------------------------
    let cfg = SheConfig::builder().window(window).alpha(1.0).group_cells(64).build();
    let mut engine = She::new(BloomSpec::new(1 << 16, 8, 9), cfg);
    for i in 0..50_000u64 {
        engine.insert(&i);
    }
    let snap = engine.save_state();
    println!("\nsnapshot: {} bytes for a {}-bit SHE-BF engine", snap.len(), 1 << 16);

    let mut restored = She::new(BloomSpec::new(1 << 16, 8, 9), cfg);
    restored.load_state(&snap).expect("snapshot loads");
    assert_eq!(restored.now(), engine.now());
    println!("restored at t = {} — identical state, ready to continue", restored.now());
}
