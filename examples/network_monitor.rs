//! Network monitor: the paper's motivating QoS scenario.
//!
//! ```sh
//! cargo run --release --example network_monitor
//! ```
//!
//! A router tracks, over a sliding window of the most recent packets:
//!
//! * **flow cardinality** (distinct source addresses) with SHE-HLL — a
//!   spike means address scanning or a DDoS with spoofed sources;
//! * **per-flow frequency** with SHE-CM — heavy hitters get flagged;
//!
//! on a CAIDA-like synthetic trace, with an exact oracle alongside so the
//! printed dashboard shows the estimation error live. Halfway through, a
//! simulated attack injects 30,000 spoofed sources and one elephant flow,
//! and the window statistics react and then recover.

use she::core::{SheCountMin, SheHyperLogLog};
use she::streams::{CaidaLike, KeyStream};
use she::window::WindowTruth;

fn main() {
    let window = 1u64 << 15; // 32k packets
    let mut hll = SheHyperLogLog::builder().window(window).memory_bytes(4 << 10).seed(1).build();
    let mut cm = SheCountMin::builder().window(window).memory_bytes(256 << 10).seed(2).build();
    let mut truth = WindowTruth::new(window as usize);

    let mut trace = CaidaLike::new(60_000, 1.05, 7);
    let elephant = 0xE1E_FA17u64;
    let total = 10 * window;
    let attack = (4 * window, 5 * window);

    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>14} {:>10}",
        "packet", "est_sources", "true_sources", "err%", "elephant_est", "true"
    );
    for t in 0..total {
        let key = if (attack.0..attack.1).contains(&t) {
            // Attack phase: spoofed sources + a heavy flow.
            match t % 4 {
                0..=1 => she::hash::mix64(0xBAD_000 + t), // fresh spoofed source
                2 => elephant,
                _ => trace.next_key(),
            }
        } else {
            trace.next_key()
        };
        hll.insert(&key);
        cm.insert(&key);
        truth.insert(key);

        if t % window == 0 && t >= window {
            let est = hll.estimate();
            let exact = truth.cardinality() as f64;
            let ele_est = cm.query(&elephant);
            let ele_true = truth.frequency(elephant);
            let phase =
                if (attack.0..attack.1 + window).contains(&t) { "  <-- attack window" } else { "" };
            println!(
                "{t:>10} {est:>12.0} {exact:>12.0} {:>7.2}% {ele_est:>14} {ele_true:>10}{phase}",
                100.0 * (est - exact).abs() / exact
            );
        }
    }

    // The monitor must have seen the cardinality spike during the attack
    // and recovered after it.
    println!("\nDuring the attack the distinct-source count roughly doubles;");
    println!("after one further window it returns to the baseline — that is");
    println!(
        "the sliding window doing its job with {} KB + {} KB of state.",
        hll.memory_bits() / 8 / 1024,
        cm.memory_bits() / 8 / 1024
    );
}
