//! Parallel ingestion: multi-core sliding-window sketching.
//!
//! ```sh
//! cargo run --release --example parallel_ingest
//! ```
//!
//! The FPGA sustains one item per clock; on a CPU the equivalent scaling
//! lever is key-space sharding (see `she::core::sharded`). This example
//! ingests the same 8M-key trace serially and with crossbeam workers,
//! compares wall-clock throughput, and verifies the sharded estimates
//! agree with an exact oracle.

use she::core::{ShardedBitmap, ShardedCountMin};
use she::streams::{CaidaLike, KeyStream};
use she::window::WindowTruth;
use std::time::Instant;

fn main() {
    let window = 1u64 << 16;
    let shards = 8;
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let n = 8_000_000;
    let keys = CaidaLike::new(400_000, 1.05, 3).take_vec(n);

    // Serial ingestion (single shard, single thread).
    let serial = ShardedBitmap::new(1, window, 64 << 10, 1);
    let t0 = Instant::now();
    for &k in &keys {
        serial.insert(k);
    }
    let serial_mips = n as f64 / t0.elapsed().as_secs_f64() / 1e6;

    // Parallel ingestion across shards.
    let sharded = ShardedBitmap::new(shards, window, 64 << 10, 1);
    let t0 = Instant::now();
    sharded.0.ingest_parallel(&keys, threads);
    let par_mips = n as f64 / t0.elapsed().as_secs_f64() / 1e6;

    // Exact window cardinality for reference.
    let mut truth = WindowTruth::new(window as usize);
    for &k in &keys {
        truth.insert(k);
    }
    let exact = truth.cardinality() as f64;
    let est_serial = serial.estimate();
    let est_sharded = sharded.estimate();

    println!("threads available: {threads}, shards: {shards}");
    println!("serial  ingest: {serial_mips:>7.1} Mips   estimate {est_serial:>10.0}");
    println!("sharded ingest: {par_mips:>7.1} Mips   estimate {est_sharded:>10.0}");
    println!("exact window cardinality:            {exact:>10.0}");
    println!(
        "errors: serial {:.2}%  sharded {:.2}%",
        100.0 * (est_serial - exact).abs() / exact,
        100.0 * (est_sharded - exact).abs() / exact
    );

    // Frequency side: sharded Count-Min answers match single-shard truth
    // closely for heavy keys.
    let cm = ShardedCountMin::new(shards, window, 4 << 20, 9);
    cm.0.ingest_parallel(&keys, threads);
    let mut shown = 0;
    println!("\nheavy-key frequencies (sharded CM vs exact):");
    for (key, count) in truth.iter_counts() {
        if count > 500 {
            println!("  key {key:#018x}: est {} true {count}", cm.query(key));
            shown += 1;
            if shown == 5 {
                break;
            }
        }
    }

    assert!((est_sharded - exact).abs() / exact < 0.25, "sharded estimate off");
}
