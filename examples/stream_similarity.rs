//! Stream similarity: detecting divergence between two feeds.
//!
//! ```sh
//! cargo run --release --example stream_similarity
//! ```
//!
//! Two replicated event feeds (think: a primary and a mirror) should carry
//! the same items. SHE-MH keeps a sliding MinHash signature of each and
//! estimates their window Jaccard similarity continuously. Midway, the
//! mirror starts dropping a share of traffic and injecting its own — the
//! similarity estimate falls, tracks the exact value, and recovers once the
//! fault is fixed.

use she::core::SheMinHash;
use she::streams::{CaidaLike, KeyStream};
use she::window::PairTruth;

fn main() {
    let window = 1u64 << 14;
    let builder = SheMinHash::builder().window(window).num_hashes(512).seed(21);
    let mut sig_primary = builder.clone().build();
    let mut sig_mirror = builder.build();
    let mut truth = PairTruth::new(window as usize);

    let mut feed = CaidaLike::new(30_000, 1.0, 13);
    let mut drift = CaidaLike::new(30_000, 1.0, 14);
    let fault = (3 * window, 6 * window);

    println!("{:>10} {:>10} {:>10} {:>8}", "event", "est_sim", "true_sim", "phase");
    for t in 0..9 * window {
        let item = feed.next_key();
        let mirror_item = if (fault.0..fault.1).contains(&t) && t % 3 == 0 {
            drift.next_key() // the mirror diverges on a third of its traffic
        } else {
            item
        };
        sig_primary.insert(&item);
        sig_mirror.insert(&mirror_item);
        truth.insert_a(item);
        truth.insert_b(mirror_item);

        if t % window == window - 1 && t > window {
            let est = sig_primary.similarity(&mut sig_mirror);
            let exact = truth.jaccard();
            let phase = if (fault.0..fault.1 + window).contains(&t) { "fault" } else { "sync" };
            println!("{t:>10} {est:>10.3} {exact:>10.3} {phase:>8}");
        }
    }

    let final_sim = sig_primary.similarity(&mut sig_mirror);
    println!("\nfinal similarity after recovery: {final_sim:.3} (expect near 1.0)");
    println!("signature memory: 2 x {} bytes", sig_primary.memory_bits() / 8);
    assert!(final_sim > 0.8, "feeds must re-converge after the fault clears");
}
