//! Quickstart: sliding-window membership in five lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a SHE Bloom filter over the last 100,000 items, streams a million
//! keys through it, and shows that recent items are found while expired
//! ones are not — with the memory footprint and the Eq. 2-derived α
//! printed for reference.

use she::core::SheBloomFilter;

fn main() {
    let window = 100_000u64;
    let mut bf = SheBloomFilter::builder()
        .window(window)
        .memory_bytes(256 << 10) // 256 KB of bits: ~21 bits per window item
        .hash_functions(8)
        .seed(1)
        .build();

    println!(
        "SHE-BF: window = {window} items, memory = {} KB, alpha = {:.2} (Eq. 2)",
        bf.memory_bits() / 8 / 1024,
        bf.engine().config().alpha()
    );

    // Stream one million distinct keys.
    for key in 0..1_000_000u64 {
        bf.insert(&key);
    }

    // The last `window` keys are all found — SHE-BF has no false negatives
    // inside the window.
    let in_window = (900_000..1_000_000u64).filter(|k| bf.contains(k)).count();
    println!("in-window hits:   {in_window} / 100000 (expect all)");

    // Keys long outside the relaxed window (1+α)·N have been cleaned away.
    let stale = (0..100_000u64).filter(|k| bf.contains(k)).count();
    println!("stale-key hits:   {stale} / 100000 (expect only hash-collision FPs)");

    // Probe keys never inserted: the false-positive rate.
    let fp = (2_000_000..2_100_000u64).filter(|k| bf.contains(k)).count();
    println!("false positives:  {fp} / 100000 ({:.4}%)", fp as f64 / 1_000.0);

    assert_eq!(in_window, 100_000, "no false negatives in the window");
    // Expired keys are answered no better and no worse than keys never
    // inserted: both hit only the hash-collision false-positive floor.
    assert!(
        (stale as f64) < 2.0 * (fp as f64).max(500.0),
        "expired keys ({stale}) must look like never-inserted keys ({fp})"
    );
}
