//! Intrusion detection: port-scan flagging over a sliding window.
//!
//! ```sh
//! cargo run --release --example intrusion_detection
//! ```
//!
//! The classic scan-detector logic (Time-out Bloom filter literature, which
//! the paper cites as TOBF's motivation): a connection `(src, dst)` is *new*
//! if it was not seen among the recent window of connections. A source that
//! opens many new connections per window is a scanner. We implement it with
//! two SHE structures:
//!
//! * SHE-BF answers "was this (src,dst) pair seen in the window?";
//! * SHE-CM counts new-connection events per source.
//!
//! Background traffic revisits a stable set of pairs; one injected scanner
//! sweeps thousands of distinct destinations and must be the top source
//! flagged.

use she::core::{SheBloomFilter, SheCountMin};
use she::streams::{CaidaLike, KeyStream};

fn pair_key(src: u64, dst: u64) -> u64 {
    she::hash::mix64(src.rotate_left(32) ^ dst)
}

fn main() {
    let window = 1u64 << 15;
    let mut seen_pairs = SheBloomFilter::builder()
        .window(window)
        .memory_bytes(128 << 10)
        .hash_functions(8)
        .seed(3)
        .build();
    let mut new_per_src =
        SheCountMin::builder().window(window).memory_bytes(512 << 10).seed(4).build();

    let mut src_gen = CaidaLike::new(2_000, 1.1, 11); // stable user population
    let scanner_src = 0x5CA_77E5u64;
    let mut flagged: Vec<(u64, u64)> = Vec::new();

    for t in 0..6 * window {
        let (src, dst) = if t % 97 == 0 && t > window {
            // The scanner probes a fresh destination every ~97 packets.
            (scanner_src, 0xD000_0000 + t)
        } else {
            // Background: users talk to a small, recurring set of services.
            let s = src_gen.next_key();
            (s, s % 13) // each user has ~1 favourite destination
        };
        let pk = pair_key(src, dst);
        if !seen_pairs.contains(&pk) {
            new_per_src.insert(&src);
        } else {
            // Known pair: still advances the frequency sketch's clock so
            // the "new connections per window" denominator stays aligned.
            new_per_src.advance_time(1);
        }
        seen_pairs.insert(&pk);

        if t % window == 0 && t >= 2 * window {
            let scanner_score = new_per_src.query(&scanner_src);
            flagged.push((t, scanner_score));
        }
    }

    println!("scanner new-connection score per checkpoint (window = {window} packets):");
    for (t, score) in &flagged {
        let verdict = if *score > 100 { "FLAGGED" } else { "ok" };
        println!("  t={t:>8}  score={score:>6}  {verdict}");
    }

    // A handful of background sources for contrast.
    println!("\nbackground sources (expected far below the scanner):");
    for s in [1u64, 2, 3].map(she::hash::mix64) {
        println!("  src={s:#018x}  score={}", new_per_src.query(&s));
    }

    let last = flagged.last().expect("checkpoints recorded").1;
    assert!(last > 100, "scanner must stand out (score {last})");
}
