//! SHE — Sliding Hardware Estimator (ICPP 2022) reproduction facade.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`hash`] — hash primitives (BOBHash/lookup3 family);
//! * [`sketch`] — the five fixed-window algorithms under the Common Sketch
//!   Model (also the evaluation's "Ideal goal");
//! * [`core`] — the SHE framework itself: grouped time-mark arrays,
//!   circular/on-demand cleaning, the five SHE adapters, and the Section-5
//!   analysis;
//! * [`window`] — exact sliding-window substrates (ground truth,
//!   exponential histograms);
//! * [`baselines`] — every competitor of the evaluation (SWAMP, SHLL, CVS,
//!   TSV, TOBF, TBF, ECM, straw-man MinHash);
//! * [`streams`] — synthetic workload generators standing in for the
//!   CAIDA / Campus / Webpage / IMC10 traces;
//! * [`hwsim`] — the pipeline simulator standing in for the FPGA;
//! * [`metrics`] — the experiment harness (FPR/RE/ARE/throughput).
//!
//! # Quickstart
//!
//! ```
//! use she::core::SheBloomFilter;
//!
//! // Track membership over the last 1,000 items with 8 KB of state.
//! let window = 1_000;
//! let mut bf = SheBloomFilter::builder()
//!     .window(window)
//!     .memory_bytes(8 << 10)
//!     .hash_functions(8)
//!     .seed(1)
//!     .build();
//!
//! for t in 0..10_000u64 {
//!     bf.insert(&t);
//! }
//! // Recent items are found; long-expired ones are not.
//! assert!(bf.contains(&9_999u64));
//! assert!(!bf.contains(&123u64));
//! ```

pub use she_baselines as baselines;
pub use she_core as core;
pub use she_hash as hash;
pub use she_hwsim as hwsim;
pub use she_metrics as metrics;
pub use she_sketch as sketch;
pub use she_streams as streams;
pub use she_window as window;
