//! The uniform persistence layer: versioned snapshots of SHE state,
//! with config validation on load and cell-wise merge where the
//! structure supports it.
//!
//! A `She<S>` is `(config, clock, marks, cells)`; the hash spec `S` is
//! *not* serialized (seeds are configuration, not state), so loading
//! requires an identically-configured engine — exactly like restoring a
//! sketch into a router after a control-plane restart. State travels in
//! the shared [`crate::frame`] format; an engine frame carries four
//! sections:
//!
//! * `CONFIG` — `window u64 | t_cycle u64 | group_cells u64 | beta f64
//!   | num_cells u64 | cell_bits u32 | k u32`, checked field-by-field on
//!   load;
//! * `CLOCK` — `t u64`;
//! * `MARKS` — `n u64` + bit-packed stored marks;
//! * `CELLS` — `n_words u64` + raw cell words.
//!
//! Every structure in the crate implements [`SnapshotState`]; the
//! mergeable ones (SHE-BF/BM via cell-wise OR, SHE-HLL/CM via cell-wise
//! max, SHE-MH via non-zero min) additionally support
//! [`SnapshotState::merge_snapshot`], which reconciles the two time-mark
//! sets so a merge commutes cell-for-cell (see `She::merge_state`).

use crate::frame::{self, Frame, FrameError, FrameWriter, Reader};
use crate::She;
use she_sketch::CsmSpec;
use std::fmt;

/// Why a snapshot failed to load or merge.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The container itself is malformed (magic, version, checksum,
    /// truncation).
    Frame(FrameError),
    /// The frame serializes a different structure than the target.
    WrongKind {
        /// Kind the target expects.
        expected: u16,
        /// Kind found in the frame.
        found: u16,
    },
    /// A section the layout requires is absent.
    MissingSection {
        /// The missing section's tag.
        tag: u16,
    },
    /// The snapshot's configuration disagrees with the target's.
    ConfigMismatch {
        /// Field that disagreed.
        field: &'static str,
    },
    /// The snapshot's geometry (cells/marks/hashes) disagrees with the
    /// target's.
    GeometryMismatch,
    /// The structure defines no cell-wise merge.
    NotMergeable,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Frame(e) => write!(f, "snapshot frame: {e}"),
            Self::WrongKind { expected, found } => {
                write!(f, "snapshot kind mismatch: expected {expected:#06x}, found {found:#06x}")
            }
            Self::MissingSection { tag } => write!(f, "snapshot missing section {tag:#06x}"),
            Self::ConfigMismatch { field } => write!(f, "snapshot config mismatch: {field}"),
            Self::GeometryMismatch => write!(f, "snapshot geometry mismatch"),
            Self::NotMergeable => write!(f, "structure does not support snapshot merging"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for SnapshotError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// The cell-wise operator a structure's snapshots combine under.
///
/// A merge models "both states observed the same logical stream split in
/// two"; all three operators are commutative and have zero (the cleaned
/// cell) as identity, which is what makes `merge(a, b) == merge(b, a)`
/// cell-for-cell after time-mark reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Bitwise OR — exact for set-bit sketches (SHE-BF, SHE-BM).
    Or,
    /// Cell-wise max — exact for SHE-HLL registers, a safe (still
    /// one-sided) upper bound for SHE-CM counters over disjoint streams.
    Max,
    /// Cell-wise min, treating zero as "empty" — the MinHash register
    /// merge (the min over a union of streams).
    MinNonZero,
}

impl MergeMode {
    /// Combine two cell values.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            MergeMode::Or => a | b,
            MergeMode::Max => a.max(b),
            MergeMode::MinNonZero => {
                if a == 0 {
                    b
                } else if b == 0 {
                    a
                } else {
                    a.min(b)
                }
            }
        }
    }
}

/// Uniform persistence for every SHE structure: encode into a versioned,
/// self-describing frame; decode with config validation; merge cell-wise
/// where the structure supports it.
pub trait SnapshotState {
    /// The [`frame::kind`] tag identifying this structure's frames.
    const KIND: u16;

    /// The cell-wise merge operator, or `None` for structures whose
    /// state cannot be combined without replay.
    const MERGE: Option<MergeMode>;

    /// Serialize the structure's state into a frame.
    fn save_snapshot(&self) -> Vec<u8>;

    /// Replace this structure's state from a frame written by an
    /// identically-configured instance.
    fn load_snapshot(&mut self, buf: &[u8]) -> Result<(), SnapshotError>;

    /// Merge a frame's state into this structure cell-for-cell
    /// (`Err(NotMergeable)` when [`Self::MERGE`] is `None`).
    fn merge_snapshot(&mut self, buf: &[u8]) -> Result<(), SnapshotError>;
}

/// Bit-pack a mark vector, little-endian within each byte.
pub(crate) fn pack_marks(marks: &[bool], out: &mut Vec<u8>) {
    out.extend_from_slice(&(marks.len() as u64).to_le_bytes());
    for chunk in marks.chunks(8) {
        let mut byte = 0u8;
        for (i, &m) in chunk.iter().enumerate() {
            if m {
                byte |= 1 << i;
            }
        }
        out.push(byte);
    }
}

impl<S: CsmSpec> She<S> {
    /// Encode the engine state into a frame of the given kind.
    pub(crate) fn encode_frame(&self, kind: u16) -> Vec<u8> {
        let cfg = *self.config();
        let (t, marks, cells) = self.snapshot_state();
        let mut w = FrameWriter::new(kind);

        let mut sec = Vec::with_capacity(48);
        sec.extend_from_slice(&cfg.window.to_le_bytes());
        sec.extend_from_slice(&cfg.t_cycle.to_le_bytes());
        sec.extend_from_slice(&(cfg.group_cells as u64).to_le_bytes());
        sec.extend_from_slice(&cfg.beta.to_le_bytes());
        sec.extend_from_slice(&(self.spec().num_cells() as u64).to_le_bytes());
        sec.extend_from_slice(&self.spec().cell_bits().to_le_bytes());
        sec.extend_from_slice(&(self.spec().k() as u32).to_le_bytes());
        w.section(frame::tag::CONFIG, &sec);

        w.section(frame::tag::CLOCK, &t.to_le_bytes());

        sec = Vec::with_capacity(8 + marks.len().div_ceil(8));
        pack_marks(&marks, &mut sec);
        w.section(frame::tag::MARKS, &sec);

        let words = cells.words();
        sec = Vec::with_capacity(8 + words.len() * 8);
        sec.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for &word in words {
            sec.extend_from_slice(&word.to_le_bytes());
        }
        w.section(frame::tag::CELLS, &sec);

        w.finish()
    }

    /// Parse an engine frame, validating kind, config and geometry
    /// against this engine. Returns `(t, stored marks, cell words)`.
    fn parse_engine_frame(
        &self,
        kind: u16,
        buf: &[u8],
    ) -> Result<(u64, Vec<bool>, Vec<u64>), SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != kind {
            return Err(SnapshotError::WrongKind { expected: kind, found: f.kind });
        }
        let section = |tag: u16| f.section(tag).ok_or(SnapshotError::MissingSection { tag });

        let mut r = Reader::new(section(frame::tag::CONFIG)?);
        let cfg = *self.config();
        if r.u64()? != cfg.window {
            return Err(SnapshotError::ConfigMismatch { field: "window" });
        }
        if r.u64()? != cfg.t_cycle {
            return Err(SnapshotError::ConfigMismatch { field: "t_cycle" });
        }
        if r.u64()? != cfg.group_cells as u64 {
            return Err(SnapshotError::ConfigMismatch { field: "group_cells" });
        }
        if r.f64()?.to_bits() != cfg.beta.to_bits() {
            return Err(SnapshotError::ConfigMismatch { field: "beta" });
        }
        if r.u64()? != self.spec().num_cells() as u64
            || r.u32()? != self.spec().cell_bits()
            || r.u32()? != self.spec().k() as u32
        {
            return Err(SnapshotError::GeometryMismatch);
        }
        r.finish()?;

        let mut r = Reader::new(section(frame::tag::CLOCK)?);
        let t = r.u64()?;
        r.finish()?;

        let mut r = Reader::new(section(frame::tag::MARKS)?);
        let n_marks = r.u64()? as usize;
        if n_marks != self.num_groups() {
            return Err(SnapshotError::GeometryMismatch);
        }
        let packed = r.take(n_marks.div_ceil(8))?;
        r.finish()?;
        let mut marks = Vec::with_capacity(n_marks);
        for &byte in packed {
            for bit in 0..8 {
                if marks.len() < n_marks {
                    marks.push(byte & (1 << bit) != 0);
                }
            }
        }

        let mut r = Reader::new(section(frame::tag::CELLS)?);
        let n_words = r.u64()? as usize;
        {
            let (_, _, cells) = self.snapshot_state();
            if n_words != cells.words().len() {
                return Err(SnapshotError::GeometryMismatch);
            }
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        r.finish()?;

        Ok((t, marks, words))
    }

    /// Replace this engine's state from a frame of the given kind.
    pub(crate) fn decode_frame(&mut self, kind: u16, buf: &[u8]) -> Result<(), SnapshotError> {
        let (t, marks, words) = self.parse_engine_frame(kind, buf)?;
        self.restore_state(t, &marks, &words);
        Ok(())
    }

    /// Merge a frame's state into this engine under `mode` (see
    /// `She::merge_state` for the time-mark reconciliation).
    pub(crate) fn merge_frame(
        &mut self,
        kind: u16,
        buf: &[u8],
        mode: MergeMode,
    ) -> Result<(), SnapshotError> {
        let (t, marks, words) = self.parse_engine_frame(kind, buf)?;
        self.merge_state(t, &marks, &words, mode);
        Ok(())
    }

    /// Serialize the engine state (not the hash spec) to a binary frame.
    pub fn save_state(&self) -> Vec<u8> {
        self.encode_frame(frame::kind::ENGINE)
    }

    /// Restore state saved by [`She::save_state`] into this engine.
    ///
    /// The engine must have been built with the same configuration and the
    /// same spec geometry (and, for meaningful answers, the same hash
    /// seeds).
    pub fn load_state(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
        self.decode_frame(frame::kind::ENGINE, buf)
    }
}

/// Implement [`SnapshotState`] for an adapter that wraps a `She<S>`
/// engine one-to-one (all five paper adapters plus SHE-CS).
macro_rules! impl_snapshot_for_adapter {
    ($ty:ty, $kind:expr, $merge:expr) => {
        impl SnapshotState for $ty {
            const KIND: u16 = $kind;
            const MERGE: Option<MergeMode> = $merge;

            fn save_snapshot(&self) -> Vec<u8> {
                self.engine().encode_frame(Self::KIND)
            }

            fn load_snapshot(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
                self.engine_mut().decode_frame(Self::KIND, buf)
            }

            fn merge_snapshot(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
                match Self::MERGE {
                    Some(mode) => self.engine_mut().merge_frame(Self::KIND, buf, mode),
                    None => Err(SnapshotError::NotMergeable),
                }
            }
        }
    };
}

impl_snapshot_for_adapter!(crate::SheBloomFilter, frame::kind::BF, Some(MergeMode::Or));
impl_snapshot_for_adapter!(crate::SheBitmap, frame::kind::BM, Some(MergeMode::Or));
impl_snapshot_for_adapter!(crate::SheCountMin, frame::kind::CM, Some(MergeMode::Max));
impl_snapshot_for_adapter!(crate::SheHyperLogLog, frame::kind::HLL, Some(MergeMode::Max));
impl_snapshot_for_adapter!(crate::SheMinHash, frame::kind::MH, Some(MergeMode::MinNonZero));
// Count-Sketch cells are signed sums; neither OR nor max is sound, and a
// cell-wise sum would break the zero-identity the time-mark
// reconciliation needs. Snapshot/restore only.
impl_snapshot_for_adapter!(crate::SheCountSketch, frame::kind::CS, None);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SheConfig;
    use she_sketch::BloomSpec;

    fn engine(seed: u32) -> She<BloomSpec> {
        let cfg = SheConfig::builder().window(1 << 10).alpha(1.0).group_cells(64).build();
        She::new(BloomSpec::new(1 << 13, 4, seed), cfg)
    }

    fn bf_contains(s: &mut She<BloomSpec>, key: u64) -> bool {
        let mut ups = Vec::new();
        s.updates_for(&key, &mut ups);
        for u in ups {
            let gid = s.group_of(u.index);
            if !s.check_mature(gid) {
                continue;
            }
            if s.peek_cell(u.index) == 0 {
                return false;
            }
        }
        true
    }

    #[test]
    fn roundtrip_preserves_every_answer() {
        let mut a = engine(7);
        for i in 0..5_000u64 {
            a.insert(&she_hash::mix64(i));
        }
        let snap = a.save_state();
        let mut b = engine(7);
        b.load_state(&snap).expect("load");
        assert_eq!(b.now(), a.now());
        for i in 0..6_000u64 {
            let k = she_hash::mix64(i);
            assert_eq!(bf_contains(&mut a, k), bf_contains(&mut b, k), "key {i}");
        }
    }

    #[test]
    fn snapshot_then_continue_streaming() {
        let mut a = engine(8);
        for i in 0..3_000u64 {
            a.insert(&i);
        }
        let snap = a.save_state();
        let mut b = engine(8);
        b.load_state(&snap).expect("load");
        // Both continue with the same suffix: answers stay identical.
        for i in 3_000..5_000u64 {
            a.insert(&i);
            b.insert(&i);
        }
        for i in 4_000..5_000u64 {
            assert_eq!(bf_contains(&mut a, i), bf_contains(&mut b, i));
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut b = engine(9);
        assert_eq!(b.load_state(b"nope").unwrap_err(), SnapshotError::Frame(FrameError::BadMagic));
        let mut a = engine(9);
        a.insert(&1u64);
        let snap = a.save_state();
        for cut in [0, 4, snap.len() / 2, snap.len() - 1] {
            assert!(
                matches!(b.load_state(&snap[..cut]).unwrap_err(), SnapshotError::Frame(_)),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn rejects_config_mismatch() {
        let a = engine(10);
        let snap = a.save_state();
        let cfg = SheConfig::builder().window(1 << 11).alpha(1.0).group_cells(64).build();
        let mut b = She::new(BloomSpec::new(1 << 13, 4, 10), cfg);
        assert!(matches!(
            b.load_state(&snap).unwrap_err(),
            SnapshotError::ConfigMismatch { field: "window" }
        ));
    }

    #[test]
    fn rejects_geometry_mismatch() {
        let a = engine(11);
        let snap = a.save_state();
        let cfg = *a.config();
        let mut b = She::new(BloomSpec::new(1 << 12, 4, 11), cfg); // half the bits
        assert_eq!(b.load_state(&snap).unwrap_err(), SnapshotError::GeometryMismatch);
    }

    #[test]
    fn rejects_wrong_kind() {
        use crate::{SheBitmap, SheBloomFilter};
        let bf = SheBloomFilter::builder().window(512).memory_bytes(1 << 10).seed(2).build();
        let snap = bf.save_snapshot();
        let mut bm = SheBitmap::builder().window(512).memory_bytes(1 << 10).seed(2).build();
        assert!(matches!(
            bm.load_snapshot(&snap).unwrap_err(),
            SnapshotError::WrongKind { expected: frame::kind::BM, found: frame::kind::BF }
        ));
    }

    #[test]
    fn snapshot_error_boxes_as_std_error() {
        // The server path mixes SnapshotError with io::Error behind one
        // Box<dyn Error>; keep the impl (and source chaining) alive.
        let err: Box<dyn std::error::Error> =
            Box::new(SnapshotError::Frame(FrameError::BadChecksum));
        assert!(err.source().is_some());
        let err: Box<dyn std::error::Error> = Box::new(SnapshotError::GeometryMismatch);
        assert!(err.source().is_none());
    }

    #[test]
    fn count_sketch_is_not_mergeable() {
        use crate::SheCountSketch;
        let cs = SheCountSketch::builder().window(512).memory_bytes(4 << 10).seed(3).build();
        let snap = cs.save_snapshot();
        let mut other = SheCountSketch::builder().window(512).memory_bytes(4 << 10).seed(3).build();
        assert_eq!(other.merge_snapshot(&snap).unwrap_err(), SnapshotError::NotMergeable);
    }
}
