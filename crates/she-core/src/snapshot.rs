//! Binary state snapshots for SHE structures.
//!
//! A `She<S>` is `(config, clock, marks, cells)`; the hash spec `S` is
//! *not* serialized (seeds are configuration, not state), so loading
//! requires an identically-configured engine — exactly like restoring a
//! sketch into a router after a control-plane restart. The format is a
//! plain little-endian framed buffer:
//!
//! ```text
//! magic "SHE1" | window u64 | t_cycle u64 | group_cells u64 | beta f64
//! | t u64 | n_marks u64 | marks (bit-packed u8s) | n_words u64 | words u64*
//! ```

use crate::She;
use she_sketch::CsmSpec;
use std::fmt;

const MAGIC: &[u8; 4] = b"SHE1";

/// Little-endian cursor over a byte slice (the workspace's dependency-free
/// stand-in for `bytes::Buf`).
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u64_le(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn get_f64_le(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64_le()?))
    }
}

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The buffer does not start with the `SHE1` magic.
    BadMagic,
    /// The buffer ended before the frame was complete.
    Truncated,
    /// The snapshot's configuration disagrees with the target engine's.
    ConfigMismatch {
        /// Field that disagreed.
        field: &'static str,
    },
    /// The snapshot's geometry (marks/words) disagrees with the engine's.
    GeometryMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a SHE snapshot (bad magic)"),
            Self::Truncated => write!(f, "snapshot truncated"),
            Self::ConfigMismatch { field } => write!(f, "snapshot config mismatch: {field}"),
            Self::GeometryMismatch => write!(f, "snapshot geometry mismatch"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl<S: CsmSpec> She<S> {
    /// Serialize the engine state (not the hash spec) to a binary buffer.
    pub fn save_state(&self) -> Vec<u8> {
        let cfg = *self.config();
        let (t, marks, cells) = self.snapshot_state();
        let mut buf = Vec::with_capacity(64 + marks.len() / 8 + cells.words().len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&cfg.window.to_le_bytes());
        buf.extend_from_slice(&cfg.t_cycle.to_le_bytes());
        buf.extend_from_slice(&(cfg.group_cells as u64).to_le_bytes());
        buf.extend_from_slice(&cfg.beta.to_le_bytes());
        buf.extend_from_slice(&t.to_le_bytes());
        buf.extend_from_slice(&(marks.len() as u64).to_le_bytes());
        for chunk in marks.chunks(8) {
            let mut byte = 0u8;
            for (i, &m) in chunk.iter().enumerate() {
                if m {
                    byte |= 1 << i;
                }
            }
            buf.push(byte);
        }
        let words = cells.words();
        buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for &w in words {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf
    }

    /// Restore state saved by [`She::save_state`] into this engine.
    ///
    /// The engine must have been built with the same configuration and the
    /// same spec geometry (and, for meaningful answers, the same hash
    /// seeds).
    pub fn load_state(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut buf = Reader::new(&buf[4..]);
        let window = buf.get_u64_le()?;
        let t_cycle = buf.get_u64_le()?;
        let group_cells = buf.get_u64_le()?;
        let beta = buf.get_f64_le()?;
        let cfg = *self.config();
        if window != cfg.window {
            return Err(SnapshotError::ConfigMismatch { field: "window" });
        }
        if t_cycle != cfg.t_cycle {
            return Err(SnapshotError::ConfigMismatch { field: "t_cycle" });
        }
        if group_cells != cfg.group_cells as u64 {
            return Err(SnapshotError::ConfigMismatch { field: "group_cells" });
        }
        if beta != cfg.beta {
            return Err(SnapshotError::ConfigMismatch { field: "beta" });
        }
        let t = buf.get_u64_le()?;
        let n_marks = buf.get_u64_le()? as usize;
        let mark_bytes = n_marks.div_ceil(8);
        let mark_slice = buf.take(mark_bytes)?;
        let mut marks = Vec::with_capacity(n_marks);
        for &byte in mark_slice {
            for bit in 0..8 {
                if marks.len() < n_marks {
                    marks.push(byte & (1 << bit) != 0);
                }
            }
        }
        let n_words = buf.get_u64_le()? as usize;
        if buf.remaining() < n_words.saturating_mul(8) {
            return Err(SnapshotError::Truncated);
        }
        {
            let (_, cur_marks, cur_cells) = self.snapshot_state();
            if cur_marks.len() != n_marks || cur_cells.words().len() != n_words {
                return Err(SnapshotError::GeometryMismatch);
            }
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(buf.get_u64_le()?);
        }
        self.restore_state(t, &marks, &words);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SheConfig;
    use she_sketch::BloomSpec;

    fn engine(seed: u32) -> She<BloomSpec> {
        let cfg = SheConfig::builder().window(1 << 10).alpha(1.0).group_cells(64).build();
        She::new(BloomSpec::new(1 << 13, 4, seed), cfg)
    }

    fn bf_contains(s: &mut She<BloomSpec>, key: u64) -> bool {
        let mut ups = Vec::new();
        s.updates_for(&key, &mut ups);
        for u in ups {
            let gid = s.group_of(u.index);
            if !s.check_mature(gid) {
                continue;
            }
            if s.peek_cell(u.index) == 0 {
                return false;
            }
        }
        true
    }

    #[test]
    fn roundtrip_preserves_every_answer() {
        let mut a = engine(7);
        for i in 0..5_000u64 {
            a.insert(&she_hash::mix64(i));
        }
        let snap = a.save_state();
        let mut b = engine(7);
        b.load_state(&snap).expect("load");
        assert_eq!(b.now(), a.now());
        for i in 0..6_000u64 {
            let k = she_hash::mix64(i);
            assert_eq!(bf_contains(&mut a, k), bf_contains(&mut b, k), "key {i}");
        }
    }

    #[test]
    fn snapshot_then_continue_streaming() {
        let mut a = engine(8);
        for i in 0..3_000u64 {
            a.insert(&i);
        }
        let snap = a.save_state();
        let mut b = engine(8);
        b.load_state(&snap).expect("load");
        // Both continue with the same suffix: answers stay identical.
        for i in 3_000..5_000u64 {
            a.insert(&i);
            b.insert(&i);
        }
        for i in 4_000..5_000u64 {
            assert_eq!(bf_contains(&mut a, i), bf_contains(&mut b, i));
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let mut b = engine(9);
        assert_eq!(b.load_state(b"nope").unwrap_err(), SnapshotError::BadMagic);
        let mut a = engine(9);
        a.insert(&1u64);
        let snap = a.save_state();
        let cut = &snap[..snap.len() / 2];
        assert_eq!(b.load_state(cut).unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn rejects_config_mismatch() {
        let a = engine(10);
        let snap = a.save_state();
        let cfg = SheConfig::builder().window(1 << 11).alpha(1.0).group_cells(64).build();
        let mut b = She::new(BloomSpec::new(1 << 13, 4, 10), cfg);
        assert!(matches!(
            b.load_state(&snap).unwrap_err(),
            SnapshotError::ConfigMismatch { field: "window" }
        ));
    }

    #[test]
    fn rejects_geometry_mismatch() {
        let a = engine(11);
        let snap = a.save_state();
        let cfg = *a.config();
        let mut b = She::new(BloomSpec::new(1 << 12, 4, 11), cfg); // half the bits
        assert_eq!(b.load_state(&snap).unwrap_err(), SnapshotError::GeometryMismatch);
    }
}
