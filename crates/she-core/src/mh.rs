//! SHE-MH: sliding-window similarity via MinHash (Section 4.5).
//!
//! Two streams are summarized by two [`SheMinHash`] signatures built with
//! the *same seed* (so hash function `i` agrees across the pair). Each
//! signature cell is its own group (`w = 1`); an insertion updates every
//! cell with `F(x, y) = min(h_i(x), y)` after `CheckGroup`. The similarity
//! query keeps index positions legal (`age ≥ βN`) on *both* sides and
//! reports the fraction of those positions whose minima agree (`u / k`).

use crate::{She, SheConfig};
use she_hash::HashKey;
use she_sketch::{CsmSpec, MinHashSpec};

/// Sliding-window MinHash signature (hardware version of SHE).
///
/// ```
/// use she_core::SheMinHash;
///
/// let builder = SheMinHash::builder().window(4_096).num_hashes(256).seed(7);
/// let (mut a, mut b) = (builder.clone().build(), builder.build());
/// for i in 0..16_384u64 {
///     a.insert(&i);
///     b.insert(&i); // identical streams
/// }
/// assert!(a.similarity(&mut b) > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct SheMinHash {
    engine: She<MinHashSpec>,
}

/// Builder for [`SheMinHash`] with the paper's defaults (`w = 1`, `α = 0.2`,
/// 24-bit hash outputs).
#[derive(Debug, Clone)]
pub struct SheMinHashBuilder {
    window: u64,
    num_hashes: usize,
    alpha: f64,
    beta: f64,
    seed: u32,
}

impl Default for SheMinHashBuilder {
    fn default() -> Self {
        // β = 0.5: MinHash has two-sided error, so §3.2's remark applies —
        // young cells with substantial age are nearly unbiased for
        // stationary streams, and including them more than doubles the
        // usable sample (legal fraction 1 − β/(1+α)).
        Self { window: 1 << 16, num_hashes: 256, alpha: 0.2, beta: 0.5, seed: 1 }
    }
}

impl SheMinHashBuilder {
    /// Sliding-window size `N` in items.
    pub fn window(mut self, n: u64) -> Self {
        self.window = n;
        self
    }

    /// Number of hash functions / signature cells.
    pub fn num_hashes(mut self, m: usize) -> Self {
        self.num_hashes = m;
        self
    }

    /// Memory budget in bytes (25-bit cells as in `she_sketch::MinHash`).
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.num_hashes = ((bytes * 8) / she_sketch::MINHASH_CELL_BITS as usize).max(1);
        self
    }

    /// `α = (Tcycle − N)/N`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Legal-age fraction `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Hash seed — must match between the two signatures being compared.
    pub fn seed(mut self, seed: u32) -> Self {
        self.seed = seed;
        self
    }

    /// Build the signature.
    pub fn build(self) -> SheMinHash {
        let cfg = SheConfig::builder()
            .window(self.window)
            .alpha(self.alpha)
            .group_cells(1) // w = 1 per §4.5
            .beta(self.beta)
            .build();
        SheMinHash { engine: She::new(MinHashSpec::new(self.num_hashes, self.seed), cfg) }
    }
}

impl SheMinHash {
    /// Start building with the paper defaults.
    pub fn builder() -> SheMinHashBuilder {
        SheMinHashBuilder::default()
    }

    /// Insert an item at the next time step.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.engine.insert(key);
    }

    /// Estimated Jaccard similarity between this signature's window and
    /// `other`'s window.
    ///
    /// Positions are compared only when legal on both sides; positions empty
    /// on both sides are skipped (as in the fixed-window estimator).
    pub fn similarity(&mut self, other: &mut SheMinHash) -> f64 {
        let m = self.engine.spec().num_cells();
        assert_eq!(m, other.engine.spec().num_cells(), "signature sizes differ");
        let beta_n_a = self.engine.config().beta * self.engine.config().window as f64;
        let beta_n_b = other.engine.config().beta * other.engine.config().window as f64;
        let mut used = 0usize;
        let mut matches = 0usize;
        for i in 0..m {
            // w = 1: cell i is group i on both sides.
            self.engine.check_group(i);
            other.engine.check_group(i);
            let legal_a = self.engine.group_age(i) as f64 >= beta_n_a;
            let legal_b = other.engine.group_age(i) as f64 >= beta_n_b;
            if !legal_a || !legal_b {
                continue;
            }
            let a = self.engine.peek_cell(i);
            let b = other.engine.peek_cell(i);
            if a == 0 && b == 0 {
                continue;
            }
            used += 1;
            if a == b {
                matches += 1;
            }
        }
        if used == 0 {
            0.0
        } else {
            matches as f64 / used as f64
        }
    }

    /// Advance logical time without inserting.
    #[inline]
    pub fn advance_time(&mut self, dt: u64) {
        self.engine.advance_time(dt);
    }

    /// The underlying generic engine.
    #[inline]
    pub fn engine(&self) -> &She<MinHashSpec> {
        &self.engine
    }

    /// Mutable engine access for the snapshot layer.
    pub(crate) fn engine_mut(&mut self) -> &mut She<MinHashSpec> {
        &mut self.engine
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.engine.now()
    }

    /// Number of hash functions / cells.
    #[inline]
    pub fn num_hashes(&self) -> usize {
        self.engine.spec().num_cells()
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.engine.memory_bits()
    }

    /// Reset to empty at time zero.
    pub fn clear(&mut self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(window: u64, m: usize) -> (SheMinHash, SheMinHash) {
        let b = SheMinHash::builder().window(window).num_hashes(m).seed(11);
        (b.clone().build(), b.build())
    }

    #[test]
    fn identical_windows_score_high() {
        let window = 1u64 << 12;
        let (mut a, mut b) = pair(window, 256);
        for i in 0..3 * window {
            a.insert(&i);
            b.insert(&i);
        }
        let s = a.similarity(&mut b);
        assert!(s > 0.95, "similarity {s} for identical streams");
    }

    #[test]
    fn disjoint_windows_score_low() {
        let window = 1u64 << 12;
        let (mut a, mut b) = pair(window, 256);
        for i in 0..3 * window {
            a.insert(&i);
            b.insert(&(i + 1_000_000_000));
        }
        let s = a.similarity(&mut b);
        assert!(s < 0.1, "similarity {s} for disjoint streams");
    }

    #[test]
    fn partial_overlap_tracks_truth() {
        let window = 1u64 << 13;
        let (mut a, mut b) = pair(window, 512);
        // Per step, both streams see key i with probability 1/2 (shared
        // space), else disjoint keys: Jaccard ≈ 1/3.
        for i in 0..3 * window {
            if i % 2 == 0 {
                a.insert(&i);
                b.insert(&i);
            } else {
                a.insert(&(i + 1_000_000_000));
                b.insert(&(i + 2_000_000_000));
            }
        }
        let truth = 1.0 / 3.0;
        let s = a.similarity(&mut b);
        assert!((s - truth).abs() < 0.12, "similarity {s} truth {truth}");
    }

    #[test]
    fn empty_pair_scores_zero() {
        let (mut a, mut b) = pair(1 << 10, 64);
        assert_eq!(a.similarity(&mut b), 0.0);
    }

    #[test]
    fn similarity_reacts_to_stream_drift() {
        // The sliding-window property: after one stream changes its key
        // space, similarity decays once the old window slides out.
        let window = 1u64 << 12;
        let (mut a, mut b) = pair(window, 256);
        for i in 0..2 * window {
            a.insert(&i);
            b.insert(&i);
        }
        let before = a.similarity(&mut b);
        for i in 0..3 * window {
            a.insert(&i);
            b.insert(&(i + 1_000_000_000));
        }
        let after = a.similarity(&mut b);
        assert!(before > 0.9, "before {before}");
        assert!(after < before - 0.5, "after {after} did not decay from {before}");
    }
}
