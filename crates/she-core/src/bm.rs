//! SHE-BM: sliding-window cardinality via linear counting (Section 4.1).
//!
//! Insertion sets one hashed bit. The query sweeps all groups, keeps those
//! whose age lies in the legal range `[βN, Tcycle)` (β slightly below 1 —
//! the bitmap estimator has two-sided error, so nearly-perfect young groups
//! reduce bias, per §3.2), counts the zero bits `u` among the `ℓ·w` legal
//! bits, and scales the MLE to the full array: `Ĉ = −M · ln(u / (w·ℓ))`.

use crate::{She, SheConfig};
use she_hash::HashKey;
use she_sketch::{BitmapSpec, CsmSpec};

/// Sliding-window linear-counting bitmap (hardware version of SHE).
///
/// ```
/// use she_core::SheBitmap;
///
/// let mut bm = SheBitmap::builder()
///     .window(10_000)          // count distinct keys over the last 10k items
///     .memory_bytes(4 << 10)   // 4 KB of bits
///     .build();
/// for i in 0..40_000u64 {
///     bm.insert(&i);           // all-distinct stream
/// }
/// let est = bm.estimate();
/// assert!((est - 10_000.0).abs() / 10_000.0 < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct SheBitmap {
    engine: She<BitmapSpec>,
}

/// Builder for [`SheBitmap`] with the paper's defaults (`w = 64`, `α = 0.2`,
/// `β = 0.9`).
#[derive(Debug, Clone)]
pub struct SheBitmapBuilder {
    window: u64,
    memory_bits: usize,
    alpha: f64,
    beta: f64,
    group_cells: usize,
    seed: u32,
}

impl Default for SheBitmapBuilder {
    fn default() -> Self {
        Self {
            window: 1 << 16,
            memory_bits: 8 << 13, // 8 KB
            alpha: 0.2,
            beta: 0.9,
            group_cells: 64,
            seed: 1,
        }
    }
}

impl SheBitmapBuilder {
    /// Sliding-window size `N` in items.
    pub fn window(mut self, n: u64) -> Self {
        self.window = n;
        self
    }

    /// Memory budget in bytes.
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.memory_bits = bytes * 8;
        self
    }

    /// `α = (Tcycle − N)/N` (paper default 0.2 for SHE-BM).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Legal-age fraction `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Cells per group `w`.
    pub fn group_cells(mut self, w: usize) -> Self {
        self.group_cells = w;
        self
    }

    /// Hash seed.
    pub fn seed(mut self, seed: u32) -> Self {
        self.seed = seed;
        self
    }

    /// Build the sketch.
    pub fn build(self) -> SheBitmap {
        let m = self.memory_bits.max(self.group_cells);
        let cfg = SheConfig::builder()
            .window(self.window)
            .alpha(self.alpha)
            .group_cells(self.group_cells.min(m))
            .beta(self.beta)
            .build();
        SheBitmap { engine: She::new(BitmapSpec::new(m, self.seed), cfg) }
    }
}

impl SheBitmap {
    /// Start building with the paper defaults.
    pub fn builder() -> SheBitmapBuilder {
        SheBitmapBuilder::default()
    }

    /// Insert an item at the next time step.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.engine.insert(key);
    }

    /// Estimated cardinality of the sliding window.
    ///
    /// Takes `&mut self` because the sweep runs `CheckGroup` on every group.
    pub fn estimate(&mut self) -> f64 {
        let beta_n = self.engine.config().beta * self.engine.config().window as f64;
        let m = self.engine.spec().num_cells();
        let mut legal_bits = 0usize;
        let mut zeros = 0usize;
        self.engine.for_each_group(|_, age, cells| {
            if (age as f64) < beta_n {
                return; // young group: outside the legal range
            }
            for v in cells {
                legal_bits += 1;
                if v == 0 {
                    zeros += 1;
                }
            }
        });
        if legal_bits == 0 {
            return 0.0;
        }
        if zeros == legal_bits {
            return 0.0;
        }
        // Ĉ = -M ln(u / (w·ℓ)), clamping a saturated sample to its last
        // resolvable point like the fixed-window estimator.
        let u = zeros.max(1) as f64;
        -(m as f64) * (u / legal_bits as f64).ln()
    }

    /// Multi-window query: estimate the cardinality of the last `n` items
    /// for **any** `n < Tcycle`, not just the configured window.
    ///
    /// Because group ages are spread uniformly over `[0, Tcycle)`, groups
    /// whose age is close to `n` record (almost exactly) the last `n`
    /// items; the linear-counting MLE over those groups, scaled to the
    /// full array, estimates `F(n)`. `tolerance` is the accepted relative
    /// age deviation (0.25 works well); fewer matching groups mean a
    /// noisier estimate — the estimator falls back to the single
    /// nearest-age group when the band is empty.
    ///
    /// Accuracy guidance: on-demand cleaning refreshes a group only when
    /// an insertion touches it (≈ every `G` items for a single-hash
    /// sketch), so sub-windows shorter than the group count `G` read
    /// groups whose actual cleaning lagged their schedule. Keep
    /// `n ≳ G` (i.e. pick `group_cells ≥ M/n`) for small-window queries.
    pub fn estimate_at(&mut self, n: u64, tolerance: f64) -> f64 {
        assert!(n > 0 && tolerance >= 0.0);
        assert!(
            n < self.engine.config().t_cycle,
            "query window {n} must be below Tcycle {}",
            self.engine.config().t_cycle
        );
        let m = self.engine.spec().num_cells();
        let lo = (n as f64 * (1.0 - tolerance)).floor();
        let hi = (n as f64 * (1.0 + tolerance)).ceil();
        let mut legal_bits = 0usize;
        let mut zeros = 0usize;
        let mut nearest: Option<(u64, usize, usize)> = None; // (dist, bits, zeros)
        self.engine.for_each_group(|_, age, cells| {
            let mut bits = 0usize;
            let mut zs = 0usize;
            for v in cells {
                bits += 1;
                if v == 0 {
                    zs += 1;
                }
            }
            let dist = age.abs_diff(n);
            if nearest.is_none_or(|(d, _, _)| dist < d) {
                nearest = Some((dist, bits, zs));
            }
            if (age as f64) >= lo && (age as f64) <= hi {
                legal_bits += bits;
                zeros += zs;
            }
        });
        if legal_bits == 0 {
            // `nearest` is Some whenever the structure has >= 1 group;
            // an impossible empty layout degrades to "no bits set".
            let Some((_, bits, zs)) = nearest else { return 0.0 };
            legal_bits = bits;
            zeros = zs;
        }
        if zeros == legal_bits {
            return 0.0;
        }
        let u = zeros.max(1) as f64;
        -(m as f64) * (u / legal_bits as f64).ln()
    }

    /// The full cardinality-vs-age curve: one `(age, estimate)` point per
    /// group, sorted by age. Useful for plotting `F(x)` — the cardinality
    /// of the last `x` items — from a single structure.
    pub fn cardinality_curve(&mut self) -> Vec<(u64, f64)> {
        let m = self.engine.spec().num_cells();
        let mut pts = Vec::with_capacity(self.engine.num_groups());
        self.engine.for_each_group(|_, age, cells| {
            let mut bits = 0usize;
            let mut zs = 0usize;
            for v in cells {
                bits += 1;
                if v == 0 {
                    zs += 1;
                }
            }
            if bits > 0 && zs > 0 {
                pts.push((age, -(m as f64) * (zs as f64 / bits as f64).ln()));
            } else if bits > 0 {
                pts.push((age, m as f64 * (bits as f64).ln()));
            }
        });
        pts.sort_unstable_by_key(|&(age, _)| age);
        pts
    }

    /// Advance logical time without inserting.
    #[inline]
    pub fn advance_time(&mut self, dt: u64) {
        self.engine.advance_time(dt);
    }

    /// The underlying generic engine.
    #[inline]
    pub fn engine(&self) -> &She<BitmapSpec> {
        &self.engine
    }

    /// Mutable engine access for the snapshot layer.
    pub(crate) fn engine_mut(&mut self) -> &mut She<BitmapSpec> {
        &mut self.engine
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.engine.now()
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.engine.memory_bits()
    }

    /// Reset to empty at time zero.
    pub fn clear(&mut self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_window_cardinality() {
        let window = 1u64 << 14;
        let mut bm = SheBitmap::builder().window(window).memory_bytes(16 << 10).seed(5).build();
        // Stream of distinct items: window cardinality = window size.
        for i in 0..6 * window {
            bm.insert(&i);
        }
        let est = bm.estimate();
        let re = (est - window as f64).abs() / window as f64;
        assert!(re < 0.15, "estimate {est}, relative error {re}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let window = 1u64 << 14;
        let mut bm = SheBitmap::builder().window(window).memory_bytes(16 << 10).build();
        // Each distinct key repeated 4 times: window cardinality = window/4.
        for i in 0..6 * window {
            bm.insert(&(i / 4));
        }
        let truth = window as f64 / 4.0;
        let est = bm.estimate();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.2, "estimate {est} truth {truth} re {re}");
    }

    #[test]
    fn empty_estimates_zero() {
        let mut bm = SheBitmap::builder().build();
        assert_eq!(bm.estimate(), 0.0);
    }

    #[test]
    fn estimate_at_tracks_sub_windows() {
        // Distinct stream: F(n) = n exactly, for every n. One structure
        // answers all of them.
        let window = 1u64 << 14;
        let mut bm = SheBitmap::builder()
            .window(window)
            .memory_bytes(32 << 10)
            .alpha(0.5)
            .group_cells(64)
            .seed(9)
            .build();
        for i in 0..6 * window {
            bm.insert(&i);
        }
        for frac in [0.25f64, 0.5, 1.0, 1.3] {
            let n = (window as f64 * frac) as u64;
            let est = bm.estimate_at(n, 0.25);
            let re = (est - n as f64).abs() / n as f64;
            assert!(re < 0.35, "n={n}: estimate {est}, re {re}");
        }
    }

    #[test]
    fn cardinality_curve_is_roughly_linear_for_distinct_stream() {
        let window = 1u64 << 13;
        let mut bm =
            SheBitmap::builder().window(window).memory_bytes(32 << 10).alpha(0.5).seed(10).build();
        for i in 0..6 * window {
            bm.insert(&i);
        }
        let curve = bm.cardinality_curve();
        assert!(curve.len() > 10);
        // Spearman-ish check: estimates grow with age.
        let (first_age, first_est) = curve[2];
        let (last_age, last_est) = curve[curve.len() - 3];
        assert!(last_age > first_age);
        assert!(last_est > first_est, "curve not increasing: {first_est} -> {last_est}");
    }

    #[test]
    fn stale_far_past_items_fade() {
        let window = 1u64 << 12;
        let mut bm = SheBitmap::builder().window(window).memory_bytes(8 << 10).build();
        for i in 0..2 * window {
            bm.insert(&i);
        }
        // Idle for one full cycle: every group's mark flips, so the query
        // sweep cleans all of them. (An *even* number of idle cycles would
        // leave the parity unchanged and preserve stale data — that is the
        // §5.1 on-demand-cleaning error, tested in engine.rs.)
        bm.advance_time(bm.engine().config().t_cycle);
        let est = bm.estimate();
        assert!(est < window as f64 * 0.05, "stale estimate {est}");
    }
}
