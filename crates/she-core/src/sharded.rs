//! Multi-core ingestion: key-sharded SHE structures.
//!
//! A single SHE structure is inherently sequential (its logical clock is
//! the item counter). For CPU deployments that need more than one core —
//! the software analogue of the paper's parallel FPGA lanes — the standard
//! sketching recipe applies: partition the key space into `S` shards by
//! hash, give each shard its own SHE structure over a window of `N/S`
//! items, and route each arrival to its shard. Because the router hash is
//! uniform, each shard sees an unbiased 1/S sample of the stream and its
//! `N/S`-item window covers the same time span as the global `N`-item
//! window (the approximation error is the usual multinomial fluctuation of
//! per-shard arrival counts).
//!
//! Queries compose per task:
//! * membership / frequency — route to the key's shard;
//! * cardinality — *sum* the shard estimates (shards partition the key
//!   space, so distinct counts add exactly).
//!
//! [`ShardedShe::ingest_parallel`] drives the shards from `std::thread`
//! scoped workers, each draining its own shard-local batch so a shard's
//! lock is only ever contended momentarily.

use crate::ordered::{OrderedGuard, OrderedMutex};
use crate::{SheBitmap, SheBloomFilter, SheCountMin, SheHyperLogLog};
use she_hash::mix64;
use std::fmt;

/// Lock a shard. `OrderedMutex` recovers the guard even if a previous
/// holder panicked (sketch state is a plain array; there is no invariant
/// a panic can half-apply that these sketches cannot tolerate), and in
/// debug builds enforces that shard locks are never nested — every path
/// here takes exactly one shard at a time.
fn lock_shard<T>(m: &OrderedMutex<T>) -> OrderedGuard<'_, T> {
    m.lock()
}

/// A sketch that can live inside a shard.
pub trait ShardSketch: Send {
    /// Insert a `u64` key.
    fn insert_key(&mut self, key: u64);
    /// Memory footprint in bits.
    fn memory_bits(&self) -> usize;
}

impl ShardSketch for SheBloomFilter {
    fn insert_key(&mut self, key: u64) {
        self.insert(&key);
    }
    fn memory_bits(&self) -> usize {
        SheBloomFilter::memory_bits(self)
    }
}

impl ShardSketch for SheCountMin {
    fn insert_key(&mut self, key: u64) {
        self.insert(&key);
    }
    fn memory_bits(&self) -> usize {
        SheCountMin::memory_bits(self)
    }
}

impl ShardSketch for SheBitmap {
    fn insert_key(&mut self, key: u64) {
        self.insert(&key);
    }
    fn memory_bits(&self) -> usize {
        SheBitmap::memory_bits(self)
    }
}

impl ShardSketch for SheHyperLogLog {
    fn insert_key(&mut self, key: u64) {
        self.insert(&key);
    }
    fn memory_bits(&self) -> usize {
        SheHyperLogLog::memory_bits(self)
    }
}

/// `S` independent SHE structures routed by key hash.
pub struct ShardedShe<S: ShardSketch> {
    shards: Vec<OrderedMutex<S>>,
    router_seed: u64,
}

impl<S: ShardSketch> fmt::Debug for ShardedShe<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedShe")
            .field("shards", &self.shards.len())
            .field("router_seed", &self.router_seed)
            .finish()
    }
}

impl<S: ShardSketch> ShardedShe<S> {
    /// Build `shards` shards; `make(i)` constructs shard `i` (give each
    /// shard a window of `global_window / shards` and a distinct seed).
    pub fn new(shards: usize, make: impl FnMut(usize) -> S) -> Self {
        assert!(shards >= 1);
        let mut make = make;
        Self {
            shards: (0..shards).map(|i| OrderedMutex::new("sharded-shard", make(i))).collect(),
            router_seed: 0x5EED_0000_0000_0001,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard index a key routes to.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        she_hash::reduce_range(mix64(key ^ self.router_seed), self.shards.len())
    }

    /// Insert one key (thread-safe; locks only the key's shard).
    pub fn insert(&self, key: u64) {
        lock_shard(&self.shards[self.shard_of(key)]).insert_key(key);
    }

    /// Run `f` against the key's shard.
    pub fn with_shard<R>(&self, key: u64, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut lock_shard(&self.shards[self.shard_of(key)]))
    }

    /// Map every shard and fold the results.
    pub fn map_reduce<R>(
        &self,
        mut map: impl FnMut(&mut S) -> R,
        init: R,
        mut fold: impl FnMut(R, R) -> R,
    ) -> R {
        let mut acc = init;
        for shard in &self.shards {
            let r = map(&mut lock_shard(shard));
            acc = fold(acc, r);
        }
        acc
    }

    /// Total memory footprint in bits across shards.
    pub fn memory_bits(&self) -> usize {
        self.map_reduce(|s| s.memory_bits(), 0, |a, b| a + b)
    }

    /// Ingest a key slice with `threads` scoped worker threads.
    ///
    /// Keys are pre-partitioned by shard so each worker owns a disjoint
    /// set of shards and never blocks on another worker's lock. Per-shard
    /// arrival *order* is preserved (sliding windows are order-sensitive);
    /// cross-shard interleaving differs from the serial order only by the
    /// bounded per-shard skew inherent to sharding.
    pub fn ingest_parallel(&self, keys: &[u64], threads: usize) {
        let threads = threads.max(1).min(self.shards.len());
        // Partition keys by owning shard, preserving order within a shard.
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for &k in keys {
            per_shard[self.shard_of(k)].push(k);
        }
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let per_shard = &per_shard;
                let shards = &self.shards;
                scope.spawn(move || {
                    // Worker w owns shards w, w+threads, w+2·threads, ...
                    let mut shard_idx = worker;
                    while shard_idx < shards.len() {
                        let mut guard = lock_shard(&shards[shard_idx]);
                        for &k in &per_shard[shard_idx] {
                            guard.insert_key(k);
                        }
                        drop(guard);
                        shard_idx += threads;
                    }
                });
            }
        });
    }
}

/// Sharded sliding-window Bloom filter (membership routes to one shard).
#[derive(Debug)]
pub struct ShardedBloomFilter(pub ShardedShe<SheBloomFilter>);

impl ShardedBloomFilter {
    /// `shards` shards covering a *global* window of `window` items with a
    /// *total* memory budget of `bytes`.
    pub fn new(shards: usize, window: u64, bytes: usize, seed: u32) -> Self {
        let per_window = (window / shards as u64).max(1);
        let per_bytes = (bytes / shards).max(64);
        Self(ShardedShe::new(shards, |i| {
            SheBloomFilter::builder()
                .window(per_window)
                .memory_bytes(per_bytes)
                .seed(seed.wrapping_add(i as u32))
                .build()
        }))
    }

    /// Insert a key.
    pub fn insert(&self, key: u64) {
        self.0.insert(key);
    }

    /// Sliding-window membership.
    pub fn contains(&self, key: u64) -> bool {
        self.0.with_shard(key, |s| s.contains(&key))
    }
}

/// Sharded sliding-window Count-Min (frequency routes to one shard).
#[derive(Debug)]
pub struct ShardedCountMin(pub ShardedShe<SheCountMin>);

impl ShardedCountMin {
    /// `shards` shards covering a global window of `window` items with a
    /// total budget of `bytes`.
    pub fn new(shards: usize, window: u64, bytes: usize, seed: u32) -> Self {
        let per_window = (window / shards as u64).max(1);
        let per_bytes = (bytes / shards).max(1024);
        Self(ShardedShe::new(shards, |i| {
            SheCountMin::builder()
                .window(per_window)
                .memory_bytes(per_bytes)
                .seed(seed.wrapping_add(i as u32))
                .build()
        }))
    }

    /// Insert a key.
    pub fn insert(&self, key: u64) {
        self.0.insert(key);
    }

    /// Sliding-window frequency estimate.
    pub fn query(&self, key: u64) -> u64 {
        self.0.with_shard(key, |s| s.query(&key))
    }
}

/// Sharded sliding-window cardinality over bitmaps (estimates add across
/// shards because the shards partition the key space).
#[derive(Debug)]
pub struct ShardedBitmap(pub ShardedShe<SheBitmap>);

impl ShardedBitmap {
    /// `shards` shards covering a global window of `window` items with a
    /// total budget of `bytes`.
    pub fn new(shards: usize, window: u64, bytes: usize, seed: u32) -> Self {
        let per_window = (window / shards as u64).max(1);
        let per_bytes = (bytes / shards).max(16);
        Self(ShardedShe::new(shards, |i| {
            SheBitmap::builder()
                .window(per_window)
                .memory_bytes(per_bytes)
                .seed(seed.wrapping_add(i as u32))
                .build()
        }))
    }

    /// Insert a key.
    pub fn insert(&self, key: u64) {
        self.0.insert(key);
    }

    /// Global window cardinality: the sum of the shard estimates.
    pub fn estimate(&self) -> f64 {
        self.0.map_reduce(|s| s.estimate(), 0.0, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_deterministic_and_balanced() {
        let sh = ShardedBloomFilter::new(8, 1 << 12, 64 << 10, 1);
        let mut counts = [0usize; 8];
        for k in 0..80_000u64 {
            let a = sh.0.shard_of(k);
            assert_eq!(a, sh.0.shard_of(k));
            counts[a] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "imbalanced shard: {c}");
        }
    }

    #[test]
    fn sharded_bf_no_false_negatives_in_window() {
        let window = 1u64 << 12;
        let sh = ShardedBloomFilter::new(4, window, 64 << 10, 2);
        let keys: Vec<u64> = (0..3 * window).map(she_hash::mix64).collect();
        for &k in &keys {
            sh.insert(k);
        }
        // The global last-half-window is safely inside every shard window.
        let recent = &keys[keys.len() - (window / 2) as usize..];
        for &k in recent {
            assert!(sh.contains(k), "false negative on {k:#x}");
        }
    }

    #[test]
    fn sharded_cardinality_sums_shards() {
        let window = 1u64 << 14;
        let sh = ShardedBitmap::new(8, window, 32 << 10, 3);
        for k in 0..4 * window {
            sh.insert(she_hash::mix64(k));
        }
        let est = sh.estimate();
        let re = (est - window as f64).abs() / window as f64;
        assert!(re < 0.2, "estimate {est}, re {re}");
    }

    #[test]
    fn parallel_ingest_matches_serial() {
        let window = 1u64 << 12;
        let keys: Vec<u64> = (0..4 * window).map(she_hash::mix64).collect();

        let serial = ShardedCountMin::new(4, window, 1 << 20, 4);
        for &k in &keys {
            serial.insert(k);
        }
        let parallel = ShardedCountMin::new(4, window, 1 << 20, 4);
        parallel.0.ingest_parallel(&keys, 4);

        // Shard-order-preserving ingestion makes the two runs identical.
        for &k in keys.iter().rev().take(2_000) {
            assert_eq!(serial.query(k), parallel.query(k), "key {k:#x}");
        }
    }

    #[test]
    fn ingest_parallel_handles_more_threads_than_shards() {
        let sh = ShardedBitmap::new(2, 1 << 10, 4 << 10, 5);
        let keys: Vec<u64> = (0..10_000).map(she_hash::mix64).collect();
        sh.0.ingest_parallel(&keys, 16);
        assert!(sh.estimate() > 0.0);
    }

    #[test]
    fn memory_is_summed_across_shards() {
        let sh = ShardedBloomFilter::new(4, 1 << 12, 64 << 10, 6);
        let total = sh.0.memory_bits();
        assert!(total >= 4 * (16 << 13), "total {total}");
    }
}
