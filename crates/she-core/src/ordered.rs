//! Rank-checked mutexes: deadlocks become deterministic panics.
//!
//! Every lock in the serving crates is an [`OrderedMutex`] constructed
//! with a name whose rank lives in the committed `audit-locks.toml`
//! manifest at the workspace root (embedded here at compile time). In
//! debug and test builds each thread tracks the ranks it holds; locking
//! a mutex whose rank is not **strictly greater** than everything
//! already held panics immediately with both lock names — so any
//! acquisition order that *could* deadlock under the wrong interleaving
//! fails every time, on the first run, in a single thread. Release
//! builds compile the checks out entirely: an `OrderedMutex` is then a
//! plain `Mutex` plus one `&'static str`.
//!
//! Poisoning is deliberately ignored (`into_inner` on a poisoned lock):
//! the serving path treats a panicking worker as a shard loss, not a
//! reason to wedge every other thread that shares the lock.
//!
//! The static half of the contract — every name in the manifest, no raw
//! `Mutex::new` in policed crates, no duplicate ranks — is enforced by
//! `she audit`'s lock-order rule.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

#[cfg(debug_assertions)]
mod ranks {
    use std::collections::HashMap;
    use std::sync::OnceLock;

    const MANIFEST: &str =
        include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../audit-locks.toml"));

    /// Parse the `[locks]` table: `name = rank` lines, `#` comments.
    /// Invalid manifest lines panic at first use — the manifest is a
    /// committed file, and `she audit` parses it strictly too.
    fn table() -> &'static HashMap<&'static str, u16> {
        static TABLE: OnceLock<HashMap<&'static str, u16>> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut map = HashMap::new();
            let mut in_locks = false;
            for raw in MANIFEST.lines() {
                let line = raw.split('#').next().unwrap_or("").trim();
                if line.is_empty() {
                    continue;
                }
                if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                    in_locks = section.trim() == "locks";
                    continue;
                }
                if !in_locks {
                    continue;
                }
                if let Some((name, rank)) = line.split_once('=') {
                    if let Ok(rank) = rank.trim().parse::<u16>() {
                        map.insert(name.trim(), rank);
                    }
                }
            }
            map
        })
    }

    pub(super) fn rank_of(name: &'static str) -> u16 {
        match table().get(name) {
            Some(&rank) => rank,
            // audit:allow(panic): debug-only; an unregistered lock name is a build bug the first test run must surface
            None => panic!("OrderedMutex name {name:?} has no rank in audit-locks.toml"),
        }
    }

    thread_local! {
        /// Stack of (rank, name) this thread currently holds, in
        /// acquisition order (strictly increasing by construction).
        pub(super) static HELD: std::cell::RefCell<Vec<(u16, &'static str)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    pub(super) fn push(rank: u16, name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                if rank <= top_rank {
                    // audit:allow(panic): debug-only; this panic IS the feature — a lock-order inversion must abort the test deterministically
                    panic!(
                        "lock-order violation: acquiring {name:?} (rank {rank}) while holding {top_name:?} (rank {top_rank}); ranks must strictly increase — see audit-locks.toml"
                    );
                }
            }
            held.push((rank, name));
        });
    }

    pub(super) fn pop(rank: u16) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(at) = held.iter().rposition(|&(r, _)| r == rank) {
                held.remove(at);
            }
        });
    }
}

/// A named, rank-checked [`Mutex`]. See the module docs.
#[derive(Debug, Default)]
pub struct OrderedMutex<T> {
    name: &'static str,
    inner: Mutex<T>, // audit:allow(lock): this is the OrderedMutex wrapper itself
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` in a mutex named `name`. The name must have a rank
    /// in `audit-locks.toml` (checked on first lock in debug builds,
    /// and statically by `she audit`).
    pub fn new(name: &'static str, value: T) -> Self {
        OrderedMutex { name, inner: Mutex::new(value) } // audit:allow(lock): wrapper internals
    }

    /// The manifest name this mutex was constructed with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire the lock, recovering from poisoning. Panics in debug and
    /// test builds if this thread already holds a lock of equal or
    /// higher rank.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        let rank = {
            let rank = ranks::rank_of(self.name);
            ranks::push(rank, self.name);
            rank
        };
        let guard = self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        OrderedGuard {
            guard: Some(guard),
            #[cfg(debug_assertions)]
            rank,
        }
    }
}

/// RAII guard returned by [`OrderedMutex::lock`]; releases the rank slot
/// when dropped.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    /// `Some` until the guard is consumed by [`OrderedGuard::wait_timeout`]
    /// (which re-wraps) or dropped.
    guard: Option<MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    rank: u16,
}

impl<'a, T> OrderedGuard<'a, T> {
    /// Block on `cvar` with a timeout, releasing and re-acquiring the
    /// underlying mutex exactly like [`Condvar::wait_timeout`]. Returns
    /// the re-acquired guard and whether the wait timed out. The rank
    /// stays on this thread's held-stack across the wait: the thread is
    /// blocked, so it cannot acquire anything else meanwhile, and on
    /// wake it holds the same lock again.
    pub fn wait_timeout(mut self, cvar: &Condvar, dur: Duration) -> (Self, bool) {
        let guard = self.guard.take().unwrap_or_else(
            // audit:allow(panic): guard is Some for every reachable caller — only wait_timeout itself takes it, and it always restores
            || unreachable!("OrderedGuard inner guard taken"),
        );
        let (guard, result) = match cvar.wait_timeout(guard, dur) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r.timed_out())
            }
        };
        self.guard = Some(guard);
        (self, result)
    }
}

impl<'a, T> Deref for OrderedGuard<'a, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match &self.guard {
            Some(g) => g,
            // audit:allow(panic): structurally impossible — see wait_timeout
            None => unreachable!("OrderedGuard dereferenced while empty"),
        }
    }
}

impl<'a, T> DerefMut for OrderedGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.guard {
            Some(g) => g,
            // audit:allow(panic): structurally impossible — see wait_timeout
            None => unreachable!("OrderedGuard dereferenced while empty"),
        }
    }
}

impl<'a, T> Drop for OrderedGuard<'a, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        ranks::pop(self.rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = OrderedMutex::new("sharded-shard", 0u64);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.name(), "sharded-shard");
    }

    #[test]
    fn increasing_rank_order_is_fine() {
        let log = OrderedMutex::new("repl-log", ());
        let shard = OrderedMutex::new("sharded-shard", ());
        let rng = OrderedMutex::new("chaos-rng", ());
        let _a = log.lock(); // rank 10
        let _b = shard.lock(); // rank 40
        let _c = rng.lock(); // rank 60
    }

    #[test]
    fn sequential_reacquisition_is_fine() {
        let shard = OrderedMutex::new("sharded-shard", ());
        drop(shard.lock());
        drop(shard.lock());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn out_of_rank_acquisition_panics_deterministically() {
        let rng = OrderedMutex::new("chaos-rng", ()); // rank 60
        let log = OrderedMutex::new("repl-log", ()); // rank 10
        let _high = rng.lock();
        let _low = log.lock(); // must abort: 10 <= 60
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn equal_rank_nesting_panics() {
        let a = OrderedMutex::new("sharded-shard", ());
        let b = OrderedMutex::new("sharded-shard", ());
        let _a = a.lock();
        let _b = b.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "no rank in audit-locks.toml")]
    fn unknown_name_panics() {
        let m = OrderedMutex::new("never-in-the-manifest", ());
        let _g = m.lock();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(OrderedMutex::new("repl-log", 7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn wait_timeout_releases_and_reacquires() {
        let m = OrderedMutex::new("repl-log", 0u32);
        let cvar = Condvar::new();
        let g = m.lock();
        let (g, timed_out) = g.wait_timeout(&cvar, Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*g, 0);
        drop(g);
        // The rank slot must be free again: a lower-or-equal rank lock
        // in fresh sequence succeeds.
        drop(m.lock());
    }
}
