//! The software version of SHE (Section 3.2).
//!
//! A conceptual cleaning process sweeps the cell array left-to-right at
//! constant speed, finishing one pass per `Tcycle`, then wraps around. On a
//! CPU we realize it lazily: every operation first advances the cleaner from
//! its last position to where it should be *now* and zeroes the cells it
//! passed. This is observably identical to a concurrent cleaner thread but
//! deterministic, which the tests rely on.
//!
//! The hardware version ([`crate::She`]) replaces the per-cell sweep with
//! per-group time marks; with `w = 1` the two versions' cell ages agree to
//! within one cleaning step (see the cross-version tests in
//! `tests/soft_vs_hw.rs`).

use crate::frame::{self, Frame, FrameWriter, Reader};
use crate::snapshot::{MergeMode, SnapshotError, SnapshotState};
use crate::SheConfig;
use she_hash::HashKey;
use she_sketch::{CellUpdate, CsmSpec, PackedArray};

/// Software-version SHE engine: continuous circular cleaning.
#[derive(Debug, Clone)]
pub struct SoftClock<S: CsmSpec> {
    spec: S,
    cfg: SheConfig,
    cells: PackedArray,
    /// Logical clock (insertions so far).
    t: u64,
    /// Total cells cleaned since the start (the cleaner's absolute count).
    cleaned: u64,
    scratch: Vec<CellUpdate>,
}

impl<S: CsmSpec> SoftClock<S> {
    /// Wrap `spec` with the software cleaning process per `cfg`
    /// (`group_cells` is ignored — the software version cleans single
    /// cells).
    pub fn new(spec: S, cfg: SheConfig) -> Self {
        cfg.validate();
        let cells = PackedArray::new(spec.num_cells(), spec.cell_bits());
        Self { spec, cfg, cells, t: 0, cleaned: 0, scratch: Vec::new() }
    }

    /// The wrapped CSM spec.
    #[inline]
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// The sliding-window configuration.
    #[inline]
    pub fn config(&self) -> &SheConfig {
        &self.cfg
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Total cells the cleaner should have cleaned by time `t`:
    /// `floor(t · M / Tcycle)`.
    #[inline]
    fn target_count(&self, t: u64) -> u64 {
        ((t as u128 * self.cells.len() as u128) / self.cfg.t_cycle as u128) as u64
    }

    /// Advance the lazy cleaner to the present.
    fn catch_up(&mut self) {
        let target = self.target_count(self.t);
        let m = self.cells.len() as u64;
        if target <= self.cleaned {
            return;
        }
        if target - self.cleaned >= m {
            self.cells.clear();
        } else {
            for j in self.cleaned + 1..=target {
                self.cells.set(((j - 1) % m) as usize, 0);
            }
        }
        self.cleaned = target;
    }

    /// Advance the clock without inserting.
    pub fn advance_time(&mut self, dt: u64) {
        self.t += dt;
        self.catch_up();
    }

    /// Insert one item (advances the clock by one, then updates the hashed
    /// cells — insertion is independent of the cleaning, per §3.2).
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.t += 1;
        self.catch_up();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.spec.updates(key, &mut scratch);
        for u in &scratch {
            let old = self.cells.get(u.index);
            self.cells.set(u.index, self.spec.apply(u.operand, old));
        }
        self.scratch = scratch;
    }

    /// Age of cell `i`: time since its latest cleaning, or the full elapsed
    /// time if it has never been cleaned.
    pub fn cell_age(&self, i: usize) -> u64 {
        let m = self.cells.len() as u64;
        let c = self.target_count(self.t);
        // Largest count j ≤ c with (j - 1) % m == i, i.e. j ≡ i+1 (mod m).
        let i1 = i as u64 + 1;
        if c < i1 {
            return self.t; // never cleaned
        }
        let j = c - (c - i1) % m;
        // Count j is reached at the earliest time s with floor(s·m/Tc) ≥ j.
        let tc = self.cfg.t_cycle as u128;
        let s = (j as u128 * tc).div_ceil(m as u128) as u64;
        self.t.saturating_sub(s)
    }

    /// Read a cell (the cleaner has already caught up on every mutation).
    #[inline]
    pub fn read_cell(&self, i: usize) -> u64 {
        self.cells.get(i)
    }

    /// Membership query in the Bloom-filter style of Fig. 3: ignore young
    /// cells (`age < N`), answer "absent" iff some mature hashed cell is
    /// zero.
    ///
    /// Only meaningful when the spec is a Bloom-filter-like bit array; the
    /// hardware adapters provide the full per-task query suites.
    pub fn contains_bf<K: HashKey + ?Sized>(&mut self, key: &K) -> bool {
        self.catch_up();
        let mut ups = Vec::new();
        self.spec.updates(key, &mut ups);
        for u in &ups {
            if self.cell_age(u.index) < self.cfg.window {
                continue; // young: ignored by age-sensitive selection
            }
            if self.cells.get(u.index) == 0 {
                return false;
            }
        }
        true
    }

    /// Memory footprint in bits (cells + the 32-bit item counter; the
    /// conceptual cleaner needs only its position, folded into the counter).
    pub fn memory_bits(&self) -> usize {
        self.cells.memory_bits() + 32
    }
}

/// Not mergeable: two cleaners at different sweep positions leave no
/// per-cell mark to reconcile which cells are live, so a sound cell-wise
/// merge does not exist. Snapshot/restore only.
impl<S: CsmSpec> SnapshotState for SoftClock<S> {
    const KIND: u16 = frame::kind::SOFT;
    const MERGE: Option<MergeMode> = None;

    fn save_snapshot(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(Self::KIND);

        let mut sec = Vec::with_capacity(48);
        sec.extend_from_slice(&self.cfg.window.to_le_bytes());
        sec.extend_from_slice(&self.cfg.t_cycle.to_le_bytes());
        sec.extend_from_slice(&(self.cfg.group_cells as u64).to_le_bytes());
        sec.extend_from_slice(&self.cfg.beta.to_le_bytes());
        sec.extend_from_slice(&(self.spec.num_cells() as u64).to_le_bytes());
        sec.extend_from_slice(&self.spec.cell_bits().to_le_bytes());
        sec.extend_from_slice(&(self.spec.k() as u32).to_le_bytes());
        w.section(frame::tag::CONFIG, &sec);

        sec = Vec::with_capacity(16);
        sec.extend_from_slice(&self.t.to_le_bytes());
        sec.extend_from_slice(&self.cleaned.to_le_bytes());
        w.section(frame::tag::CLOCK, &sec);

        let words = self.cells.words();
        sec = Vec::with_capacity(8 + words.len() * 8);
        sec.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for &word in words {
            sec.extend_from_slice(&word.to_le_bytes());
        }
        w.section(frame::tag::CELLS, &sec);

        w.finish()
    }

    fn load_snapshot(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != Self::KIND {
            return Err(SnapshotError::WrongKind { expected: Self::KIND, found: f.kind });
        }
        let section = |tag: u16| f.section(tag).ok_or(SnapshotError::MissingSection { tag });

        let mut r = Reader::new(section(frame::tag::CONFIG)?);
        if r.u64()? != self.cfg.window {
            return Err(SnapshotError::ConfigMismatch { field: "window" });
        }
        if r.u64()? != self.cfg.t_cycle {
            return Err(SnapshotError::ConfigMismatch { field: "t_cycle" });
        }
        if r.u64()? != self.cfg.group_cells as u64 {
            return Err(SnapshotError::ConfigMismatch { field: "group_cells" });
        }
        if r.f64()?.to_bits() != self.cfg.beta.to_bits() {
            return Err(SnapshotError::ConfigMismatch { field: "beta" });
        }
        if r.u64()? != self.spec.num_cells() as u64
            || r.u32()? != self.spec.cell_bits()
            || r.u32()? != self.spec.k() as u32
        {
            return Err(SnapshotError::GeometryMismatch);
        }
        r.finish()?;

        let mut r = Reader::new(section(frame::tag::CLOCK)?);
        let t = r.u64()?;
        let cleaned = r.u64()?;
        r.finish()?;

        let mut r = Reader::new(section(frame::tag::CELLS)?);
        let n_words = r.u64()? as usize;
        if n_words != self.cells.words().len() {
            return Err(SnapshotError::GeometryMismatch);
        }
        let mut words = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            words.push(r.u64()?);
        }
        r.finish()?;

        self.t = t;
        self.cleaned = cleaned;
        self.cells.copy_from_words(&words);
        Ok(())
    }

    fn merge_snapshot(&mut self, _buf: &[u8]) -> Result<(), SnapshotError> {
        Err(SnapshotError::NotMergeable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use she_sketch::BloomSpec;

    fn soft(window: u64, alpha: f64, m: usize) -> SoftClock<BloomSpec> {
        let cfg = SheConfig::builder().window(window).alpha(alpha).group_cells(1).build();
        SoftClock::new(BloomSpec::new(m, 4, 9), cfg)
    }

    #[test]
    fn cleaner_sweeps_one_pass_per_cycle() {
        let mut s = soft(100, 0.2, 120); // Tcycle = 120, M = 120: 1 cell/unit
                                         // Set every bit by hand, then advance half a cycle.
        for i in 0..120 {
            s.cells.set(i, 1);
        }
        s.advance_time(60);
        // The first 60 cells were swept.
        assert_eq!(s.cells.count_zeros_in(0, 60), 60);
        assert_eq!(s.cells.count_zeros_in(60, 60), 0);
        s.advance_time(60);
        assert_eq!(s.cells.count_zeros(), 120);
    }

    #[test]
    fn big_jump_clears_everything_once() {
        let mut s = soft(100, 0.2, 120);
        for i in 0..120 {
            s.cells.set(i, 1);
        }
        s.advance_time(10 * 120);
        assert_eq!(s.cells.count_zeros(), 120);
    }

    #[test]
    fn ages_reflect_sweep_position() {
        let mut s = soft(100, 0.2, 120);
        s.advance_time(60);
        // Cell 0 was cleaned at t=1, so age 59; cell 59 cleaned at t=60, age 0.
        assert_eq!(s.cell_age(0), 59);
        assert_eq!(s.cell_age(59), 0);
        // Cell 100 has never been cleaned: age = full elapsed time.
        assert_eq!(s.cell_age(100), 60);
    }

    #[test]
    fn fig3_example_semantics() {
        // The paper's Fig. 3: young hashed bits are ignored; a zero mature
        // bit proves absence.
        let mut s = soft(1000, 0.5, 4096);
        s.insert(&111u64);
        // Immediately after insertion most groups are "never cleaned" (aged
        // semantics) so the item is found.
        assert!(s.contains_bf(&111u64));
        // After far more than a full cycle the bits are swept and the item
        // expires.
        s.advance_time(3 * s.config().t_cycle);
        assert!(!s.contains_bf(&111u64));
    }

    #[test]
    fn no_false_negatives_within_window() {
        let mut s = soft(500, 1.0, 1 << 14);
        for i in 0..2000u64 {
            s.insert(&i);
        }
        // The last 500 items are within the window; none may be missed.
        for i in 1500..2000u64 {
            assert!(s.contains_bf(&i), "false negative on {i}");
        }
    }
}
