//! SHE-CS: sliding-window frequency via the count sketch — a sixth CSM
//! instance demonstrating the framework's genericity beyond the paper's
//! five showcases.
//!
//! Count sketch has two-sided error, so (per §3.2's age-sensitive
//! selection) the query may include young cells whose age is close to `N`:
//! the legal range is `[βN, Tcycle)` with `β < 1`, like SHE-BM.

use crate::{She, SheConfig};
use she_hash::HashKey;
use she_sketch::{CellUpdate, CountSketchSpec};

/// Sliding-window count sketch (hardware version of SHE).
#[derive(Debug, Clone)]
pub struct SheCountSketch {
    engine: She<CountSketchSpec>,
    scratch: Vec<CellUpdate>,
}

/// Builder for [`SheCountSketch`] (defaults: `k = 5`, `w = 64`, `α = 1`,
/// `β = 0.9`).
#[derive(Debug, Clone)]
pub struct SheCountSketchBuilder {
    window: u64,
    memory_bits: usize,
    k: usize,
    alpha: f64,
    beta: f64,
    group_cells: usize,
    seed: u32,
}

impl Default for SheCountSketchBuilder {
    fn default() -> Self {
        Self {
            window: 1 << 16,
            memory_bits: 8 << 23,
            k: 5,
            alpha: 1.0,
            beta: 0.9,
            group_cells: 64,
            seed: 1,
        }
    }
}

impl SheCountSketchBuilder {
    /// Sliding-window size `N` in items.
    pub fn window(mut self, n: u64) -> Self {
        self.window = n;
        self
    }

    /// Memory budget in bytes (32-bit counters).
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.memory_bits = bytes * 8;
        self
    }

    /// Number of (location, sign) hash pairs.
    pub fn hash_functions(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// `α = (Tcycle − N)/N`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Legal-age fraction `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Cells per group `w`.
    pub fn group_cells(mut self, w: usize) -> Self {
        self.group_cells = w;
        self
    }

    /// Hash seed.
    pub fn seed(mut self, seed: u32) -> Self {
        self.seed = seed;
        self
    }

    /// Build the sketch.
    pub fn build(self) -> SheCountSketch {
        let m = (self.memory_bits / 32).max(self.k.max(self.group_cells));
        let cfg = SheConfig::builder()
            .window(self.window)
            .alpha(self.alpha)
            .group_cells(self.group_cells.min(m))
            .beta(self.beta)
            .build();
        SheCountSketch {
            engine: She::new(CountSketchSpec::new(m, self.k, self.seed), cfg),
            scratch: Vec::new(),
        }
    }
}

impl SheCountSketch {
    /// Start building with defaults.
    pub fn builder() -> SheCountSketchBuilder {
        SheCountSketchBuilder::default()
    }

    /// Insert an item at the next time step.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.engine.insert(key);
    }

    /// Estimated frequency of `key` within the sliding window: the median
    /// of the sign-corrected legal counters.
    pub fn query<K: HashKey + ?Sized>(&mut self, key: &K) -> i64 {
        let beta_n = self.engine.config().beta * self.engine.config().window as f64;
        let mut scratch = std::mem::take(&mut self.scratch);
        self.engine.updates_for(key, &mut scratch);
        let mut vals: Vec<i64> = Vec::with_capacity(scratch.len());
        let mut fallback: Vec<i64> = Vec::with_capacity(scratch.len());
        for u in &scratch {
            let gid = self.engine.group_of(u.index);
            self.engine.check_group(gid);
            let raw = self.engine.peek_cell(u.index) as u32 as i32 as i64;
            let sign = if u.operand == 1 { 1 } else { -1 };
            fallback.push(raw * sign);
            if self.engine.group_age(gid) as f64 >= beta_n {
                vals.push(raw * sign);
            }
        }
        self.scratch = scratch;
        if vals.is_empty() {
            vals = fallback;
        }
        median(&mut vals)
    }

    /// Advance logical time without inserting.
    #[inline]
    pub fn advance_time(&mut self, dt: u64) {
        self.engine.advance_time(dt);
    }

    /// The underlying generic engine.
    #[inline]
    pub fn engine(&self) -> &She<CountSketchSpec> {
        &self.engine
    }

    /// Mutable engine access for the snapshot layer.
    pub(crate) fn engine_mut(&mut self) -> &mut She<CountSketchSpec> {
        &mut self.engine
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.engine.memory_bits()
    }
}

fn median(vals: &mut [i64]) -> i64 {
    if vals.is_empty() {
        return 0;
    }
    vals.sort_unstable();
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        (vals[n / 2 - 1] + vals[n / 2]) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_in_window_frequencies() {
        let window = 1u64 << 13;
        let mut cs = SheCountSketch::builder().window(window).memory_bytes(1 << 20).build();
        // 512 recurring keys: each appears window/512 = 16 times per window.
        for i in 0..4 * window {
            cs.insert(&(i % 512));
        }
        let truth = (window / 512) as f64;
        let mut sum = 0.0;
        for k in 0..512u64 {
            sum += (cs.query(&k) as f64 - truth).abs() / truth;
        }
        let are = sum / 512.0;
        assert!(are < 0.6, "ARE {are}");
    }

    #[test]
    fn expired_heavy_key_fades() {
        let window = 1u64 << 10;
        let mut cs = SheCountSketch::builder().window(window).memory_bytes(1 << 20).build();
        for _ in 0..500 {
            cs.insert(&99u64);
        }
        for i in 0..8 * window {
            cs.insert(&(i + 1000));
        }
        let est = cs.query(&99u64);
        assert!(est.abs() < 60, "stale estimate {est}");
    }

    #[test]
    fn absent_key_near_zero() {
        let window = 1u64 << 12;
        let mut cs = SheCountSketch::builder().window(window).memory_bytes(1 << 20).build();
        for i in 0..2 * window {
            cs.insert(&i);
        }
        assert!(cs.query(&0xdead_beefu64).abs() <= 4);
    }

    #[test]
    fn estimates_can_be_negative_on_crowding() {
        // Two-sided error is preserved through the SHE wrapper.
        let mut cs =
            SheCountSketch::builder().window(1 << 10).memory_bytes(256).group_cells(8).build();
        for i in 0..20_000u64 {
            cs.insert(&i);
        }
        let any_negative = (0..500u64).any(|k| cs.query(&(k + 1_000_000)) < 0);
        assert!(any_negative, "expected two-sided noise on a crowded sketch");
    }
}
