//! Section 5 of the paper: error analysis and parameter selection.
//!
//! * Eq. (1) — how many groups `G` keep the expected number of
//!   never-refreshed groups below `ε` ([`expected_unswept_groups`],
//!   [`max_group_count`]);
//! * Eq. (2) — the optimal `α` for SHE-BF ([`optimal_alpha_bf`]), obtained
//!   by minimizing the closed-form FPR ([`she_bf_fpr`]);
//! * Eq. (3) — the SHE-BM error bound ([`she_bm_error_bound`]);
//! * Eq. (4) — the SHE-HLL error bound ([`she_hll_error_bound`]);
//! * Eq. (5) — the SHE-MH error bound ([`she_mh_error_bound`]).

/// Expected number of groups that fail to be touched (and hence cleaned) by
/// any insertion during one cleaning cycle:
/// `E = G · e^{-(1+α)·C·H / G}` (§5.1).
///
/// * `g` — number of groups;
/// * `alpha` — `(Tcycle − N)/N`;
/// * `c` — cardinality of one sliding window;
/// * `h` — cells updated per insertion (`H`).
pub fn expected_unswept_groups(g: usize, alpha: f64, c: u64, h: usize) -> f64 {
    assert!(g > 0);
    let updates = (1.0 + alpha) * c as f64 * h as f64;
    g as f64 * (-updates / g as f64).exp()
}

/// The largest group count `G` whose expected unswept-group count stays
/// below `epsilon` (the practical form of Eq. 1). Returns at least 1.
pub fn max_group_count(epsilon: f64, alpha: f64, c: u64, h: usize) -> usize {
    assert!(epsilon > 0.0);
    // E(G) is increasing in G throughout the useful regime (G ≤ (1+α)CH),
    // so binary-search the threshold.
    let updates = ((1.0 + alpha) * c as f64 * h as f64) as usize;
    let (mut lo, mut hi) = (1usize, updates.max(2));
    if expected_unswept_groups(hi, alpha, c, h) <= epsilon {
        return hi;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if expected_unswept_groups(mid, alpha, c, h) <= epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The closed-form SHE-BF false-positive rate of §5.2 as a function of
/// `R = α + 1`:
///
/// `FPR(R) = [1 − (Q^R − Q) / (ln(Q) · R)]^H`,
///
/// where `Q = (1 − 1/M)^{C·H}` is the per-cycle zero-bit retention base
/// (`M` filter bits, `C` window cardinality, `H` hash functions).
pub fn she_bf_fpr(q: f64, r: f64, h: usize) -> f64 {
    assert!(q > 0.0 && q < 1.0, "Q must be in (0,1), got {q}");
    assert!(r > 0.0);
    let p0 = (q.powf(r) - q) / (q.ln() * r);
    (1.0 - p0).powi(h as i32).clamp(0.0, 1.0)
}

/// The `Q` of §5.2 for an `m`-bit filter with `h` hash functions and window
/// cardinality `c`: `Q = (1 − 1/m)^{c·h}`.
pub fn bf_q(m_bits: usize, h: usize, c: usize) -> f64 {
    assert!(m_bits > 1);
    ((1.0 - 1.0 / m_bits as f64).ln() * (c as f64) * (h as f64)).exp()
}

/// Solve Eq. (2): the root `R0` of `dg/dR = Q^R (R·ln Q − 1) + Q = 0`, which
/// minimizes the FPR; the optimal `α` is `R0 − 1`.
///
/// `dg/dR` is monotonically increasing on `R ∈ (0, ∞)` (from `Q − 1 < 0`
/// towards `Q > 0`), so the root is unique; we bisect.
pub fn optimal_r(q: f64) -> f64 {
    assert!(q > 0.0 && q < 1.0, "Q must be in (0,1), got {q}");
    let dg = |r: f64| q.powf(r) * (r * q.ln() - 1.0) + q;
    let mut lo = 1e-9;
    let mut hi = 2.0;
    while dg(hi) < 0.0 {
        hi *= 2.0;
        assert!(hi < 1e9, "optimal R diverged for Q = {q}");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if dg(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The optimal `α` of Eq. (2) for an `m_bits` SHE-BF with `h` hash functions
/// over windows of cardinality `c`, floored at a small positive value so the
/// returned α always yields a valid `Tcycle > N`.
pub fn optimal_alpha_bf(m_bits: usize, h: usize, c: usize) -> f64 {
    let q = bf_q(m_bits, h, c);
    (optimal_r(q) - 1.0).max(0.05)
}

/// Eq. (3): SHE-BM relative-error bound `ε = α·T / (4·C)` for window size
/// `T = N` and window cardinality `C`.
pub fn she_bm_error_bound(alpha: f64, window: u64, c: u64) -> f64 {
    assert!(c > 0);
    alpha * window as f64 / (4.0 * c as f64)
}

/// Eq. (4): SHE-HLL relative-error bound
/// `ε = (α·T / 4C) · (1 + O(α·T / C))`; the second-order factor is included
/// at its leading coefficient.
pub fn she_hll_error_bound(alpha: f64, window: u64, c: u64) -> f64 {
    assert!(c > 0);
    let first = alpha * window as f64 / (4.0 * c as f64);
    first * (1.0 + alpha * window as f64 / c as f64)
}

/// Eq. (5): SHE-MH similarity bias bound `ε/4 + ε²/6` with
/// `ε = 2·α·T / S∪` (`s_union` = size of the union of the two windows).
pub fn she_mh_error_bound(alpha: f64, window: u64, s_union: u64) -> f64 {
    assert!(s_union > 0);
    let eps = 2.0 * alpha * window as f64 / s_union as f64;
    eps / 4.0 + eps * eps / 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unswept_expectation_shrinks_with_fewer_groups() {
        let e_small = expected_unswept_groups(64, 0.2, 10_000, 8);
        let e_large = expected_unswept_groups(65_536, 0.2, 10_000, 8);
        assert!(e_small < e_large);
        assert!(e_small < 1e-100); // 64 groups, 96k updates: essentially 0
    }

    #[test]
    fn max_group_count_respects_epsilon() {
        let g = max_group_count(0.01, 0.2, 50_000, 8);
        assert!(expected_unswept_groups(g, 0.2, 50_000, 8) <= 0.01);
        assert!(expected_unswept_groups(g + g / 10 + 1, 0.2, 50_000, 8) > 0.01);
    }

    #[test]
    fn optimal_r_is_a_root_and_a_minimum() {
        for q in [0.1, 0.3679, 0.5, 0.9] {
            let r0 = optimal_r(q);
            let dg = q.powf(r0) * (r0 * q.ln() - 1.0) + q;
            assert!(dg.abs() < 1e-9, "dg({r0}) = {dg} for Q = {q}");
            // FPR at R0 must not exceed FPR nearby.
            let f0 = she_bf_fpr(q, r0, 8);
            assert!(f0 <= she_bf_fpr(q, r0 * 1.3, 8) + 1e-12);
            assert!(f0 <= she_bf_fpr(q, (r0 * 0.7).max(1e-3), 8) + 1e-12);
        }
    }

    #[test]
    fn optimal_alpha_for_e_inverse_q() {
        // For Q = e^{-1}, dg/dR = 0 becomes (R+1) = e^{R-1}; root ≈ 2.1462.
        let r0 = optimal_r((-1.0f64).exp());
        assert!((r0 - 2.146).abs() < 0.01, "r0 = {r0}");
    }

    #[test]
    fn paper_default_setting_gives_alpha_near_three() {
        // §7.1 sets α ≈ 3 for SHE-BF via Eq. 2. Their memory sweep centers
        // near 32 KB with N = 2^16 mostly-distinct items and H = 8; the
        // heavily-loaded regime (Q close to 0) pushes the optimum to ~3.
        let q = bf_q(32 << 13, 8, 1 << 16); // 32 KB, H=8, C=2^16
        let alpha = optimal_r(q) - 1.0;
        assert!(alpha > 0.5 && alpha < 6.0, "alpha = {alpha}");
    }

    #[test]
    fn bf_q_in_unit_interval() {
        let q = bf_q(1 << 18, 8, 1 << 16);
        assert!(q > 0.0 && q < 1.0);
    }

    #[test]
    fn error_bounds_scale_with_alpha() {
        assert!(
            she_bm_error_bound(0.4, 1 << 16, 1 << 16) > she_bm_error_bound(0.2, 1 << 16, 1 << 16)
        );
        assert!(
            she_hll_error_bound(0.2, 1 << 16, 1 << 16) >= she_bm_error_bound(0.2, 1 << 16, 1 << 16)
        );
        assert!(she_mh_error_bound(0.4, 1000, 4000) > she_mh_error_bound(0.2, 1000, 4000));
    }

    #[test]
    fn bm_bound_for_distinct_stream() {
        // Distinct stream: C = T, so the bound is α/4.
        let b = she_bm_error_bound(0.2, 1 << 16, 1 << 16);
        assert!((b - 0.05).abs() < 1e-12);
    }

    #[test]
    fn fpr_decreases_with_more_memory() {
        let h = 8;
        let c = 1 << 16;
        let q_small = bf_q(1 << 18, h, c);
        let q_big = bf_q(1 << 21, h, c);
        let f_small = she_bf_fpr(q_small, 2.0, h);
        let f_big = she_bf_fpr(q_big, 2.0, h);
        assert!(f_big < f_small);
    }
}
