//! Checked integer conversions and fixed-slice readers for the serving
//! path. The `she audit` cast rule bans narrowing `as` casts in the
//! serving crates, and the panic-path rule bans `.unwrap()` — these
//! helpers are the blessed replacements: every conversion either cannot
//! fail by construction or returns the failure to the caller.

/// Widen a `usize` to `u64`. On every supported target `usize` is at
/// most 64 bits, so this is lossless; spelled as a helper (not `as`) so
/// audited code never needs a cast.
pub fn u64_of(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX) // audit:allow(cast): lossless on <=64-bit targets; saturation is unreachable
}

/// Narrow a `u64` to `usize`, saturating at `usize::MAX`. Callers that
/// need a hard failure on overflow should use `usize::try_from`
/// directly; this is for sizes already validated against a bound (e.g.
/// a frame length checked against `MAX_FRAME`).
pub fn usize_of(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// Copy the first `N` bytes of `src` into an array, or `None` when
/// `src` is too short. Replaces the `slice.try_into().unwrap()` idiom:
/// the length check is the return value, not a panic.
pub fn array_at<const N: usize>(src: &[u8]) -> Option<[u8; N]> {
    let mut out = [0u8; N];
    out.copy_from_slice(src.get(..N)?);
    Some(out)
}

/// Decode a little-endian `u64` sequence. `bytes.len()` need not be a
/// multiple of 8; a trailing partial chunk is ignored (callers validate
/// lengths before decoding — this keeps the decode itself panic-free).
pub fn le_u64s(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            u64::from_le_bytes(w)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_and_narrowing() {
        assert_eq!(u64_of(42usize), 42u64);
        assert_eq!(usize_of(42u64), 42usize);
        assert_eq!(usize_of(u64::MAX), usize::MAX); // saturates on 64-bit
    }

    #[test]
    fn array_at_checks_length() {
        assert_eq!(array_at::<4>(&[1, 2, 3, 4, 5]), Some([1, 2, 3, 4]));
        assert_eq!(array_at::<4>(&[1, 2, 3]), None);
        assert_eq!(array_at::<0>(&[]), Some([]));
    }

    #[test]
    fn le_u64s_round_trips() {
        let mut bytes = Vec::new();
        for v in [0u64, 1, u64::MAX, 0x0102_0304_0506_0708] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(le_u64s(&bytes), [0, 1, u64::MAX, 0x0102_0304_0506_0708]);
        bytes.push(0xFF); // trailing partial chunk ignored
        assert_eq!(le_u64s(&bytes).len(), 4);
    }
}
