//! SHE-HLL: sliding-window cardinality via HyperLogLog (Section 4.3).
//!
//! Each HyperLogLog register is its own group (`w = 1`, per §4.3). Insertion
//! applies `F(x, y) = max(ρ(Hz(x)), y)` to one register after `CheckGroup`.
//! The query keeps the registers whose age is legal (`≥ βN`) and feeds them
//! to the subset estimator `Ĉ = α_k · k · M / Σ 2^{-ℓ_j}` (the paper's
//! `Ĉ = c·k·(Σ2^{-ℓj})^{-1}·M`), including the standard small-range
//! correction.

use crate::{She, SheConfig};
use she_hash::HashKey;
use she_sketch::{hll_estimate_subset, CsmSpec, HllSpec};

/// Sliding-window HyperLogLog (hardware version of SHE).
///
/// ```
/// use she_core::SheHyperLogLog;
///
/// let mut hll = SheHyperLogLog::builder()
///     .window(65_536)
///     .memory_bytes(8 << 10)
///     .build();
/// for i in 0..200_000u64 {
///     hll.insert(&i);
/// }
/// let est = hll.estimate();
/// assert!((est - 65_536.0).abs() / 65_536.0 < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct SheHyperLogLog {
    engine: She<HllSpec>,
}

/// Builder for [`SheHyperLogLog`] with the paper's defaults
/// (`w = 1`, `α = 0.2`, 5-bit registers, `N = 2^21`).
#[derive(Debug, Clone)]
pub struct SheHyperLogLogBuilder {
    window: u64,
    memory_bits: usize,
    reg_bits: u32,
    alpha: f64,
    beta: f64,
    seed: u32,
}

impl Default for SheHyperLogLogBuilder {
    fn default() -> Self {
        Self {
            window: 1 << 21,
            memory_bits: 8 << 13, // 8 KB
            reg_bits: 5,
            alpha: 0.2,
            beta: 0.9,
            seed: 1,
        }
    }
}

impl SheHyperLogLogBuilder {
    /// Sliding-window size `N` in items.
    pub fn window(mut self, n: u64) -> Self {
        self.window = n;
        self
    }

    /// Memory budget in bytes (register payload; marks come on top).
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.memory_bits = bytes * 8;
        self
    }

    /// Register width in bits (paper: 5).
    pub fn register_bits(mut self, bits: u32) -> Self {
        self.reg_bits = bits;
        self
    }

    /// `α = (Tcycle − N)/N`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Legal-age fraction `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Hash seed.
    pub fn seed(mut self, seed: u32) -> Self {
        self.seed = seed;
        self
    }

    /// Build the sketch.
    pub fn build(self) -> SheHyperLogLog {
        let m = (self.memory_bits / self.reg_bits as usize).max(16);
        let cfg = SheConfig::builder()
            .window(self.window)
            .alpha(self.alpha)
            .group_cells(1) // w = 1 per §4.3
            .beta(self.beta)
            .build();
        SheHyperLogLog { engine: She::new(HllSpec::new(m, self.reg_bits, self.seed), cfg) }
    }
}

impl SheHyperLogLog {
    /// Start building with the paper defaults.
    pub fn builder() -> SheHyperLogLogBuilder {
        SheHyperLogLogBuilder::default()
    }

    /// Insert an item at the next time step.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.engine.insert(key);
    }

    /// Estimated cardinality of the sliding window.
    pub fn estimate(&mut self) -> f64 {
        let beta_n = self.engine.config().beta * self.engine.config().window as f64;
        let m = self.engine.spec().num_cells();
        let mut legal = Vec::with_capacity(m);
        self.engine.for_each_group(|_, age, cells| {
            if (age as f64) < beta_n {
                return;
            }
            legal.extend(cells);
        });
        hll_estimate_subset(legal.into_iter(), m)
    }

    /// Multi-window query: estimate the cardinality of the last `n` items
    /// for any `n < Tcycle` (the HLL analogue of
    /// [`crate::SheBitmap::estimate_at`]): registers whose age is within
    /// `tolerance` of `n` record (almost exactly) the last `n` items; the
    /// subset estimator scales their harmonic mean to the full array.
    pub fn estimate_at(&mut self, n: u64, tolerance: f64) -> f64 {
        assert!(n > 0 && tolerance >= 0.0);
        assert!(
            n < self.engine.config().t_cycle,
            "query window {n} must be below Tcycle {}",
            self.engine.config().t_cycle
        );
        let m = self.engine.spec().num_cells();
        let lo = n as f64 * (1.0 - tolerance);
        let hi = n as f64 * (1.0 + tolerance);
        let mut legal = Vec::new();
        self.engine.for_each_group(|_, age, cells| {
            if (age as f64) >= lo && (age as f64) <= hi {
                legal.extend(cells);
            }
        });
        hll_estimate_subset(legal.into_iter(), m)
    }

    /// Advance logical time without inserting.
    #[inline]
    pub fn advance_time(&mut self, dt: u64) {
        self.engine.advance_time(dt);
    }

    /// The underlying generic engine.
    #[inline]
    pub fn engine(&self) -> &She<HllSpec> {
        &self.engine
    }

    /// Mutable engine access for the snapshot layer.
    pub(crate) fn engine_mut(&mut self) -> &mut She<HllSpec> {
        &mut self.engine
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.engine.now()
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.engine.memory_bits()
    }

    /// Reset to empty at time zero.
    pub fn clear(&mut self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_window_cardinality() {
        let window = 1u64 << 16;
        let mut hll =
            SheHyperLogLog::builder().window(window).memory_bytes(8 << 10).seed(2).build();
        for i in 0..5 * window {
            hll.insert(&i);
        }
        let est = hll.estimate();
        let re = (est - window as f64).abs() / window as f64;
        // 8 KB of 5-bit regs = 13k registers; σ ≈ 1%. Aged regs add bias
        // bounded by αT/4C = 5% (Eq. 4). Allow 15%.
        assert!(re < 0.15, "estimate {est}, relative error {re}");
    }

    #[test]
    fn skewed_duplicates_do_not_inflate() {
        let window = 1u64 << 16;
        let mut hll = SheHyperLogLog::builder().window(window).memory_bytes(4 << 10).build();
        // 8 copies of each key: window cardinality = window / 8.
        for i in 0..4 * window {
            hll.insert(&(i / 8));
        }
        let truth = window as f64 / 8.0;
        let est = hll.estimate();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.2, "estimate {est} truth {truth} re {re}");
    }

    #[test]
    fn empty_estimates_zero() {
        let mut hll = SheHyperLogLog::builder().build();
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    fn estimate_at_tracks_sub_windows() {
        let window = 1u64 << 15;
        let mut hll = SheHyperLogLog::builder()
            .window(window)
            .memory_bytes(16 << 10)
            .alpha(0.5)
            .seed(6)
            .build();
        for i in 0..5 * window {
            hll.insert(&i); // distinct stream: F(n) = n
        }
        for frac in [0.5f64, 1.0, 1.4] {
            let n = (window as f64 * frac) as u64;
            let est = hll.estimate_at(n, 0.25);
            let re = (est - n as f64).abs() / n as f64;
            assert!(re < 0.35, "n={n}: estimate {est}, re {re}");
        }
    }

    #[test]
    fn registers_are_their_own_groups() {
        let hll = SheHyperLogLog::builder().memory_bytes(1 << 10).build();
        assert_eq!(hll.engine().num_groups(), hll.engine().spec().num_cells());
    }
}
