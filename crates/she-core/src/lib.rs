//! The SHE framework — Sliding Hardware Estimator (Sections 3–5 of the
//! paper).
//!
//! SHE turns any fixed-window algorithm expressed as a Common Sketch Model
//! triple (`she_sketch::CsmSpec`) into a sliding-window algorithm with almost
//! no extra state: one *time mark* bit per group of cells plus an item
//! counter. Two implementations are provided:
//!
//! * [`She`] — the **hardware version** (Sec. 3.3): the cell array is split
//!   into `G` groups with evenly-spaced time offsets; a group is lazily reset
//!   when its stored mark differs from the current mark (Algorithm 1). This
//!   is the version the paper evaluates on both CPU and FPGA, and the version
//!   the five adapters below wrap.
//! * [`SoftClock`] — the **software version** (Sec. 3.2): a conceptual
//!   cleaning process sweeps the array at constant speed, one cell at a time.
//!   Provided for completeness and for the equivalence tests between the two
//!   versions.
//!
//! The five adapters of Section 4:
//! [`SheBloomFilter`] (membership), [`SheBitmap`] and [`SheHyperLogLog`]
//! (cardinality), [`SheCountMin`] (frequency), [`SheMinHash`] (similarity).
//!
//! The [`analysis`] module implements Section 5: the on-demand-cleaning group
//! bound (Eq. 1), the optimal-α solver for SHE-BF (Eq. 2), and the error
//! bounds for SHE-BM / SHE-HLL / SHE-MH (Eqs. 3–5).

//! Beyond the paper's five adapters, the crate ships the natural
//! engineering extensions a deployment needs: [`sharded`] multi-core
//! ingestion, [`SheCountSketch`] (a sixth CSM instance demonstrating the
//! framework's genericity), multi-window queries
//! ([`SheBitmap::estimate_at`]), and a uniform persistence layer: every
//! structure implements [`SnapshotState`] (versioned binary snapshots in
//! the shared [`frame`] format, with cell-wise [`MergeMode`] merging for
//! the mergeable sketches).

pub mod analysis;
mod bf;
mod bm;
mod cm;
mod config;
pub mod convert;
mod cs;
mod engine;
pub mod frame;
mod hll;
mod mh;
pub mod ordered;
pub mod sharded;
mod snapshot;
mod soft;
mod topk;

pub use bf::SheBloomFilter;
pub use bm::SheBitmap;
pub use cm::SheCountMin;
pub use config::{SheConfig, SheConfigBuilder};
pub use cs::SheCountSketch;
pub use engine::{CellAge, EngineStats, She};
pub use hll::SheHyperLogLog;
pub use mh::SheMinHash;
pub use ordered::{OrderedGuard, OrderedMutex};
pub use sharded::{ShardedBitmap, ShardedBloomFilter, ShardedCountMin, ShardedShe};
pub use snapshot::{MergeMode, SnapshotError, SnapshotState};
pub use soft::SoftClock;
pub use topk::SlidingTopK;

// Serving layers move adapters into worker threads; keep them `Send`
// (a regression here would only surface downstream, in she-server).
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<SheBloomFilter>();
    assert_send::<SheBitmap>();
    assert_send::<SheCountMin>();
    assert_send::<SheHyperLogLog>();
    assert_send::<SheMinHash>();
    assert_send::<SheCountSketch>();
};
