//! Sliding heavy hitters: the application layer the paper's introduction
//! motivates (financial trackers, intrusion detection, QoS).
//!
//! A [`SlidingTopK`] combines SHE-CM with a small candidate set: every
//! insertion refreshes the key's frequency estimate and promotes it into
//! the candidate map when it competes with the current top-k. Because the
//! sketch answers *sliding-window* frequencies, candidates age out on
//! their own — a key that stops arriving sees its estimate collapse after
//! one window and is dropped at the next compaction.

use crate::frame::{self, Frame, FrameWriter, Reader};
use crate::snapshot::{MergeMode, SnapshotError, SnapshotState};
use crate::SheCountMin;
use std::collections::HashMap;

/// Top-k frequent keys over a sliding window.
#[derive(Debug)]
pub struct SlidingTopK {
    cm: SheCountMin,
    k: usize,
    /// Key → last refreshed window-frequency estimate.
    candidates: HashMap<u64, u64>,
    /// Compaction threshold (candidates are re-queried and pruned when the
    /// map grows past this).
    cap: usize,
}

impl SlidingTopK {
    /// Track the `k` heaviest keys of the last `window` items with a
    /// `bytes`-byte SHE-CM underneath.
    pub fn new(k: usize, window: u64, bytes: usize, seed: u32) -> Self {
        assert!(k >= 1);
        Self {
            cm: SheCountMin::builder().window(window).memory_bytes(bytes).seed(seed).build(),
            k,
            candidates: HashMap::new(),
            cap: (4 * k).max(16),
        }
    }

    /// Ingest the next item.
    pub fn insert(&mut self, key: u64) {
        self.cm.insert(&key);
        let est = self.cm.query_scaled(&key);
        // A key competes once its estimate reaches the weakest candidate's
        // (or the set is not full yet).
        if self.candidates.len() < self.cap {
            self.candidates.insert(key, est);
        } else {
            let min = self.candidates.values().copied().min().unwrap_or(0);
            if est > min {
                self.candidates.insert(key, est);
            }
            if self.candidates.len() > self.cap {
                self.compact();
            }
        }
    }

    /// Re-query every candidate against the sliding sketch and keep the
    /// strongest `2k` (estimates decay as the window slides, so this is
    /// where expired heavy hitters fall out).
    fn compact(&mut self) {
        let cm = &mut self.cm;
        let mut scored: Vec<(u64, u64)> =
            self.candidates.keys().map(|&key| (key, cm.query_scaled(&key))).collect();
        scored.sort_unstable_by_key(|e| std::cmp::Reverse(e.1));
        scored.truncate(2 * self.k);
        self.candidates = scored.into_iter().collect();
    }

    /// The current top-k as `(key, estimated window frequency)`, heaviest
    /// first. Re-queries candidates so the answer reflects the window as of
    /// now.
    pub fn top(&mut self) -> Vec<(u64, u64)> {
        self.compact();
        let mut out: Vec<(u64, u64)> = self.candidates.iter().map(|(&k, &v)| (k, v)).collect();
        out.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(self.k);
        out
    }

    /// The underlying frequency sketch.
    pub fn sketch(&self) -> &SheCountMin {
        &self.cm
    }

    /// Memory footprint in bits (sketch + candidate entries at 128 bits).
    pub fn memory_bits(&self) -> usize {
        self.cm.memory_bits() + self.candidates.len() * 128
    }
}

/// Not mergeable: the candidate maps of two trackers cover different key
/// subsets, so a merged top-k can silently miss keys heavy only in the
/// union. Snapshot/restore only.
impl SnapshotState for SlidingTopK {
    const KIND: u16 = frame::kind::TOPK;
    const MERGE: Option<MergeMode> = None;

    fn save_snapshot(&self) -> Vec<u8> {
        let mut w = FrameWriter::new(Self::KIND);

        let mut sec = Vec::with_capacity(16);
        sec.extend_from_slice(&(self.k as u64).to_le_bytes());
        sec.extend_from_slice(&(self.cap as u64).to_le_bytes());
        w.section(frame::tag::META, &sec);

        w.section(frame::tag::SKETCH, &self.cm.save_snapshot());

        // Sort by key so identical state yields identical bytes regardless
        // of HashMap iteration order.
        let mut entries: Vec<(u64, u64)> = self.candidates.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable();
        sec = Vec::with_capacity(8 + entries.len() * 16);
        sec.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (key, est) in entries {
            sec.extend_from_slice(&key.to_le_bytes());
            sec.extend_from_slice(&est.to_le_bytes());
        }
        w.section(frame::tag::CANDIDATES, &sec);

        w.finish()
    }

    fn load_snapshot(&mut self, buf: &[u8]) -> Result<(), SnapshotError> {
        let f = Frame::parse(buf)?;
        if f.kind != Self::KIND {
            return Err(SnapshotError::WrongKind { expected: Self::KIND, found: f.kind });
        }
        let section = |tag: u16| f.section(tag).ok_or(SnapshotError::MissingSection { tag });

        let mut r = Reader::new(section(frame::tag::META)?);
        if r.u64()? != self.k as u64 {
            return Err(SnapshotError::ConfigMismatch { field: "k" });
        }
        if r.u64()? != self.cap as u64 {
            return Err(SnapshotError::ConfigMismatch { field: "cap" });
        }
        r.finish()?;

        let mut r = Reader::new(section(frame::tag::CANDIDATES)?);
        let n = r.u64()? as usize;
        // A snapshot cannot legitimately carry more candidates than the
        // tracker's own cap; reject a corrupt length before it sizes the
        // allocation.
        if n > self.cap {
            return Err(SnapshotError::ConfigMismatch { field: "cap" });
        }
        let mut candidates = HashMap::with_capacity(n);
        for _ in 0..n {
            let key = r.u64()?;
            let est = r.u64()?;
            candidates.insert(key, est);
        }
        r.finish()?;

        // Restore the sketch last so a malformed candidate section leaves
        // this tracker untouched.
        self.cm.load_snapshot(section(frame::tag::SKETCH)?)?;
        self.candidates = candidates;
        Ok(())
    }

    fn merge_snapshot(&mut self, _buf: &[u8]) -> Result<(), SnapshotError> {
        Err(SnapshotError::NotMergeable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_heavy_keys() {
        let window = 1u64 << 13;
        let mut tk = SlidingTopK::new(3, window, 1 << 20, 1);
        // Keys 1, 2, 3 take 30%, 20%, 10% of traffic; the rest is distinct.
        for i in 0..3 * window {
            let key = match i % 10 {
                0..=2 => 1,
                3..=4 => 2,
                5 => 3,
                _ => 1_000_000 + i,
            };
            tk.insert(key);
        }
        let top = tk.top();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 2);
        assert_eq!(top[2].0, 3);
        // Estimates are near the true shares of one window.
        let truth = [3 * window / 10, window / 5, window / 10];
        for ((_, est), t) in top.iter().zip(truth) {
            let re = (*est as f64 - t as f64).abs() / t as f64;
            assert!(re < 0.3, "estimate {est} vs {t}");
        }
    }

    #[test]
    fn expired_heavy_hitter_falls_out() {
        let window = 1u64 << 12;
        let mut tk = SlidingTopK::new(2, window, 1 << 20, 2);
        // Phase 1: key 7 dominates.
        for i in 0..window {
            tk.insert(if i % 2 == 0 { 7 } else { 1_000_000 + i });
        }
        assert_eq!(tk.top()[0].0, 7);
        // Phase 2: key 7 vanishes; key 9 dominates for several windows.
        for i in 0..6 * window {
            tk.insert(if i % 2 == 0 { 9 } else { 2_000_000 + i });
        }
        let top = tk.top();
        assert_eq!(top[0].0, 9);
        assert!(
            top.iter().all(|&(k, est)| k != 7 || est < window / 10),
            "expired heavy hitter still ranked: {top:?}"
        );
    }

    #[test]
    fn candidate_set_stays_bounded() {
        let mut tk = SlidingTopK::new(5, 1 << 10, 1 << 18, 3);
        for i in 0..50_000u64 {
            tk.insert(she_hash::mix64(i)); // all distinct
        }
        assert!(tk.candidates.len() <= tk.cap + 1);
        assert!(tk.top().len() <= 5);
    }
}
