//! The shared binary frame format: versioned, self-describing,
//! checksummed containers for persisted SHE state.
//!
//! One frame carries one serialized object (an engine, an adapter, a
//! server shard, a whole-server checkpoint — see [`kind`]) as a list of
//! typed, length-prefixed sections:
//!
//! ```text
//! magic "SHEF" | version u16 | kind u16 | n_sections u16
//! | n × (tag u16 | len u32 | payload)
//! | checksum u64 (FNV-1a over everything before it)
//! ```
//!
//! All integers are little-endian. Readers skip sections whose tag they
//! don't know (forward compatibility within a version) and reject frames
//! whose version they don't speak. The checksum makes torn or bit-flipped
//! state files a typed error instead of a misparse.
//!
//! This module also owns the one little-endian [`Reader`] cursor shared
//! by every decoder in the workspace (snapshots here, the wire protocol
//! in `she-server`).

/// Leading magic of every frame.
pub const MAGIC: [u8; 4] = *b"SHEF";

/// Format version this build writes and accepts.
pub const VERSION: u16 = 1;

/// Fixed header: magic + version + kind + section count.
const HEADER: usize = 4 + 2 + 2 + 2;

/// Trailing FNV-1a 64 checksum.
const CHECKSUM: usize = 8;

/// What a frame serializes. Decoders must check the kind: a Bloom-filter
/// snapshot restored into a bitmap would pass every geometry check and
/// silently answer garbage.
pub mod kind {
    /// A raw `She<S>` engine (no adapter semantics).
    pub const ENGINE: u16 = 0x0001;
    /// `SheBloomFilter`.
    pub const BF: u16 = 0x0002;
    /// `SheBitmap`.
    pub const BM: u16 = 0x0003;
    /// `SheCountMin`.
    pub const CM: u16 = 0x0004;
    /// `SheHyperLogLog`.
    pub const HLL: u16 = 0x0005;
    /// `SheMinHash`.
    pub const MH: u16 = 0x0006;
    /// `SheCountSketch`.
    pub const CS: u16 = 0x0007;
    /// `SoftClock<S>` (software-version engine).
    pub const SOFT: u16 = 0x0008;
    /// `SlidingTopK`.
    pub const TOPK: u16 = 0x0009;
    /// One she-server shard (nested structure frames).
    pub const SHARD: u16 = 0x0010;
    /// A whole-server checkpoint (engine config + all shard frames).
    pub const CHECKPOINT: u16 = 0x0011;
    /// One replication op-log record (sequence number + insert keys).
    pub const OPLOG: u16 = 0x0012;
    /// A replica bootstrap package (log position + nested checkpoint).
    pub const BOOTSTRAP: u16 = 0x0013;
}

/// Section tags. Tags may repeat within a frame (e.g. one `SHARD` section
/// per shard in a checkpoint); [`Frame::section`] returns the first,
/// [`Frame::sections`] all of them in order.
pub mod tag {
    /// Engine configuration (window, cycle, geometry).
    pub const CONFIG: u16 = 0x0001;
    /// Logical clock(s).
    pub const CLOCK: u16 = 0x0002;
    /// Per-group stored time marks, bit-packed.
    pub const MARKS: u16 = 0x0003;
    /// Raw cell words.
    pub const CELLS: u16 = 0x0004;
    /// Structure-specific parameters (e.g. top-k's `k`).
    pub const META: u16 = 0x0005;
    /// Operational counters (inserts/queries).
    pub const COUNTERS: u16 = 0x0006;
    /// Top-k candidate entries.
    pub const CANDIDATES: u16 = 0x0007;
    /// A nested frame (e.g. top-k's Count-Min sketch).
    pub const SKETCH: u16 = 0x0008;
    /// Shard frame: nested Bloom filter.
    pub const STRUCT_BF: u16 = 0x0010;
    /// Shard frame: nested bitmap.
    pub const STRUCT_BM: u16 = 0x0011;
    /// Shard frame: nested Count-Min.
    pub const STRUCT_CM: u16 = 0x0012;
    /// Shard frame: nested MinHash, stream A.
    pub const STRUCT_MH_A: u16 = 0x0013;
    /// Shard frame: nested MinHash, stream B.
    pub const STRUCT_MH_B: u16 = 0x0014;
    /// Checkpoint frame: one nested shard frame (repeated, in shard order).
    pub const SHARD: u16 = 0x0020;
    /// Op-log record: raw little-endian `u64` insert keys.
    pub const KEYS: u16 = 0x0021;
}

/// Why a frame failed to parse. Every malformed input maps here — parsing
/// never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer does not start with the `SHEF` magic.
    BadMagic,
    /// The buffer ended before the declared layout was complete.
    Truncated,
    /// The frame was written by a format version this build doesn't speak.
    BadVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The trailing checksum disagrees with the content (corruption).
    BadChecksum,
    /// Bytes remain after the declared layout.
    TrailingBytes,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a SHE frame (bad magic)"),
            Self::Truncated => write!(f, "frame truncated"),
            Self::BadVersion { found } => {
                write!(f, "unsupported frame version {found} (this build speaks {VERSION})")
            }
            Self::BadChecksum => write!(f, "frame checksum mismatch (corrupt state)"),
            Self::TrailingBytes => write!(f, "trailing bytes after frame content"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a 64 over `bytes` — dependency-free, good enough to catch torn
/// writes and bit flips (this is an integrity check, not authentication).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian cursor over a byte slice — the workspace's single,
/// dependency-free stand-in for `bytes::Buf`, shared by the snapshot
/// codec and the she-server wire protocol.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() < n {
            return Err(FrameError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Consume one byte.
    pub fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    /// Consume exactly `N` bytes as an array (the checked core of the
    /// fixed-width readers: the length test lives in `take`, so no
    /// panicking conversion is needed afterwards).
    fn array<const N: usize>(&mut self) -> Result<[u8; N], FrameError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    /// Consume a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Consume a little-endian `f64` (bit pattern).
    pub fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Assert everything was consumed.
    pub fn finish(self) -> Result<(), FrameError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

/// Incremental frame builder: header, sections, then checksum.
#[derive(Debug)]
pub struct FrameWriter {
    buf: Vec<u8>,
    sections: u16,
}

impl FrameWriter {
    /// Start a frame of the given [`kind`].
    pub fn new(kind: u16) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.to_le_bytes());
        buf.extend_from_slice(&0u16.to_le_bytes()); // section count, patched
        Self { buf, sections: 0 }
    }

    /// Append one section. Panics (via the asserts) on a payload over
    /// `u32::MAX` bytes or a 65536th section — both are structurally
    /// impossible for the fixed section layouts the codecs emit, and a
    /// programming error rather than an input error if ever hit.
    pub fn section(&mut self, tag: u16, payload: &[u8]) {
        let len = u32::try_from(payload.len());
        assert!(len.is_ok(), "section exceeds u32 length");
        let next = self.sections.checked_add(1);
        assert!(next.is_some(), "too many sections");
        self.sections = next.unwrap_or(u16::MAX); // audit:allow(panic): asserted Some above
        self.buf.reserve(6 + payload.len());
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf.extend_from_slice(&len.unwrap_or(u32::MAX).to_le_bytes()); // audit:allow(panic): asserted Ok above
        self.buf.extend_from_slice(payload);
    }

    /// Patch the section count, append the checksum, return the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[8..10].copy_from_slice(&self.sections.to_le_bytes());
        let sum = checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// A parsed frame: kind plus borrowed sections.
#[derive(Debug)]
pub struct Frame<'a> {
    /// The frame's [`kind`].
    pub kind: u16,
    sections: Vec<(u16, &'a [u8])>,
}

impl<'a> Frame<'a> {
    /// Parse and integrity-check a frame. Checks run magic → version →
    /// checksum → layout so the caller gets the most specific error.
    pub fn parse(buf: &'a [u8]) -> Result<Frame<'a>, FrameError> {
        if buf.len() < 4 {
            return Err(FrameError::Truncated);
        }
        if buf[..4] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        if buf.len() < HEADER + CHECKSUM {
            return Err(FrameError::Truncated);
        }
        let mut hdr = Reader::new(&buf[4..HEADER]);
        let version = hdr.u16().map_err(|_| FrameError::Truncated)?;
        if version != VERSION {
            return Err(FrameError::BadVersion { found: version });
        }
        let body = &buf[..buf.len() - CHECKSUM];
        let mut tail = Reader::new(&buf[buf.len() - CHECKSUM..]);
        let stored = tail.u64().map_err(|_| FrameError::Truncated)?;
        if checksum(body) != stored {
            return Err(FrameError::BadChecksum);
        }
        let kind = hdr.u16().map_err(|_| FrameError::Truncated)?;
        let n = hdr.u16().map_err(|_| FrameError::Truncated)?;
        let mut r = Reader::new(&body[HEADER..]);
        let mut sections = Vec::with_capacity(usize::from(n));
        for _ in 0..n {
            let tag = r.u16()?;
            let len = crate::convert::usize_of(u64::from(r.u32()?));
            sections.push((tag, r.take(len)?));
        }
        r.finish()?;
        Ok(Frame { kind, sections })
    }

    /// First section with this tag, if any.
    pub fn section(&self, tag: u16) -> Option<&'a [u8]> {
        self.sections.iter().find(|(t, _)| *t == tag).map(|&(_, s)| s)
    }

    /// All sections with this tag, in frame order.
    pub fn sections(&self, tag: u16) -> impl Iterator<Item = &'a [u8]> + '_ {
        self.sections.iter().filter(move |(t, _)| *t == tag).map(|&(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = FrameWriter::new(kind::ENGINE);
        w.section(tag::CLOCK, &7u64.to_le_bytes());
        w.section(tag::CELLS, b"abcdef");
        w.section(tag::CELLS, b"second");
        w.finish()
    }

    #[test]
    fn roundtrip_with_repeated_tags() {
        let buf = sample();
        let f = Frame::parse(&buf).unwrap();
        assert_eq!(f.kind, kind::ENGINE);
        assert_eq!(f.section(tag::CLOCK), Some(&7u64.to_le_bytes()[..]));
        let cells: Vec<_> = f.sections(tag::CELLS).collect();
        assert_eq!(cells, vec![&b"abcdef"[..], &b"second"[..]]);
        assert_eq!(f.section(tag::MARKS), None);
    }

    #[test]
    fn empty_frame_roundtrips() {
        let buf = FrameWriter::new(kind::SHARD).finish();
        let f = Frame::parse(&buf).unwrap();
        assert_eq!(f.kind, kind::SHARD);
        assert_eq!(f.sections(tag::SHARD).count(), 0);
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut buf = sample();
        buf[0] = b'X';
        assert!(matches!(Frame::parse(&buf), Err(FrameError::BadMagic)));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut buf = sample();
        buf[4] = 0xFE;
        match Frame::parse(&buf) {
            Err(FrameError::BadVersion { found }) => assert_eq!(found, 0x00FE),
            other => panic!("expected BadVersion, got {:?}", other.err()),
        }
    }

    #[test]
    fn flipped_byte_fails_checksum() {
        let buf = sample();
        // Every single-byte corruption outside magic/version must be caught
        // by the checksum (magic/version flips get their own errors).
        for i in 6..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            assert!(Frame::parse(&bad).is_err(), "flip at {i} accepted");
        }
    }

    #[test]
    fn every_truncation_rejected() {
        let buf = sample();
        for cut in 0..buf.len() {
            assert!(Frame::parse(&buf[..cut]).is_err(), "truncation to {cut} accepted");
        }
    }

    #[test]
    fn checksum_is_stable() {
        // Pin the FNV-1a constants: a silent change would orphan every
        // state file in the wild.
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
