//! SHE-BF: sliding-window membership (Section 4.2).
//!
//! Insertion sets the `k` hashed bits (after `CheckGroup`). Queries ignore
//! hashed bits whose group is *young* (`age < N`) — they may have lost
//! in-window items to cleaning — and answer "absent" iff some mature hashed
//! bit is zero. Like the original Bloom filter, SHE-BF therefore has
//! one-sided error: no false negatives for items inside the window, only
//! false positives (hash collisions + aged information).

use crate::{analysis, She, SheConfig};
use she_hash::HashKey;
use she_sketch::{BloomSpec, CellUpdate, CsmSpec};

/// Sliding-window Bloom filter (hardware version of SHE).
#[derive(Debug, Clone)]
pub struct SheBloomFilter {
    engine: She<BloomSpec>,
    scratch: Vec<CellUpdate>,
}

/// Builder for [`SheBloomFilter`] with the paper's §7.1 defaults
/// (`k = 8` hash functions, `w = 64`, α from Eq. 2 when derivable, else 3).
#[derive(Debug, Clone)]
pub struct SheBloomFilterBuilder {
    window: u64,
    memory_bits: usize,
    k: usize,
    alpha: Option<f64>,
    group_cells: usize,
    seed: u32,
}

impl Default for SheBloomFilterBuilder {
    fn default() -> Self {
        Self {
            window: 1 << 16,
            memory_bits: 64 << 13, // 64 KB
            k: 8,
            alpha: None,
            group_cells: 64,
            seed: 1,
        }
    }
}

impl SheBloomFilterBuilder {
    /// Sliding-window size `N` in items.
    pub fn window(mut self, n: u64) -> Self {
        self.window = n;
        self
    }

    /// Memory budget in bytes (bit-array payload).
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.memory_bits = bytes * 8;
        self
    }

    /// Number of hash functions `k`.
    pub fn hash_functions(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Override α (default: the Eq. 2 optimum for an all-distinct window).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Cells per group `w`.
    pub fn group_cells(mut self, w: usize) -> Self {
        self.group_cells = w;
        self
    }

    /// Hash seed.
    pub fn seed(mut self, seed: u32) -> Self {
        self.seed = seed;
        self
    }

    /// Build the filter.
    pub fn build(self) -> SheBloomFilter {
        let m = self.memory_bits.max(self.group_cells);
        let alpha = self.alpha.unwrap_or_else(|| {
            // Eq. 2 with the conservative all-distinct window C = N.
            analysis::optimal_alpha_bf(m, self.k, self.window as usize)
        });
        let cfg = SheConfig::builder()
            .window(self.window)
            .alpha(alpha)
            .group_cells(self.group_cells.min(m))
            .build();
        SheBloomFilter {
            engine: She::new(BloomSpec::new(m, self.k, self.seed), cfg),
            scratch: Vec::new(),
        }
    }
}

impl SheBloomFilter {
    /// Start building with the paper defaults.
    pub fn builder() -> SheBloomFilterBuilder {
        SheBloomFilterBuilder::default()
    }

    /// Insert an item at the next time step.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.engine.insert(key);
    }

    /// Sliding-window membership query.
    ///
    /// Takes `&mut self` because queries run `CheckGroup` on the hashed
    /// groups (Algorithm 1), possibly cleaning them — exactly as on the
    /// hardware pipeline.
    pub fn contains<K: HashKey + ?Sized>(&mut self, key: &K) -> bool {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.engine.updates_for(key, &mut scratch);
        let mut present = true;
        for u in &scratch {
            let gid = self.engine.group_of(u.index);
            if !self.engine.check_mature(gid) {
                continue; // young bit: ignored (age-sensitive selection)
            }
            if self.engine.peek_cell(u.index) == 0 {
                present = false;
                break;
            }
        }
        self.scratch = scratch;
        present
    }

    /// Sliding-window membership, **frozen read**: answers exactly what
    /// [`SheBloomFilter::contains`] would on the same state, without
    /// running `CheckGroup` — a hashed bit whose group is due for
    /// cleaning reads as zero ([`She::peek_cell_effective`]), and
    /// maturity is observed purely. Because nothing mutates, two engines
    /// with identical *insert* histories answer identically regardless
    /// of how differently they have been queried — the property the
    /// read-path mirror relies on.
    pub fn contains_frozen<K: HashKey + ?Sized>(&self, key: &K) -> bool {
        let mut ups = Vec::with_capacity(self.engine.spec().k());
        self.engine.updates_for(key, &mut ups);
        for u in &ups {
            let gid = u.group(self.engine.config().group_cells);
            if !self.engine.observe_mature(gid) {
                continue; // young bit: ignored (age-sensitive selection)
            }
            if self.engine.peek_cell_effective(u.index) == 0 {
                return false;
            }
        }
        true
    }

    /// Time-mark signature of the groups `key` hashes to (see
    /// [`She::mark_sig_of`]): changes iff one of those groups' marks
    /// flips, i.e. iff a future [`SheBloomFilter::contains`] could see a
    /// cleaning this key's cached answer predates. Pure.
    pub fn mark_sig<K: HashKey + ?Sized>(&self, key: &K) -> u64 {
        let mut ups = Vec::with_capacity(self.engine.spec().k());
        self.engine.updates_for(key, &mut ups);
        self.engine.mark_sig_of(&ups)
    }

    /// Advance logical time without inserting.
    #[inline]
    pub fn advance_time(&mut self, dt: u64) {
        self.engine.advance_time(dt);
    }

    /// The underlying generic engine (ages, groups, config).
    #[inline]
    pub fn engine(&self) -> &She<BloomSpec> {
        &self.engine
    }

    /// Mutable engine access for the snapshot layer.
    pub(crate) fn engine_mut(&mut self) -> &mut She<BloomSpec> {
        &mut self.engine
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.engine.now()
    }

    /// Memory footprint in bits (bit array + marks + item counter).
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.engine.memory_bits()
    }

    /// Reset to empty at time zero.
    pub fn clear(&mut self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(window: u64, kb: usize, alpha: f64) -> SheBloomFilter {
        SheBloomFilter::builder().window(window).memory_bytes(kb << 10).alpha(alpha).seed(3).build()
    }

    #[test]
    fn one_sided_error_within_window() {
        let mut bf = filter(1 << 12, 32, 3.0);
        for i in 0..(3 << 12) as u64 {
            bf.insert(&i);
        }
        // Every item of the last window must be reported present.
        let lo = (3 << 12) - (1 << 12);
        for i in lo..(3 << 12) as u64 {
            assert!(bf.contains(&i), "false negative on in-window item {i}");
        }
    }

    #[test]
    fn expired_items_are_eventually_rejected() {
        let mut bf = filter(1 << 10, 32, 3.0);
        bf.insert(&424242u64);
        // Push the window far past the item with fresh distinct keys.
        for i in 0..(40 << 10) as u64 {
            bf.insert(&(i + 1_000_000));
        }
        assert!(!bf.contains(&424242u64), "item older than Tcycle must expire");
    }

    #[test]
    fn fpr_is_small_with_adequate_memory() {
        let window = 1u64 << 12;
        let mut bf = filter(window, 64, 3.0);
        for i in 0..8 * window {
            bf.insert(&i);
        }
        let mut fp = 0;
        let probes = 10_000u64;
        for i in 0..probes {
            if bf.contains(&(i + 10_000_000)) {
                fp += 1;
            }
        }
        let fpr = fp as f64 / probes as f64;
        assert!(fpr < 0.01, "fpr {fpr} too high for 64 KB / 4K window");
    }

    #[test]
    fn default_alpha_comes_from_eq2() {
        let bf = SheBloomFilter::builder().window(1 << 12).memory_bytes(8 << 10).build();
        let alpha = bf.engine().config().alpha();
        assert!(alpha > 0.0 && alpha < 50.0, "alpha {alpha} out of sane range");
    }

    #[test]
    fn frozen_contains_matches_mutating_contains() {
        // Seeded random insert history; at every probe point the frozen
        // read must equal what contains() answers on a same-history twin
        // (probing the twin first so its query-time cleanings cannot
        // influence the comparison).
        let mut a = filter(1 << 10, 8, 1.5);
        let mut b = filter(1 << 10, 8, 1.5);
        let mut x = 0x9E37_79B9u64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = x % 4096;
            a.insert(&key);
            b.insert(&key);
            if i % 257 == 0 {
                for probe in [key, x % 8192, i] {
                    assert_eq!(
                        a.contains_frozen(&probe),
                        b.contains(&probe),
                        "probe {probe} at step {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_reads_never_mutate() {
        let mut bf = filter(1 << 10, 8, 1.5);
        for i in 0..5_000u64 {
            bf.insert(&i);
        }
        bf.advance_time(bf.engine().config().t_cycle / 2);
        let before: Vec<u64> = (0..64).map(|i| bf.engine().peek_cell(i)).collect();
        for probe in 0..2_000u64 {
            let _ = bf.contains_frozen(&probe);
            let _ = bf.mark_sig(&probe);
        }
        let after: Vec<u64> = (0..64).map(|i| bf.engine().peek_cell(i)).collect();
        assert_eq!(before, after);
        assert_eq!(bf.now(), 5_000 + bf.engine().config().t_cycle / 2);
    }

    #[test]
    fn clear_forgets_everything() {
        let mut bf = filter(1 << 10, 8, 2.0);
        for i in 0..5000u64 {
            bf.insert(&i);
        }
        bf.clear();
        assert_eq!(bf.now(), 0);
        let mut hits = 0;
        for i in 4000..5000u64 {
            if bf.contains(&i) {
                hits += 1;
            }
        }
        // After clear, at t=0 every group has age < N... except offset
        // wrap-around makes most groups "aged" with zeroed cells, so items
        // are rejected; young groups answer vacuously-true. Either way the
        // sketch holds no data: allow only vacuous positives.
        assert!(hits <= 1000);
    }
}
