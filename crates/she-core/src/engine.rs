//! The generic hardware-version SHE engine (Section 3.3, Algorithm 1).
//!
//! The cell array of a CSM algorithm is split into `G` groups of `w` cells.
//! Group `gid` carries:
//!
//! * a static time offset `d_gid = -floor(Tcycle · gid / G)`, spreading the
//!   groups' cleaning deadlines evenly over one cycle, and
//! * a stored 1-bit time mark `m[gid]`.
//!
//! The *current* mark of a group is `floor((t + d_gid)/Tcycle) mod 2` — it
//! flips exactly once per `Tcycle`. When an operation touches a group whose
//! stored mark differs from the current mark, the group is reset to zero and
//! the mark updated (`CheckGroup`); a group untouched for a full cycle keeps
//! stale data, which is the on-demand-cleaning error analyzed in §5.1.
//!
//! A group's **age** is `(t + d_gid) mod Tcycle`: the time since its last
//! *scheduled* cleaning. Ages classify cells as young (`age < N`), perfect
//! (`age == N`), or aged (`age > N`) — the basis of age-sensitive selection.

use crate::SheConfig;
use she_hash::HashKey;
use she_sketch::{CellUpdate, CsmSpec, PackedArray};

/// Age classification of a cell/group at query time (Sec. 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellAge {
    /// Cleaned more recently than one window ago: records a *smaller*
    /// window. Using it risks false negatives / underestimation.
    Young,
    /// Cleaned exactly one window ago: records the sliding window exactly.
    Perfect,
    /// Cleaned more than one window ago: records a *larger* window. Using it
    /// risks false positives / overestimation but never misses in-window
    /// items.
    Aged,
}

/// The generic sliding-window engine wrapping any [`CsmSpec`].
///
/// The five task adapters ([`crate::SheBloomFilter`] etc.) own a `She<S>` and
/// add their task-specific query strategy on top.
#[derive(Debug, Clone)]
pub struct She<S: CsmSpec> {
    spec: S,
    cfg: SheConfig,
    cells: PackedArray,
    /// Per-group metadata, kept together so the insertion fast path touches
    /// a single cache line per hashed group.
    groups: Vec<GroupMeta>,
    /// `floor(Tcycle · gid / G)` per group (the negated offset `-d_gid`).
    /// Only read on query paths; the insert path works off `GroupMeta`.
    neg_offsets: Vec<u64>,
    /// Item counter — the logical clock `t_cur`. Counts insertions, so a
    /// count-based window of `N` items is `N` time units (the paper assumes
    /// uniform arrival for time-based windows).
    t: u64,
    scratch: Vec<CellUpdate>,
}

/// A counter snapshot of one engine, cheap to take and `Copy` — the unit
/// a serving layer (`she-server`) reports per shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Logical time (items inserted so far).
    pub now: u64,
    /// Configured window length.
    pub window: u64,
    /// Number of time-mark groups `G`.
    pub num_groups: usize,
    /// Total footprint in bits (cells + marks + counter).
    pub memory_bits: usize,
}

/// Per-group pipeline state packed into one word: the stored time mark
/// (what the hardware keeps in its mark memory), a lazily-maintained cache
/// of the *current* mark (which the FPGA computes combinationally each
/// cycle but a CPU would otherwise re-derive with a 128-bit division per
/// insertion), and the time of the next mark flip. One `u64` per group
/// keeps the metadata array at 1 bit per cell for `w = 64`, so the
/// insertion fast path stays cache-resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GroupMeta(u64);

const STORED_BIT: u64 = 1 << 63;
const CUR_BIT: u64 = 1 << 62;
const FLIP_MASK: u64 = CUR_BIT - 1;

impl GroupMeta {
    #[inline]
    fn new(next_flip: u64, stored_mark: bool, cur_mark: bool) -> Self {
        debug_assert!(next_flip <= FLIP_MASK, "clock exceeds 2^62");
        Self(
            next_flip
                | if stored_mark { STORED_BIT } else { 0 }
                | if cur_mark { CUR_BIT } else { 0 },
        )
    }
    #[inline]
    fn next_flip(self) -> u64 {
        self.0 & FLIP_MASK
    }
    #[inline]
    fn stored_mark(self) -> bool {
        self.0 & STORED_BIT != 0
    }
    #[inline]
    fn cur_mark(self) -> bool {
        self.0 & CUR_BIT != 0
    }
    #[inline]
    fn set_stored(&mut self, v: bool) {
        self.0 = (self.0 & !STORED_BIT) | if v { STORED_BIT } else { 0 };
    }
}

impl<S: CsmSpec> She<S> {
    /// Wrap `spec` with sliding-window behaviour per `cfg`.
    pub fn new(spec: S, cfg: SheConfig) -> Self {
        cfg.validate();
        let m = spec.num_cells();
        assert!(
            cfg.group_cells <= m,
            "group size w={} exceeds the cell count M={m}",
            cfg.group_cells
        );
        let g = m.div_ceil(cfg.group_cells);
        let neg_offsets: Vec<u64> =
            (0..g).map(|gid| ((cfg.t_cycle as u128 * gid as u128) / g as u128) as u64).collect();
        let cells = PackedArray::new(m, spec.cell_bits());
        // Stored marks start equal to the current marks at t = 0 so that the
        // zeroed cells are not spuriously "due" for cleaning. Each group's
        // mark next flips at its offset (mod Tcycle), strictly after t = 0.
        let mut engine = Self {
            spec,
            cfg,
            cells,
            groups: vec![GroupMeta::new(0, false, false); g],
            neg_offsets,
            t: 0,
            scratch: Vec::new(),
        };
        for gid in 0..g {
            let mark = engine.current_mark(gid);
            let ofs = engine.neg_offsets[gid];
            engine.groups[gid] =
                GroupMeta::new(if ofs > 0 { ofs } else { engine.cfg.t_cycle }, mark, mark);
        }
        engine
    }

    /// The wrapped CSM spec.
    #[inline]
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// The sliding-window configuration.
    #[inline]
    pub fn config(&self) -> &SheConfig {
        &self.cfg
    }

    /// Number of groups `G`.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Current logical time (number of insertions so far).
    #[inline]
    pub fn now(&self) -> u64 {
        self.t
    }

    /// Advance the logical clock without inserting (time-based windows with
    /// idle periods).
    #[inline]
    pub fn advance_time(&mut self, dt: u64) {
        self.t += dt;
    }

    /// Memory footprint in bits: cells plus one mark bit per group plus the
    /// 32-bit item counter (the FPGA implementation's register).
    pub fn memory_bits(&self) -> usize {
        self.cells.memory_bits() + self.num_groups() + 32
    }

    /// One-call counter snapshot — what a serving layer exports per shard.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            now: self.t,
            window: self.cfg.window,
            num_groups: self.num_groups(),
            memory_bits: self.memory_bits(),
        }
    }

    /// Group id owning cell `index`.
    #[inline]
    pub fn group_of(&self, index: usize) -> usize {
        index / self.cfg.group_cells
    }

    /// First cell index of group `gid`.
    #[inline]
    fn group_start(&self, gid: usize) -> usize {
        gid * self.cfg.group_cells
    }

    /// Number of cells in group `gid` (the last group may be short).
    #[inline]
    fn group_len(&self, gid: usize) -> usize {
        let start = self.group_start(gid);
        self.cfg.group_cells.min(self.cells.len() - start)
    }

    /// The current time mark `floor((t + d_gid)/Tcycle) mod 2`.
    #[inline]
    fn current_mark(&self, gid: usize) -> bool {
        let tc = self.cfg.t_cycle as i128;
        let shifted = self.t as i128 - self.neg_offsets[gid] as i128;
        shifted.div_euclid(tc).rem_euclid(2) == 1
    }

    /// The group's age: time since its last scheduled cleaning,
    /// `(t + d_gid) mod Tcycle ∈ [0, Tcycle)`.
    #[inline]
    pub fn group_age(&self, gid: usize) -> u64 {
        let tc = self.cfg.t_cycle as i128;
        let shifted = self.t as i128 - self.neg_offsets[gid] as i128;
        shifted.rem_euclid(tc) as u64
    }

    /// The group's **mark epoch**: how many mark flips group `gid` has
    /// scheduled up to (and including) the current clock, counted from
    /// `t = 0`. The epoch increments by exactly one at each flip instant
    /// `t = ofs_gid + j·Tcycle`, so two observations with equal epochs
    /// bracket *no* flip of this group — the invariant the read path's
    /// [`MarkCache`](crate) signatures rest on. Pure: never cleans.
    #[inline]
    pub fn mark_epoch(&self, gid: usize) -> u64 {
        let tc = self.cfg.t_cycle;
        // ofs < Tcycle, so t + tc - ofs never underflows; equals
        // floor((t - ofs)/Tcycle) + 1 for every t ≥ 0 (also t < ofs).
        (self.t + tc - self.neg_offsets[gid]) / tc
    }

    /// Observe the group's *current* mark without mutating anything —
    /// the pure counterpart of the cached mark [`She::check_group`]
    /// refreshes. Equal to `current_mark(gid)` on every state.
    #[inline]
    pub fn observe_mark(&self, gid: usize) -> bool {
        self.mark_epoch(gid).is_multiple_of(2)
    }

    /// Whether group `gid` is **due** for cleaning: its stored mark
    /// disagrees with the observed current mark, so the next
    /// [`She::check_group`] will zero its cells. Pure.
    #[inline]
    pub fn group_due(&self, gid: usize) -> bool {
        self.groups[gid].stored_mark() != self.observe_mark(gid)
    }

    /// Whether the group is mature (`age ≥ N`) — the pure half of
    /// [`She::check_mature`]: maturity depends only on the clock, never
    /// on whether the lazy cleaning has run yet.
    #[inline]
    pub fn observe_mature(&self, gid: usize) -> bool {
        self.group_age(gid) >= self.cfg.window
    }

    /// Read a cell *as the next `check_group` would leave it*: zero when
    /// the owning group is due for cleaning, the raw stored value
    /// otherwise. Pure — frozen-read query variants use this so two
    /// engines with identical insert histories answer identically no
    /// matter how differently they have been queried.
    #[inline]
    pub fn peek_cell_effective(&self, index: usize) -> u64 {
        if self.group_due(self.group_of(index)) {
            0
        } else {
            self.cells.get(index)
        }
    }

    /// Fold a 64-bit **time-mark signature** over the groups the hashed
    /// cells of `updates` touch. The signature changes whenever any
    /// touched group's *observation context* changes: its
    /// [`She::mark_epoch`] steps (a cleaning the answer predates becomes
    /// possible) or its [`She::observe_mature`] bit flips (the query's
    /// age-sensitive cell selection changes). Between those instants it is
    /// stable no matter how many inserts land — the invalidation key of
    /// the read path's `MarkCache`. A wrapping sum of per-group mixes, so
    /// a group hashed twice still contributes. Pure.
    pub fn mark_sig_of(&self, updates: &[CellUpdate]) -> u64 {
        let mut sig = 0u64;
        for u in updates {
            let gid = u.group(self.cfg.group_cells);
            let epoch = (self.mark_epoch(gid) << 1) | u64::from(self.observe_mature(gid));
            sig = sig
                .wrapping_add(she_hash::mix64(crate::convert::u64_of(gid).rotate_left(32) ^ epoch));
        }
        sig
    }

    /// Age of the group owning `index` (cells share their group's age).
    #[inline]
    pub fn cell_age(&self, index: usize) -> u64 {
        self.group_age(self.group_of(index))
    }

    /// Classify a group by its age relative to the window `N`.
    pub fn classify(&self, gid: usize) -> CellAge {
        let age = self.group_age(gid);
        match age.cmp(&self.cfg.window) {
            std::cmp::Ordering::Less => CellAge::Young,
            std::cmp::Ordering::Equal => CellAge::Perfect,
            std::cmp::Ordering::Greater => CellAge::Aged,
        }
    }

    /// Bring the cached current mark of `gid` up to the present.
    #[inline]
    fn refresh_cur_mark(&mut self, gid: usize) -> bool {
        let meta = self.groups[gid];
        if self.t < meta.next_flip() {
            return meta.cur_mark(); // fast path: no flip since last look
        }
        let tc = self.cfg.t_cycle;
        let flips = (self.t - meta.next_flip()) / tc + 1;
        let cur = meta.cur_mark() ^ (flips % 2 == 1);
        let updated = GroupMeta::new(meta.next_flip() + flips * tc, meta.stored_mark(), cur);
        self.groups[gid] = updated;
        cur
    }

    /// `CheckGroup` of Algorithm 1: lazily reset the group if its stored
    /// mark disagrees with the current mark. Returns true if a reset
    /// happened.
    pub fn check_group(&mut self, gid: usize) -> bool {
        let cur = self.refresh_cur_mark(gid);
        debug_assert_eq!(cur, self.current_mark(gid), "mark cache out of sync");
        if self.groups[gid].stored_mark() != cur {
            self.groups[gid].set_stored(cur);
            let (start, len) = (self.group_start(gid), self.group_len(gid));
            self.cells.clear_range(start, len);
            true
        } else {
            false
        }
    }

    /// `CheckMature` of Algorithm 1: check the group, then report whether it
    /// is mature (perfect or aged, `age ≥ N`) — usable by one-sided-error
    /// queries.
    pub fn check_mature(&mut self, gid: usize) -> bool {
        self.check_group(gid);
        self.group_age(gid) >= self.cfg.window
    }

    /// Whether the group's age lies in the legal range `[βN, Tcycle)` used
    /// by two-sided estimators. Checks (and possibly cleans) the group
    /// first.
    pub fn check_legal(&mut self, gid: usize) -> bool {
        self.check_group(gid);
        self.group_age(gid) as f64 >= self.cfg.beta * self.cfg.window as f64
    }

    /// Insert one item: advance the clock, then for every hashed cell run
    /// `CheckGroup` on its group and apply the update function `F`.
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.t += 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        self.spec.updates(key, &mut scratch);
        for u in &scratch {
            self.check_group(self.group_of(u.index));
            let old = self.cells.get(u.index);
            self.cells.set(u.index, self.spec.apply(u.operand, old));
        }
        self.scratch = scratch;
    }

    /// Read a cell *after* checking its group (query-path accessor).
    pub fn read_cell(&mut self, index: usize) -> u64 {
        self.check_group(self.group_of(index));
        self.cells.get(index)
    }

    /// Read a cell without touching marks (test/debug accessor; may observe
    /// stale pre-cleaning data).
    #[inline]
    pub fn peek_cell(&self, index: usize) -> u64 {
        self.cells.get(index)
    }

    /// Check every group (a query-time sweep used by whole-array estimators)
    /// and then visit each group as `(gid, age, cell values)`.
    pub fn for_each_group(&mut self, mut f: impl FnMut(usize, u64, &mut dyn Iterator<Item = u64>)) {
        for gid in 0..self.num_groups() {
            self.check_group(gid);
            let age = self.group_age(gid);
            let (start, len) = (self.group_start(gid), self.group_len(gid));
            let cells = &self.cells;
            let mut iter = (start..start + len).map(move |i| cells.get(i));
            f(gid, age, &mut iter);
        }
    }

    /// Compute the hashed cell updates for `key` into `out` (query helper
    /// shared by the adapters).
    #[inline]
    pub fn updates_for<K: HashKey + ?Sized>(&self, key: &K, out: &mut Vec<CellUpdate>) {
        self.spec.updates(key, out);
    }

    /// Snapshot support: the clock and the stored marks.
    pub(crate) fn snapshot_state(&self) -> (u64, Vec<bool>, &PackedArray) {
        (self.t, self.groups.iter().map(|m| m.stored_mark()).collect(), &self.cells)
    }

    /// Snapshot support: restore `(clock, stored marks, cell words)` and
    /// rebuild the lazy mark caches.
    pub(crate) fn restore_state(&mut self, t: u64, marks: &[bool], words: &[u64]) {
        assert_eq!(marks.len(), self.groups.len());
        self.t = t;
        self.cells.copy_from_words(words);
        let tc = self.cfg.t_cycle;
        for (gid, &stored) in marks.iter().enumerate() {
            let cur = self.current_mark(gid);
            // Next flip: the smallest `ofs + j·Tcycle` strictly greater
            // than `t`.
            let ofs = self.neg_offsets[gid];
            let j = (self.t + tc - ofs) / tc; // ≥ 1 since t ≥ 0, ofs < Tc
            self.groups[gid] = GroupMeta::new(ofs + j * tc, stored, cur);
        }
    }

    /// Snapshot support: merge another engine's `(clock, stored marks,
    /// cell words)` into this one cell-wise under `mode`.
    ///
    /// The clock advances to `max(t, t_other)`. Every local group is
    /// first `CheckGroup`ed at the merged time (cleaning it if due, and
    /// leaving its stored mark equal to its current mark); the other
    /// state's group is then included iff *its* stored mark also equals
    /// the current mark — a group whose mark disagrees is due for
    /// cleaning and would contribute only expired cells. Because each
    /// side's contribution is "its live cells, else zero" and every
    /// [`MergeMode`] operator is commutative with zero as identity, the
    /// merge commutes cell-for-cell.
    pub(crate) fn merge_state(
        &mut self,
        t_other: u64,
        marks_other: &[bool],
        words_other: &[u64],
        mode: crate::snapshot::MergeMode,
    ) {
        assert_eq!(marks_other.len(), self.groups.len());
        self.t = self.t.max(t_other);
        let mut other = PackedArray::new(self.cells.len(), self.cells.cell_bits());
        other.copy_from_words(words_other);
        for (gid, &mark_other) in marks_other.iter().enumerate() {
            self.check_group(gid);
            let cur = self.groups[gid].stored_mark();
            if mark_other != cur {
                continue; // other's group is due for cleaning: all expired
            }
            let (start, len) = (self.group_start(gid), self.group_len(gid));
            for i in start..start + len {
                let merged = mode.apply(self.cells.get(i), other.get(i));
                self.cells.set(i, merged);
            }
        }
    }

    /// Reset to the empty state at time zero.
    pub fn clear(&mut self) {
        self.cells.clear();
        self.t = 0;
        for gid in 0..self.groups.len() {
            let mark = self.current_mark(gid);
            let ofs = self.neg_offsets[gid];
            self.groups[gid] =
                GroupMeta::new(if ofs > 0 { ofs } else { self.cfg.t_cycle }, mark, mark);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use she_sketch::BloomSpec;

    fn tiny(window: u64, alpha: f64, m: usize, w: usize) -> She<BloomSpec> {
        let cfg = SheConfig::builder().window(window).alpha(alpha).group_cells(w).build();
        She::new(BloomSpec::new(m, 2, 42), cfg)
    }

    #[test]
    fn ages_are_spread_over_the_cycle() {
        let s = tiny(100, 0.5, 512, 64); // Tcycle = 150, G = 8
        let mut ages: Vec<u64> = (0..s.num_groups()).map(|g| s.group_age(g)).collect();
        // At t = 0 group 0 has age 0; the offsets spread the 8 groups' ages
        // evenly over [0, Tcycle) with gaps of ~Tcycle/G.
        assert_eq!(ages[0], 0);
        assert!(ages.iter().all(|&a| a < 150));
        ages.sort_unstable();
        for w in ages.windows(2) {
            let gap = w[1] - w[0];
            assert!((17..=20).contains(&gap), "gap {gap}");
        }
    }

    #[test]
    fn age_advances_with_time_and_wraps() {
        let mut s = tiny(100, 0.5, 512, 64);
        let g = 3;
        let a0 = s.group_age(g);
        s.advance_time(10);
        assert_eq!(s.group_age(g), (a0 + 10) % 150);
        s.advance_time(150);
        assert_eq!(s.group_age(g), (a0 + 160) % 150);
    }

    #[test]
    fn mark_flips_once_per_cycle() {
        let mut s = tiny(100, 0.5, 512, 64);
        let g = 2;
        let mut flips = 0;
        let mut prev = s.current_mark(g);
        for _ in 0..600 {
            s.advance_time(1);
            let cur = s.current_mark(g);
            if cur != prev {
                flips += 1;
                prev = cur;
            }
        }
        assert_eq!(flips, 4, "600 time units = 4 cycles of 150");
    }

    #[test]
    fn check_group_resets_exactly_when_mark_flips() {
        let mut s = tiny(100, 0.5, 512, 64);
        // Dirty a cell in group 0 directly through an insert whose hash we
        // locate afterwards.
        s.insert(&7u64);
        let mut ups = Vec::new();
        s.updates_for(&7u64, &mut ups);
        let idx = ups[0].index;
        let gid = s.group_of(idx);
        assert_eq!(s.peek_cell(idx), 1);
        // No flip yet: check_group is a no-op.
        assert!(!s.check_group(gid));
        assert_eq!(s.peek_cell(idx), 1);
        // Jump past the group's next cleaning deadline: mark flips, reset.
        s.advance_time(s.config().t_cycle);
        assert!(s.check_group(gid));
        assert_eq!(s.peek_cell(idx), 0);
        // Idempotent afterwards.
        assert!(!s.check_group(gid));
    }

    #[test]
    fn stale_group_survives_two_full_cycles_unchecked() {
        // The §5.1 failure mode: after exactly 2·Tcycle the mark returns to
        // its old value, so an untouched group is NOT cleaned — stale data
        // survives. This is the modelled on-demand-cleaning error.
        let mut s = tiny(100, 0.5, 512, 64);
        s.insert(&7u64);
        let mut ups = Vec::new();
        s.updates_for(&7u64, &mut ups);
        let idx = ups[0].index;
        let gid = s.group_of(idx);
        s.advance_time(2 * s.config().t_cycle);
        assert!(!s.check_group(gid), "mark parity repeats after 2 cycles");
        assert_eq!(s.peek_cell(idx), 1, "stale bit survived, as modelled");
    }

    #[test]
    fn classification_boundaries() {
        let mut s = tiny(100, 0.5, 512, 512); // single group, offset 0
        assert_eq!(s.classify(0), CellAge::Young);
        s.advance_time(99);
        assert_eq!(s.classify(0), CellAge::Young);
        s.advance_time(1);
        assert_eq!(s.classify(0), CellAge::Perfect);
        s.advance_time(1);
        assert_eq!(s.classify(0), CellAge::Aged);
        s.advance_time(48); // age 149 = Tcycle - 1
        assert_eq!(s.classify(0), CellAge::Aged);
        s.advance_time(1); // wraps to 0
        assert_eq!(s.classify(0), CellAge::Young);
    }

    #[test]
    fn memory_accounting_includes_marks() {
        let s = tiny(100, 0.5, 512, 64);
        assert_eq!(s.memory_bits(), 512 + 8 + 32);
    }

    #[test]
    fn insert_advances_clock() {
        let mut s = tiny(100, 0.5, 512, 64);
        for i in 0..10u64 {
            s.insert(&i);
        }
        assert_eq!(s.now(), 10);
    }

    #[test]
    fn clear_restores_time_zero() {
        let mut s = tiny(100, 0.5, 512, 64);
        for i in 0..1000u64 {
            s.insert(&i);
        }
        s.clear();
        assert_eq!(s.now(), 0);
        assert_eq!(s.peek_cell(0), 0);
        assert_eq!(s.group_age(0), 0);
    }

    #[test]
    fn uneven_last_group_is_handled() {
        // M = 100, w = 64 → groups of 64 and 36 cells.
        let mut s = tiny(50, 1.0, 100, 64);
        assert_eq!(s.num_groups(), 2);
        s.advance_time(2 * s.config().t_cycle + 1);
        // Must not panic when clearing the short group.
        s.check_group(1);
    }

    #[test]
    fn observe_mark_matches_current_mark_everywhere() {
        let mut s = tiny(100, 0.5, 512, 64); // Tcycle = 150, G = 8
        for step in 0..700u64 {
            for gid in 0..s.num_groups() {
                assert_eq!(s.observe_mark(gid), s.current_mark(gid), "gid {gid} at t {}", s.now());
            }
            s.advance_time(1 + step % 3);
        }
    }

    #[test]
    fn mark_epoch_increments_exactly_at_flips() {
        let mut s = tiny(100, 0.5, 512, 64);
        for gid in 0..s.num_groups() {
            let mut prev_epoch = s.mark_epoch(gid);
            let mut prev_mark = s.current_mark(gid);
            for _ in 0..600 {
                s.advance_time(1);
                let e = s.mark_epoch(gid);
                let m = s.current_mark(gid);
                assert!(e == prev_epoch || e == prev_epoch + 1);
                assert_eq!(e != prev_epoch, m != prev_mark, "epoch must step iff mark flips");
                prev_epoch = e;
                prev_mark = m;
            }
            s.clear();
        }
    }

    #[test]
    fn effective_cell_predicts_check_group() {
        let mut s = tiny(100, 0.5, 512, 64);
        s.insert(&7u64);
        let mut ups = Vec::new();
        s.updates_for(&7u64, &mut ups);
        let idx = ups[0].index;
        let gid = s.group_of(idx);
        // Not yet due: effective = stored.
        assert!(!s.group_due(gid));
        assert_eq!(s.peek_cell_effective(idx), s.peek_cell(idx));
        // One cycle later the group is due: effective reads zero while the
        // stored bit is still set, and check_group then agrees.
        s.advance_time(s.config().t_cycle);
        assert!(s.group_due(gid));
        assert_eq!(s.peek_cell_effective(idx), 0);
        assert_eq!(s.peek_cell(idx), 1);
        s.check_group(gid);
        assert_eq!(s.peek_cell(idx), 0);
        assert!(!s.group_due(gid));
    }

    #[test]
    fn mark_sig_changes_iff_observation_context_changes() {
        let mut s = tiny(100, 0.5, 512, 64);
        let mut ups = Vec::new();
        s.updates_for(&99u64, &mut ups);
        let context = |s: &She<BloomSpec>| -> Vec<(u64, bool)> {
            ups.iter()
                .map(|u| {
                    let gid = s.group_of(u.index);
                    (s.mark_epoch(gid), s.observe_mature(gid))
                })
                .collect()
        };
        // Reading twice without advancing the clock is stable.
        assert_eq!(s.mark_sig_of(&ups), s.mark_sig_of(&ups));
        // Step the clock one unit at a time across a full cycle: the
        // signature must change exactly when some touched group's
        // (epoch, maturity) context changes — flips and maturity
        // crossings — and hold steady otherwise.
        let mut prev_ctx = context(&s);
        let mut prev_sig = s.mark_sig_of(&ups);
        let mut changes = 0;
        for _ in 0..s.config().t_cycle {
            s.advance_time(1);
            let ctx = context(&s);
            let sig = s.mark_sig_of(&ups);
            assert_eq!(ctx != prev_ctx, sig != prev_sig, "sig must track context");
            if sig != prev_sig {
                changes += 1;
            }
            prev_ctx = ctx;
            prev_sig = sig;
        }
        assert!(changes >= 2, "a full cycle crosses flips and maturity edges");
    }

    #[test]
    fn for_each_group_visits_all_cells() {
        let mut s = tiny(100, 0.5, 512, 64);
        let mut total = 0usize;
        s.for_each_group(|_, _, cells| total += cells.count());
        assert_eq!(total, 512);
    }
}
