//! SHE-CM: sliding-window frequency via Count-Min (Section 4.4).
//!
//! Insertion adds one to each of the `k` hashed counters (after
//! `CheckGroup`). The query takes the minimum over the hashed counters whose
//! age is at least `N` — young counters may have lost in-window increments
//! to cleaning, and using them would break Count-Min's
//! never-underestimates guarantee (§4.4). If every hashed counter is young
//! (rare for α ≥ 1), the query falls back to the plain minimum as a
//! best-effort answer.

use crate::{She, SheConfig};
use she_hash::HashKey;
use she_sketch::{CellUpdate, CountMinSpec, CsmSpec};

/// Sliding-window Count-Min sketch (hardware version of SHE).
///
/// ```
/// use she_core::SheCountMin;
///
/// let mut cm = SheCountMin::builder()
///     .window(8_192)
///     .memory_bytes(256 << 10)
///     .build();
/// // Key 7 recurs every 8 items: 1024 occurrences per window.
/// for i in 0..32_768u64 {
///     cm.insert(&(if i % 8 == 0 { 7 } else { i }));
/// }
/// let est = cm.query(&7u64);
/// assert!(est >= 1_024, "never underestimates in-window counts");
/// assert!(est < 3_000);
/// ```
#[derive(Debug, Clone)]
pub struct SheCountMin {
    engine: She<CountMinSpec>,
    scratch: Vec<CellUpdate>,
}

/// Builder for [`SheCountMin`] with the paper's defaults
/// (`k = 8`, `w = 64`, `α = 1`, 32-bit counters).
#[derive(Debug, Clone)]
pub struct SheCountMinBuilder {
    window: u64,
    memory_bits: usize,
    counter_bits: u32,
    k: usize,
    alpha: f64,
    group_cells: usize,
    seed: u32,
}

impl Default for SheCountMinBuilder {
    fn default() -> Self {
        Self {
            window: 1 << 16,
            memory_bits: 8 << 23, // 8 MB... scaled by callers; see builders
            counter_bits: 32,
            k: 8,
            alpha: 1.0,
            group_cells: 64,
            seed: 1,
        }
    }
}

impl SheCountMinBuilder {
    /// Sliding-window size `N` in items.
    pub fn window(mut self, n: u64) -> Self {
        self.window = n;
        self
    }

    /// Memory budget in bytes.
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.memory_bits = bytes * 8;
        self
    }

    /// Counter width in bits.
    pub fn counter_bits(mut self, bits: u32) -> Self {
        self.counter_bits = bits;
        self
    }

    /// Number of hash functions `k` (paper: 8 for SHE-CM).
    pub fn hash_functions(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// `α = (Tcycle − N)/N` (paper default 1 for SHE-CM).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Cells per group `w`.
    pub fn group_cells(mut self, w: usize) -> Self {
        self.group_cells = w;
        self
    }

    /// Hash seed.
    pub fn seed(mut self, seed: u32) -> Self {
        self.seed = seed;
        self
    }

    /// Build the sketch.
    pub fn build(self) -> SheCountMin {
        let m = (self.memory_bits / self.counter_bits as usize).max(self.k.max(self.group_cells));
        let cfg = SheConfig::builder()
            .window(self.window)
            .alpha(self.alpha)
            .group_cells(self.group_cells.min(m))
            .build();
        SheCountMin {
            engine: She::new(CountMinSpec::new(m, self.counter_bits, self.k, self.seed), cfg),
            scratch: Vec::new(),
        }
    }
}

impl SheCountMin {
    /// Start building with the paper defaults.
    pub fn builder() -> SheCountMinBuilder {
        SheCountMinBuilder::default()
    }

    /// Insert an item at the next time step.
    #[inline]
    pub fn insert<K: HashKey + ?Sized>(&mut self, key: &K) {
        self.engine.insert(key);
    }

    /// Estimated frequency of `key` within the sliding window.
    pub fn query<K: HashKey + ?Sized>(&mut self, key: &K) -> u64 {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.engine.updates_for(key, &mut scratch);
        let mut mature_min: Option<u64> = None;
        let mut any_min: Option<u64> = None;
        for u in &scratch {
            let gid = self.engine.group_of(u.index);
            let mature = self.engine.check_mature(gid);
            let v = self.engine.peek_cell(u.index);
            any_min = Some(any_min.map_or(v, |m| m.min(v)));
            if mature {
                mature_min = Some(mature_min.map_or(v, |m| m.min(v)));
            }
        }
        self.scratch = scratch;
        mature_min.or(any_min).unwrap_or(0)
    }

    /// Estimated frequency, **frozen read**: answers exactly what
    /// [`SheCountMin::query`] would on the same state, without running
    /// `CheckGroup` — a counter whose group is due for cleaning reads as
    /// zero ([`She::peek_cell_effective`]), and maturity is observed
    /// purely. Nothing mutates, so identical insert histories answer
    /// identically regardless of query history (the read-path mirror's
    /// bit-for-bit property).
    pub fn query_frozen<K: HashKey + ?Sized>(&self, key: &K) -> u64 {
        let mut ups = Vec::with_capacity(self.engine.spec().k());
        self.engine.updates_for(key, &mut ups);
        let mut mature_min: Option<u64> = None;
        let mut any_min: Option<u64> = None;
        for u in &ups {
            let gid = u.group(self.engine.config().group_cells);
            let v = self.engine.peek_cell_effective(u.index);
            any_min = Some(any_min.map_or(v, |m| m.min(v)));
            if self.engine.observe_mature(gid) {
                mature_min = Some(mature_min.map_or(v, |m| m.min(v)));
            }
        }
        mature_min.or(any_min).unwrap_or(0)
    }

    /// Time-mark signature of the groups `key` hashes to (see
    /// [`She::mark_sig_of`]): changes iff one of those groups' marks
    /// flips. Pure.
    pub fn mark_sig<K: HashKey + ?Sized>(&self, key: &K) -> u64 {
        let mut ups = Vec::with_capacity(self.engine.spec().k());
        self.engine.updates_for(key, &mut ups);
        self.engine.mark_sig_of(&ups)
    }

    /// Age-normalized frequency estimate.
    ///
    /// [`SheCountMin::query`] (the paper's estimator) returns the minimum
    /// over mature counters, each of which has accumulated for its own
    /// `age ∈ [N, Tcycle)` — so with α = 1 an unlucky key whose youngest
    /// mature counter is old reads up to 2× its window frequency. The age
    /// of every counter is known, so scaling each mature counter by
    /// `N / age` before taking the minimum removes that bias for
    /// near-stationary streams (at the cost of the strict
    /// never-underestimate guarantee, which only holds unscaled). Rankings
    /// (e.g. [`crate::SlidingTopK`]) should use this.
    pub fn query_scaled<K: HashKey + ?Sized>(&mut self, key: &K) -> u64 {
        let n = self.engine.config().window;
        let mut scratch = std::mem::take(&mut self.scratch);
        self.engine.updates_for(key, &mut scratch);
        let mut best: Option<u64> = None;
        let mut fallback: Option<u64> = None;
        for u in &scratch {
            let gid = self.engine.group_of(u.index);
            let mature = self.engine.check_mature(gid);
            let v = self.engine.peek_cell(u.index);
            fallback = Some(fallback.map_or(v, |m| m.min(v)));
            if mature {
                let age = self.engine.group_age(gid).max(1);
                let scaled = ((v as u128 * n as u128) / age as u128) as u64;
                best = Some(best.map_or(scaled, |m| m.min(scaled)));
            }
        }
        self.scratch = scratch;
        best.or(fallback).unwrap_or(0)
    }

    /// Advance logical time without inserting.
    #[inline]
    pub fn advance_time(&mut self, dt: u64) {
        self.engine.advance_time(dt);
    }

    /// The underlying generic engine.
    #[inline]
    pub fn engine(&self) -> &She<CountMinSpec> {
        &self.engine
    }

    /// Mutable engine access for the snapshot layer.
    pub(crate) fn engine_mut(&mut self) -> &mut She<CountMinSpec> {
        &mut self.engine
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.engine.now()
    }

    /// Memory footprint in bits.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.engine.memory_bits()
    }

    /// Reset to empty at time zero.
    pub fn clear(&mut self) {
        self.engine.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_in_window_frequencies() {
        let window = 1u64 << 14;
        let mut cm = SheCountMin::builder().window(window).memory_bytes(1 << 20).seed(4).build();
        // Steady stream where key `i % 1024` recurs every 1024 items: each
        // key appears window/1024 = 16 times per window.
        for i in 0..4 * window {
            cm.insert(&(i % 1024));
        }
        let truth = (window / 1024) as f64;
        let mut sum_re = 0.0;
        for k in 0..1024u64 {
            let est = cm.query(&k) as f64;
            sum_re += (est - truth).abs() / truth;
        }
        let are = sum_re / 1024.0;
        assert!(are < 0.5, "average relative error {are}");
    }

    #[test]
    fn mature_counters_never_underestimate() {
        let window = 1u64 << 12;
        let mut cm = SheCountMin::builder().window(window).memory_bytes(1 << 20).build();
        // A heavy key with exactly 64 occurrences in the current window.
        for i in 0..2 * window {
            if i % (window / 64) == 0 {
                cm.insert(&u64::MAX);
            } else {
                cm.insert(&i);
            }
        }
        let est = cm.query(&u64::MAX);
        assert!(est >= 64, "underestimated heavy key: {est} < 64");
    }

    #[test]
    fn absent_key_estimates_small() {
        let window = 1u64 << 12;
        let mut cm = SheCountMin::builder().window(window).memory_bytes(1 << 20).build();
        for i in 0..2 * window {
            cm.insert(&i);
        }
        assert!(cm.query(&0xdead_beef_dead_beefu64) <= 4);
    }

    #[test]
    fn frozen_query_matches_mutating_query() {
        let window = 1u64 << 10;
        let mut a = SheCountMin::builder().window(window).memory_bytes(64 << 10).seed(9).build();
        let mut b = SheCountMin::builder().window(window).memory_bytes(64 << 10).seed(9).build();
        let mut x = 0xDEAD_BEEFu64;
        for i in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = x % 512;
            a.insert(&key);
            b.insert(&key);
            if i % 193 == 0 {
                for probe in [key, x % 2048] {
                    assert_eq!(
                        a.query_frozen(&probe),
                        b.query(&probe),
                        "probe {probe} at step {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn expired_heavy_key_fades() {
        let window = 1u64 << 12;
        let mut cm = SheCountMin::builder().window(window).memory_bytes(1 << 20).build();
        for _ in 0..1000 {
            cm.insert(&7u64);
        }
        // Two full windows of fresh traffic push the key far out.
        for i in 0..8 * window {
            cm.insert(&(i + 100));
        }
        let est = cm.query(&7u64);
        assert!(est < 100, "expired key still estimated at {est}");
    }
}
