//! SHE configuration: window size, cleaning cycle, group geometry.

/// Resolved SHE parameters (Table 1 of the paper).
///
/// * `window` — `N`, the sliding-window size in items;
/// * `t_cycle` — `Tcycle`, the cleaning-cycle length (`(1 + α) · N`);
/// * `group_cells` — `w`, cells per group;
/// * `beta` — the lower edge of the "legal age" range `[βN, Tcycle)` used by
///   the two-sided-error estimators (SHE-BM / SHE-HLL / SHE-MH). One-sided
///   algorithms (SHE-BF, SHE-CM) always use `β = 1` internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SheConfig {
    /// Sliding-window size `N` in items.
    pub window: u64,
    /// Cleaning-cycle length `Tcycle > N`.
    pub t_cycle: u64,
    /// Cells per group `w` (`≥ 1`).
    pub group_cells: usize,
    /// Legal-age fraction `β ∈ (0, 1]`.
    pub beta: f64,
}

impl SheConfig {
    /// Start building a config.
    pub fn builder() -> SheConfigBuilder {
        SheConfigBuilder::default()
    }

    /// `α = (Tcycle − N) / N`.
    pub fn alpha(&self) -> f64 {
        (self.t_cycle - self.window) as f64 / self.window as f64
    }

    /// Panics unless the invariants of Section 3 hold.
    pub fn validate(&self) {
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.t_cycle > self.window,
            "Tcycle ({}) must exceed the window ({})",
            self.t_cycle,
            self.window
        );
        assert!(self.group_cells >= 1, "groups must hold at least one cell");
        assert!(self.beta > 0.0 && self.beta <= 1.0, "beta must be in (0, 1], got {}", self.beta);
    }
}

/// Builder for [`SheConfig`] with the paper's §7.1 defaults.
#[derive(Debug, Clone)]
pub struct SheConfigBuilder {
    window: u64,
    alpha: f64,
    group_cells: usize,
    beta: f64,
}

impl Default for SheConfigBuilder {
    fn default() -> Self {
        // Paper defaults: N = 2^16, w = 64, α = 0.2, and β slightly below 1.
        Self { window: 1 << 16, alpha: 0.2, group_cells: 64, beta: 0.9 }
    }
}

impl SheConfigBuilder {
    /// Set the sliding-window size `N` (items).
    pub fn window(mut self, n: u64) -> Self {
        self.window = n;
        self
    }

    /// Set `α = (Tcycle − N)/N`; `Tcycle` is derived as `(1 + α) N`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// Set cells per group `w`.
    pub fn group_cells(mut self, w: usize) -> Self {
        self.group_cells = w;
        self
    }

    /// Set the legal-age fraction `β`.
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Resolve into a validated [`SheConfig`].
    pub fn build(self) -> SheConfig {
        let t_cycle = ((self.window as f64) * (1.0 + self.alpha)).round() as u64;
        let cfg = SheConfig {
            window: self.window,
            t_cycle: t_cycle.max(self.window + 1),
            group_cells: self.group_cells,
            beta: self.beta,
        };
        cfg.validate();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SheConfig::builder().build();
        assert_eq!(cfg.window, 1 << 16);
        assert_eq!(cfg.group_cells, 64);
        assert!((cfg.alpha() - 0.2).abs() < 1e-3);
    }

    #[test]
    fn alpha_round_trip() {
        for alpha in [0.1, 0.2, 0.5, 1.0, 3.0] {
            let cfg = SheConfig::builder().window(10_000).alpha(alpha).build();
            assert!((cfg.alpha() - alpha).abs() < 1e-3, "alpha {alpha}");
        }
    }

    #[test]
    fn tiny_alpha_still_yields_valid_cycle() {
        let cfg = SheConfig::builder().window(10).alpha(0.001).build();
        assert!(cfg.t_cycle > cfg.window);
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = SheConfig::builder().window(0).build();
    }

    #[test]
    #[should_panic]
    fn bad_beta_rejected() {
        let _ = SheConfig::builder().beta(1.5).build();
    }
}
