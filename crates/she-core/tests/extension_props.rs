//! Property tests for the extension modules: snapshots and sharding.

use proptest::prelude::*;
use she_core::{She, SheConfig, ShardedCountMin};
use she_sketch::BloomSpec;

fn bf_contains(s: &mut She<BloomSpec>, key: u64) -> bool {
    let mut ups = Vec::new();
    s.updates_for(&key, &mut ups);
    for u in ups {
        let gid = s.group_of(u.index);
        if !s.check_mature(gid) {
            continue;
        }
        if s.peek_cell(u.index) == 0 {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot round-trips preserve every observable answer for arbitrary
    /// insert/advance interleavings.
    #[test]
    fn snapshot_roundtrip_preserves_answers(
        ops in prop::collection::vec((any::<u64>(), 0u64..50), 1..200),
        window in 16u64..2_000,
    ) {
        let cfg = SheConfig::builder().window(window).alpha(0.7).group_cells(16).build();
        let mut a = She::new(BloomSpec::new(1 << 10, 3, 5), cfg);
        for &(key, dt) in &ops {
            a.insert(&key);
            a.advance_time(dt);
        }
        let snap = a.save_state();
        let mut b = She::new(BloomSpec::new(1 << 10, 3, 5), cfg);
        b.load_state(&snap).expect("load");
        prop_assert_eq!(a.now(), b.now());
        for &(key, _) in &ops {
            prop_assert_eq!(bf_contains(&mut a, key), bf_contains(&mut b, key));
        }
        // And they stay in lock-step afterwards.
        for extra in 0..50u64 {
            a.insert(&extra);
            b.insert(&extra);
        }
        for &(key, _) in ops.iter().take(20) {
            prop_assert_eq!(bf_contains(&mut a, key), bf_contains(&mut b, key));
        }
    }

    /// Loading arbitrary garbage never panics — it errors.
    #[test]
    fn snapshot_loader_rejects_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let cfg = SheConfig::builder().window(100).alpha(0.5).group_cells(8).build();
        let mut s = She::new(BloomSpec::new(128, 2, 1), cfg);
        // Either a clean error, or (for a buffer that happens to start with
        // the magic AND match the config) success — never a panic.
        let _ = s.load_state(&bytes);
    }

    /// Sharded Count-Min answers match a serial run over the same keys for
    /// any stream (the router and per-shard windows are deterministic).
    #[test]
    fn sharded_cm_matches_serial(
        keys in prop::collection::vec(0u64..500, 1..800),
        shards in 1usize..6,
    ) {
        let window = 256u64;
        let serial = ShardedCountMin::new(shards, window, 1 << 18, 9);
        for &k in &keys {
            serial.insert(k);
        }
        let parallel = ShardedCountMin::new(shards, window, 1 << 18, 9);
        parallel.0.ingest_parallel(&keys, 4);
        for &k in keys.iter().take(100) {
            prop_assert_eq!(serial.query(k), parallel.query(k));
        }
    }
}
