//! Property tests for the extension modules (snapshots and sharding),
//! as deterministic seeded loops — same invariants the `proptest` suite
//! checked, reproducible bit-exactly from the fixed seeds.

use she_core::{ShardedCountMin, She, SheConfig};
use she_hash::{RandomSource, Xoshiro256};
use she_sketch::BloomSpec;

fn bf_contains(s: &mut She<BloomSpec>, key: u64) -> bool {
    let mut ups = Vec::new();
    s.updates_for(&key, &mut ups);
    for u in ups {
        let gid = s.group_of(u.index);
        if !s.check_mature(gid) {
            continue;
        }
        if s.peek_cell(u.index) == 0 {
            return false;
        }
    }
    true
}

/// Snapshot round-trips preserve every observable answer for arbitrary
/// insert/advance interleavings.
#[test]
fn snapshot_roundtrip_preserves_answers() {
    for case in 0..32u64 {
        let mut rng = Xoshiro256::new(0x54A9 ^ case);
        let window = rng.next_range(16, 2_000);
        let n_ops = 1 + rng.next_below(199);
        let ops: Vec<(u64, u64)> =
            (0..n_ops).map(|_| (rng.next_u64(), rng.next_range(0, 50))).collect();
        let cfg = SheConfig::builder().window(window).alpha(0.7).group_cells(16).build();
        let mut a = She::new(BloomSpec::new(1 << 10, 3, 5), cfg);
        for &(key, dt) in &ops {
            a.insert(&key);
            a.advance_time(dt);
        }
        let snap = a.save_state();
        let mut b = She::new(BloomSpec::new(1 << 10, 3, 5), cfg);
        b.load_state(&snap).expect("load");
        assert_eq!(a.now(), b.now(), "case {case}");
        for &(key, _) in &ops {
            assert_eq!(bf_contains(&mut a, key), bf_contains(&mut b, key), "case {case}");
        }
        // And they stay in lock-step afterwards.
        for extra in 0..50u64 {
            a.insert(&extra);
            b.insert(&extra);
        }
        for &(key, _) in ops.iter().take(20) {
            assert_eq!(bf_contains(&mut a, key), bf_contains(&mut b, key), "case {case}");
        }
    }
}

/// Loading arbitrary garbage never panics — it errors.
#[test]
fn snapshot_loader_rejects_garbage() {
    for case in 0..64u64 {
        let mut rng = Xoshiro256::new(0x6A2B ^ case);
        let len = rng.next_below(300);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Half the cases lead with the magic so the header parser is also
        // exercised, not just the magic check.
        if case % 2 == 0 && bytes.len() >= 4 {
            bytes[..4].copy_from_slice(b"SHEF");
        }
        let cfg = SheConfig::builder().window(100).alpha(0.5).group_cells(8).build();
        let mut s = She::new(BloomSpec::new(128, 2, 1), cfg);
        // Either a clean error, or (for a buffer that happens to match the
        // config) success — never a panic.
        let _ = s.load_state(&bytes);
    }
}

/// Sharded Count-Min answers match a serial run over the same keys for
/// any stream (the router and per-shard windows are deterministic).
#[test]
fn sharded_cm_matches_serial() {
    for case in 0..16u64 {
        let mut rng = Xoshiro256::new(0x5CC5 ^ case);
        let shards = 1 + rng.next_below(5);
        let n_keys = 1 + rng.next_below(799);
        let keys: Vec<u64> = (0..n_keys).map(|_| rng.next_range(0, 500)).collect();
        let window = 256u64;
        let serial = ShardedCountMin::new(shards, window, 1 << 18, 9);
        for &k in &keys {
            serial.insert(k);
        }
        let parallel = ShardedCountMin::new(shards, window, 1 << 18, 9);
        parallel.0.ingest_parallel(&keys, 4);
        for &k in keys.iter().take(100) {
            assert_eq!(serial.query(k), parallel.query(k), "case {case}");
        }
    }
}
