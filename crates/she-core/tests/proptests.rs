//! Property tests for the SHE engine invariants (Sections 3.2–3.3).

use proptest::prelude::*;
use she_core::{She, SheBloomFilter, SheConfig, SheCountMin};
use she_sketch::BloomSpec;

proptest! {
    /// Group ages always lie in [0, Tcycle), for any time and geometry.
    #[test]
    fn ages_bounded_by_cycle(
        window in 2u64..5000,
        alpha_pct in 5u64..400,
        w in 1usize..200,
        advances in prop::collection::vec(0u64..10_000, 0..20),
    ) {
        let cfg = SheConfig::builder()
            .window(window)
            .alpha(alpha_pct as f64 / 100.0)
            .group_cells(w.min(256))
            .build();
        let mut s = She::new(BloomSpec::new(256, 2, 1), cfg);
        let tc = s.config().t_cycle;
        for dt in advances {
            s.advance_time(dt);
            for gid in 0..s.num_groups() {
                prop_assert!(s.group_age(gid) < tc);
            }
        }
    }

    /// CheckGroup is idempotent: a second call right after the first never
    /// resets again, at any point in time.
    #[test]
    fn check_group_idempotent(jumps in prop::collection::vec(1u64..5_000, 1..30)) {
        let cfg = SheConfig::builder().window(100).alpha(0.5).group_cells(16).build();
        let mut s = She::new(BloomSpec::new(256, 2, 2), cfg);
        for dt in jumps {
            s.advance_time(dt);
            for gid in 0..s.num_groups() {
                s.check_group(gid);
                prop_assert!(!s.check_group(gid), "second CheckGroup reset group {}", gid);
            }
        }
    }

    /// The defining SHE-BF guarantee: no false negatives for items inside
    /// the sliding window, for any stream shape and α.
    #[test]
    fn she_bf_one_sided_error(
        window_log in 6u32..10,
        alpha_pct in 20u64..400,
        key_universe in 1u64..5_000,
        total_mult in 2u64..6,
    ) {
        let window = 1u64 << window_log;
        let mut bf = SheBloomFilter::builder()
            .window(window)
            .memory_bytes(16 << 10)
            .hash_functions(4)
            .alpha(alpha_pct as f64 / 100.0)
            .seed(3)
            .build();
        let total = total_mult * window;
        let mut recent = std::collections::VecDeque::new();
        for t in 0..total {
            let key = she_hash::mix64(t % key_universe);
            bf.insert(&key);
            recent.push_back(key);
            if recent.len() > window as usize {
                recent.pop_front();
            }
        }
        for &k in &recent {
            prop_assert!(bf.contains(&k), "false negative inside the window");
        }
    }

    /// SHE-CM never underestimates when answered from mature counters: the
    /// estimate is at least the true in-window count for every key.
    #[test]
    fn she_cm_no_underestimate_with_mature_answer(
        window_log in 6u32..9,
        key_universe in 1u64..100,
        total_mult in 2u64..5,
    ) {
        let window = 1u64 << window_log;
        let mut cm = SheCountMin::builder()
            .window(window)
            .memory_bytes(1 << 20)
            .alpha(1.0)
            .seed(4)
            .build();
        let total = total_mult * window;
        let mut recent = std::collections::VecDeque::new();
        for t in 0..total {
            let key = she_hash::mix64(t % key_universe);
            cm.insert(&key);
            recent.push_back(key);
            if recent.len() > window as usize {
                recent.pop_front();
            }
        }
        let mut counts = std::collections::HashMap::new();
        for &k in &recent {
            *counts.entry(k).or_insert(0u64) += 1;
        }
        for (k, c) in counts {
            prop_assert!(cm.query(&k) >= c, "key {k} underestimated");
        }
    }

    /// Inserting never panics across arbitrary geometry corner cases
    /// (uneven last group, w = 1, w = M, tiny windows).
    #[test]
    fn geometry_corner_cases(
        m in 1usize..300,
        w in 1usize..300,
        window in 1u64..100,
        n_ops in 0usize..500,
    ) {
        let cfg = SheConfig::builder()
            .window(window)
            .alpha(0.3)
            .group_cells(w.min(m))
            .build();
        let mut s = She::new(BloomSpec::new(m, 2, 5), cfg);
        for i in 0..n_ops {
            s.insert(&(i as u64));
        }
        prop_assert_eq!(s.now(), n_ops as u64);
    }
}
