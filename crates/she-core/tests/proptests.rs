//! Property tests for the SHE engine invariants (Sections 3.2–3.3),
//! expressed as deterministic seeded loops over randomized cases: each
//! test replays `CASES` independently-seeded scenarios drawn from the same
//! distributions the original `proptest` strategies used, so failures
//! reproduce bit-exactly from the fixed seed.

use she_core::{She, SheBloomFilter, SheConfig, SheCountMin};
use she_hash::{RandomSource, Xoshiro256};
use she_sketch::BloomSpec;

const CASES: u64 = 48;

/// Group ages always lie in [0, Tcycle), for any time and geometry.
#[test]
fn ages_bounded_by_cycle() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xA6E5 ^ case);
        let window = rng.next_range(2, 5000);
        let alpha_pct = rng.next_range(5, 400);
        let w = rng.next_range(1, 200) as usize;
        let cfg = SheConfig::builder()
            .window(window)
            .alpha(alpha_pct as f64 / 100.0)
            .group_cells(w.min(256))
            .build();
        let mut s = She::new(BloomSpec::new(256, 2, 1), cfg);
        let tc = s.config().t_cycle;
        let n_advances = rng.next_below(20);
        for _ in 0..n_advances {
            s.advance_time(rng.next_range(0, 10_000));
            for gid in 0..s.num_groups() {
                assert!(s.group_age(gid) < tc, "case {case}: age out of cycle");
            }
        }
    }
}

/// CheckGroup is idempotent: a second call right after the first never
/// resets again, at any point in time.
#[test]
fn check_group_idempotent() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0xC4EC ^ case);
        let cfg = SheConfig::builder().window(100).alpha(0.5).group_cells(16).build();
        let mut s = She::new(BloomSpec::new(256, 2, 2), cfg);
        let n_jumps = 1 + rng.next_below(29);
        for _ in 0..n_jumps {
            s.advance_time(rng.next_range(1, 5_000));
            for gid in 0..s.num_groups() {
                s.check_group(gid);
                assert!(!s.check_group(gid), "case {case}: second CheckGroup reset group {gid}");
            }
        }
    }
}

/// The defining SHE-BF guarantee: no false negatives for items inside
/// the sliding window, for any stream shape and α.
#[test]
fn she_bf_one_sided_error() {
    for case in 0..24 {
        let mut rng = Xoshiro256::new(0xBF01 ^ case);
        let window = 1u64 << rng.next_range(6, 10);
        let alpha_pct = rng.next_range(20, 400);
        let key_universe = rng.next_range(1, 5_000);
        let total_mult = rng.next_range(2, 6);
        let mut bf = SheBloomFilter::builder()
            .window(window)
            .memory_bytes(16 << 10)
            .hash_functions(4)
            .alpha(alpha_pct as f64 / 100.0)
            .seed(3)
            .build();
        let total = total_mult * window;
        let mut recent = std::collections::VecDeque::new();
        for t in 0..total {
            let key = she_hash::mix64(t % key_universe);
            bf.insert(&key);
            recent.push_back(key);
            if recent.len() > window as usize {
                recent.pop_front();
            }
        }
        for &k in &recent {
            assert!(bf.contains(&k), "case {case}: false negative inside the window");
        }
    }
}

/// SHE-CM never underestimates when answered from mature counters: the
/// estimate is at least the true in-window count for every key.
#[test]
fn she_cm_no_underestimate_with_mature_answer() {
    for case in 0..24 {
        let mut rng = Xoshiro256::new(0xC303 ^ case);
        let window = 1u64 << rng.next_range(6, 9);
        let key_universe = rng.next_range(1, 100);
        let total_mult = rng.next_range(2, 5);
        let mut cm =
            SheCountMin::builder().window(window).memory_bytes(1 << 20).alpha(1.0).seed(4).build();
        let total = total_mult * window;
        let mut recent = std::collections::VecDeque::new();
        for t in 0..total {
            let key = she_hash::mix64(t % key_universe);
            cm.insert(&key);
            recent.push_back(key);
            if recent.len() > window as usize {
                recent.pop_front();
            }
        }
        let mut counts = std::collections::HashMap::new();
        for &k in &recent {
            *counts.entry(k).or_insert(0u64) += 1;
        }
        for (k, c) in counts {
            assert!(cm.query(&k) >= c, "case {case}: key {k} underestimated");
        }
    }
}

/// Inserting never panics across arbitrary geometry corner cases
/// (uneven last group, w = 1, w = M, tiny windows).
#[test]
fn geometry_corner_cases() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::new(0x6E0C ^ case);
        let m = 1 + rng.next_below(299);
        let w = 1 + rng.next_below(299);
        let window = rng.next_range(1, 100);
        let n_ops = rng.next_below(500);
        let cfg = SheConfig::builder().window(window).alpha(0.3).group_cells(w.min(m)).build();
        let mut s = She::new(BloomSpec::new(m, 2, 5), cfg);
        for i in 0..n_ops {
            s.insert(&(i as u64));
        }
        assert_eq!(s.now(), n_ops as u64, "case {case}");
    }
}
