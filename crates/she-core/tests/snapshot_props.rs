//! Property tests for the unified snapshot layer: snapshot → restore →
//! query equivalence for every engine type over seeded random streams,
//! and cell-for-cell merge commutativity for the mergeable structures.
//!
//! Queries are themselves deterministic state transitions (they run
//! `CheckGroup`), so "equivalent" here means bit-for-bit: the restored
//! structure answers the same query sequence with identical bits.

use she_core::{
    SheBitmap, SheBloomFilter, SheCountMin, SheCountSketch, SheHyperLogLog, SheMinHash,
    SlidingTopK, SnapshotState,
};
use she_hash::{RandomSource, Xoshiro256};

const WINDOW: u64 = 1 << 10;
const BYTES: usize = 8 << 10;

/// Seeded stream of `(key, advance)` ops.
fn stream(seed: u64, n: usize) -> Vec<(u64, u64)> {
    let mut rng = Xoshiro256::new(seed);
    (0..n).map(|_| (rng.next_range(0, 4_000), rng.next_below(4) as u64)).collect()
}

#[test]
fn bf_roundtrip_is_bit_exact() {
    for case in 0..8u64 {
        let mut a = SheBloomFilter::builder().window(WINDOW).memory_bytes(BYTES).seed(1).build();
        for &(key, _) in &stream(0xBF ^ case, 3_000) {
            a.insert(&key);
        }
        let snap = a.save_snapshot();
        let mut b = SheBloomFilter::builder().window(WINDOW).memory_bytes(BYTES).seed(1).build();
        b.load_snapshot(&snap).expect("load");
        for key in 0..4_000u64 {
            assert_eq!(a.contains(&key), b.contains(&key), "case {case} key {key}");
        }
    }
}

#[test]
fn bm_roundtrip_is_bit_exact() {
    for case in 0..8u64 {
        let mut a = SheBitmap::builder().window(WINDOW).memory_bytes(BYTES).seed(2).build();
        for &(key, _) in &stream(0xB7 ^ case, 3_000) {
            a.insert(&key);
        }
        let snap = a.save_snapshot();
        let mut b = SheBitmap::builder().window(WINDOW).memory_bytes(BYTES).seed(2).build();
        b.load_snapshot(&snap).expect("load");
        assert_eq!(a.estimate().to_bits(), b.estimate().to_bits(), "case {case}");
    }
}

#[test]
fn cm_roundtrip_is_bit_exact() {
    for case in 0..8u64 {
        let mut a = SheCountMin::builder().window(WINDOW).memory_bytes(BYTES).seed(3).build();
        for &(key, _) in &stream(0xC3 ^ case, 3_000) {
            a.insert(&key);
        }
        let snap = a.save_snapshot();
        let mut b = SheCountMin::builder().window(WINDOW).memory_bytes(BYTES).seed(3).build();
        b.load_snapshot(&snap).expect("load");
        for key in 0..4_000u64 {
            assert_eq!(a.query(&key), b.query(&key), "case {case} key {key}");
        }
    }
}

#[test]
fn hll_roundtrip_is_bit_exact() {
    for case in 0..8u64 {
        let mut a = SheHyperLogLog::builder().window(WINDOW).memory_bytes(BYTES).seed(4).build();
        for &(key, _) in &stream(0x477 ^ case, 3_000) {
            a.insert(&key);
        }
        let snap = a.save_snapshot();
        let mut b = SheHyperLogLog::builder().window(WINDOW).memory_bytes(BYTES).seed(4).build();
        b.load_snapshot(&snap).expect("load");
        assert_eq!(a.estimate().to_bits(), b.estimate().to_bits(), "case {case}");
    }
}

#[test]
fn mh_roundtrip_is_bit_exact() {
    for case in 0..4u64 {
        let build = || {
            SheMinHash::builder().window(WINDOW).num_hashes(64).memory_bytes(BYTES).seed(5).build()
        };
        let (mut a1, mut a2) = (build(), build());
        for &(key, _) in &stream(0x117 ^ case, 3_000) {
            a1.insert(&key);
            a2.insert(&(key / 2)); // overlapping but distinct sets
        }
        let (s1, s2) = (a1.save_snapshot(), a2.save_snapshot());
        let (mut b1, mut b2) = (build(), build());
        b1.load_snapshot(&s1).expect("load");
        b2.load_snapshot(&s2).expect("load");
        assert_eq!(
            a1.similarity(&mut a2).to_bits(),
            b1.similarity(&mut b2).to_bits(),
            "case {case}"
        );
    }
}

#[test]
fn cs_roundtrip_is_bit_exact() {
    for case in 0..8u64 {
        let mut a = SheCountSketch::builder().window(WINDOW).memory_bytes(BYTES).seed(6).build();
        for &(key, _) in &stream(0xC5 ^ case, 3_000) {
            a.insert(&key);
        }
        let snap = a.save_snapshot();
        let mut b = SheCountSketch::builder().window(WINDOW).memory_bytes(BYTES).seed(6).build();
        b.load_snapshot(&snap).expect("load");
        for key in 0..4_000u64 {
            assert_eq!(a.query(&key), b.query(&key), "case {case} key {key}");
        }
    }
}

#[test]
fn topk_roundtrip_preserves_ranking() {
    for case in 0..4u32 {
        let mut a = SlidingTopK::new(4, WINDOW, BYTES, 7);
        let mut rng = Xoshiro256::new(0x70B ^ case as u64);
        for _ in 0..3_000 {
            // Zipf-ish: small keys dominate.
            let bound = 1 + rng.next_below(64);
            let key = rng.next_below(bound) as u64;
            a.insert(key);
        }
        let snap = a.save_snapshot();
        let mut b = SlidingTopK::new(4, WINDOW, BYTES, 7);
        b.load_snapshot(&snap).expect("load");
        assert_eq!(a.top(), b.top(), "case {case}");
    }
}

/// The generic commutativity check: snapshot bytes are a deterministic
/// function of state (candidate maps are sorted on encode), so byte
/// equality of the merged snapshots is cell-for-cell state equality.
fn assert_merge_commutes<T: SnapshotState>(mut c1: T, mut c2: T, snap_a: &[u8], snap_b: &[u8]) {
    c1.load_snapshot(snap_a).expect("load a");
    c1.merge_snapshot(snap_b).expect("merge b into a");
    c2.load_snapshot(snap_b).expect("load b");
    c2.merge_snapshot(snap_a).expect("merge a into b");
    assert_eq!(c1.save_snapshot(), c2.save_snapshot(), "merge is not commutative");
}

#[test]
fn merge_commutes_for_every_mergeable_structure() {
    for case in 0..6u64 {
        let ops_a = stream(0xA0 ^ case, 2_500);
        let ops_b = stream(0xB0 ^ case, 1_700); // different length → different clocks

        macro_rules! check {
            ($build:expr) => {{
                let (mut a, mut b) = ($build, $build);
                for &(key, dt) in &ops_a {
                    a.insert(&key);
                    a.engine_advance(dt);
                }
                for &(key, dt) in &ops_b {
                    b.insert(&key);
                    b.engine_advance(dt);
                }
                assert_merge_commutes($build, $build, &a.save_snapshot(), &b.save_snapshot());
            }};
        }

        // A tiny shim so the macro can advance each adapter's clock the
        // same way (all adapters expose the raw engine read-only; the
        // streams' `dt`s are folded in via extra inserts instead).
        trait Advance {
            fn engine_advance(&mut self, dt: u64);
        }
        macro_rules! advance_via_inserts {
            ($ty:ty) => {
                impl Advance for $ty {
                    fn engine_advance(&mut self, dt: u64) {
                        for i in 0..dt {
                            self.insert(&(u64::MAX - i));
                        }
                    }
                }
            };
        }
        advance_via_inserts!(SheBloomFilter);
        advance_via_inserts!(SheBitmap);
        advance_via_inserts!(SheCountMin);
        advance_via_inserts!(SheHyperLogLog);
        advance_via_inserts!(SheMinHash);

        check!(SheBloomFilter::builder().window(WINDOW).memory_bytes(BYTES).seed(11).build());
        check!(SheBitmap::builder().window(WINDOW).memory_bytes(BYTES).seed(12).build());
        check!(SheCountMin::builder().window(WINDOW).memory_bytes(BYTES).seed(13).build());
        check!(SheHyperLogLog::builder().window(WINDOW).memory_bytes(BYTES).seed(14).build());
        check!(SheMinHash::builder()
            .window(WINDOW)
            .num_hashes(64)
            .memory_bytes(BYTES)
            .seed(15)
            .build());
    }
}

/// Merging equal-length disjoint streams never loses a membership answer:
/// with equal clocks the same groups are live on both sides, so the
/// cell-wise OR can only add bits.
#[test]
fn bf_merge_preserves_membership() {
    let build = || SheBloomFilter::builder().window(WINDOW).memory_bytes(BYTES).seed(21).build();
    let (mut a, mut b) = (build(), build());
    for i in 0..2_000u64 {
        a.insert(&i);
        b.insert(&(100_000 + i));
    }
    let (snap_a, snap_b) = (a.save_snapshot(), b.save_snapshot());
    let mut merged = build();
    merged.load_snapshot(&snap_a).expect("load");
    merged.merge_snapshot(&snap_b).expect("merge");
    for i in 1_500..2_000u64 {
        if a.contains(&i) {
            assert!(merged.contains(&i), "merge lost key {i} from a");
        }
        if b.contains(&(100_000 + i)) {
            assert!(merged.contains(&(100_000 + i)), "merge lost key {} from b", 100_000 + i);
        }
    }
}

/// Merging equal-length disjoint streams never underestimates either
/// side: cell-wise max dominates each input sketch.
#[test]
fn cm_merge_never_underestimates_either_side() {
    let build = || SheCountMin::builder().window(WINDOW).memory_bytes(BYTES).seed(22).build();
    let (mut a, mut b) = (build(), build());
    let mut rng = Xoshiro256::new(0xCA4D);
    for _ in 0..2_000 {
        a.insert(&rng.next_range(0, 100));
        b.insert(&rng.next_range(1_000, 1_100));
    }
    let (snap_a, snap_b) = (a.save_snapshot(), b.save_snapshot());
    let mut merged = build();
    merged.load_snapshot(&snap_a).expect("load");
    merged.merge_snapshot(&snap_b).expect("merge");
    for key in (0..100u64).chain(1_000..1_100) {
        let floor = a.query(&key).max(b.query(&key));
        assert!(merged.query(&key) >= floor, "merged underestimates key {key}");
    }
}
