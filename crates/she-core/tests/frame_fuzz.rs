//! Fuzz-style tests for the shared frame format: malformed input of any
//! shape must come back as a typed [`FrameError`], never a panic.

use she_core::frame::{self, checksum, Frame, FrameError, FrameWriter};
use she_core::{SheBitmap, SheBloomFilter, SheCountMin, SheCountSketch, SnapshotState};
use she_hash::{RandomSource, Xoshiro256};

/// A representative valid frame with several sections, one repeated.
fn sample_frame() -> Vec<u8> {
    let mut w = FrameWriter::new(frame::kind::CHECKPOINT);
    w.section(frame::tag::CONFIG, &[1, 2, 3, 4, 5, 6, 7, 8]);
    w.section(frame::tag::SHARD, b"shard zero");
    w.section(frame::tag::SHARD, b"shard one");
    w.section(frame::tag::COUNTERS, &[]);
    w.finish()
}

#[test]
fn every_truncation_errors_cleanly() {
    let buf = sample_frame();
    for cut in 0..buf.len() {
        let err = Frame::parse(&buf[..cut]).expect_err("truncated frame parsed");
        assert!(
            matches!(err, FrameError::Truncated | FrameError::BadMagic | FrameError::BadChecksum),
            "cut {cut}: unexpected {err:?}"
        );
    }
    assert!(Frame::parse(&buf).is_ok());
}

#[test]
fn wrong_magic_errors() {
    let mut buf = sample_frame();
    for i in 0..4 {
        let mut bad = buf.clone();
        bad[i] ^= 0x20;
        assert!(matches!(Frame::parse(&bad), Err(FrameError::BadMagic)), "byte {i}");
    }
    // Magic is checked before anything else, even on tiny buffers.
    buf.truncate(4);
    assert!(matches!(Frame::parse(&buf), Err(FrameError::Truncated)));
}

#[test]
fn wrong_version_errors_even_with_valid_checksum() {
    let mut buf = sample_frame();
    buf[4] = 0xFF;
    buf[5] = 0x7F;
    // Naively corrupted version (checksum now stale):
    assert!(matches!(Frame::parse(&buf), Err(FrameError::BadVersion { found: 0x7FFF })));
    // A well-formed frame from a genuinely newer format version — fix the
    // checksum so only the version disagrees:
    let body_len = buf.len() - 8;
    let sum = checksum(&buf[..body_len]).to_le_bytes();
    buf[body_len..].copy_from_slice(&sum);
    assert!(matches!(Frame::parse(&buf), Err(FrameError::BadVersion { found: 0x7FFF })));
}

#[test]
fn any_flipped_bit_fails_the_checksum() {
    let buf = sample_frame();
    // Skip magic (0..4) and version (4..6): those have their own errors.
    for i in 6..buf.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = buf.clone();
            bad[i] ^= bit;
            let err = Frame::parse(&bad).expect_err("corrupted frame parsed");
            assert!(
                matches!(err, FrameError::BadChecksum | FrameError::Truncated),
                "byte {i} bit {bit:#x}: unexpected {err:?}"
            );
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    for case in 0..256u64 {
        let mut rng = Xoshiro256::new(0xF422 ^ case);
        let len = rng.next_below(512);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        match case % 4 {
            // Raw noise.
            0 => {}
            // Valid magic, noise after.
            1 if len >= 4 => bytes[..4].copy_from_slice(&frame::MAGIC),
            // Valid magic + version, noise after.
            2 if len >= 6 => {
                bytes[..4].copy_from_slice(&frame::MAGIC);
                bytes[4..6].copy_from_slice(&frame::VERSION.to_le_bytes());
            }
            // A valid frame with a random tail chopped or appended.
            _ => {
                let mut f = sample_frame();
                if case % 8 < 4 {
                    f.truncate(len.min(f.len()));
                } else {
                    f.extend_from_slice(&bytes);
                }
                bytes = f;
            }
        }
        let _ = Frame::parse(&bytes); // must not panic
    }
}

#[test]
fn structured_noise_never_panics_adapter_loads() {
    // Garbage that gets past the container checks must still fail softly
    // at the section layer: forge frames with the right kind but random
    // section contents and feed them to real adapters.
    for case in 0..128u64 {
        let mut rng = Xoshiro256::new(0xADA7 ^ case);
        let kinds = [
            frame::kind::BF,
            frame::kind::BM,
            frame::kind::CM,
            frame::kind::CS,
            frame::kind::ENGINE,
        ];
        let mut w = FrameWriter::new(kinds[(case % 5) as usize]);
        for _ in 0..rng.next_below(5) {
            let tag = rng.next_below(0x30) as u16;
            let len = rng.next_below(64);
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            w.section(tag, &payload);
        }
        let buf = w.finish();

        let mut bf = SheBloomFilter::builder().window(256).memory_bytes(1 << 10).seed(1).build();
        let mut bm = SheBitmap::builder().window(256).memory_bytes(1 << 10).seed(1).build();
        let mut cm = SheCountMin::builder().window(256).memory_bytes(1 << 10).seed(1).build();
        let mut cs = SheCountSketch::builder().window(256).memory_bytes(1 << 10).seed(1).build();
        let _ = bf.load_snapshot(&buf);
        let _ = bm.load_snapshot(&buf);
        let _ = cm.load_snapshot(&buf);
        let _ = cs.load_snapshot(&buf);
        let _ = bf.merge_snapshot(&buf);
        let _ = bm.merge_snapshot(&buf);
        let _ = cm.merge_snapshot(&buf);
    }
}
