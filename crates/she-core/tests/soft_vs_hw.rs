//! Cross-version tests: the software cleaning process of §3.2 and the
//! hardware time-mark groups of §3.3 must describe the same structure.

use she_core::{She, SheConfig, SoftClock};
use she_sketch::BloomSpec;

/// With `w = 1`, the hardware version's per-group scheduled cleanings and
/// the software sweep visit cells at the same rate; ages agree to within
/// one cleaning step.
#[test]
fn ages_agree_between_versions() {
    let m = 128;
    let cfg = SheConfig::builder().window(100).alpha(0.5).group_cells(1).build();
    let tc = cfg.t_cycle;
    let step = tc.div_ceil(m as u64) + 1;
    let mut hw = She::new(BloomSpec::new(m, 4, 1), cfg);
    let mut soft = SoftClock::new(BloomSpec::new(m, 4, 1), cfg);

    // Walk well past one full cycle so every cell has been swept.
    for t in [tc + 1, tc + 37, 2 * tc + 5, 3 * tc - 1] {
        hw.advance_time(t - hw.now());
        soft.advance_time(t - soft.now());
        for i in 0..m {
            // Hardware groups age by scheduled deadline; the software
            // cleaner passes cell i slightly later within the same step.
            // Both wrap mod Tcycle, so compare circular distance.
            let a = hw.cell_age(i) as i64;
            let b = soft.cell_age(i) as i64;
            let diff = (a - b).rem_euclid(tc as i64);
            let circ = diff.min(tc as i64 - diff);
            assert!(
                circ <= step as i64,
                "cell {i} at t={t}: hw age {a}, soft age {b} (allow {step})"
            );
        }
    }
}

/// Both versions answer membership identically on a long realistic run —
/// up to the one-cleaning-step boundary cells, disagreement must be rare.
#[test]
fn membership_answers_mostly_agree() {
    let m = 1 << 14;
    let window = 1u64 << 10;
    let cfg = SheConfig::builder().window(window).alpha(1.0).group_cells(1).build();
    let spec = BloomSpec::new(m, 4, 9);
    let mut hw = She::new(spec.clone(), cfg);
    let mut soft = SoftClock::new(spec.clone(), cfg);

    let keys: Vec<u64> = (0..6 * window).map(she_hash::mix64).collect();
    for &k in &keys {
        hw.insert(&k);
        soft.insert(&k);
    }

    // Compare raw answers over recent and expired keys.
    let mut disagree = 0usize;
    let mut checked = 0usize;
    let mut ups = Vec::new();
    for &k in keys.iter().rev().take(2 * window as usize) {
        // Hardware-version SHE-BF answer.
        hw.updates_for(&k, &mut ups);
        let mut hw_ans = true;
        for u in ups.clone() {
            let gid = hw.group_of(u.index);
            if !hw.check_mature(gid) {
                continue;
            }
            if hw.peek_cell(u.index) == 0 {
                hw_ans = false;
                break;
            }
        }
        let soft_ans = soft.contains_bf(&k);
        checked += 1;
        if hw_ans != soft_ans {
            disagree += 1;
        }
    }
    assert!(checked > 0);
    let rate = disagree as f64 / checked as f64;
    assert!(rate < 0.02, "versions disagree on {rate:.3} of queries");
}

/// The two versions report comparable memory: the hardware version adds
/// exactly one mark bit per group.
#[test]
fn memory_accounting_difference_is_marks_only() {
    let m = 4096;
    let cfg = SheConfig::builder().window(500).alpha(0.5).group_cells(64).build();
    let hw = She::new(BloomSpec::new(m, 4, 2), cfg);
    let soft = SoftClock::new(BloomSpec::new(m, 4, 2), cfg);
    assert_eq!(hw.memory_bits(), soft.memory_bits() + m / 64);
}
