//! End-to-end replication tests: a real primary [`Server`] and a real
//! [`Replica`] talking TCP on loopback, checked bit-for-bit against an
//! in-process [`DirectEngine`] mirror.
//!
//! The bit-for-bit comparisons use checkpoint *bytes*, not query
//! answers: queries mutate engine state (lazy cleaning), so serialized
//! state is both stronger and safe to take while background threads are
//! still running. Query batteries run afterwards, mirrored call for
//! call on both sides.

use she_replica::{Replica, ReplicaConfig};
use she_server::{Client, DirectEngine, EngineConfig, Role, Server, ServerConfig};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn engine_cfg() -> EngineConfig {
    EngineConfig { window: 1 << 12, shards: 4, memory_bytes: 16 << 10, seed: 7 }
}

fn primary_cfg(addr: &str) -> ServerConfig {
    ServerConfig {
        addr: addr.to_string(),
        engine: engine_cfg(),
        repl_log: 1 << 10,
        role: Role::Primary,
        ..Default::default()
    }
}

fn replica_cfg(primary: &str) -> ReplicaConfig {
    ReplicaConfig {
        primary: primary.to_string(),
        reconnect_base_ms: 5,
        reconnect_cap_ms: 50,
        ..Default::default()
    }
}

/// Deterministic batch `i`: 64 keys from a key space small enough that
/// frequencies go above 1.
fn batch(i: u64) -> Vec<u64> {
    (0..64).map(|j| she_hash::mix64(i * 64 + j) % 3_000).collect()
}

/// Poll `cond` up to `ms` milliseconds.
fn eventually(ms: u64, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Feed batches `[from, to)` to both the primary (via the wire) and the
/// mirror (in process), stream 0 plus every 8th batch into stream 1.
fn feed(client: &mut Client, mirror: &mut DirectEngine, from: u64, to: u64) {
    for i in from..to {
        let keys = batch(i);
        let stream = if i % 8 == 7 { 1 } else { 0 };
        client.insert_batch(stream, &keys).unwrap();
        for &k in &keys {
            mirror.insert(stream, k);
        }
    }
}

/// The replica's serialized state, fetched over the wire.
fn replica_checkpoint(replica: &Replica) -> Vec<u8> {
    let mut c = Client::connect(replica.local_addr()).unwrap();
    c.snapshot_all().unwrap()
}

#[test]
fn bootstrap_plus_tail_matches_mirror_bit_for_bit() {
    let primary = Server::start(primary_cfg("127.0.0.1:0")).unwrap();
    let paddr = primary.local_addr().to_string();
    let mut client = Client::connect(&paddr).unwrap();
    let mut mirror = DirectEngine::new(engine_cfg());

    // History the replica must receive via the snapshot, not replay.
    feed(&mut client, &mut mirror, 0, 50);

    let replica = Replica::start(replica_cfg(&paddr)).unwrap();
    let boot = replica.status().boot_seq.load(Ordering::SeqCst);
    assert_eq!(boot, 50, "bootstrap cut must cover the whole pre-join history");

    // Live tail after the join.
    feed(&mut client, &mut mirror, 50, 100);
    let head = Client::connect(&paddr).unwrap().cluster_status().unwrap().head;
    assert_eq!(head, 100);
    assert!(
        eventually(5_000, || replica.status().applied.load(Ordering::SeqCst) == head),
        "replica stopped at {} of {head}",
        replica.status().applied.load(Ordering::SeqCst)
    );

    // State equality, bit for bit.
    assert_eq!(replica_checkpoint(&replica), mirror.checkpoint(), "replica state diverged");

    // And the query battery agrees, call for call.
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    for i in 0..32u64 {
        let k = she_hash::mix64(i) % 3_000;
        assert_eq!(rc.query_member(k).unwrap(), mirror.member(k), "member({k})");
        assert_eq!(rc.query_freq(k).unwrap(), mirror.frequency(k), "freq({k})");
    }
    assert_eq!(rc.query_card().unwrap().to_bits(), mirror.cardinality().to_bits());
    assert_eq!(rc.query_sim().unwrap().to_bits(), mirror.similarity().to_bits());

    // The primary's hub saw the replica ack up to the head.
    let status = Client::connect(&paddr).unwrap().cluster_status().unwrap();
    assert!(status.is_primary);
    assert_eq!(status.peers.len(), 1);
    assert!(
        eventually(3_000, || {
            Client::connect(&paddr).unwrap().cluster_status().unwrap().peers[0].acked == head
        }),
        "replica never acked the head"
    );

    replica.join();
    primary.join();
}

#[test]
fn replica_rejects_writes_naming_the_primary() {
    let primary = Server::start(primary_cfg("127.0.0.1:0")).unwrap();
    let paddr = primary.local_addr().to_string();
    let replica = Replica::start(replica_cfg(&paddr)).unwrap();

    let mut rc = Client::connect(replica.local_addr()).unwrap();
    let err = rc.insert(0, 42).unwrap_err();
    assert!(err.to_string().contains("read-only replica"), "{err}");
    assert!(err.to_string().contains(&paddr), "{err} must name the primary");
    let err = rc.insert_batch(0, &[1, 2, 3]).unwrap_err();
    assert!(err.to_string().contains(&paddr), "{err}");

    // Reads still work on the same connection.
    assert!(!rc.query_member(42).unwrap());
    let status = rc.cluster_status().unwrap();
    assert!(!status.is_primary);
    assert_eq!(status.primary, paddr);

    replica.join();
    primary.join();
}

#[test]
fn replica_survives_primary_death_and_resyncs_to_replacement() {
    // The replica reconnects by address, so the replacement primary must
    // reuse it: grab a free port first.
    let paddr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };

    let primary = Server::start(primary_cfg(&paddr)).unwrap();
    let mut client = Client::connect(&paddr).unwrap();
    let mut mirror = DirectEngine::new(engine_cfg());
    feed(&mut client, &mut mirror, 0, 20);

    let replica = Replica::start(replica_cfg(&paddr)).unwrap();
    assert!(eventually(5_000, || replica.status().applied.load(Ordering::SeqCst) == 20));
    drop(client);
    primary.join();

    // Orphaned but alive: reads keep working, the link reads down.
    assert!(
        eventually(5_000, || !replica.status().connected.load(Ordering::SeqCst)),
        "replica never noticed the primary dying"
    );
    assert_eq!(replica_checkpoint(&replica), mirror.checkpoint(), "orphan lost state");

    // A replacement primary appears at the same address with a fresh,
    // *shorter* log. The replica's position (21) is past its head, so the
    // only way back is a new snapshot: resync, not replay.
    let primary2 = Server::start(primary_cfg(&paddr)).unwrap();
    let mut client2 = Client::connect(&paddr).unwrap();
    let mut mirror2 = DirectEngine::new(engine_cfg());
    feed(&mut client2, &mut mirror2, 100, 103);

    assert!(
        eventually(10_000, || {
            let s = replica.status();
            s.applied.load(Ordering::SeqCst) == 3 && s.connected.load(Ordering::SeqCst)
        }),
        "replica never resynced (applied={}, boot={})",
        replica.status().applied.load(Ordering::SeqCst),
        replica.status().boot_seq.load(Ordering::SeqCst),
    );
    // The boot cut moved from the old primary's 20 to somewhere in the
    // new primary's short history — proof of a re-bootstrap, not replay.
    // (Its exact value depends on when the reconnect won the race with
    // the new inserts.)
    assert!(replica.status().boot_seq.load(Ordering::SeqCst) <= 3, "resync must re-bootstrap");

    // Tail from the new primary still works after the resync.
    feed(&mut client2, &mut mirror2, 103, 110);
    assert!(eventually(5_000, || replica.status().applied.load(Ordering::SeqCst) == 10));
    assert_eq!(replica_checkpoint(&replica), mirror2.checkpoint(), "post-resync divergence");

    replica.join();
    primary2.join();
}

/// Read-path repair after failover: a replica serving `--readpath`
/// keeps its fast mirror warm while following (the injector feeds it
/// synchronously), so after promotion `QUERY_FAST` on the new primary
/// answers bit-for-bit with the authoritative path — including keys
/// written *after* the promotion, applied by the refresher tailing the
/// now-filling local op log.
#[test]
fn promoted_replica_serves_query_fast_bit_for_bit() {
    let primary = Server::start(primary_cfg("127.0.0.1:0")).unwrap();
    let paddr = primary.local_addr().to_string();
    let mut client = Client::connect(&paddr).unwrap();
    let mut mirror = DirectEngine::new(engine_cfg());
    feed(&mut client, &mut mirror, 0, 40);

    let mut replica = Replica::start(ReplicaConfig {
        repl_log: 1 << 10,
        readpath: Some(she_server::ReadPathConfig::default()),
        ..replica_cfg(&paddr)
    })
    .unwrap();
    assert!(eventually(5_000, || replica.status().applied.load(Ordering::SeqCst) == 40));

    drop(client);
    primary.join();
    let promoted = replica.promote();

    // Writes continue against the promoted primary...
    let mut client2 = Client::connect(promoted).unwrap();
    feed(&mut client2, &mut mirror, 40, 60);

    // ...and once the fast mirror's refresher catches the op-log head,
    // fast answers must equal the authoritative ones bit-for-bit. The
    // local log was empty while following (the injector bypasses it), so
    // the promoted head counts only the 20 post-promotion batches.
    assert!(
        eventually(5_000, || {
            let s = Client::connect(promoted).unwrap().cluster_status().unwrap();
            s.readpath.enabled && s.head == 20 && s.readpath.seq >= s.head
        }),
        "fast mirror never caught the promoted op-log head"
    );
    for i in 0..64u64 {
        let k = she_hash::mix64(i * 37) % 3_000;
        assert_eq!(client2.fast_member(k).unwrap(), mirror.member(k), "fast member({k})");
        assert_eq!(client2.fast_freq(k).unwrap(), mirror.frequency(k), "fast freq({k})");
        assert_eq!(client2.query_member(k).unwrap(), mirror.member(k), "member({k})");
        assert_eq!(client2.query_freq(k).unwrap(), mirror.frequency(k), "freq({k})");
    }

    replica.join();
}

#[test]
fn anti_entropy_sweeps_are_stable_on_converged_state() {
    let primary = Server::start(primary_cfg("127.0.0.1:0")).unwrap();
    let paddr = primary.local_addr().to_string();
    let mut client = Client::connect(&paddr).unwrap();
    let mut mirror = DirectEngine::new(engine_cfg());
    feed(&mut client, &mut mirror, 0, 30);

    let replica =
        Replica::start(ReplicaConfig { anti_entropy_ms: 25, ..replica_cfg(&paddr) }).unwrap();
    assert!(eventually(5_000, || replica.status().applied.load(Ordering::SeqCst) == 30));

    // The first sweep may advance lazy cleaning (reconcile touches every
    // group, like a query pass would), so the replica's bytes are not
    // compared to the mirror's here. What must hold is *stability*:
    // after one sweep the state is a fixed point — reconcile's
    // idempotent merges (OR / max / min-nonzero, counter max) leave it
    // bit-identical, sweep after sweep.
    std::thread::sleep(Duration::from_millis(150));
    let settled = replica_checkpoint(&replica);
    for round in 0..3 {
        std::thread::sleep(Duration::from_millis(75));
        assert_eq!(
            replica_checkpoint(&replica),
            settled,
            "anti-entropy sweep drifted converged state (round {round})"
        );
    }

    // And the answers still agree with the mirror: cleaning is lazy and
    // deterministic, so a query sees the same post-cleaning state
    // whether a sweep already forced it (replica) or the query itself
    // does (mirror).
    let mut rc = Client::connect(replica.local_addr()).unwrap();
    for i in 0..32u64 {
        let k = she_hash::mix64(i) % 3_000;
        assert_eq!(rc.query_member(k).unwrap(), mirror.member(k), "member({k})");
        assert_eq!(rc.query_freq(k).unwrap(), mirror.frequency(k), "freq({k})");
    }
    assert_eq!(rc.query_card().unwrap().to_bits(), mirror.cardinality().to_bits());
    assert_eq!(rc.query_sim().unwrap().to_bits(), mirror.similarity().to_bits());

    replica.join();
    primary.join();
}
