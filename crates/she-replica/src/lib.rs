//! she-replica: the replica-side replication runtime for she-server.
//!
//! A [`Replica`] is a full she-server (it answers every read in the
//! protocol) whose state is a follower of a primary's:
//!
//! 1. **Bootstrap** — fetch a `REPL_BOOTSTRAP` package from the primary:
//!    a whole-server checkpoint plus the op-log sequence number it
//!    reflects, cut atomically on the primary. The replica rebuilds its
//!    shard engines from the checkpoint — no replay of history.
//! 2. **Tail** — subscribe to the primary's op log from the cut, apply
//!    each record through the embedded server's [`Injector`] (the same
//!    [`EngineConfig::partition`](she_server::EngineConfig::partition)
//!    routing as the primary's own insert path, so per-shard apply order
//!    is bit-identical), and acknowledge progress so the primary's
//!    `CLUSTER_STATUS` can report replica lag.
//! 3. **Recover** — if the feed drops, reconnect with capped exponential
//!    backoff and resume from `applied + 1`. If that position has fallen
//!    off the primary's bounded log (`LOG_TRUNCATED`, or the primary was
//!    replaced and its log restarted), take a fresh bootstrap instead of
//!    replaying — snapshot + delta, never full history.
//! 4. **Anti-entropy** (optional) — periodically fetch an atomically cut
//!    bootstrap package from the upstream primary and *fold* it in with
//!    [`ShardEngine::reconcile`](she_server::ShardEngine::reconcile)'s
//!    commutative, idempotent merge (cell-wise OR/max/min-nonzero,
//!    counter max), then advance the applied position to the cut. The
//!    sweep runs on the tail thread itself — never concurrently with
//!    feed applies — so a record is counted exactly once: everything up
//!    to the cut arrives via the merged state and the feed's duplicate
//!    skip drops it, everything after arrives via the feed. A holder
//!    that missed ops while partitioned converges this way without
//!    discarding local state.
//! 5. **Re-targeting** — when [`ReplicaConfig::follow`] names a cluster
//!    partition, every upstream dial resolves the partition's *current*
//!    primary from the shared [`ClusterDirectory`]. After a failover the
//!    next reconnect lands on the promoted node automatically; since the
//!    promoted node's log is fresh, the subscribe position is refused and
//!    the replica takes a full bootstrap from its new upstream.
//!
//! Writes sent to a replica are answered `NOT_PRIMARY` naming the
//! primary; that mapping lives in the embedded server and is driven by
//! the [`ReplicaStatus`] this runtime keeps current. Primary loss is
//! detected by heartbeat silence: the primary sends `REPL_HEARTBEAT` on
//! an idle feed, and a replica that hears nothing for
//! [`ReplicaConfig::heartbeat_timeout_ms`] declares the link dead and
//! starts reconnecting.
//!
//! See `docs/REPLICATION.md` for the protocol-level story.

// The serving path must never truncate a length or a count silently:
// `she audit`'s cast rule holds this crate at a zero baseline, and the
// compiler enforces the same contract on every new cast.
#![deny(clippy::cast_possible_truncation)]

use she_server::codec::{read_frame, write_frame};
use she_server::protocol::{Request, Response, ShardStats};
use she_server::repl::Record;
use she_server::{
    Backoff, Checkpoint, Client, ClusterDirectory, Injector, ReadPathConfig, ReplicaStatus, Role,
    Server, ServerConfig,
};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Apply-side acknowledgement cadence, in records. Acks also go out on
/// every heartbeat, so an idle feed still reports an exact position.
const ACK_EVERY: u64 = 32;

/// Read timeout on the feed socket — the granularity at which the tail
/// thread notices a stop request or heartbeat silence.
const FEED_POLL: Duration = Duration::from_millis(100);

/// How a replica joins and follows its primary.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Address the replica's own server binds; port 0 for ephemeral.
    pub listen_addr: String,
    /// The primary's address, `host:port`.
    pub primary: String,
    /// Bounded depth of each local shard queue, in jobs.
    pub queue_capacity: usize,
    /// Hint returned with local `BUSY` responses.
    pub retry_after_ms: u32,
    /// Anti-entropy merge-sweep interval in milliseconds; 0 disables
    /// periodic sweeps (a truncation-triggered repair merge still runs).
    pub anti_entropy_ms: u64,
    /// Declare the primary lost after this much feed silence. Must
    /// comfortably exceed the primary's heartbeat interval (500ms
    /// default).
    pub heartbeat_timeout_ms: u64,
    /// First reconnect delay, in milliseconds.
    pub reconnect_base_ms: u64,
    /// Reconnect delay ceiling, in milliseconds.
    pub reconnect_cap_ms: u64,
    /// Connection attempts for the *initial* bootstrap before
    /// [`Replica::start`] gives up and returns the error. Reconnects
    /// after a successful start retry forever.
    pub max_bootstrap_attempts: u32,
    /// Total deadline for each control-plane request to the primary
    /// (bootstrap fetch, anti-entropy snapshot), in milliseconds. Keeps
    /// a half-open primary from wedging a bootstrap or sweep forever.
    /// 0 disables the deadline.
    pub op_timeout_ms: u64,
    /// Depth of the embedded server's own op log, in records. The log
    /// stays empty while the replica follows (the injector bypasses it)
    /// and starts filling after [`Replica::promote`], so a promoted
    /// replica can bootstrap and feed replicas of its own. 0 keeps the
    /// pre-cluster behaviour: no log, promotion serves but cannot
    /// replicate onward.
    pub repl_log: usize,
    /// Cluster membership directory shared with the node's other
    /// servers, so the embedded server answers the v4
    /// `CLUSTER_JOIN`/`CLUSTER_MAP`/`CLUSTER_QUERY` ops too.
    pub cluster: Option<Arc<ClusterDirectory>>,
    /// Enable the v5 `QUERY_FAST` read path on the embedded server. The
    /// replica's injector feeds the mirror synchronously alongside the
    /// shard queues, so fast reads track the applied position exactly;
    /// after a promotion the refresher takes over from the local log.
    pub readpath: Option<ReadPathConfig>,
    /// Follow this cluster partition's *current* primary instead of the
    /// static [`ReplicaConfig::primary`] address: every reconnect,
    /// resync, and sweep re-resolves the partition's primary from the
    /// [`ReplicaConfig::cluster`] directory, so the replica re-targets a
    /// promoted node without being restarted. Requires `cluster`.
    pub follow: Option<usize>,
    /// This replica's cluster node id, sent with `REPL_SUBSCRIBE` (v6)
    /// so the primary labels the peer `{node_id}@{addr}` in
    /// `CLUSTER_STATUS`. 0 subscribes anonymously (the v5 wire form).
    pub node_id: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            listen_addr: "127.0.0.1:0".to_string(),
            primary: String::new(),
            queue_capacity: 256,
            retry_after_ms: 2,
            anti_entropy_ms: 0,
            heartbeat_timeout_ms: 2_500,
            reconnect_base_ms: 50,
            reconnect_cap_ms: 2_000,
            max_bootstrap_attempts: 10,
            op_timeout_ms: 10_000,
            repl_log: 0,
            cluster: None,
            readpath: None,
            follow: None,
            node_id: 0,
        }
    }
}

/// Why one pass over the feed socket ended.
enum FeedEnd {
    /// Stop was requested; unwind without reconnecting.
    Stopped,
    /// Connection failed or went silent; back off and reconnect.
    Lost,
    /// Our position is unservable (log truncated, or a new primary with
    /// a shorter log); take a fresh bootstrap before resubscribing.
    /// `merge` says our state is still a *prefix* of the upstream's
    /// history (the log merely moved past us), so a commutative merge of
    /// the upstream's cut is bit-exact and cheaper than discarding local
    /// state — unless the upstream itself changed hands meanwhile.
    Resync { merge: bool },
}

/// A running replica: an embedded read-serving [`Server`] plus the
/// background threads that keep it converged with the primary.
#[derive(Debug)]
pub struct Replica {
    server: Server,
    status: Arc<ReplicaStatus>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Replica {
    /// Bootstrap from `cfg.primary` and start serving reads.
    ///
    /// Blocks until the initial snapshot is fetched, decoded, and loaded
    /// into freshly built shard engines (retrying up to
    /// [`ReplicaConfig::max_bootstrap_attempts`] times), then spawns the
    /// tail thread (which also runs the periodic anti-entropy merge
    /// sweeps, so sweeps never race feed applies) and returns.
    pub fn start(cfg: ReplicaConfig) -> io::Result<Replica> {
        let mut backoff = Backoff::from_clock(
            Duration::from_millis(cfg.reconnect_base_ms.max(1)),
            Duration::from_millis(cfg.reconnect_cap_ms.max(1)),
        );
        let (seq, ckpt) = loop {
            let upstream = upstream_addr(&cfg);
            match fetch_bootstrap(&upstream, cfg.op_timeout_ms) {
                Ok(pair) => break pair,
                Err(e) if backoff.attempts() + 1 >= cfg.max_bootstrap_attempts.max(1) => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("bootstrap from {upstream} failed: {e}"),
                    ));
                }
                Err(_) => std::thread::sleep(backoff.next_delay()),
            }
        };
        let (engine, engines) = ckpt
            .build_engines(ckpt.cfg.shards)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;

        let status = Arc::new(ReplicaStatus::default());
        status.applied.store(seq, Ordering::SeqCst);
        status.boot_seq.store(seq, Ordering::SeqCst);

        let server = Server::start_with_engines(
            ServerConfig {
                addr: cfg.listen_addr.clone(),
                engine,
                queue_capacity: cfg.queue_capacity,
                retry_after_ms: cfg.retry_after_ms,
                role: Role::Replica { primary: cfg.primary.clone(), status: Arc::clone(&status) },
                repl_log: cfg.repl_log,
                cluster: cfg.cluster.clone(),
                readpath: cfg.readpath,
                ..Default::default()
            },
            engines,
        )?;

        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        {
            let (cfg, injector) = (cfg.clone(), server.injector());
            let (status, stop) = (Arc::clone(&status), Arc::clone(&stop));
            // audit:allow(growth): fixed worker set — one tail thread per replica
            threads.push(
                std::thread::Builder::new()
                    .name("she-repl-tail".into())
                    .spawn(move || run_tail(&cfg, &injector, &status, &stop))?,
            );
        }
        Ok(Replica { server, status, stop, threads })
    }

    /// The replica server's bound address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.server.local_addr()
    }

    /// The live link state (applied position, connectedness, boot cut).
    pub fn status(&self) -> &Arc<ReplicaStatus> {
        &self.status
    }

    /// Ask the replica to stop, as if a client sent `SHUTDOWN`.
    pub fn shutdown(&self) {
        self.server.shutdown();
    }

    /// Promote this replica to a serving primary: stop following (the
    /// tail and anti-entropy threads are joined, so no stale record can
    /// arrive after the flip), then switch the embedded server to accept
    /// writes. Returns the address the promoted server serves on, for
    /// the new cluster map.
    ///
    /// The replica's state at the flip is exactly the records it
    /// acknowledged — deterministic failover needs callers to quiesce or
    /// accept the acknowledged cut as the new history.
    pub fn promote(&mut self) -> std::net::SocketAddr {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.server.promote();
        self.local_addr()
    }

    /// Block until something stops the replica (a wire `SHUTDOWN` or
    /// [`Replica::shutdown`]), then unwind: stop the replication
    /// threads, join them (releasing their [`Injector`]s so the shard
    /// queues can drain), and join the embedded server.
    pub fn wait(self) -> Vec<ShardStats> {
        while !self.server.is_shutting_down() {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
        self.server.wait()
    }

    /// [`Replica::shutdown`] then [`Replica::wait`].
    pub fn join(self) -> Vec<ShardStats> {
        self.shutdown();
        self.wait()
    }
}

/// Fetch and decode one bootstrap package from the primary.
fn fetch_bootstrap(primary: &str, op_timeout_ms: u64) -> io::Result<(u64, Checkpoint)> {
    let mut client = Client::connect(primary)?;
    client.set_op_timeout(op_timeout(op_timeout_ms))?;
    let version = client.hello()?;
    if version < 3 {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            format!("primary speaks protocol v{version}; replication needs v3"),
        ));
    }
    let (seq, bytes) = client.repl_bootstrap()?;
    let ckpt = Checkpoint::decode(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((seq, ckpt))
}

/// Re-bootstrap a *live* replica in place: restore every shard through
/// the injector, then move the applied position to the new cut.
fn resync(
    primary: &str,
    op_timeout_ms: u64,
    injector: &Injector,
    status: &ReplicaStatus,
) -> io::Result<()> {
    let (seq, ckpt) = fetch_bootstrap(primary, op_timeout_ms)?;
    if ckpt.cfg != *injector.config() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "primary engine config changed; restart the replica to re-shard",
        ));
    }
    for (shard, frame) in ckpt.shards.iter().enumerate() {
        injector.restore(shard, frame)?;
    }
    status.boot_seq.store(seq, Ordering::SeqCst);
    status.applied.store(seq, Ordering::SeqCst);
    Ok(())
}

/// Sleep `total`, checking `stop` every few tens of milliseconds.
fn sleep_unless_stopped(total: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::SeqCst) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            break;
        }
        std::thread::sleep(left.min(Duration::from_millis(20)));
    }
}

/// The tail thread: subscribe, apply, ack; reconnect with backoff on
/// loss; repair-merge or re-bootstrap on truncation. Runs until `stop`.
/// Every pass re-resolves the upstream, so a mapped failover re-targets
/// the feed at the promoted primary.
fn run_tail(cfg: &ReplicaConfig, injector: &Injector, status: &ReplicaStatus, stop: &AtomicBool) {
    let mut backoff = Backoff::from_clock(
        Duration::from_millis(cfg.reconnect_base_ms.max(1)),
        Duration::from_millis(cfg.reconnect_cap_ms.max(1)),
    );
    while !stop.load(Ordering::SeqCst) {
        let upstream = upstream_addr(cfg);
        let end = feed_once(cfg, &upstream, injector, status, stop, &mut backoff);
        status.connected.store(false, Ordering::SeqCst);
        match end {
            FeedEnd::Stopped => break,
            FeedEnd::Lost => sleep_unless_stopped(backoff.next_delay(), stop),
            FeedEnd::Resync { merge } => {
                // If the upstream changed hands while we were feeding, our
                // unacknowledged suffix may not be a prefix of the *new*
                // primary's history — a merge would preserve the divergent
                // suffix forever. Only merge when it is still the same
                // upstream; otherwise replace wholesale.
                let now = upstream_addr(cfg);
                let repaired = if merge && now == upstream {
                    merge_sweep(&now, cfg.op_timeout_ms, injector, status).map(|_| ())
                } else {
                    resync(&now, cfg.op_timeout_ms, injector, status)
                };
                if repaired.is_ok() {
                    backoff.reset();
                } else {
                    sleep_unless_stopped(backoff.next_delay(), stop);
                }
            }
        }
    }
    status.connected.store(false, Ordering::SeqCst);
}

/// Send one `REPL_ACK` up the feed socket.
fn send_ack(sock: &mut TcpStream, seq: u64) -> io::Result<()> {
    write_frame(sock, &Request::ReplAck { seq }.encode())
}

/// One connection's worth of tailing: connect to `upstream`, subscribe
/// from `applied + 1`, then apply records until the feed ends. Quiet
/// stretches run the periodic anti-entropy merge sweep and watch for the
/// cluster map re-targeting the partition elsewhere.
fn feed_once(
    cfg: &ReplicaConfig,
    upstream: &str,
    injector: &Injector,
    status: &ReplicaStatus,
    stop: &AtomicBool,
    backoff: &mut Backoff,
) -> FeedEnd {
    let Ok(mut client) = Client::connect(upstream) else {
        return FeedEnd::Lost;
    };
    match client.hello() {
        Ok(v) if v >= 3 => {}
        _ => return FeedEnd::Lost,
    }
    let mut applied = status.applied.load(Ordering::SeqCst);
    let Ok(mut sock) = client.subscribe_as(applied + 1, cfg.node_id) else {
        return FeedEnd::Lost;
    };
    if sock.set_read_timeout(Some(FEED_POLL)).is_err() {
        return FeedEnd::Lost;
    }

    let timeout = Duration::from_millis(cfg.heartbeat_timeout_ms.max(1));
    let sweep_every = (cfg.anti_entropy_ms > 0).then(|| Duration::from_millis(cfg.anti_entropy_ms));
    let mut last_sweep = Instant::now();
    let mut last_heard = Instant::now();
    let mut unacked = 0u64;
    loop {
        if stop.load(Ordering::SeqCst) {
            return FeedEnd::Stopped;
        }
        match read_frame(&mut sock) {
            Ok(Some(payload)) => {
                last_heard = Instant::now();
                let Ok(resp) = Response::decode(&payload) else {
                    return FeedEnd::Lost;
                };
                match resp {
                    Response::ReplOp(data) => {
                        let Ok(rec) = Record::decode(&data) else {
                            return FeedEnd::Lost;
                        };
                        if rec.seq <= applied {
                            continue; // duplicate after a reconnect race
                        }
                        if rec.seq != applied + 1 {
                            // Gap: the log moved under us but the upstream is
                            // unchanged, so a repair merge is bit-exact.
                            return FeedEnd::Resync { merge: true };
                        }
                        if injector.apply(rec.stream, &rec.keys).is_err() {
                            return FeedEnd::Stopped; // local server unwinding
                        }
                        applied = rec.seq;
                        status.applied.store(applied, Ordering::SeqCst);
                        status.connected.store(true, Ordering::SeqCst);
                        backoff.reset();
                        unacked += 1;
                        if unacked >= ACK_EVERY {
                            if send_ack(&mut sock, applied).is_err() {
                                return FeedEnd::Lost;
                            }
                            unacked = 0;
                        }
                    }
                    Response::ReplHeartbeat { .. } => {
                        status.connected.store(true, Ordering::SeqCst);
                        backoff.reset();
                        if send_ack(&mut sock, applied).is_err() {
                            return FeedEnd::Lost;
                        }
                        unacked = 0;
                    }
                    // Truncation from the *same* primary means our state is
                    // still a prefix of its history — repair by merge.
                    Response::LogTruncated { .. } => return FeedEnd::Resync { merge: true },
                    // The primary refuses this position (e.g. a replacement
                    // primary whose fresh log is shorter than our history):
                    // a fresh snapshot is the only way back in sync.
                    Response::Err(_) => return FeedEnd::Resync { merge: false },
                    _ => return FeedEnd::Lost,
                }
            }
            Ok(None) => return FeedEnd::Lost, // primary hung up
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if last_heard.elapsed() >= timeout {
                    return FeedEnd::Lost; // heartbeat silence: primary is gone
                }
                // The cluster map moved the partition: chase the new
                // primary instead of idling on the old feed.
                if cfg.follow.is_some() && upstream_addr(cfg) != upstream {
                    return FeedEnd::Lost;
                }
                if let Some(every) = sweep_every {
                    if last_sweep.elapsed() >= every {
                        last_sweep = Instant::now();
                        if let Ok(cut) = merge_sweep(upstream, cfg.op_timeout_ms, injector, status)
                        {
                            applied = applied.max(cut);
                            last_heard = Instant::now(); // a sweep proves liveness
                        }
                    }
                }
            }
            Err(_) => return FeedEnd::Lost,
        }
    }
}

/// The per-request deadline as a `Duration`, if enabled.
fn op_timeout(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// The address this replica should follow *right now*: the current
/// primary of the followed partition when [`ReplicaConfig::follow`] and
/// a cluster directory are wired in, else the static configured primary.
fn upstream_addr(cfg: &ReplicaConfig) -> String {
    if let (Some(part), Some(dir)) = (cfg.follow, cfg.cluster.as_ref()) {
        if let Some(p) = dir.get().partitions.get(part) {
            return p.primary.addr.clone();
        }
    }
    cfg.primary.clone()
}

/// One cluster-aware anti-entropy pass: fetch an *atomically cut*
/// bootstrap package from the upstream and fold every shard frame into
/// the local engines with the commutative time-mark merge, then advance
/// the applied position to the cut.
///
/// Correctness leans on two facts. First, this runs only on the tail
/// thread, so no feed record is applied concurrently with the merge.
/// Second, the local state is a prefix of the same upstream's history,
/// and the time-mark reconcile of a prefix into the full state at the
/// cut yields exactly the state at the cut — so after the merge the
/// replica *is* the upstream at `seq`, and the feed's duplicate skip
/// (`rec.seq <= applied`) discards every in-flight record the merge
/// already covered. Nothing is counted twice. Returns the cut.
fn merge_sweep(
    upstream: &str,
    op_timeout_ms: u64,
    injector: &Injector,
    status: &ReplicaStatus,
) -> io::Result<u64> {
    let (seq, ckpt) = fetch_bootstrap(upstream, op_timeout_ms)?;
    if ckpt.cfg != *injector.config() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "upstream engine config changed; restart the replica to re-shard",
        ));
    }
    for (shard, frame) in ckpt.shards.iter().enumerate() {
        injector.merge(shard, frame)?;
    }
    status.applied.fetch_max(seq, Ordering::SeqCst);
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ReplicaConfig::default();
        assert!(cfg.heartbeat_timeout_ms > 500, "timeout must exceed the heartbeat interval");
        assert!(cfg.reconnect_base_ms <= cfg.reconnect_cap_ms);
        assert!(cfg.max_bootstrap_attempts >= 1);
    }

    #[test]
    fn bootstrap_against_nothing_fails_fast() {
        // A refused connection must come back as an error, not a hang.
        let cfg = ReplicaConfig {
            primary: "127.0.0.1:1".to_string(),
            max_bootstrap_attempts: 2,
            reconnect_base_ms: 1,
            reconnect_cap_ms: 2,
            ..Default::default()
        };
        let err = match Replica::start(cfg) {
            Ok(_) => panic!("bootstrap against a closed port must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("bootstrap from 127.0.0.1:1 failed"), "{err}");
    }
}
