//! Timestamp-Vector (Kim & O'Hallaron — GLOBECOM 2003).
//!
//! A bitmap whose bits are replaced by full arrival timestamps: insertion
//! writes the current time into the hashed slot; the query counts *active*
//! slots (timestamp within the window) and applies the bitmap MLE. Exact
//! expiry, but each "bit" costs a 64-bit timestamp — the memory
//! inefficiency the SHE paper contrasts against.

use she_hash::HashFamily;
use she_sketch::bitmap_mle;

/// TSV: `m` timestamp slots over a window of `window` items.
#[derive(Debug, Clone)]
pub struct TimestampVector {
    window: u64,
    family: HashFamily,
    /// 0 = never written; otherwise the arrival time (1-based).
    slots: Vec<u64>,
    now: u64,
}

impl TimestampVector {
    /// `m` slots over a window of `window` items.
    pub fn new(m: usize, window: u64, seed: u32) -> Self {
        assert!(m > 0 && window > 0);
        Self { window, family: HashFamily::new(1, seed), slots: vec![0; m], now: 0 }
    }

    /// Sized from a memory budget in bytes (64-bit timestamps, per §7.1).
    pub fn with_memory(bytes: usize, window: u64, seed: u32) -> Self {
        Self::new(((bytes * 8) / 64).max(1), window, seed)
    }

    /// Insert the next item.
    pub fn insert(&mut self, key: u64) {
        self.now += 1;
        let idx = self.family.index(0, &key, self.slots.len());
        self.slots[idx] = self.now;
    }

    /// Cardinality estimate: bitmap MLE over the active slots.
    pub fn estimate(&self) -> f64 {
        let cutoff = self.now.saturating_sub(self.window);
        let inactive = self.slots.iter().filter(|&&t| t <= cutoff || t == 0).count();
        bitmap_mle(inactive, self.slots.len())
    }

    /// Memory footprint in bits (64 per slot).
    pub fn memory_bits(&self) -> usize {
        self.slots.len() * 64
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_window_cardinality() {
        let window = 1u64 << 14;
        let mut tsv = TimestampVector::new(1 << 16, window, 1);
        for i in 0..4 * window {
            tsv.insert(i);
        }
        let est = tsv.estimate();
        let re = (est - window as f64).abs() / window as f64;
        assert!(re < 0.1, "estimate {est}, re {re}");
    }

    #[test]
    fn expiry_is_exact() {
        let window = 1000u64;
        let mut tsv = TimestampVector::new(1 << 14, window, 2);
        for i in 0..10_000u64 {
            tsv.insert(i);
        }
        for _ in 0..window {
            tsv.insert(7);
        }
        let est = tsv.estimate();
        assert!(est < 20.0, "stale estimate {est}");
    }

    #[test]
    fn memory_is_64x_a_bitmap() {
        let tsv = TimestampVector::with_memory(1024, 100, 0);
        assert_eq!(tsv.len(), 128);
        assert_eq!(tsv.memory_bits(), 8192);
    }

    #[test]
    fn empty_estimates_zero() {
        let tsv = TimestampVector::new(256, 100, 3);
        assert_eq!(tsv.estimate(), 0.0);
    }
}
