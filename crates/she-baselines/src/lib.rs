//! Sliding-window baselines from the SHE paper's evaluation (§2.2, §7.1).
//!
//! Every competitor that appears in Figs. 9–11, implemented from its source
//! publication:
//!
//! | Baseline | Task | Figure | Module |
//! |----------|------|--------|--------|
//! | [`Swamp`] (Assaf et al.)        | membership / cardinality / frequency | 9a, 9c, 9d | [`swamp`] |
//! | [`SlidingHyperLogLog`] (Chabchoub & Hébrail) | cardinality | 9b, 10a | [`shll`] |
//! | [`CounterVectorSketch`] (Shan et al.) | cardinality | 9a, 10b | [`cvs`] |
//! | [`TimestampVector`] (Kim & O'Hallaron) | cardinality | 9a | [`tsv`] |
//! | [`TimeOutBloomFilter`] (Kong et al.) | membership | 9d | [`tobf`] |
//! | [`TimingBloomFilter`] (Zhang & Guan) | membership | 9d | [`tbf`] |
//! | [`EcmSketch`] (Papapetrou et al.) | frequency | 9c | [`ecm`] |
//! | [`StrawmanMinHash`] (paper §7.1) | similarity | 9e | [`strawman_mh`] |
//!
//! All baselines are keyed by `u64` (the workload generators' key type) and
//! report their memory footprint with the same bit-level accounting the
//! paper uses (64-bit timestamps where the paper says so).

pub mod cvs;
pub mod ecm;
pub mod shll;
pub mod strawman_mh;
pub mod swamp;
pub mod tbf;
pub mod tinytable;
pub mod tobf;
pub mod tsv;

pub use cvs::CounterVectorSketch;
pub use ecm::EcmSketch;
pub use shll::SlidingHyperLogLog;
pub use strawman_mh::StrawmanMinHash;
pub use swamp::Swamp;
pub use tbf::TimingBloomFilter;
pub use tobf::TimeOutBloomFilter;
pub use tsv::TimestampVector;
