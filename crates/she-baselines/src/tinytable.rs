//! A compact counting fingerprint table — the TinyTable role in SWAMP.
//!
//! Open-addressing (linear probing) over packed slots of
//! `fingerprint_bits + 8` bits: a fingerprint and a small saturating
//! counter. Counts that outgrow 8 bits spill to a tiny side map (only ever
//! heavy fingerprints; the common case stays in the packed array), so
//! increments and decrements stay exact — which SWAMP's
//! delete-the-oldest-fingerprint path requires.
//!
//! Fingerprint value 0 marks an empty slot; user fingerprints equal to 0
//! are remapped to a reserved non-zero alias so no information is lost.

use she_sketch::PackedArray;
use std::collections::HashMap;

const COUNTER_BITS: u32 = 8;
const COUNTER_MAX: u64 = (1 << COUNTER_BITS) - 1;

/// Compact counting multiset of fingerprints.
#[derive(Debug, Clone)]
pub struct TinyTable {
    /// Packed slots: low `fp_bits` the fingerprint, high 8 the counter.
    slots: PackedArray,
    fp_bits: u32,
    capacity: usize,
    len_distinct: usize,
    /// Exact counts for fingerprints whose counter saturated.
    spill: HashMap<u64, u64>,
}

impl TinyTable {
    /// Table sized for up to `items` live fingerprints of `fp_bits` bits
    /// (capacity is 1.25× for probing headroom).
    pub fn new(items: usize, fp_bits: u32) -> Self {
        assert!(items > 0);
        assert!((1..=32).contains(&fp_bits));
        let capacity = (items + items / 4 + 1).next_power_of_two();
        Self {
            slots: PackedArray::new(capacity, fp_bits + COUNTER_BITS),
            fp_bits,
            capacity,
            len_distinct: 0,
            spill: HashMap::new(),
        }
    }

    #[inline]
    fn alias(&self, fp: u64) -> u64 {
        let mask = if self.fp_bits == 32 { u32::MAX as u64 } else { (1u64 << self.fp_bits) - 1 };
        let fp = fp & mask;
        if fp == 0 {
            1 // reserved alias: empty-slot sentinel stays unambiguous
        } else {
            fp
        }
    }

    #[inline]
    fn unpack(&self, slot: u64) -> (u64, u64) {
        let fp_mask = (1u64 << self.fp_bits) - 1;
        (slot & fp_mask, slot >> self.fp_bits)
    }

    #[inline]
    fn pack(&self, fp: u64, count: u64) -> u64 {
        fp | (count << self.fp_bits)
    }

    /// Find the slot index holding `fp`, or the first empty slot on its
    /// probe path.
    fn probe(&self, fp: u64) -> usize {
        let mut i = (she_hash::mix64(fp) as usize) & (self.capacity - 1);
        loop {
            let (sfp, _) = self.unpack(self.slots.get(i));
            if sfp == fp || sfp == 0 {
                return i;
            }
            i = (i + 1) & (self.capacity - 1);
        }
    }

    /// Add one occurrence of `fp`.
    pub fn increment(&mut self, fp: u64) {
        let fp = self.alias(fp);
        let i = self.probe(fp);
        let (sfp, count) = self.unpack(self.slots.get(i));
        if sfp == 0 {
            assert!(
                self.len_distinct < self.capacity - 1,
                "TinyTable over capacity: size it for the window"
            );
            self.slots.set(i, self.pack(fp, 1));
            self.len_distinct += 1;
        } else if count == COUNTER_MAX {
            *self.spill.entry(fp).or_insert(COUNTER_MAX) += 1;
        } else {
            self.slots.set(i, self.pack(fp, count + 1));
        }
    }

    /// Remove one occurrence of `fp` (must be present).
    pub fn decrement(&mut self, fp: u64) {
        let fp = self.alias(fp);
        let i = self.probe(fp);
        let (sfp, count) = self.unpack(self.slots.get(i));
        assert!(sfp == fp && count > 0, "decrement of absent fingerprint");
        if let Some(spilled) = self.spill.get_mut(&fp) {
            *spilled -= 1;
            if *spilled == COUNTER_MAX {
                self.spill.remove(&fp);
            }
            return;
        }
        if count == 1 {
            self.remove_slot(i);
        } else {
            self.slots.set(i, self.pack(fp, count - 1));
        }
    }

    /// Delete slot `i` and re-seat any displaced probe chains (standard
    /// linear-probing backward-shift deletion).
    fn remove_slot(&mut self, i: usize) {
        self.slots.set(i, 0);
        self.len_distinct -= 1;
        let mut j = (i + 1) & (self.capacity - 1);
        loop {
            let slot = self.slots.get(j);
            let (fp, _) = self.unpack(slot);
            if fp == 0 {
                break;
            }
            // Re-insert the displaced entry.
            self.slots.set(j, 0);
            let k = self.probe(fp);
            self.slots.set(k, slot);
            j = (j + 1) & (self.capacity - 1);
        }
    }

    /// Multiplicity of `fp`.
    pub fn count(&self, fp: u64) -> u64 {
        let fp = self.alias(fp);
        if let Some(&spilled) = self.spill.get(&fp) {
            return spilled;
        }
        let i = self.probe(fp);
        let (sfp, count) = self.unpack(self.slots.get(i));
        if sfp == fp {
            count
        } else {
            0
        }
    }

    /// Is `fp` present?
    pub fn contains(&self, fp: u64) -> bool {
        self.count(fp) > 0
    }

    /// Number of distinct fingerprints held.
    pub fn distinct(&self) -> usize {
        self.len_distinct
    }

    /// Memory footprint in bits (packed slots; the rare spill entries are
    /// charged at 72 bits each).
    pub fn memory_bits(&self) -> usize {
        self.slots.memory_bits() + self.spill.len() * 72
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_decrement_roundtrip() {
        let mut t = TinyTable::new(100, 16);
        for fp in 1..=50u64 {
            for _ in 0..fp {
                t.increment(fp);
            }
        }
        assert_eq!(t.distinct(), 50);
        for fp in 1..=50u64 {
            assert_eq!(t.count(fp), fp);
        }
        for fp in 1..=50u64 {
            t.decrement(fp);
        }
        assert_eq!(t.count(1), 0);
        assert!(!t.contains(1));
        assert_eq!(t.count(50), 49);
        assert_eq!(t.distinct(), 49);
    }

    #[test]
    fn zero_fingerprint_is_aliased() {
        let mut t = TinyTable::new(10, 8);
        t.increment(0);
        t.increment(256); // also aliases to 0 & then 1 under an 8-bit mask
        assert_eq!(t.count(0), 2);
        t.decrement(0);
        t.decrement(0);
        assert_eq!(t.count(0), 0);
    }

    #[test]
    fn counter_saturation_spills_exactly() {
        let mut t = TinyTable::new(10, 12);
        for _ in 0..1000 {
            t.increment(7);
        }
        assert_eq!(t.count(7), 1000);
        for _ in 0..990 {
            t.decrement(7);
        }
        assert_eq!(t.count(7), 10);
        assert_eq!(t.memory_bits(), t.slots.memory_bits(), "spill drained");
    }

    #[test]
    fn deletion_preserves_probe_chains() {
        // Force collisions with a tiny table and verify lookups survive
        // backward-shift deletion.
        let mut t = TinyTable::new(4, 20);
        let fps = [3u64, 11, 19, 27];
        for &fp in &fps {
            t.increment(fp);
        }
        t.decrement(11);
        assert!(!t.contains(11));
        for &fp in [3u64, 19, 27].iter() {
            assert!(t.contains(fp), "fp {fp} lost after chain deletion");
        }
    }

    #[test]
    #[should_panic]
    fn decrement_absent_panics() {
        let mut t = TinyTable::new(10, 8);
        t.decrement(5);
    }

    #[test]
    fn memory_is_compact() {
        let t = TinyTable::new(1000, 16);
        // 2048 slots x 24 bits = 6 KB — far below a HashMap<u64,u32>.
        assert_eq!(t.memory_bits(), 2048 * 24);
    }
}
