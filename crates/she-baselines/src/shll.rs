//! Sliding HyperLogLog (Chabchoub & Hébrail — ICDMW 2010).
//!
//! Classic HyperLogLog where each register keeps, instead of a single
//! maximum, the *list of possible future maxima* (LPFM): the time-descending
//! sequence of `(timestamp, rank)` records such that every kept record has a
//! strictly larger rank than all newer ones. Deletion of out-dated items is
//! exact — any window `≤ N` can be answered — but the lists make memory
//! usage input-dependent and unbounded in the worst case, the drawback the
//! SHE paper highlights.

use she_hash::{rank_of, HashFamily};
use she_sketch::{hll_alpha, hll_estimate_subset};

/// One LPFM record: an item with `rank` arrived at `time`.
#[derive(Debug, Clone, Copy)]
struct Record {
    time: u64,
    rank: u8,
}

/// Sliding-window HyperLogLog with exact expiry.
#[derive(Debug, Clone)]
pub struct SlidingHyperLogLog {
    window: u64,
    hc: HashFamily,
    hz: HashFamily,
    /// Per-register LPFM, oldest record first; ranks strictly decrease
    /// towards the back... strictly decrease from front (oldest, largest)
    /// to back (newest, smallest is not required — see `insert`).
    registers: Vec<Vec<Record>>,
    now: u64,
}

impl SlidingHyperLogLog {
    /// `m` registers over a window of `window` items.
    pub fn new(m: usize, window: u64, seed: u32) -> Self {
        assert!(m > 0 && window > 0);
        Self {
            window,
            hc: HashFamily::new(1, seed),
            hz: HashFamily::new(1, seed ^ 0x5bd1_e995),
            registers: vec![Vec::new(); m],
            now: 0,
        }
    }

    /// Number of registers.
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Insert the next item.
    pub fn insert(&mut self, key: u64) {
        self.now += 1;
        let t = self.now;
        let idx = self.hc.index(0, &key, self.registers.len());
        let rank = rank_of(self.hz.hash(0, &key) as u64, 32);
        let list = &mut self.registers[idx];
        // Expire records older than the maximal window of interest.
        let cutoff = t.saturating_sub(self.window);
        list.retain(|r| r.time > cutoff);
        // LPFM maintenance: drop every record with rank ≤ the newcomer's —
        // being older *and* no larger, they can never again be a window
        // maximum.
        while let Some(last) = list.last() {
            if last.rank <= rank {
                list.pop();
            } else {
                break;
            }
        }
        list.push(Record { time: t, rank });
    }

    /// Maximum rank within the last `window` items for register `i`
    /// (0 when empty).
    fn window_rank(&self, i: usize) -> u64 {
        let cutoff = self.now.saturating_sub(self.window);
        self.registers[i].iter().find(|r| r.time > cutoff).map(|r| r.rank as u64).unwrap_or(0)
    }

    /// Cardinality estimate over the sliding window (standard HLL
    /// estimator with small-range correction).
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len();
        hll_estimate_subset((0..m).map(|i| self.window_rank(i)), m)
    }

    /// The HLL bias constant for this register count (exposed for tests).
    pub fn alpha_m(&self) -> f64 {
        hll_alpha(self.registers.len())
    }

    /// Actual memory footprint in bits: every LPFM record carries the
    /// paper-specified 64-bit timestamp plus a 5-bit rank.
    pub fn memory_bits(&self) -> usize {
        self.registers.iter().map(|l| l.len() * (64 + 5)).sum()
    }

    /// Total LPFM records (memory proxy).
    pub fn total_records(&self) -> usize {
        self.registers.iter().map(|l| l.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_window_cardinality() {
        let window = 1u64 << 14;
        let mut s = SlidingHyperLogLog::new(1 << 10, window, 1);
        for i in 0..4 * window {
            s.insert(i);
        }
        let est = s.estimate();
        let re = (est - window as f64).abs() / window as f64;
        assert!(re < 0.15, "estimate {est}, re {re}");
    }

    #[test]
    fn expiry_is_exact() {
        let window = 1000u64;
        let mut s = SlidingHyperLogLog::new(256, window, 2);
        // Phase 1: large cardinality.
        for i in 0..10_000u64 {
            s.insert(i);
        }
        // Phase 2: one full window of a single repeated key.
        for _ in 0..window {
            s.insert(42);
        }
        let est = s.estimate();
        assert!(est < 20.0, "stale cardinality {est} after exact expiry");
    }

    #[test]
    fn lpfm_ranks_strictly_decrease_with_recency() {
        let mut s = SlidingHyperLogLog::new(16, 1 << 12, 3);
        for i in 0..20_000u64 {
            s.insert(i);
        }
        for list in &s.registers {
            for w in list.windows(2) {
                assert!(w[0].rank > w[1].rank, "LPFM invariant violated");
                assert!(w[0].time < w[1].time, "LPFM time order violated");
            }
        }
    }

    #[test]
    fn memory_grows_beyond_plain_hll() {
        let mut s = SlidingHyperLogLog::new(256, 1 << 14, 4);
        for i in 0..(1u64 << 16) {
            s.insert(i);
        }
        // Plain HLL: 256 × 5 bits = 1280. SHLL must charge timestamps.
        assert!(s.memory_bits() > 1280, "memory {}", s.memory_bits());
        assert!(s.total_records() >= 256);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let window = 1u64 << 12;
        let mut s = SlidingHyperLogLog::new(512, window, 5);
        for i in 0..4 * window {
            s.insert(i / 4);
        }
        let truth = window as f64 / 4.0;
        let est = s.estimate();
        let re = (est - truth).abs() / truth;
        assert!(re < 0.2, "estimate {est} truth {truth}");
    }
}
