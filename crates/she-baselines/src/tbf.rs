//! Timing Bloom Filter (Zhang & Guan — ICDCS 2008).
//!
//! Like the Time-Out Bloom filter but with *wraparound* time counters
//! instead of full 64-bit timestamps: each cell stores the arrival time
//! modulo a small counter range, and every insertion incrementally scans a
//! slice of the array, emptying cells whose age exceeds the window before
//! the wrapped values could become ambiguous. The paper's §7.1 setting uses
//! 18-bit counters and 8 hash functions.

use she_hash::HashFamily;
use she_sketch::PackedArray;

/// TBF: `m` wraparound time counters of `counter_bits` bits, `k` hash
/// functions, window of `window` items.
#[derive(Debug, Clone)]
pub struct TimingBloomFilter {
    window: u64,
    family: HashFamily,
    cells: PackedArray,
    /// Wraparound modulus; `modulus` itself is the "empty" sentinel... the
    /// sentinel is `2^bits − 1` and stored times live in `[0, 2^bits − 1)`.
    modulus: u64,
    empty: u64,
    /// Incremental cleaning cursor.
    cursor: usize,
    /// Cells to sweep per insertion: a full pass every `window` items.
    step: usize,
    now: u64,
}

impl TimingBloomFilter {
    /// `m` counters of `counter_bits` bits (≥ 2), `k` hash functions.
    ///
    /// `counter_bits` must satisfy `2^bits − 1 > 2·window` so a wrapped
    /// time can always be disambiguated between two cleaning passes.
    pub fn new(m: usize, counter_bits: u32, k: usize, window: u64, seed: u32) -> Self {
        assert!(m > 0 && window > 0);
        let empty = (1u64 << counter_bits) - 1;
        let modulus = empty; // stored times in [0, empty)
        assert!(
            modulus > 2 * window,
            "counter range 2^{counter_bits}-1 too small for window {window}"
        );
        let mut cells = PackedArray::new(m, counter_bits);
        for i in 0..m {
            cells.set(i, empty);
        }
        Self {
            window,
            family: HashFamily::new(k, seed),
            cells,
            modulus,
            empty,
            cursor: 0,
            step: m.div_ceil(window as usize),
            now: 0,
        }
    }

    /// Sized from a memory budget in bytes with the paper's 18-bit counters.
    pub fn with_memory(bytes: usize, k: usize, window: u64, seed: u32) -> Self {
        Self::new(((bytes * 8) / 18).max(k), 18, k, window, seed)
    }

    fn wrapped_now(&self) -> u64 {
        self.now % self.modulus
    }

    /// Age of a stored wrapped time relative to now.
    fn age_of(&self, stored: u64) -> u64 {
        (self.wrapped_now() + self.modulus - stored) % self.modulus
    }

    /// Sweep the next `step` cells, emptying those older than the window.
    fn sweep(&mut self) {
        for _ in 0..self.step {
            let v = self.cells.get(self.cursor);
            if v != self.empty && self.age_of(v) > self.window {
                self.cells.set(self.cursor, self.empty);
            }
            self.cursor += 1;
            if self.cursor == self.cells.len() {
                self.cursor = 0;
            }
        }
    }

    /// Insert the next item.
    pub fn insert(&mut self, key: u64) {
        self.now += 1;
        self.sweep();
        let t = self.wrapped_now();
        for i in 0..self.family.k() {
            let idx = self.family.index(i, &key, self.cells.len());
            self.cells.set(idx, t);
        }
    }

    /// Membership: every hashed counter non-empty and within the window.
    pub fn contains(&self, key: u64) -> bool {
        (0..self.family.k()).all(|i| {
            let v = self.cells.get(self.family.index(i, &key, self.cells.len()));
            v != self.empty && self.age_of(v) <= self.window
        })
    }

    /// Memory footprint in bits.
    pub fn memory_bits(&self) -> usize {
        self.cells.memory_bits()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_within_window() {
        let window = 1u64 << 10;
        let mut f = TimingBloomFilter::new(1 << 14, 18, 4, window, 1);
        for i in 0..3 * window {
            f.insert(i);
        }
        for i in 2 * window..3 * window {
            assert!(f.contains(i), "false negative on {i}");
        }
    }

    #[test]
    fn expired_items_rejected() {
        let window = 256u64;
        let mut f = TimingBloomFilter::new(1 << 12, 18, 4, window, 2);
        f.insert(999_999);
        for i in 0..4 * window {
            f.insert(i);
        }
        assert!(!f.contains(999_999));
    }

    #[test]
    fn survives_many_wraparounds() {
        // Run long enough for the wrapped clock to lap several times; the
        // incremental sweep must keep answers consistent.
        let window = 64u64;
        let mut f = TimingBloomFilter::new(512, 9, 2, window, 3); // modulus 511
        for i in 0..20_000u64 {
            f.insert(i % 1000);
        }
        // Keys inserted within the last window must be present.
        for i in (20_000 - 64)..20_000u64 {
            assert!(f.contains(i % 1000), "false negative after wrap, {i}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_counters_too_narrow_for_window() {
        let _ = TimingBloomFilter::new(64, 8, 2, 200, 0); // 255 < 2·200
    }

    #[test]
    fn memory_accounting() {
        let f = TimingBloomFilter::with_memory(1800, 8, 100, 0);
        assert_eq!(f.len(), 800);
        assert_eq!(f.memory_bits(), 800 * 18);
    }
}
