//! ECM sketch (Papapetrou, Garofalakis, Deligiannakis — VLDB 2012).
//!
//! A Count-Min sketch whose counters are sliding-window exponential
//! histograms: insertion records one event in each hashed histogram, the
//! frequency query takes the minimum of the per-histogram window estimates.
//! Expiry error is bounded by the EH parameter, but every counter costs
//! `O(k · log² N)` bits — the memory blow-up visible in Fig. 9c.

use she_hash::HashFamily;
use she_window::ExponentialHistogram;

/// ECM: `m` exponential-histogram counters, `k` hash functions (paper
/// setting: 4), window of `window` items.
#[derive(Debug, Clone)]
pub struct EcmSketch {
    family: HashFamily,
    counters: Vec<ExponentialHistogram>,
    now: u64,
}

impl EcmSketch {
    /// `m` EH counters with error parameter `eh_k`, `k` hash functions.
    pub fn new(m: usize, k: usize, eh_k: usize, window: u64, seed: u32) -> Self {
        assert!(m > 0 && k > 0);
        Self {
            family: HashFamily::new(k, seed),
            counters: vec![ExponentialHistogram::new(window, eh_k); m],
            now: 0,
        }
    }

    /// Sized from a memory budget in bytes.
    ///
    /// An EH holding `c` window events with parameter `eh_k` uses about
    /// `(eh_k + 1) · log2(1 + c/(eh_k + 1))` buckets of 72 bits. Under a
    /// window of `window` items spread over `m` counters by `k` hashes,
    /// `c ≈ window·k/m`, so the affordable counter count solves a fixed
    /// point — iterated here. (Provisioning at the theoretical worst case
    /// instead would starve ECM to single-digit counter counts.)
    pub fn with_memory(bytes: usize, k: usize, eh_k: usize, window: u64, seed: u32) -> Self {
        let budget_bits = (bytes * 8) as f64;
        let mut m = (budget_bits / 72.0).max(k as f64); // optimistic start
        for _ in 0..30 {
            let events_per_counter = window as f64 * k as f64 / m;
            let buckets =
                (eh_k as f64 + 1.0) * (1.0 + events_per_counter / (eh_k as f64 + 1.0)).log2();
            let per_counter_bits = (buckets.max(1.0)) * 72.0;
            m = (budget_bits / per_counter_bits).max(k as f64);
        }
        Self::new(m as usize, k, eh_k, window, seed)
    }

    /// Insert the next item.
    pub fn insert(&mut self, key: u64) {
        self.now += 1;
        for i in 0..self.family.k() {
            let idx = self.family.index(i, &key, self.counters.len());
            self.counters[idx].record(self.now);
        }
    }

    /// Frequency estimate: minimum over the hashed histograms' window
    /// estimates.
    pub fn query(&mut self, key: u64) -> u64 {
        let now = self.now;
        (0..self.family.k())
            .map(|i| {
                let idx = self.family.index(i, &key, self.counters.len());
                self.counters[idx].advance_to(now);
                self.counters[idx].estimate()
            })
            .min()
            .unwrap_or(0)
    }

    /// Actual memory footprint in bits (sum of live EH buckets).
    pub fn memory_bits(&self) -> usize {
        self.counters.iter().map(|c| c.memory_bits()).sum()
    }

    /// Number of EH counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_window_frequencies() {
        let window = 1u64 << 12;
        let mut ecm = EcmSketch::new(1 << 12, 4, 8, window, 1);
        // Key space of 256 recurring keys: each appears window/256 = 16
        // times per window.
        for i in 0..3 * window {
            ecm.insert(i % 256);
        }
        let truth = (window / 256) as f64;
        let mut sum_re = 0.0;
        for k in 0..256u64 {
            let est = ecm.query(k) as f64;
            sum_re += (est - truth).abs() / truth;
        }
        let are = sum_re / 256.0;
        assert!(are < 0.3, "ARE {are}");
    }

    #[test]
    fn expired_heavy_key_fades() {
        let window = 1u64 << 10;
        let mut ecm = EcmSketch::new(1 << 12, 4, 8, window, 2);
        for _ in 0..500 {
            ecm.insert(42);
        }
        for i in 0..4 * window {
            ecm.insert(i + 1000);
        }
        let est = ecm.query(42);
        assert!(est < 50, "stale estimate {est}");
    }

    #[test]
    fn memory_grows_with_load() {
        let mut ecm = EcmSketch::new(256, 4, 4, 1 << 10, 3);
        let before = ecm.memory_bits();
        for i in 0..10_000u64 {
            ecm.insert(i);
        }
        assert!(ecm.memory_bits() > before);
    }

    #[test]
    fn absent_key_small() {
        let window = 1u64 << 10;
        let mut ecm = EcmSketch::new(1 << 12, 4, 8, window, 4);
        for i in 0..window {
            ecm.insert(i);
        }
        assert!(ecm.query(0xdead_beef) <= 3);
    }
}
