//! Time-Out Bloom Filter (Kong, He, Shao et al. — ICOIN 2006).
//!
//! A Bloom filter whose bits are replaced by full arrival timestamps: an
//! insertion writes the current time into all `k` hashed slots; a query
//! answers "present" iff every hashed slot holds a timestamp within the
//! window. Exact expiry, one-sided error, but 64 bits per cell.

use she_hash::HashFamily;

/// TOBF: `m` timestamp slots, `k` hash functions, window of `window` items.
#[derive(Debug, Clone)]
pub struct TimeOutBloomFilter {
    window: u64,
    family: HashFamily,
    /// 0 = never written; otherwise the arrival time (1-based).
    slots: Vec<u64>,
    now: u64,
}

impl TimeOutBloomFilter {
    /// `m` slots, `k` hash functions.
    pub fn new(m: usize, k: usize, window: u64, seed: u32) -> Self {
        assert!(m > 0 && window > 0);
        Self { window, family: HashFamily::new(k, seed), slots: vec![0; m], now: 0 }
    }

    /// Sized from a memory budget in bytes (64-bit timestamps, per §7.1).
    pub fn with_memory(bytes: usize, k: usize, window: u64, seed: u32) -> Self {
        Self::new(((bytes * 8) / 64).max(k), k, window, seed)
    }

    /// Insert the next item.
    pub fn insert(&mut self, key: u64) {
        self.now += 1;
        for i in 0..self.family.k() {
            let idx = self.family.index(i, &key, self.slots.len());
            self.slots[idx] = self.now;
        }
    }

    /// Membership: all hashed slots in-window?
    pub fn contains(&self, key: u64) -> bool {
        let cutoff = self.now.saturating_sub(self.window);
        (0..self.family.k()).all(|i| {
            let t = self.slots[self.family.index(i, &key, self.slots.len())];
            t > cutoff
        })
    }

    /// Memory footprint in bits (64 per slot).
    pub fn memory_bits(&self) -> usize {
        self.slots.len() * 64
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_within_window() {
        let window = 1u64 << 12;
        let mut f = TimeOutBloomFilter::new(1 << 14, 4, window, 1);
        for i in 0..3 * window {
            f.insert(i);
        }
        for i in 2 * window..3 * window {
            assert!(f.contains(i), "false negative on {i}");
        }
    }

    #[test]
    fn expiry_is_exact_for_untouched_slots() {
        let window = 100u64;
        let mut f = TimeOutBloomFilter::new(1 << 14, 4, window, 2);
        f.insert(12345);
        // Slide far past with non-colliding traffic.
        for i in 0..1000u64 {
            f.insert(i);
        }
        assert!(!f.contains(12345));
    }

    #[test]
    fn fpr_reflects_active_density() {
        let window = 1u64 << 10;
        let mut f = TimeOutBloomFilter::new(1 << 15, 4, window, 3);
        for i in 0..4 * window {
            f.insert(i);
        }
        let fp = (0..10_000u64).filter(|&i| f.contains(i + 1_000_000)).count();
        // 1024 items × 4 hashes into 32k slots → load ~0.12 active;
        // FPR ≈ 0.12^4 ≈ 2e-4.
        assert!(fp < 60, "false positives: {fp}");
    }

    #[test]
    fn memory_accounting() {
        let f = TimeOutBloomFilter::with_memory(1024, 4, 100, 0);
        assert_eq!(f.len(), 128);
        assert_eq!(f.memory_bits(), 8192);
    }
}
