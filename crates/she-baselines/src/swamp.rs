//! SWAMP (Assaf, Ben Basat, Einziger, Friedman — INFOCOM 2018).
//!
//! A cyclic queue holds the fingerprints of the last `W` items; a counting
//! table tracks the multiplicity of every distinct fingerprint currently in
//! the queue. One structure answers membership (`ISMEMBER`), frequency, and
//! distinct-count (`DISTINCT` with its MLE correction) queries — the
//! "generic algorithm" the paper positions SHE against.
//!
//! The counting dictionary is a real compact table
//! ([`crate::tinytable::TinyTable`]): packed fingerprint+counter slots
//! with open addressing, standing in for the original's TinyTable at the
//! same bits-per-entry budget.

use crate::tinytable::TinyTable;
use she_hash::HashFamily;

/// SWAMP over a window of `W` items with `f`-bit fingerprints.
///
/// ```
/// use she_baselines::Swamp;
///
/// let mut s = Swamp::new(1_000, 24, 1);
/// for i in 0..5_000u64 {
///     s.insert(i % 300); // 300 distinct keys rotate through the window
/// }
/// assert!(s.contains(299));
/// assert!((s.distinct_mle() - 300.0).abs() < 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct Swamp {
    window: usize,
    fp_bits: u32,
    family: HashFamily,
    /// Cyclic fingerprint queue; `None` until warm.
    queue: Vec<u32>,
    head: usize,
    filled: bool,
    counts: TinyTable,
}

impl Swamp {
    /// SWAMP over the last `window` items with `fp_bits`-bit fingerprints.
    pub fn new(window: usize, fp_bits: u32, seed: u32) -> Self {
        assert!(window > 0);
        assert!((1..=32).contains(&fp_bits));
        Self {
            window,
            fp_bits,
            family: HashFamily::new(1, seed),
            queue: vec![0; window],
            head: 0,
            filled: false,
            counts: TinyTable::new(window + 1, fp_bits),
        }
    }

    /// Size SWAMP from a memory budget in bytes: the queue (`W · f` bits)
    /// plus the counting table (~`1.3 · W · (f + 8)` bits of packed slots)
    /// must fit. Given the fixed window, this determines the affordable
    /// fingerprint width (minimum 1 bit); when the budget is too small for
    /// even 1-bit fingerprints SWAMP simply cannot represent the window —
    /// we clamp to 1 bit and let the (terrible) accuracy show, as in
    /// Fig. 9.
    pub fn with_memory(window: usize, bytes: usize, seed: u32) -> Self {
        let bits_per_slot = (bytes * 8) as f64 / window as f64;
        let f = (((bits_per_slot - 10.4) / 2.3).floor() as i64).clamp(1, 32) as u32;
        Self::new(window, f, seed)
    }

    fn fingerprint(&self, key: u64) -> u32 {
        let h = self.family.hash(0, &key);
        if self.fp_bits == 32 {
            h
        } else {
            h & ((1 << self.fp_bits) - 1)
        }
    }

    /// Insert the next item: overwrite the oldest fingerprint and adjust
    /// both multiplicities.
    pub fn insert(&mut self, key: u64) {
        let fp = self.fingerprint(key);
        if self.filled {
            let old = self.queue[self.head];
            self.counts.decrement(old as u64);
        }
        self.queue[self.head] = fp;
        self.counts.increment(fp as u64);
        self.head += 1;
        if self.head == self.window {
            self.head = 0;
            self.filled = true;
        }
    }

    /// `ISMEMBER`: is some item with this fingerprint in the window?
    pub fn contains(&self, key: u64) -> bool {
        self.counts.contains(self.fingerprint(key) as u64)
    }

    /// `FREQUENCY`: multiplicity of the item's fingerprint in the window
    /// (an overestimate under fingerprint collisions, like the original).
    pub fn frequency(&self, key: u64) -> u32 {
        self.counts.count(self.fingerprint(key) as u64) as u32
    }

    /// `DISTINCT` with the MLE correction: observing `D` distinct
    /// fingerprints out of a space of `R = 2^f`, the maximum-likelihood
    /// distinct-item count is `ln(1 − D/R) / ln(1 − 1/R)`.
    pub fn distinct_mle(&self) -> f64 {
        let d = self.counts.distinct() as f64;
        let r = 2f64.powi(self.fp_bits as i32);
        if d >= r {
            // Fingerprint space saturated: clamp to the last resolvable
            // point (every further distinct item is invisible).
            return (1.0 - (r - 1.0) / r).ln() / (1.0 - 1.0 / r).ln();
        }
        (1.0 - d / r).ln() / (1.0 - 1.0 / r).ln()
    }

    /// Fingerprint width in bits.
    pub fn fp_bits(&self) -> u32 {
        self.fp_bits
    }

    /// Memory footprint in bits: the fingerprint queue plus the actual
    /// packed counting table.
    pub fn memory_bits(&self) -> usize {
        self.window * self.fp_bits as usize + self.counts.memory_bits()
    }

    /// Number of items currently in the queue.
    pub fn len(&self) -> usize {
        if self.filled {
            self.window
        } else {
            self.head
        }
    }

    /// True before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_within_window_is_exact_with_wide_fingerprints() {
        let mut s = Swamp::new(1000, 32, 1);
        for i in 0..5000u64 {
            s.insert(i);
        }
        for i in 4000..5000u64 {
            assert!(s.contains(i), "missing in-window item {i}");
        }
        // Far-past items have slid out (no 32-bit collisions expected among
        // 1000 fingerprints).
        let stale = (0..1000u64).filter(|&i| s.contains(i)).count();
        assert!(stale <= 2, "{stale} stale hits");
    }

    #[test]
    fn frequency_counts_window_multiplicity() {
        let mut s = Swamp::new(100, 32, 2);
        for i in 0..100u64 {
            s.insert(i % 10);
        }
        for k in 0..10u64 {
            assert_eq!(s.frequency(k), 10);
        }
        // Slide 50 new singleton items in.
        for i in 0..50u64 {
            s.insert(1000 + i);
        }
        let total: u32 = (0..10u64).map(|k| s.frequency(k)).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn narrow_fingerprints_cause_false_positives() {
        let mut s = Swamp::new(4096, 4, 3); // 16 fingerprint values only
        for i in 0..4096u64 {
            s.insert(i);
        }
        // With the space saturated, everything is a member.
        let fp = (1_000_000..1_000_100u64).filter(|&i| s.contains(i)).count();
        assert!(fp >= 95, "expected near-total false positives, got {fp}");
    }

    #[test]
    fn distinct_mle_tracks_cardinality() {
        let mut s = Swamp::new(10_000, 20, 4);
        for i in 0..10_000u64 {
            s.insert(i % 3000);
        }
        let est = s.distinct_mle();
        let re = (est - 3000.0).abs() / 3000.0;
        assert!(re < 0.05, "estimate {est}, re {re}");
    }

    #[test]
    fn memory_budget_determines_fp_width() {
        let wide = Swamp::with_memory(1 << 10, 64 << 10, 0);
        let narrow = Swamp::with_memory(1 << 10, 1 << 9, 0);
        assert!(wide.fp_bits() > narrow.fp_bits());
        assert_eq!(narrow.fp_bits(), 1, "starved budget clamps to 1 bit");
        assert!(wide.memory_bits() <= 64 << 13);
    }

    #[test]
    fn queue_wraps_correctly() {
        let mut s = Swamp::new(3, 32, 5);
        for k in [1u64, 2, 3, 4, 5] {
            s.insert(k);
        }
        assert_eq!(s.len(), 3);
        assert!(!s.contains(1) && !s.contains(2));
        assert!(s.contains(3) && s.contains(4) && s.contains(5));
    }
}
