//! The straw-man sliding MinHash of §7.1.
//!
//! Plain MinHash "modified by adding a 64-bit timestamp for each pair of
//! counters to indicate if the counters need to be cleaned": each signature
//! cell stores its current minimum hash plus the arrival time of the item
//! holding that minimum. When the minimum's item slides out of the window
//! the cell is reset and rebuilt from subsequent arrivals — losing every
//! other in-window item seen before the reset, which is where the straw-man
//! pays ~10× accuracy versus SHE-MH (Fig. 9e).

use she_hash::HashFamily;

const HASH_MASK: u32 = (1 << 24) - 1;

/// One timestamped signature cell.
#[derive(Debug, Clone, Copy)]
struct Cell {
    /// Stored minimum + 1; 0 = empty.
    min1: u32,
    /// Arrival time of the minimum's item.
    time: u64,
}

/// Straw-man sliding MinHash signature; compare two built with the same
/// seed.
#[derive(Debug, Clone)]
pub struct StrawmanMinHash {
    window: u64,
    family: HashFamily,
    cells: Vec<Cell>,
    now: u64,
}

impl StrawmanMinHash {
    /// `m` hash functions over a window of `window` items.
    pub fn new(m: usize, window: u64, seed: u32) -> Self {
        assert!(m > 0 && window > 0);
        Self {
            window,
            family: HashFamily::new(m, seed),
            cells: vec![Cell { min1: 0, time: 0 }; m],
            now: 0,
        }
    }

    /// Sized from a memory budget in bytes: each cell charges 24 bits of
    /// hash plus the 64-bit timestamp.
    pub fn with_memory(bytes: usize, window: u64, seed: u32) -> Self {
        Self::new(((bytes * 8) / (24 + 64)).max(1), window, seed)
    }

    /// Insert the next item.
    pub fn insert(&mut self, key: u64) {
        self.now += 1;
        let cutoff = self.now.saturating_sub(self.window);
        for i in 0..self.cells.len() {
            let h = (self.family.hash(i, &key) & HASH_MASK) + 1;
            let c = &mut self.cells[i];
            if c.min1 == 0 || c.time <= cutoff || h < c.min1 {
                *c = Cell { min1: h, time: self.now };
            } else if h == c.min1 {
                c.time = self.now; // refresh the surviving minimum
            }
        }
    }

    /// Estimated Jaccard similarity with `other`: fraction of positions
    /// valid (in-window) on both sides whose minima agree.
    pub fn similarity(&self, other: &StrawmanMinHash) -> f64 {
        assert_eq!(self.cells.len(), other.cells.len(), "signature sizes differ");
        let cut_a = self.now.saturating_sub(self.window);
        let cut_b = other.now.saturating_sub(other.window);
        let mut used = 0usize;
        let mut matches = 0usize;
        for (a, b) in self.cells.iter().zip(&other.cells) {
            let va = a.min1 != 0 && a.time > cut_a;
            let vb = b.min1 != 0 && b.time > cut_b;
            if !va || !vb {
                continue;
            }
            used += 1;
            if a.min1 == b.min1 {
                matches += 1;
            }
        }
        if used == 0 {
            0.0
        } else {
            matches as f64 / used as f64
        }
    }

    /// Memory footprint in bits (24-bit hash + 64-bit timestamp per cell).
    pub fn memory_bits(&self) -> usize {
        self.cells.len() * (24 + 64)
    }

    /// Number of hash functions / cells.
    pub fn num_hashes(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_score_high() {
        let window = 1u64 << 10;
        let mut a = StrawmanMinHash::new(128, window, 1);
        let mut b = StrawmanMinHash::new(128, window, 1);
        for i in 0..3 * window {
            a.insert(i);
            b.insert(i);
        }
        let s = a.similarity(&b);
        assert!(s > 0.9, "similarity {s}");
    }

    #[test]
    fn disjoint_streams_score_low() {
        let window = 1u64 << 10;
        let mut a = StrawmanMinHash::new(128, window, 1);
        let mut b = StrawmanMinHash::new(128, window, 1);
        for i in 0..3 * window {
            a.insert(i);
            b.insert(i + 1_000_000_000);
        }
        let s = a.similarity(&b);
        assert!(s < 0.15, "similarity {s}");
    }

    #[test]
    fn resets_lose_information() {
        // The straw-man's defining flaw: after a minimum expires, the cell
        // forgets all other in-window items. Estimates remain usable but
        // noisier than fixed MinHash — here we just assert the structure
        // keeps answering sanely across many expiries.
        let window = 256u64;
        let mut a = StrawmanMinHash::new(64, window, 2);
        let mut b = StrawmanMinHash::new(64, window, 2);
        for round in 0..50u64 {
            for i in 0..window {
                let k = round * window + i;
                a.insert(k);
                b.insert(k);
            }
            let s = a.similarity(&b);
            assert!(s > 0.8, "round {round}: similarity {s}");
        }
    }

    #[test]
    fn memory_charges_timestamps() {
        let m = StrawmanMinHash::with_memory(1100, 100, 0);
        assert_eq!(m.num_hashes(), 100);
        assert_eq!(m.memory_bits(), 8800);
    }
}
