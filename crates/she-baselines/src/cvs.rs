//! Counter Vector Sketch (Shan, Luo, Ni et al. — Neurocomputing 2016).
//!
//! A bitmap-style cardinality estimator whose bits are replaced by small
//! counters: an insertion sets its hashed counter to the maximum value `c`;
//! after every insertion a random set of counters is decremented so that a
//! counter untouched for about one window decays to zero. The query treats
//! non-zero counters like set bits and applies the bitmap MLE. The random
//! decay is also CVS's weakness — the paper (§2.2) notes the error induced
//! by the randomness in picking counters to decrease.

use she_hash::{HashFamily, RandomSource, Xoshiro256};
use she_sketch::{bitmap_mle, PackedArray};

/// CVS: `m` counters with ceiling `c` emulating a window of `n` items.
#[derive(Debug, Clone)]
pub struct CounterVectorSketch {
    counters: PackedArray,
    max_value: u64,
    family: HashFamily,
    rng: Xoshiro256,
    /// Decrements owed per insertion: `m · c / n` (may be fractional).
    decay_rate: f64,
    decay_debt: f64,
}

impl CounterVectorSketch {
    /// `m` counters with maximum value `max_value` (paper setting: 10),
    /// calibrated to a sliding window of `window` items.
    pub fn new(m: usize, max_value: u64, window: u64, seed: u64) -> Self {
        assert!(m > 0 && max_value >= 1 && window > 0);
        let bits = 64 - max_value.leading_zeros();
        Self {
            counters: PackedArray::new(m, bits.max(1)),
            max_value,
            family: HashFamily::new(1, seed as u32),
            rng: Xoshiro256::new(seed),
            // A counter must receive `c` decrements over one window, so per
            // insertion the whole array owes m·c/n decrements.
            decay_rate: m as f64 * max_value as f64 / window as f64,
            decay_debt: 0.0,
        }
    }

    /// Sized from a memory budget in bytes.
    pub fn with_memory(bytes: usize, max_value: u64, window: u64, seed: u64) -> Self {
        let bits = (64 - max_value.leading_zeros()).max(1) as usize;
        Self::new(((bytes * 8) / bits).max(1), max_value, window, seed)
    }

    /// Insert the next item.
    pub fn insert(&mut self, key: u64) {
        let idx = self.family.index(0, &key, self.counters.len());
        self.counters.set(idx, self.max_value);
        self.decay_debt += self.decay_rate;
        let m = self.counters.len();
        while self.decay_debt >= 1.0 {
            self.decay_debt -= 1.0;
            let j = self.rng.next_below(m);
            let v = self.counters.get(j);
            if v > 0 {
                self.counters.set(j, v - 1);
            }
        }
    }

    /// Cardinality estimate: bitmap MLE over the non-zero counters.
    pub fn estimate(&self) -> f64 {
        bitmap_mle(self.counters.count_zeros(), self.counters.len())
    }

    /// Memory footprint in bits.
    pub fn memory_bits(&self) -> usize {
        self.counters.memory_bits()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Always false (the array is allocated up front).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_window_cardinality_roughly() {
        let window = 1u64 << 14;
        let mut cvs = CounterVectorSketch::new(1 << 17, 10, window, 1);
        for i in 0..4 * window {
            cvs.insert(i);
        }
        let est = cvs.estimate();
        let re = (est - window as f64).abs() / window as f64;
        // CVS is noisy by design; the paper shows it trailing SHE-BM.
        assert!(re < 0.5, "estimate {est}, re {re}");
    }

    #[test]
    fn idle_keys_decay() {
        let window = 1u64 << 10;
        let mut cvs = CounterVectorSketch::new(1 << 14, 10, window, 2);
        for i in 0..window {
            cvs.insert(i);
        }
        let warm = cvs.estimate();
        // One window of a single repeated key: everything else decays.
        for _ in 0..4 * window {
            cvs.insert(0);
        }
        let cold = cvs.estimate();
        assert!(cold < warm * 0.3, "warm {warm} cold {cold}");
    }

    #[test]
    fn counters_never_go_negative_or_overflow() {
        let mut cvs = CounterVectorSketch::new(64, 10, 16, 3);
        for i in 0..10_000u64 {
            cvs.insert(i);
        }
        for i in 0..64 {
            assert!(cvs.counters.get(i) <= 10);
        }
    }

    #[test]
    fn memory_sizing() {
        let cvs = CounterVectorSketch::with_memory(1024, 10, 1 << 10, 0);
        // 10 needs 4 bits: 8192 bits / 4 = 2048 counters.
        assert_eq!(cvs.len(), 2048);
        assert_eq!(cvs.memory_bits(), 8192);
    }
}
