//! Property tests for the baseline invariants, as deterministic seeded
//! loops over randomized cases (same invariants as the original
//! `proptest` suite, reproducible from the fixed seeds).

use she_baselines::tinytable::TinyTable;
use she_baselines::{Swamp, TimeOutBloomFilter, TimingBloomFilter};
use she_hash::{RandomSource, Xoshiro256};

/// SWAMP's counting table is always consistent with its queue: the
/// multiplicities sum to the number of held items, and membership of
/// every held key is positive.
#[test]
fn swamp_queue_table_consistency() {
    for case in 0..24u64 {
        let mut rng = Xoshiro256::new(0x54A3 ^ case);
        let window = 1 + rng.next_below(49);
        let n = 1 + rng.next_below(299);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(40) as u64).collect();
        let mut s = Swamp::new(window, 32, 1);
        for (i, &k) in keys.iter().enumerate() {
            s.insert(k);
            assert_eq!(s.len(), (i + 1).min(window), "case {case}");
            // Every key in the current window must be reported a member.
            let lo = keys[..=i].len().saturating_sub(window);
            for &kk in &keys[lo..=i] {
                assert!(s.contains(kk), "case {case}");
            }
        }
    }
}

/// SWAMP frequency is exact (per fingerprint) with wide fingerprints:
/// at least the true window multiplicity.
#[test]
fn swamp_frequency_upper_bounds_truth() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::new(0x5F8E ^ case);
        let window = 1 + rng.next_below(49);
        let n = 1 + rng.next_below(299);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(20) as u64).collect();
        let mut s = Swamp::new(window, 32, 2);
        for &k in &keys {
            s.insert(k);
        }
        let lo = keys.len().saturating_sub(window);
        let mut counts = std::collections::HashMap::new();
        for &k in &keys[lo..] {
            *counts.entry(k).or_insert(0u32) += 1;
        }
        for (k, c) in counts {
            assert!(s.frequency(k) >= c, "case {case}: key {k}");
        }
    }
}

/// TinyTable behaves exactly like a HashMap multiset under any valid
/// interleaving of increments and decrements (decrements drawn from
/// live keys only).
#[test]
fn tinytable_matches_hashmap_model() {
    for case in 0..32u64 {
        let mut rng = Xoshiro256::new(0x717B ^ case);
        let n_ops = 1 + rng.next_below(599);
        let mut table = TinyTable::new(128, 16);
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for _ in 0..n_ops {
            let fp = rng.next_below(64) as u64;
            let dec = rng.next_bool(0.5);
            if dec {
                // Decrement some live key deterministically derived from fp.
                if let Some((&k, _)) = model.iter().find(|(_, &c)| c > 0) {
                    table.decrement(k);
                    let c = model.get_mut(&k).expect("live");
                    *c -= 1;
                    if *c == 0 {
                        model.remove(&k);
                    }
                }
            } else {
                table.increment(fp);
                // Mirror the table's zero-alias so the model agrees.
                let fp = if fp == 0 { 1 } else { fp };
                *model.entry(fp).or_insert(0) += 1;
            }
            assert_eq!(table.distinct(), model.len(), "case {case}");
        }
        for (&k, &c) in &model {
            assert_eq!(table.count(k), c, "case {case}: fp {k}");
        }
    }
}

/// TOBF never misses an in-window item, for any stream.
#[test]
fn tobf_no_false_negatives() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::new(0x70BF ^ case);
        let window = rng.next_range(1, 100);
        let n = 1 + rng.next_below(299);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut f = TimeOutBloomFilter::new(1 << 10, 4, window, 3);
        for &k in &keys {
            f.insert(k);
        }
        let lo = keys.len().saturating_sub(window as usize);
        for &k in &keys[lo..] {
            assert!(f.contains(k), "case {case}");
        }
    }
}

/// TBF never misses an in-window item, despite wraparound counters and
/// the incremental expiry sweep.
#[test]
fn tbf_no_false_negatives() {
    for case in 0..48u64 {
        let mut rng = Xoshiro256::new(0x7BF0 ^ case);
        let window = rng.next_range(8, 100);
        let n = 1 + rng.next_below(499);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let mut f = TimingBloomFilter::new(512, 18, 4, window, 4);
        for &k in &keys {
            f.insert(k);
        }
        let lo = keys.len().saturating_sub(window as usize);
        for &k in &keys[lo..] {
            assert!(f.contains(k), "case {case}");
        }
    }
}
