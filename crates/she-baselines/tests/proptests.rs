//! Property tests for the baseline invariants.

use proptest::prelude::*;
use she_baselines::tinytable::TinyTable;
use she_baselines::{Swamp, TimeOutBloomFilter, TimingBloomFilter};

proptest! {
    /// SWAMP's counting table is always consistent with its queue: the
    /// multiplicities sum to the number of held items, and membership of
    /// every held key is positive.
    #[test]
    fn swamp_queue_table_consistency(
        window in 1usize..50,
        keys in prop::collection::vec(0u64..40, 1..300),
    ) {
        let mut s = Swamp::new(window, 32, 1);
        for (i, &k) in keys.iter().enumerate() {
            s.insert(k);
            prop_assert_eq!(s.len(), (i + 1).min(window));
            // Every key in the current window must be reported a member.
            let lo = keys[..=i].len().saturating_sub(window);
            for &kk in &keys[lo..=i] {
                prop_assert!(s.contains(kk));
            }
        }
    }

    /// SWAMP frequency is exact (per fingerprint) with wide fingerprints:
    /// at least the true window multiplicity.
    #[test]
    fn swamp_frequency_upper_bounds_truth(
        window in 1usize..50,
        keys in prop::collection::vec(0u64..20, 1..300),
    ) {
        let mut s = Swamp::new(window, 32, 2);
        for &k in &keys {
            s.insert(k);
        }
        let lo = keys.len().saturating_sub(window);
        let mut counts = std::collections::HashMap::new();
        for &k in &keys[lo..] {
            *counts.entry(k).or_insert(0u32) += 1;
        }
        for (k, c) in counts {
            prop_assert!(s.frequency(k) >= c);
        }
    }

    /// TinyTable behaves exactly like a HashMap multiset under any valid
    /// interleaving of increments and decrements (decrements drawn from
    /// live keys only).
    #[test]
    fn tinytable_matches_hashmap_model(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..600),
    ) {
        let mut table = TinyTable::new(128, 16);
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (fp, dec) in ops {
            if dec {
                // Decrement some live key deterministically derived from fp.
                if let Some((&k, _)) = model.iter().find(|(_, &c)| c > 0) {
                    let _ = fp;
                    table.decrement(k);
                    let c = model.get_mut(&k).expect("live");
                    *c -= 1;
                    if *c == 0 {
                        model.remove(&k);
                    }
                }
            } else {
                table.increment(fp);
                // Mirror the table's zero-alias so the model agrees.
                let fp = if fp == 0 { 1 } else { fp };
                *model.entry(fp).or_insert(0) += 1;
            }
            prop_assert_eq!(table.distinct(), model.len());
        }
        for (&k, &c) in &model {
            prop_assert_eq!(table.count(k), c, "fp {}", k);
        }
    }

    /// TOBF never misses an in-window item, for any stream.
    #[test]
    fn tobf_no_false_negatives(
        window in 1u64..100,
        keys in prop::collection::vec(any::<u64>(), 1..300),
    ) {
        let mut f = TimeOutBloomFilter::new(1 << 10, 4, window, 3);
        for &k in &keys {
            f.insert(k);
        }
        let lo = keys.len().saturating_sub(window as usize);
        for &k in &keys[lo..] {
            prop_assert!(f.contains(k));
        }
    }

    /// TBF never misses an in-window item, despite wraparound counters and
    /// the incremental expiry sweep.
    #[test]
    fn tbf_no_false_negatives(
        window in 8u64..100,
        keys in prop::collection::vec(any::<u64>(), 1..500),
    ) {
        let mut f = TimingBloomFilter::new(512, 18, 4, window, 4);
        for &k in &keys {
            f.insert(k);
        }
        let lo = keys.len().saturating_sub(window as usize);
        for &k in &keys[lo..] {
            prop_assert!(f.contains(k));
        }
    }
}
