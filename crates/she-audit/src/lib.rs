//! # she-audit — the workspace's static-analysis gate
//!
//! A dependency-free auditor that lexes every Rust source file in the
//! workspace and enforces repo-specific invariants `cargo clippy` cannot
//! express. Six rules ship today (see [`rules`]):
//!
//! | rule       | invariant |
//! |------------|-----------|
//! | `panic`    | no `unwrap`/`expect`/`panic!`/`unreachable!` in non-test serving code |
//! | `cast`     | no narrowing `as` casts in cell-index / frame-length math |
//! | `growth`   | no `Vec`/`VecDeque` `push`/`extend` without a nearby cap check |
//! | `lock`     | every mutex is a ranked `OrderedMutex`; manifest and source agree |
//! | `blocking` | no blocking I/O calls in files on the epoll reactor path |
//! | `protocol` | opcode constants and `docs/PROTOCOL.md` tables agree |
//!
//! `panic`, `cast`, and `growth` are **ratcheted**: `audit-ratchet.toml` commits a
//! per-crate finding count, and the gate fails when the live count moves
//! in *either* direction — growth is a regression, shrinkage must be
//! banked by tightening the committed number so it can never grow back.
//! `lock`, `protocol`, and `blocking` findings, and malformed
//! `audit:allow` annotations, fail the gate unconditionally.
//!
//! The entry point is [`audit`]; `she audit` (in `she-cli`) is a thin
//! wrapper that prints [`Audit::findings`] and exits nonzero when
//! [`Audit::ok`] is false. See `docs/ANALYSIS.md` for the rule
//! catalogue, the annotation syntax, and the ratchet workflow.

mod config;
mod lexer;
mod walk;

pub mod rules;

pub use config::{parse_toml, parse_toml_file, RuleConfig, TomlEntry, Value};
pub use lexer::{lex, Lexed, TokKind, Token};
pub use rules::Finding;
pub use walk::{discover, SourceFile};

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use rules::lock_order::LockScan;

/// The result of one audit run.
#[derive(Debug)]
pub struct Audit {
    /// Every finding, in deterministic (path, line) order — including
    /// ratcheted findings that are at (not above) their baseline.
    pub findings: Vec<Finding>,
    /// One line per gate violation; empty means the gate passes.
    pub gate_failures: Vec<String>,
    /// Every `.lock()` call site, for `she audit --list-locks`.
    pub lock_sites: Vec<String>,
    /// Number of source files lexed.
    pub files_scanned: usize,
}

impl Audit {
    /// Does the tree pass the gate?
    pub fn ok(&self) -> bool {
        self.gate_failures.is_empty()
    }

    /// The findings in rules that are currently failing the gate — the
    /// list worth printing when the gate trips (at-baseline ratcheted
    /// findings are noise on an unrelated failure).
    pub fn failing_findings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| {
                self.gate_failures.iter().any(|g| {
                    g.starts_with(&format!("{}:", f.rule))
                        && (f.crate_name.is_empty() || g.contains(&f.crate_name))
                })
            })
            .collect()
    }
}

/// Run every rule over the workspace rooted at `root`.
pub fn audit(root: &Path, cfg: &RuleConfig) -> io::Result<Audit> {
    let files = discover(root)?;
    let mut findings = Vec::new();
    let mut lock_scan = LockScan::default();
    let mut files_scanned = 0usize;

    for file in &files {
        let on_reactor_path =
            cfg.blocking_files.iter().any(|suffix| file.rel_path.ends_with(suffix.as_str()));
        let policed = !file.test_only
            && (cfg.panic_crates.contains(&file.crate_name)
                || cfg.cast_crates.contains(&file.crate_name)
                || cfg.growth_crates.contains(&file.crate_name)
                || cfg.lock_crates.contains(&file.crate_name)
                || on_reactor_path);
        if !policed {
            continue;
        }
        let src = std::fs::read_to_string(&file.abs_path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", file.rel_path)))?;
        let lx = lexer::lex(&src);
        files_scanned += 1;

        for &line in &lx.malformed_allows {
            findings.push(Finding {
                rule: "allow",
                crate_name: file.crate_name.clone(),
                file: file.rel_path.clone(),
                line,
                msg: "malformed audit:allow annotation (syntax: `// audit:allow(<rule>): <reason>`, reason required)".to_string(),
            });
        }
        if cfg.panic_crates.contains(&file.crate_name) {
            findings.extend(rules::panic_path::check(&file.crate_name, &file.rel_path, &lx));
        }
        if cfg.cast_crates.contains(&file.crate_name) {
            findings.extend(rules::cast::check(&file.crate_name, &file.rel_path, &lx));
        }
        if cfg.growth_crates.contains(&file.crate_name) {
            findings.extend(rules::growth::check(&file.crate_name, &file.rel_path, &lx));
        }
        if on_reactor_path {
            findings.extend(rules::blocking_io::check(&file.crate_name, &file.rel_path, &lx));
        }
        if cfg.lock_crates.contains(&file.crate_name) {
            lock_scan.scan_file(&file.crate_name, &file.rel_path, &lx);
        }
    }

    let (lock_findings, lock_sites) = lock_scan.finish(&cfg.locks);
    findings.extend(lock_findings);

    if let Some((rs, md)) = &cfg.protocol {
        findings.extend(rules::protocol_drift::check(rs, md)?);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let gate_failures = evaluate_gate(&findings, cfg);
    Ok(Audit { findings, gate_failures, lock_sites, files_scanned })
}

/// Ratchet + hard-rule gate semantics.
fn evaluate_gate(findings: &[Finding], cfg: &RuleConfig) -> Vec<String> {
    let mut failures = Vec::new();

    // Hard rules: any finding fails the gate.
    for (rule, label) in [
        ("lock", "lock-order"),
        ("protocol", "protocol-drift"),
        ("allow", "allow-syntax"),
        ("blocking", "blocking-io"),
    ] {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        if n > 0 {
            // Name the offending crates so `failing_findings` (which
            // matches gate lines by crate) lists the details.
            let mut crates: Vec<&str> = findings
                .iter()
                .filter(|f| f.rule == rule && !f.crate_name.is_empty())
                .map(|f| f.crate_name.as_str())
                .collect();
            crates.sort_unstable();
            crates.dedup();
            let along = if crates.is_empty() {
                String::new()
            } else {
                format!(" in {}", crates.join(", "))
            };
            failures.push(format!("{rule}: {n} {label} finding(s){along}"));
        }
    }

    // Ratcheted rules: per-crate counts must equal the committed baseline.
    for (rule, crates) in
        [("panic", &cfg.panic_crates), ("cast", &cfg.cast_crates), ("growth", &cfg.growth_crates)]
    {
        let mut counts: BTreeMap<&str, u64> = crates.iter().map(|c| (c.as_str(), 0)).collect();
        for f in findings.iter().filter(|f| f.rule == rule) {
            if let Some(n) = counts.get_mut(f.crate_name.as_str()) {
                *n += 1;
            }
        }
        // A ratchet entry for a crate the rule doesn't police is a
        // config bug — surface it instead of silently ignoring it.
        for key in cfg.ratchet.keys() {
            if let Some(crate_name) = key.strip_prefix(&format!("{rule}/")) {
                if !counts.contains_key(crate_name) {
                    failures.push(format!(
                        "{rule}: ratchet entry for unknown crate `{crate_name}` in audit-ratchet.toml"
                    ));
                }
            }
        }
        for (crate_name, &count) in &counts {
            let baseline = cfg.ratchet.get(&format!("{rule}/{crate_name}")).copied().unwrap_or(0);
            if count > baseline {
                failures.push(format!(
                    "{rule}: {crate_name} has {count} finding(s), baseline {baseline} — fix them or annotate with a reason"
                ));
            } else if count < baseline {
                failures.push(format!(
                    "{rule}: {crate_name} improved to {count} finding(s), baseline {baseline} — tighten audit-ratchet.toml so the gains can't regress"
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(ratchet: &[(&str, u64)]) -> RuleConfig {
        RuleConfig {
            panic_crates: vec!["demo".into()],
            cast_crates: vec!["demo".into()],
            growth_crates: vec!["demo".into()],
            lock_crates: vec!["demo".into()],
            blocking_files: Vec::new(),
            locks: BTreeMap::new(),
            ratchet: ratchet.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            protocol: None,
        }
    }

    fn tree(name: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let tmp = std::env::temp_dir().join(format!("she-audit-{name}-{}", std::process::id()));
        for (p, body) in files {
            let f = tmp.join(p);
            std::fs::create_dir_all(f.parent().expect("parent")).expect("mkdir");
            std::fs::write(&f, body).expect("write");
        }
        tmp
    }

    #[test]
    fn ratchet_fails_on_growth_and_on_unbanked_shrinkage() {
        let tmp = tree(
            "ratchet",
            &[("crates/demo/src/lib.rs", "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n")],
        );
        // Baseline 0: one finding over → gate fails with "fix them".
        let cfg = cfg_for(&[]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(!a.ok());
        assert!(a.gate_failures.iter().any(|g| g.contains("baseline 0") && g.contains("fix")));

        // Baseline 1: at baseline → gate passes, finding still listed.
        let cfg = cfg_for(&[("panic/demo", 1)]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.ok(), "{:?}", a.gate_failures);
        assert_eq!(a.findings.len(), 1);

        // Baseline 2: below baseline → gate demands tightening.
        let cfg = cfg_for(&[("panic/demo", 2)]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.gate_failures.iter().any(|g| g.contains("tighten")));
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn ratchet_entry_for_unknown_crate_is_flagged() {
        let tmp = tree("unknown", &[("crates/demo/src/lib.rs", "pub fn f() {}\n")]);
        let cfg = cfg_for(&[("panic/ghost", 3)]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.gate_failures.iter().any(|g| g.contains("unknown crate `ghost`")));
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn unpoliced_crates_and_test_files_are_skipped() {
        let tmp = tree(
            "skip",
            &[
                ("crates/other/src/lib.rs", "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n"),
                ("crates/demo/tests/it.rs", "fn t(x: Option<u8>) -> u8 { x.unwrap() }\n"),
            ],
        );
        let cfg = cfg_for(&[]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.ok(), "{:?}", a.gate_failures);
        assert!(a.findings.is_empty());
        std::fs::remove_dir_all(&tmp).ok();
    }
}
