//! # she-audit — the workspace's static-analysis gate
//!
//! A dependency-free auditor that lexes every Rust source file in the
//! workspace, parses items into a conservative whole-workspace call
//! graph ([`parse`], [`graph`]), and enforces repo-specific invariants
//! `cargo clippy` cannot express. Nine rules ship today (see [`rules`]):
//!
//! | rule              | invariant |
//! |-------------------|-----------|
//! | `panic`           | `unwrap`/`expect`/`panic!`/`unreachable!` sites *not* reachable from serving roots, ratcheted |
//! | `panic-reachable` | the same sites reachable from serving roots in pinned crates — hard, zero |
//! | `cast`            | no narrowing `as` casts in cell-index / frame-length math |
//! | `growth`          | no `Vec`/`VecDeque` `push`/`extend` without a nearby cap check |
//! | `lock`            | ranked `OrderedMutex` everywhere; manifest/source agreement; statically mined acquisition-order edges rank-increase, acyclic |
//! | `blocking`        | no call chain from a reactor root to a blocking syscall wrapper |
//! | `wiresize`        | allocations sized by decoded wire lengths are clamped in the fn or a caller |
//! | `unsafe`          | `unsafe` only in the sys boundary, each block annotated; count ratcheted |
//! | `protocol`        | opcode constants and `docs/PROTOCOL.md` tables agree |
//!
//! `panic`, `cast`, `growth`, and the annotated-`unsafe` count are
//! **ratcheted**: `audit-ratchet.toml` commits a per-crate number and
//! the gate fails when the live count moves in *either* direction —
//! growth is a regression, shrinkage must be banked. Everything else is
//! a hard gate failure.
//!
//! The entry point is [`audit`] (or [`audit_with`] for `--rule` /
//! `--json` support); `she audit` (in `she-cli`) is a thin wrapper. See
//! `docs/ANALYSIS.md` for the rule catalogue, graph construction and
//! its known approximations, the annotation syntax, and the ratchet
//! workflow.

mod config;
mod lexer;
mod walk;

pub mod graph;
pub mod parse;
pub mod rules;

pub use config::{parse_toml, parse_toml_file, RuleConfig, TomlEntry, Value};
pub use graph::{CallGraph, GraphStats, Reach};
pub use lexer::{lex, Lexed, TokKind, Token};
pub use rules::Finding;
pub use walk::{discover, SourceFile};

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::time::Instant;

use rules::lock_order::LockScan;

/// Options for one audit run beyond the committed config.
#[derive(Debug, Default)]
pub struct AuditOptions {
    /// Run (and gate) only the named rule. `None` runs everything.
    pub rule: Option<String>,
}

/// Wall time and yield of one rule pass.
#[derive(Debug, Clone)]
pub struct RuleTiming {
    pub name: &'static str,
    pub micros: u128,
    pub findings: usize,
}

/// The result of one audit run.
#[derive(Debug)]
pub struct Audit {
    /// Every finding, in deterministic (path, line) order — including
    /// ratcheted findings that are at (not above) their baseline.
    pub findings: Vec<Finding>,
    /// One line per gate violation; empty means the gate passes.
    pub gate_failures: Vec<String>,
    /// Every `.lock()` call site, for `she audit --list-locks`.
    pub lock_sites: Vec<String>,
    /// Number of source files lexed.
    pub files_scanned: usize,
    /// Call-graph headline numbers (nodes, edges, roots, unresolved).
    pub graph_stats: GraphStats,
    /// Per-rule wall time, in rule execution order.
    pub timings: Vec<RuleTiming>,
}

impl Audit {
    /// Does the tree pass the gate?
    pub fn ok(&self) -> bool {
        self.gate_failures.is_empty()
    }

    /// The findings in rules that are currently failing the gate — the
    /// list worth printing when the gate trips (at-baseline ratcheted
    /// findings are noise on an unrelated failure).
    pub fn failing_findings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| {
                self.gate_failures.iter().any(|g| {
                    g.starts_with(&format!("{}:", f.rule))
                        && (f.crate_name.is_empty() || g.contains(&f.crate_name))
                })
            })
            .collect()
    }

    /// Machine-readable report (the `--json` schema; see
    /// `docs/ANALYSIS.md`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str(&format!(
            "{{\"ok\":{},\"files_scanned\":{},\"graph\":{{\"nodes\":{},\"edges\":{},\"roots\":{},\"unresolved_calls\":{}}}",
            self.ok(),
            self.files_scanned,
            self.graph_stats.nodes,
            self.graph_stats.edges,
            self.graph_stats.roots,
            self.graph_stats.unresolved_calls,
        ));
        s.push_str(",\"rules\":[");
        for (i, t) in self.timings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{},\"micros\":{},\"findings\":{}}}",
                json_str(t.name),
                t.micros,
                t.findings
            ));
        }
        s.push_str("],\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rule\":{},\"crate\":{},\"file\":{},\"line\":{},\"msg\":{}}}",
                json_str(f.rule),
                json_str(&f.crate_name),
                json_str(&f.file),
                f.line,
                json_str(&f.msg)
            ));
        }
        s.push_str("],\"gate_failures\":[");
        for (i, g) in self.gate_failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_str(g));
        }
        s.push_str("]}");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run every rule over the workspace rooted at `root`.
pub fn audit(root: &Path, cfg: &RuleConfig) -> io::Result<Audit> {
    audit_with(root, cfg, &AuditOptions::default())
}

/// Run the audit with options (`--rule` filter for local iteration).
pub fn audit_with(root: &Path, cfg: &RuleConfig, opts: &AuditOptions) -> io::Result<Audit> {
    let files = discover(root)?;
    let sel = opts.rule.as_deref();
    let want = |name: &str| sel.is_none_or(|r| r == name);

    // Lex every non-test file once; the graph wants the whole workspace
    // even where no rule polices the crate (cross-crate call edges).
    let mut lexed: BTreeMap<String, Lexed> = BTreeMap::new();
    let mut scanned: Vec<&SourceFile> = Vec::new();
    for file in &files {
        if file.test_only {
            continue;
        }
        let src = std::fs::read_to_string(&file.abs_path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", file.rel_path)))?;
        lexed.insert(file.rel_path.clone(), lexer::lex(&src));
        scanned.push(file);
    }
    let files_scanned = scanned.len();

    let mut timings: Vec<RuleTiming> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();

    // ---- call graph + root sets (timed as a pseudo-rule) ----
    let t0 = Instant::now();
    let parsed: Vec<parse::FileItems> = scanned
        .iter()
        .map(|f| parse::parse_file(&f.crate_name, &f.rel_path, &lexed[&f.rel_path]))
        .collect();
    let graph = CallGraph::build(parsed);
    let (blocking_ids, blocking_missing) = graph.find_roots(&cfg.blocking_roots);
    let blocking_reach = graph.reach(&blocking_ids, false);
    let mut serving_specs = cfg.blocking_roots.clone();
    serving_specs.extend(cfg.serving_roots.iter().cloned());
    let (mut serving_ids, serving_missing) = graph.find_roots(&serving_specs);
    serving_ids.extend(graph.spawn_nodes(&cfg.panic_pinned_crates));
    serving_ids.sort_unstable();
    serving_ids.dedup();
    let serving_reach = graph.reach(&serving_ids, false);
    let mut root_union = blocking_ids.clone();
    root_union.extend(serving_ids.iter().copied());
    root_union.sort_unstable();
    root_union.dedup();
    let graph_stats = graph.stats(root_union.len());
    timings.push(RuleTiming { name: "graph", micros: t0.elapsed().as_micros(), findings: 0 });

    // Which files each per-file rule looks at. The `allow` syntax check
    // covers every file at least one rule polices.
    let policed = |f: &SourceFile| {
        cfg.panic_crates.contains(&f.crate_name)
            || cfg.cast_crates.contains(&f.crate_name)
            || cfg.growth_crates.contains(&f.crate_name)
            || cfg.lock_crates.contains(&f.crate_name)
            || cfg.wiresize_crates.contains(&f.crate_name)
            || cfg.blocking_files.iter().any(|s| f.rel_path.ends_with(s.as_str()))
            || cfg.unsafe_files.iter().any(|s| f.rel_path.ends_with(s.as_str()))
    };

    // ---- allow syntax ----
    if want("allow") {
        let t0 = Instant::now();
        let mut n = 0;
        for f in &scanned {
            if !policed(f) {
                continue;
            }
            for &line in &lexed[&f.rel_path].malformed_allows {
                findings.push(Finding {
                    rule: "allow",
                    crate_name: f.crate_name.clone(),
                    file: f.rel_path.clone(),
                    line,
                    msg: "malformed audit:allow annotation (syntax: `// audit:allow(<rule>): <reason>`, reason required)".to_string(),
                });
                n += 1;
            }
        }
        timings.push(RuleTiming { name: "allow", micros: t0.elapsed().as_micros(), findings: n });
    }

    // ---- panic (site scan + reachability split) ----
    if want("panic") || want("panic-reachable") {
        let t0 = Instant::now();
        let mut n = 0;
        for spec in &serving_missing {
            findings.push(Finding {
                rule: "panic-reachable",
                crate_name: String::new(),
                file: "RuleConfig::serving_roots".to_string(),
                line: 0,
                msg: format!(
                    "configured serving root `{spec}` matches no fn in the workspace — the \
                     reachable-panic split silently under-approximates without it"
                ),
            });
            n += 1;
        }
        for f in &scanned {
            if !cfg.panic_crates.contains(&f.crate_name) {
                continue;
            }
            for site in rules::panic_path::check(&f.crate_name, &f.rel_path, &lexed[&f.rel_path]) {
                let pinned = cfg.panic_pinned_crates.contains(&f.crate_name);
                let reachable_from =
                    graph.fn_at(&site.file, site.line).filter(|&id| serving_reach.reachable[id]);
                match reachable_from {
                    Some(id) if pinned => findings.push(Finding {
                        rule: "panic-reachable",
                        msg: format!(
                            "{} — reachable from serving roots: {}",
                            site.msg,
                            graph.chain_str(&serving_reach, id)
                        ),
                        ..site
                    }),
                    _ => findings.push(site),
                }
                n += 1;
            }
        }
        timings.push(RuleTiming { name: "panic", micros: t0.elapsed().as_micros(), findings: n });
    }

    // ---- cast ----
    if want("cast") {
        let t0 = Instant::now();
        let mut n = 0;
        for f in &scanned {
            if cfg.cast_crates.contains(&f.crate_name) {
                let fs = rules::cast::check(&f.crate_name, &f.rel_path, &lexed[&f.rel_path]);
                n += fs.len();
                findings.extend(fs);
            }
        }
        timings.push(RuleTiming { name: "cast", micros: t0.elapsed().as_micros(), findings: n });
    }

    // ---- growth ----
    if want("growth") {
        let t0 = Instant::now();
        let mut n = 0;
        for f in &scanned {
            if cfg.growth_crates.contains(&f.crate_name) {
                let fs = rules::growth::check(&f.crate_name, &f.rel_path, &lexed[&f.rel_path]);
                n += fs.len();
                findings.extend(fs);
            }
        }
        timings.push(RuleTiming { name: "growth", micros: t0.elapsed().as_micros(), findings: n });
    }

    // ---- blocking (reachability) ----
    if want("blocking") {
        let t0 = Instant::now();
        let fs = rules::blocking_io::check_graph(
            &graph,
            &blocking_reach,
            &lexed,
            &cfg.blocking_files,
            &blocking_missing,
        );
        timings.push(RuleTiming {
            name: "blocking",
            micros: t0.elapsed().as_micros(),
            findings: fs.len(),
        });
        findings.extend(fs);
    }

    // ---- lock (v1 manifest checks + v2 order edges) ----
    let mut lock_sites = Vec::new();
    if want("lock") {
        let t0 = Instant::now();
        let mut lock_scan = LockScan::default();
        for f in &scanned {
            if cfg.lock_crates.contains(&f.crate_name) {
                lock_scan.scan_file(&f.crate_name, &f.rel_path, &lexed[&f.rel_path]);
            }
        }
        let (lock_findings, sites) = lock_scan.finish(&cfg.locks);
        lock_sites = sites;
        let mut n = lock_findings.len();
        findings.extend(lock_findings);
        let order = rules::lock_order::check_order(&graph, &lexed, &cfg.lock_crates, &cfg.locks);
        n += order.len();
        findings.extend(order);
        timings.push(RuleTiming { name: "lock", micros: t0.elapsed().as_micros(), findings: n });
    }

    // ---- wiresize ----
    if want("wiresize") {
        let t0 = Instant::now();
        let fs = rules::wiresize::check(&graph, &lexed, &cfg.wiresize_crates);
        timings.push(RuleTiming {
            name: "wiresize",
            micros: t0.elapsed().as_micros(),
            findings: fs.len(),
        });
        findings.extend(fs);
    }

    // ---- unsafe inventory ----
    let mut unsafe_counts: BTreeMap<String, u64> = BTreeMap::new();
    if want("unsafe") {
        let t0 = Instant::now();
        let mut n = 0;
        for f in &scanned {
            let (fs, count) = rules::unsafe_inv::check(
                &f.crate_name,
                &f.rel_path,
                &lexed[&f.rel_path],
                &cfg.unsafe_files,
            );
            n += fs.len();
            findings.extend(fs);
            if count > 0 {
                *unsafe_counts.entry(f.crate_name.clone()).or_insert(0) += count;
            }
        }
        timings.push(RuleTiming { name: "unsafe", micros: t0.elapsed().as_micros(), findings: n });
    }

    // ---- protocol drift ----
    if want("protocol") {
        if let Some((rs, md)) = &cfg.protocol {
            let t0 = Instant::now();
            let fs = rules::protocol_drift::check(rs, md)?;
            timings.push(RuleTiming {
                name: "protocol",
                micros: t0.elapsed().as_micros(),
                findings: fs.len(),
            });
            findings.extend(fs);
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let gate_failures = evaluate_gate(&findings, cfg, &unsafe_counts, sel);
    Ok(Audit { findings, gate_failures, lock_sites, files_scanned, graph_stats, timings })
}

/// Ratchet + hard-rule gate semantics.
fn evaluate_gate(
    findings: &[Finding],
    cfg: &RuleConfig,
    unsafe_counts: &BTreeMap<String, u64>,
    rule_filter: Option<&str>,
) -> Vec<String> {
    let mut failures = Vec::new();
    let want = |name: &str| rule_filter.is_none_or(|r| r == name);

    // Hard rules: any finding fails the gate.
    for (rule, label) in [
        ("lock", "lock-order"),
        ("protocol", "protocol-drift"),
        ("allow", "allow-syntax"),
        ("blocking", "blocking-io"),
        ("panic-reachable", "reachable-panic"),
        ("wiresize", "wire-size"),
        ("unsafe", "unsafe-inventory"),
    ] {
        if !(want(rule) || rule == "panic-reachable" && want("panic")) {
            continue;
        }
        let n = findings.iter().filter(|f| f.rule == rule).count();
        if n > 0 {
            // Name the offending crates so `failing_findings` (which
            // matches gate lines by crate) lists the details.
            let mut crates: Vec<&str> = findings
                .iter()
                .filter(|f| f.rule == rule && !f.crate_name.is_empty())
                .map(|f| f.crate_name.as_str())
                .collect();
            crates.sort_unstable();
            crates.dedup();
            let along = if crates.is_empty() {
                String::new()
            } else {
                format!(" in {}", crates.join(", "))
            };
            failures.push(format!("{rule}: {n} {label} finding(s){along}"));
        }
    }

    // Ratcheted rules: per-crate counts must equal the committed baseline.
    for (rule, crates) in
        [("panic", &cfg.panic_crates), ("cast", &cfg.cast_crates), ("growth", &cfg.growth_crates)]
    {
        if !want(rule) {
            continue;
        }
        let mut counts: BTreeMap<&str, u64> = crates.iter().map(|c| (c.as_str(), 0)).collect();
        for f in findings.iter().filter(|f| f.rule == rule) {
            if let Some(n) = counts.get_mut(f.crate_name.as_str()) {
                *n += 1;
            }
        }
        // A ratchet entry for a crate the rule doesn't police is a
        // config bug — surface it instead of silently ignoring it.
        for key in cfg.ratchet.keys() {
            if let Some(crate_name) = key.strip_prefix(&format!("{rule}/")) {
                if !counts.contains_key(crate_name) {
                    failures.push(format!(
                        "{rule}: ratchet entry for unknown crate `{crate_name}` in audit-ratchet.toml"
                    ));
                }
            }
        }
        for (crate_name, &count) in &counts {
            let baseline = cfg.ratchet.get(&format!("{rule}/{crate_name}")).copied().unwrap_or(0);
            if count > baseline {
                failures.push(format!(
                    "{rule}: {crate_name} has {count} finding(s), baseline {baseline} — fix them or annotate with a reason"
                ));
            } else if count < baseline {
                failures.push(format!(
                    "{rule}: {crate_name} improved to {count} finding(s), baseline {baseline} — tighten audit-ratchet.toml so the gains can't regress"
                ));
            }
        }
    }

    // The unsafe inventory ratchets a *count of annotated blocks*, not
    // findings: boundary-file crates must hold exactly their committed
    // number of `audit:allow(unsafe)` blocks.
    if want("unsafe") {
        let mut crates: Vec<String> = cfg
            .unsafe_files
            .iter()
            .filter_map(|p| p.split('/').next())
            .map(str::to_string)
            .collect();
        crates.extend(unsafe_counts.keys().cloned());
        crates.extend(
            cfg.ratchet.keys().filter_map(|k| k.strip_prefix("unsafe/")).map(str::to_string),
        );
        crates.sort_unstable();
        crates.dedup();
        for crate_name in &crates {
            let count = unsafe_counts.get(crate_name).copied().unwrap_or(0);
            let baseline = cfg.ratchet.get(&format!("unsafe/{crate_name}")).copied().unwrap_or(0);
            if count > baseline {
                failures.push(format!(
                    "unsafe: {crate_name} has {count} annotated unsafe block(s), baseline {baseline} — shrink the unsafe surface or bank the growth deliberately in audit-ratchet.toml"
                ));
            } else if count < baseline {
                failures.push(format!(
                    "unsafe: {crate_name} improved to {count} annotated unsafe block(s), baseline {baseline} — tighten audit-ratchet.toml so the gains can't regress"
                ));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_for(ratchet: &[(&str, u64)]) -> RuleConfig {
        RuleConfig {
            panic_crates: vec!["demo".into()],
            cast_crates: vec!["demo".into()],
            growth_crates: vec!["demo".into()],
            lock_crates: vec!["demo".into()],
            blocking_files: Vec::new(),
            blocking_roots: Vec::new(),
            serving_roots: Vec::new(),
            panic_pinned_crates: Vec::new(),
            wiresize_crates: vec!["demo".into()],
            unsafe_files: Vec::new(),
            locks: BTreeMap::new(),
            ratchet: ratchet.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            protocol: None,
        }
    }

    fn tree(name: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let tmp = std::env::temp_dir().join(format!("she-audit-{name}-{}", std::process::id()));
        for (p, body) in files {
            let f = tmp.join(p);
            std::fs::create_dir_all(f.parent().expect("parent")).expect("mkdir");
            std::fs::write(&f, body).expect("write");
        }
        tmp
    }

    #[test]
    fn ratchet_fails_on_growth_and_on_unbanked_shrinkage() {
        let tmp = tree(
            "ratchet",
            &[("crates/demo/src/lib.rs", "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n")],
        );
        // Baseline 0: one finding over → gate fails with "fix them".
        let cfg = cfg_for(&[]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(!a.ok());
        assert!(a.gate_failures.iter().any(|g| g.contains("baseline 0") && g.contains("fix")));

        // Baseline 1: at baseline → gate passes, finding still listed.
        let cfg = cfg_for(&[("panic/demo", 1)]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.ok(), "{:?}", a.gate_failures);
        assert_eq!(a.findings.len(), 1);

        // Baseline 2: below baseline → gate demands tightening.
        let cfg = cfg_for(&[("panic/demo", 2)]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.gate_failures.iter().any(|g| g.contains("tighten")));
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn ratchet_entry_for_unknown_crate_is_flagged() {
        let tmp = tree("unknown", &[("crates/demo/src/lib.rs", "pub fn f() {}\n")]);
        let cfg = cfg_for(&[("panic/ghost", 3)]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.gate_failures.iter().any(|g| g.contains("unknown crate `ghost`")));
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn unpoliced_crates_and_test_files_are_skipped() {
        let tmp = tree(
            "skip",
            &[
                ("crates/other/src/lib.rs", "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n"),
                ("crates/demo/tests/it.rs", "fn t(x: Option<u8>) -> u8 { x.unwrap() }\n"),
            ],
        );
        let cfg = cfg_for(&[]);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.ok(), "{:?}", a.gate_failures);
        assert!(a.findings.is_empty());
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn rule_filter_runs_and_gates_only_that_rule() {
        let tmp = tree(
            "filter",
            &[("crates/demo/src/lib.rs", "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n")],
        );
        let cfg = cfg_for(&[]);
        let a = audit_with(&tmp, &cfg, &AuditOptions { rule: Some("cast".into()) }).expect("audit");
        assert!(a.ok(), "panic finding must not gate a --rule cast run: {:?}", a.gate_failures);
        assert!(a.findings.is_empty());
        assert!(a.timings.iter().any(|t| t.name == "cast"));
        assert!(!a.timings.iter().any(|t| t.name == "panic"));

        let a =
            audit_with(&tmp, &cfg, &AuditOptions { rule: Some("panic".into()) }).expect("audit");
        assert!(!a.ok());
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn unsafe_ratchet_counts_annotated_blocks() {
        let src = "pub fn f() {\n    // audit:allow(unsafe): fd open by construction\n    \
                   unsafe { go() };\n}\n";
        let tmp = tree("unsafecount", &[("crates/demo/src/sys.rs", src)]);
        let mut cfg = cfg_for(&[]);
        cfg.unsafe_files = vec!["demo/src/sys.rs".into()];
        // No baseline → annotated count of 1 is growth.
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(
            a.gate_failures.iter().any(|g| g.contains("annotated unsafe block(s)")),
            "{:?}",
            a.gate_failures
        );
        // Committed baseline of 1 → passes.
        cfg.ratchet.insert("unsafe/demo".into(), 1);
        let a = audit(&tmp, &cfg).expect("audit");
        assert!(a.ok(), "{:?}", a.gate_failures);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let tmp = tree("json", &[("crates/demo/src/lib.rs", "pub fn f() {}\n")]);
        let cfg = cfg_for(&[]);
        let a = audit(&tmp, &cfg).expect("audit");
        let j = a.to_json();
        assert!(j.starts_with("{\"ok\":true"), "{j}");
        assert!(j.contains("\"graph\":{\"nodes\":1"), "{j}");
        assert!(j.contains("\"rules\":["), "{j}");
        assert!(j.ends_with("\"gate_failures\":[]}"), "{j}");
        std::fs::remove_dir_all(&tmp).ok();
    }
}
