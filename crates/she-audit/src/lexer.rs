//! A small, dependency-free Rust lexer — just enough syntax awareness for
//! the audit rules to be sound: comments (line, nested block), string and
//! byte-string literals (escaped and raw, any `#` depth), `'a'` char
//! literals vs `'a` lifetimes, raw identifiers, and numeric literals kept
//! verbatim (the protocol-drift rule reads `0xE4`-style values).
//!
//! Beyond tokens, lexing extracts the two pieces of file-level structure
//! the rules need:
//!
//! * **allow annotations** — `// audit:allow(<rule>): <reason>` comments.
//!   A finding on the annotation's line or the line directly below it is
//!   suppressed; when either of those lines opens a brace block, the
//!   annotation is span-aware and covers through the matching close
//!   brace, so one annotation above a loop or match arm covers the whole
//!   block. An annotation without a reason is itself reported: the
//!   reason is the point.
//! * **test regions** — line ranges covered by `#[cfg(test)]` /
//!   `#[test]` / `#[should_panic]` items. Rules only police non-test
//!   code; tests may `unwrap()` freely.

use std::collections::BTreeMap;

/// Token classes the rules discriminate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, stored unprefixed).
    Ident,
    /// Single punctuation character.
    Punct,
    /// String / byte-string literal (escaped or raw), text excluded.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`, `'static`, `'_`), stored without the quote.
    Lifetime,
    /// Numeric literal, verbatim (e.g. `0xE4`, `16`, `0b1010`).
    Num,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokKind,
    /// Verbatim text for `Ident`/`Punct`/`Num`/`Lifetime`; the literal's
    /// inner text for `Str` (quotes and hashes stripped, escapes kept
    /// verbatim); empty for `Char`.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order (comments and whitespace dropped).
    pub tokens: Vec<Token>,
    /// `audit:allow(<rule>)` annotations: rule key → inclusive line
    /// ranges each one covers (see [`Lexed::allowed`]).
    pub allows: BTreeMap<String, Vec<(u32, u32)>>,
    /// Lines with an `audit:allow` annotation missing its `: reason`.
    pub malformed_allows: Vec<u32>,
    /// Line ranges (inclusive) covered by test-only items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl Lexed {
    /// Is a finding at `line` suppressed by an allow for `rule`?
    /// Annotations cover their own line (trailing comment) and the line
    /// directly below (comment-above style); when either line opens a
    /// brace block, coverage extends to the matching close brace.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(rule).is_some_and(|ls| ls.iter().any(|&(lo, hi)| (lo..=hi).contains(&line)))
    }

    /// Is `line` inside a test-only region?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }
}

/// Lex `src`. Never fails: unterminated constructs consume to EOF, which
/// is the most useful behaviour for an auditor (the compiler owns syntax
/// errors; the auditor must not die on them).
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() };
    lx.run();
    let ranges = test_regions(&lx.out.tokens);
    lx.out.test_ranges = ranges;
    extend_allow_spans(&lx.out.tokens, &mut lx.out.allows);
    lx.out
}

/// Make annotations span-aware: if the annotation's own line or the line
/// directly below opens a brace block, extend its coverage to the line of
/// the matching close brace. An unterminated block extends to EOF, which
/// errs on the suppressing side only inside code the compiler would
/// reject anyway.
fn extend_allow_spans(tokens: &[Token], allows: &mut BTreeMap<String, Vec<(u32, u32)>>) {
    for ranges in allows.values_mut() {
        for range in ranges.iter_mut() {
            let (lo, hi) = *range;
            let Some(open) =
                tokens.iter().position(|t| t.is_punct('{') && (t.line == lo || t.line == lo + 1))
            else {
                continue;
            };
            let mut depth = 1usize;
            let mut i = open + 1;
            while i < tokens.len() && depth > 0 {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                }
                i += 1;
            }
            let end = tokens.get(i.saturating_sub(1)).map_or(hi, |t| t.line);
            range.1 = hi.max(end);
        }
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(0),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' => self.maybe_prefixed_literal(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.record_allow(&text, line);
    }

    fn block_comment(&mut self) {
        let start = self.line;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        // The annotation covers the line the comment *ends* on, so a
        // trailing `/* audit:allow(x): y */` behaves like `// ...`.
        let end = self.line;
        self.record_allow(&text, end.max(start));
    }

    fn record_allow(&mut self, comment: &str, line: u32) {
        let Some(at) = comment.find("audit:allow(") else { return };
        let rest = &comment[at + "audit:allow(".len()..];
        let Some(close) = rest.find(')') else {
            self.out.malformed_allows.push(line);
            return;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason_ok = after.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        if rule.is_empty() || !reason_ok {
            self.out.malformed_allows.push(line);
            return;
        }
        self.out.allows.entry(rule).or_default().push((line, line + 1));
    }

    /// `"` strings with escapes; `hashes` > 0 means raw (no escapes, ends
    /// at `"` followed by that many `#`). The inner text is kept verbatim
    /// (escape sequences unprocessed) — rules match plain names like
    /// `"repl-log"`, which never contain escapes.
    fn string(&mut self, hashes: usize) {
        let line = self.line;
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') if hashes == 0 => {
                    text.push('\\');
                    self.bump();
                    if let Some(c) = self.bump() {
                        text.push(c); // the escaped char (covers \" and \\)
                    }
                }
                Some('"') => {
                    if (1..=hashes).all(|i| self.peek(i) == Some('#')) {
                        self.bump();
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                    text.push('"');
                    self.bump();
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// `'` starts either a char literal or a lifetime. A lifetime is `'`
    /// followed by an identifier *not* closed by another `'`.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let c1 = self.peek(1);
        let is_lifetime = match c1 {
            Some(c) if c.is_alphabetic() || c == '_' => self.peek(2) != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, name, line);
            return;
        }
        // Char literal: consume to the closing quote, honouring escapes
        // ('\'', '\\', '\u{1F600}', '\x41').
        self.bump(); // opening '
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.bump();
                    self.bump();
                }
                Some('\'') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        self.push(TokKind::Char, String::new(), line);
    }

    /// `r`/`b` may start a raw string (`r"…"`, `r#"…"#`), a byte string
    /// (`b"…"`, `br#"…"#`), a byte char (`b'x'`), a raw identifier
    /// (`r#match`) — or just an ordinary identifier.
    fn maybe_prefixed_literal(&mut self) {
        let c0 = self.peek(0); // 'r' or 'b'
        let mut i = 1;
        if c0 == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        }
        let mut hashes = 0usize;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(i + hashes) {
            Some('"') => {
                for _ in 0..i + hashes {
                    self.bump();
                }
                self.string(hashes);
            }
            Some('\'') if i == 1 && hashes == 0 && c0 == Some('b') => {
                self.bump(); // b
                self.char_or_lifetime();
            }
            Some(c)
                if c0 == Some('r') && i == 1 && hashes == 1 && (c.is_alphabetic() || c == '_') =>
            {
                // Raw identifier r#ident: skip the prefix, lex the ident.
                self.bump();
                self.bump();
                self.ident();
            }
            _ => self.ident(),
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    /// Numbers are an alphanumeric/underscore run starting with a digit —
    /// coarse but verbatim (`0xE4`, `16_384`, `1e9`). A float's `.`
    /// splits into separate tokens, which no rule cares about.
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

/// Find line ranges covered by test-only items: any item whose attribute
/// list contains `#[test]`, `#[should_panic]`, or a `cfg(...)` mentioning
/// `test` outside a `not(...)` (so `#[cfg(not(test))]` stays non-test).
fn test_regions(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        // One attribute: collect tokens to the matching ']'.
        let mut j = i + 2;
        let mut depth = 1usize;
        let attr_start = j;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
            }
            j += 1;
        }
        let attr = &tokens[attr_start..j.saturating_sub(1)];
        if !attr_is_test(attr) {
            i = j;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = j;
        while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[') {
            let mut d = 1usize;
            k += 2;
            while k < tokens.len() && d > 0 {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                }
                k += 1;
            }
        }
        // Find the item body `{ … }` (or give up at `;` — e.g. an
        // out-of-line `mod tests;`).
        let mut body = None;
        let mut m = k;
        while m < tokens.len() {
            if tokens[m].is_punct('{') {
                body = Some(m);
                break;
            }
            if tokens[m].is_punct(';') {
                break;
            }
            m += 1;
        }
        let Some(open) = body else {
            i = j;
            continue;
        };
        let mut d = 1usize;
        let mut e = open + 1;
        while e < tokens.len() && d > 0 {
            if tokens[e].is_punct('{') {
                d += 1;
            } else if tokens[e].is_punct('}') {
                d -= 1;
            }
            e += 1;
        }
        let end_line = tokens.get(e.saturating_sub(1)).map_or(tokens[open].line, |t| t.line);
        ranges.push((tokens[i].line, end_line));
        i = e;
    }
    ranges
}

/// Does an attribute token list mark a test item?
fn attr_is_test(attr: &[Token]) -> bool {
    let Some(head) = attr.first() else { return false };
    if head.is_ident("test") || head.is_ident("should_panic") {
        return true;
    }
    if !head.is_ident("cfg") {
        return false;
    }
    // `test` counts unless it only appears under `not(...)`.
    let mut not_depth: i32 = 0;
    let mut pending_not = false;
    for t in &attr[1..] {
        match t.kind {
            TokKind::Ident if t.text == "not" => pending_not = true,
            TokKind::Ident if t.text == "test" && not_depth == 0 => return true,
            TokKind::Punct if t.is_punct('(') => {
                if pending_not || not_depth > 0 {
                    not_depth += 1;
                }
                pending_not = false;
            }
            TokKind::Punct if t.is_punct(')') => not_depth = (not_depth - 1).max(0),
            _ => pending_not = false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_hide_tokens() {
        let src = "a // unwrap() in a comment\n/* panic! */ b /* nested /* deep */ still */ c";
        assert_eq!(idents(src), ["a", "b", "c"]);
    }

    #[test]
    fn strings_hide_tokens_and_track_lines() {
        let src = "a \"unwrap() \\\" quoted\" b\n\"multi\nline\" c";
        let lx = lex(src);
        assert_eq!(idents(src), ["a", "b", "c"]);
        let c = lx.tokens.iter().find(|t| t.is_ident("c")).expect("c");
        assert_eq!(c.line, 3);
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let src = r####"a r"no # end" b r#"has " quote"# c br##"bytes "# deep"## d"####;
        assert_eq!(idents(src), ["a", "b", "c", "d"]);
    }

    #[test]
    fn raw_string_with_unwrap_inside_is_not_code() {
        let src = "let s = r#\"x.unwrap()\"#; done";
        let lx = lex(src);
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(lx.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "let c = 'a'; fn f<'a>(x: &'a str) -> &'static str { x } let q = '\\''; 'b'";
        let lx = lex(src);
        let lifetimes: Vec<_> =
            lx.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| &t.text).collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
        assert_eq!(lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(idents("r#match r#type plain"), ["match", "type", "plain"]);
    }

    #[test]
    fn numbers_are_verbatim() {
        let lx = lex("const X: u8 = 0xE4; let n = 16_384;");
        let nums: Vec<_> =
            lx.tokens.iter().filter(|t| t.kind == TokKind::Num).map(|t| &t.text).collect();
        assert_eq!(nums, ["0xE4", "16_384"]);
    }

    #[test]
    fn allow_annotation_with_reason_is_recorded() {
        let src = "x.unwrap(); // audit:allow(panic): provably non-empty\ny";
        let lx = lex(src);
        assert!(lx.allowed("panic", 1));
        assert!(lx.allowed("panic", 2)); // covers the next line too
        assert!(!lx.allowed("panic", 3));
        assert!(!lx.allowed("cast", 1)); // rule-keyed
        assert!(lx.malformed_allows.is_empty());
    }

    #[test]
    fn allow_above_a_block_covers_the_whole_block() {
        let src = "// audit:allow(growth): bounded by batch len\nfor x in batch {\n    buf.push(x);\n    more(x);\n}\nafter();";
        let lx = lex(src);
        assert!(lx.allowed("growth", 2)); // the opener line
        assert!(lx.allowed("growth", 3)); // inside the block
        assert!(lx.allowed("growth", 5)); // the close-brace line
        assert!(!lx.allowed("growth", 6)); // past the block
    }

    #[test]
    fn trailing_allow_on_an_opener_covers_the_block() {
        let src = "fn f() { // audit:allow(panic): fixture\n    x.unwrap();\n    y.unwrap();\n}\nz.unwrap();";
        let lx = lex(src);
        assert!(lx.allowed("panic", 3));
        assert!(!lx.allowed("panic", 5));
    }

    #[test]
    fn allow_without_a_block_still_covers_two_lines() {
        let src = "// audit:allow(cast): reviewed\nlet a = n as u32;\nlet b = n as u32;";
        let lx = lex(src);
        assert!(lx.allowed("cast", 2));
        assert!(!lx.allowed("cast", 3));
    }

    #[test]
    fn allow_annotation_without_reason_is_malformed() {
        assert_eq!(lex("// audit:allow(panic)\nx").malformed_allows, [1]);
        assert_eq!(lex("// audit:allow(panic):   \nx").malformed_allows, [1]);
        assert_eq!(lex("// audit:allow(panic) missing colon\nx").malformed_allows, [1]);
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lx = lex(src);
        assert!(!lx.in_test(1));
        assert!(lx.in_test(4));
        assert!(!lx.in_test(6));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_a_test_region() {
        let src = "#[test]\n#[ignore]\nfn t() {\n    boom();\n}\nfn real() {}";
        let lx = lex(src);
        assert!(lx.in_test(4));
        assert!(!lx.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lx = lex("#[cfg(not(test))]\nfn real() {\n    x();\n}");
        assert!(!lx.in_test(3));
    }

    #[test]
    fn cfg_any_test_counts() {
        let lx = lex("#[cfg(any(test, feature = \"x\"))]\nmod helpers {\n    fn h() {}\n}");
        assert!(lx.in_test(3));
    }

    #[test]
    fn braces_inside_literals_do_not_confuse_regions() {
        let src =
            "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn real() {}";
        let lx = lex(src);
        assert!(lx.in_test(4));
        assert!(!lx.in_test(6));
    }
}
