//! **unbounded-growth** — non-test code in the policed crates must not
//! grow a `Vec`/`VecDeque` without a visible cap. A `push`/`extend` on
//! the serving path with no nearby length check or eviction is how a
//! slow consumer turns into an OOM kill; bounded buffers must either
//! check `len()`/`capacity()` (or evict with `truncate`/`drain`/`pop_*`)
//! within a few lines of the growth site, or carry
//! `// audit:allow(growth): <reason>` stating the bound.
//!
//! The rule is a heuristic and is ratcheted: sites whose bound lives
//! further away than the scan window are banked in `audit-ratchet.toml`
//! or annotated, and the committed count can only shrink.

use crate::lexer::{Lexed, TokKind};
use crate::rules::Finding;

/// Method names that grow a collection.
const GROWERS: [&str; 6] =
    ["push", "push_back", "push_front", "extend", "extend_from_slice", "append"];

/// Identifiers that signal a bound near the growth site: a length or
/// capacity check, an eviction, or an explicit pre-sized allocation.
const BOUNDERS: [&str; 12] = [
    "len",
    "capacity",
    "with_capacity",
    "truncate",
    "drain",
    "pop",
    "pop_front",
    "pop_back",
    "remove",
    "retain",
    "clear",
    "split_off",
];

/// How many lines on either side of a growth call the rule scans for a
/// bound signal.
const BOUND_WINDOW: u32 = 8;

/// Run the rule over one lexed non-test-only file.
pub fn check(crate_name: &str, file: &str, lx: &Lexed) -> Vec<Finding> {
    let toks = &lx.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !GROWERS.contains(&t.text.as_str()) {
            continue;
        }
        // Only method calls count: `.push(` — a fn named `push` or a
        // bare path does not grow a collection here.
        let is_call =
            i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_call {
            continue;
        }
        if lx.in_test(t.line) || lx.allowed("growth", t.line) {
            continue;
        }
        let lo = t.line.saturating_sub(BOUND_WINDOW);
        let hi = t.line + BOUND_WINDOW;
        let bounded = toks.iter().any(|b| {
            b.kind == TokKind::Ident
                && (lo..=hi).contains(&b.line)
                && BOUNDERS.contains(&b.text.as_str())
        });
        if bounded {
            continue;
        }
        out.push(Finding {
            rule: "growth",
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            line: t.line,
            msg: format!(
                "`.{}(` grows a collection with no cap check in sight (bound it nearby, or annotate `// audit:allow(growth): <reason>`)",
                t.text
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lines(src: &str) -> Vec<u32> {
        check("c", "f.rs", &lex(src)).into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn flags_uncapped_growth() {
        let src = "fn f(log: &mut Vec<u32>, x: u32) {\n    log.push(x);\n}";
        assert_eq!(lines(src), [2]);
    }

    #[test]
    fn nearby_cap_check_suppresses() {
        let src = "fn f(log: &mut Vec<u32>, x: u32, cap: usize) {\n    if log.len() >= cap {\n        log.remove(0);\n    }\n    log.push(x);\n}";
        assert!(lines(src).is_empty());
    }

    #[test]
    fn eviction_after_push_suppresses() {
        let src = "fn f(q: &mut std::collections::VecDeque<u32>, x: u32) {\n    q.push_back(x);\n    while q.len() > 16 {\n        q.pop_front();\n    }\n}";
        assert!(lines(src).is_empty());
    }

    #[test]
    fn non_method_push_is_ignored() {
        assert!(lines("fn push(x: u32) {}\nfn f() { push(1); }").is_empty());
    }

    #[test]
    fn allow_and_tests_suppress() {
        let src = "fn f(v: &mut Vec<u32>) {\n    v.push(1); // audit:allow(growth): bounded by caller\n}\n#[cfg(test)]\nmod t {\n    fn g(v: &mut Vec<u32>) { v.push(2); }\n}";
        assert!(lines(src).is_empty());
    }

    #[test]
    fn block_allow_covers_a_loop_of_pushes() {
        let src = "fn f(v: &mut Vec<u32>, batch: &[u32]) {\n    // audit:allow(growth): one element per batch entry\n    for &x in batch {\n        v.push(x);\n        v.push(x + 1);\n    }\n}";
        assert!(lines(src).is_empty());
    }
}
