//! **panic-path** — non-test code in the policed crates must not contain
//! `.unwrap()`, `.expect(...)`, `panic!(...)`, or `unreachable!(...)`.
//! A panic on the serving path kills a shard worker or a connection
//! handler; the chaos soak proved that is a real availability bug, not a
//! style nit. Sites that are provably safe carry
//! `// audit:allow(panic): <reason>` and are skipped (the reason is
//! mandatory — a malformed annotation is itself a finding).

use crate::lexer::{Lexed, TokKind};
use crate::rules::Finding;

/// Run the rule over one lexed non-test-only file.
pub fn check(crate_name: &str, file: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            // Method calls: require a leading `.` so definitions and
            // mentions (e.g. `Option::unwrap` in a doc path) don't fire,
            // and a trailing `(` so field names don't.
            "unwrap" | "expect" => {
                let dotted = i > 0 && toks[i - 1].is_punct('.');
                let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                if dotted && called {
                    format!(".{}()", t.text)
                } else {
                    continue;
                }
            }
            // Macros: `panic !` / `unreachable !`.
            "panic" | "unreachable" => {
                if toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                    format!("{}!", t.text)
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        if lx.in_test(t.line) || lx.allowed("panic", t.line) {
            continue;
        }
        out.push(Finding {
            rule: "panic",
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            line: t.line,
            msg: format!("{what} in non-test code (annotate `// audit:allow(panic): <reason>` if provably safe)"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> Vec<(u32, String)> {
        check("c", "f.rs", &lex(src)).into_iter().map(|f| (f.line, f.msg)).collect()
    }

    #[test]
    fn flags_the_four_forms() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n    panic!(\"boom\");\n    unreachable!();\n}";
        let got = findings(src);
        assert_eq!(got.len(), 4);
        assert!(got[0].1.contains(".unwrap()"));
        assert!(got[1].1.contains(".expect()"));
        assert!(got[2].1.contains("panic!"));
        assert!(got[3].1.contains("unreachable!"));
    }

    #[test]
    fn skips_tests_allows_and_lookalikes() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0) // not unwrap()\n}\nfn g() {\n    q.unwrap(); // audit:allow(panic): queue is non-empty by the check above\n}\n#[cfg(test)]\nmod tests {\n    fn t() { z.unwrap(); }\n}";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "fn g() {\n    q.unwrap(); // audit:allow(cast): wrong key\n}";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn unwrap_in_string_or_comment_is_invisible() {
        let src = "fn f() {\n    let s = \"x.unwrap()\";\n    // y.unwrap()\n    let r = r#\"panic!()\"#;\n}";
        assert!(findings(src).is_empty());
    }
}
