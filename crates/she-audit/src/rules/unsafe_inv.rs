//! **unsafe-inventory** — every `unsafe` block in the workspace is
//! accounted for. The repo's deliberate unsafe surface is the epoll FFI
//! in `she-server/src/sys.rs` and nothing else:
//!
//! * `unsafe` outside the configured boundary files is a hard finding —
//!   new unsafe goes behind the sys layer or not at all;
//! * `unsafe` inside a boundary file must carry
//!   `// audit:allow(unsafe): <reason>`; annotated blocks are counted
//!   and the count is ratcheted (`[unsafe]` in `audit-ratchet.toml`),
//!   so the inventory can shrink but never silently grow.
//!
//! Test code is exempt (a test exercising an unsafe helper is not new
//! unsafe surface).

use crate::lexer::Lexed;
use crate::rules::Finding;

/// Scan one file. Returns findings plus the count of annotated blocks
/// (nonzero only inside boundary files).
pub fn check(
    crate_name: &str,
    file: &str,
    lx: &Lexed,
    boundary_files: &[String],
) -> (Vec<Finding>, u64) {
    let permitted = boundary_files.iter().any(|s| file.ends_with(s.as_str()));
    let mut out = Vec::new();
    let mut annotated = 0u64;
    for t in &lx.tokens {
        if !t.is_ident("unsafe") || lx.in_test(t.line) {
            continue;
        }
        if !permitted {
            out.push(Finding {
                rule: "unsafe",
                crate_name: crate_name.to_string(),
                file: file.to_string(),
                line: t.line,
                msg: format!(
                    "`unsafe` outside the audited boundary ({}) — put the raw-syscall \
                     surface behind the sys layer instead",
                    boundary_files.join(", ")
                ),
            });
        } else if lx.allowed("unsafe", t.line) {
            annotated += 1;
        } else {
            out.push(Finding {
                rule: "unsafe",
                crate_name: crate_name.to_string(),
                file: file.to_string(),
                line: t.line,
                msg: "unannotated `unsafe` in a boundary file (annotate \
                      `// audit:allow(unsafe): <reason>` stating the safety argument)"
                    .to_string(),
            });
        }
    }
    (out, annotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn boundary() -> Vec<String> {
        vec!["sys.rs".to_string()]
    }

    #[test]
    fn unsafe_outside_boundary_is_hard() {
        let (f, n) = check("c", "lib.rs", &lex("fn f() { unsafe { go() } }"), &boundary());
        assert_eq!(f.len(), 1);
        assert_eq!(n, 0);
        assert!(f[0].msg.contains("outside the audited boundary"));
    }

    #[test]
    fn annotated_boundary_blocks_are_counted_not_flagged() {
        let src =
            "fn f() {\n    // audit:allow(unsafe): fd is owned and open by construction\n    \
                   unsafe { close(fd) };\n    unsafe { close(fd2) };\n}";
        let (f, n) = check("c", "src/sys.rs", &lex(src), &boundary());
        assert_eq!(f.len(), 1, "second block lacks an annotation: {f:?}");
        assert_eq!(n, 1);
        assert!(f[0].msg.contains("unannotated"));
    }

    #[test]
    fn tests_and_lookalikes_are_exempt() {
        let src = "#![allow(unsafe_code)]\n#[cfg(test)]\nmod t {\n    fn g() { unsafe { x() } }\n}";
        let (f, n) = check("c", "lib.rs", &lex(src), &boundary());
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(n, 0);
    }
}
