//! **wiresize** — allocations sized by a decoded wire length must be
//! clamped before they allocate. `Vec::with_capacity(n)`,
//! `HashMap::with_capacity(n)`, `.reserve(n)`, `.resize(n, ..)`, and
//! `vec![x; n]` all commit memory *before* any bytes backing `n` are
//! read, so a corrupt or hostile frame that claims `n = 2^60` entries is
//! an OOM the checksum never gets a chance to catch.
//!
//! The rule taints every value produced by a numeric wire decode
//! (`.u32()`, `.u64()`, `u32::from_le_bytes`, `u64::from_le_bytes` —
//! `u16` reads are inherently bounded and exempt), propagates the taint
//! through `let` bindings inside a fn and through *confident* call edges
//! into callee parameters (so "clamp in the same fn **or a caller**"
//! really means the caller: a clamped argument does not propagate), and
//! flags any allocation sink whose size expression is tainted with no
//! dominating clamp. A clamp is any of:
//!
//! * an early-return guard mentioning the value (`if n != expected {
//!   return .. }`, `if len > MAX_FRAME { return .. }`);
//! * rebinding through `.min(..)` / `clamp(..)` / a `MAX_*` / `*_CAP` /
//!   `*_LIMIT` constant;
//! * a narrowing `as u16` / `as u8` cast (the type bounds the value);
//! * clamping applied inline in the sink's size expression.
//!
//! Findings print the taint provenance chain (decode site → callers).
//! Deliberately unclampable sites carry
//! `// audit:allow(wiresize): <reason>`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::graph::CallGraph;
use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::Finding;

const SINKS: [&str; 4] = ["with_capacity", "reserve", "resize", "resize_with"];

/// Per-ident taint state inside one fn.
#[derive(Debug, Clone, Default)]
struct FnTaint {
    /// ident → provenance description of the decode that tainted it.
    tainted: BTreeMap<String, String>,
    /// ident → token index from which the value is considered clamped.
    clamped: BTreeMap<String, usize>,
}

/// Run the rule over every fn in the policed crates.
pub fn check(
    graph: &CallGraph,
    lexed: &BTreeMap<String, Lexed>,
    crates: &[String],
) -> Vec<Finding> {
    let policed: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.body.is_some() && crates.iter().any(|c| c == &f.crate_name))
        .map(|(i, _)| i)
        .collect();
    let policed_set: BTreeSet<usize> = policed.iter().copied().collect();

    // Interprocedural fixpoint: parameter taint injected by callers.
    let mut pre: BTreeMap<usize, BTreeMap<String, String>> = BTreeMap::new();
    let mut state: BTreeMap<usize, FnTaint> = BTreeMap::new();
    for &id in &policed {
        if let Some(lx) = lexed.get(&graph.fns[id].file) {
            state.insert(id, analyze_fn(graph, id, lx, &BTreeMap::new()));
        }
    }
    let mut work: VecDeque<usize> = policed.iter().copied().collect();
    let mut steps = 0usize;
    let budget = policed.len().saturating_mul(8).max(64);
    while let Some(id) = work.pop_front() {
        steps += 1;
        if steps > budget {
            break; // fixpoint safety valve; taint is an under-approx past here
        }
        let Some(st) = state.get(&id) else { continue };
        let st = st.clone();
        let f = &graph.fns[id];
        for rc in &graph.resolved[id] {
            if !rc.confident || rc.callees.is_empty() {
                continue;
            }
            let call = &f.calls[rc.call];
            for (argi, &(alo, ahi)) in call.args.iter().enumerate() {
                let Some(lx) = lexed.get(&f.file) else { continue };
                let hot = hot_expr(&lx.tokens, alo, ahi, &st, call.tok);
                let Some(origin) = hot else { continue };
                for &callee in &rc.callees {
                    if !policed_set.contains(&callee) || graph.fns[callee].body.is_none() {
                        continue;
                    }
                    let params = &graph.fns[callee].params;
                    let Some(param) = params.get(argi) else { continue };
                    let chain = format!("{origin} via {} ({}:{})", f.qual, f.file, call.line);
                    let entry = pre.entry(callee).or_default();
                    if entry.contains_key(param) {
                        continue;
                    }
                    entry.insert(param.clone(), chain);
                    if let Some(lx2) = lexed.get(&graph.fns[callee].file) {
                        let seeded = pre.get(&callee).cloned().unwrap_or_default();
                        state.insert(callee, analyze_fn(graph, callee, lx2, &seeded));
                        work.push_back(callee);
                    }
                }
            }
        }
    }

    // Sink evaluation with the settled taint.
    let mut out = Vec::new();
    for &id in &policed {
        let f = &graph.fns[id];
        let (Some(st), Some(lx)) = (state.get(&id), lexed.get(&f.file)) else { continue };
        let Some((lo, hi)) = f.body else { continue };
        collect_sink_findings(graph, id, lx, lo, hi, st, &mut out);
    }
    out
}

/// If the expression range is "hot" — contains a direct decode or a
/// tainted ident with no clamp dominating `at` — return its provenance.
fn hot_expr(t: &[Token], lo: usize, hi: usize, st: &FnTaint, at: usize) -> Option<String> {
    if expr_has_clamp(t, lo, hi) {
        return None;
    }
    if let Some(i) = find_decode(t, lo, hi) {
        return Some(format!("wire length decoded at line {}", t[i].line));
    }
    for tok in &t[lo..hi.min(t.len())] {
        if tok.kind != TokKind::Ident {
            continue;
        }
        if let Some(origin) = st.tainted.get(&tok.text) {
            let clamped = st.clamped.get(&tok.text).is_some_and(|&c| c < at);
            if !clamped {
                return Some(origin.clone());
            }
        }
    }
    None
}

/// First numeric wire-decode call in the range: `.u32(` / `.u64(` /
/// `u32::from_le_bytes(` / `u64::from_le_bytes(`.
fn find_decode(t: &[Token], lo: usize, hi: usize) -> Option<usize> {
    for i in lo..hi.min(t.len()) {
        let tok = &t[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        let called = t.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !called {
            continue;
        }
        match tok.text.as_str() {
            "u32" | "u64" if i > lo && t[i - 1].is_punct('.') => return Some(i),
            "from_le_bytes"
                if i >= 3
                    && t[i - 1].is_punct(':')
                    && t[i - 2].is_punct(':')
                    && (t[i - 3].is_ident("u32") || t[i - 3].is_ident("u64")) =>
            {
                return Some(i)
            }
            _ => {}
        }
    }
    None
}

/// Does the range apply a clamp inline? (`.min(`, `clamp`, `MAX_*`,
/// `*_CAP`, `*_LIMIT` idents, or a narrowing `as u16`/`as u8` cast.)
fn expr_has_clamp(t: &[Token], lo: usize, hi: usize) -> bool {
    for i in lo..hi.min(t.len()) {
        let tok = &t[i];
        if tok.kind != TokKind::Ident {
            continue;
        }
        let s = tok.text.as_str();
        if s == "min" && i > lo && t[i - 1].is_punct('.') {
            return true;
        }
        if s == "clamp" {
            return true;
        }
        if s.starts_with("MAX_") || s.ends_with("_CAP") || s.ends_with("_LIMIT") {
            return true;
        }
        if (s == "u16" || s == "u8") && i > lo && t[i - 1].is_ident("as") {
            return true;
        }
    }
    false
}

/// One pass of local taint analysis: `let` bindings propagate taint,
/// guards and clamped rebindings record clamp positions.
fn analyze_fn(
    graph: &CallGraph,
    id: usize,
    lx: &Lexed,
    pre_tainted: &BTreeMap<String, String>,
) -> FnTaint {
    let f = &graph.fns[id];
    let t = &lx.tokens;
    let Some((lo, hi)) = f.body else { return FnTaint::default() };
    let mut st = FnTaint { tainted: pre_tainted.clone(), clamped: BTreeMap::new() };
    // Two passes reach a fixpoint for straight-line chains plus the
    // occasional use-before-redefinition; deeper cycles are rare enough
    // to ignore (the graph layer's conservatism budget covers it).
    for _ in 0..2 {
        let mut i = lo + 1;
        while i < hi {
            let tok = &t[i];
            // `let x [: T] = RHS ;`
            if tok.is_ident("let") {
                if let Some((name, rlo, rhi, next)) = let_binding(t, i, hi) {
                    let has_decode = find_decode(t, rlo, rhi).is_some();
                    let tainted_ident = (rlo..rhi.min(t.len())).find_map(|j| {
                        (t[j].kind == TokKind::Ident)
                            .then(|| st.tainted.get(&t[j].text).cloned())
                            .flatten()
                    });
                    if has_decode || tainted_ident.is_some() {
                        let origin = if has_decode {
                            format!("wire length decoded in {} ({}:{})", f.qual, f.file, tok.line)
                        } else {
                            tainted_ident.unwrap_or_default()
                        };
                        st.tainted.insert(name.clone(), origin);
                        if expr_has_clamp(t, rlo, rhi) {
                            st.clamped.insert(name, i);
                        } else {
                            // Rebinding un-clamps a previously clamped name.
                            st.clamped.remove(&name);
                        }
                    }
                    i = next;
                    continue;
                }
            }
            // Guard: `if <cond mentioning x with a comparator> { .. return .. }`
            if tok.is_ident("if") {
                if let Some((clo, chi, blo, bhi)) = if_shape(t, i, hi) {
                    let guards = guard_block_exits(t, blo, bhi);
                    if guards && cond_has_comparator(t, clo, chi) {
                        for ctok in &t[clo..chi] {
                            if ctok.kind == TokKind::Ident && st.tainted.contains_key(&ctok.text) {
                                st.clamped.entry(ctok.text.clone()).or_insert(i);
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    st
}

/// Parse `let [mut] name [: T] = RHS ;` at `i`. Returns
/// `(name, rhs_lo, rhs_hi, resume_index)`.
fn let_binding(t: &[Token], i: usize, hi: usize) -> Option<(String, usize, usize, usize)> {
    let mut j = i + 1;
    if j < hi && t[j].is_ident("mut") {
        j += 1;
    }
    if j >= hi || t[j].kind != TokKind::Ident {
        return None;
    }
    let name = t[j].text.clone();
    j += 1;
    // Skip a `: Type` annotation.
    if j < hi && t[j].is_punct(':') && !(j + 1 < hi && t[j + 1].is_punct(':')) {
        j += 1;
        let mut d = 0i32;
        while j < hi {
            if t[j].is_punct('=') && d == 0 {
                break;
            }
            match () {
                _ if t[j].is_punct('<') || t[j].is_punct('(') || t[j].is_punct('[') => d += 1,
                _ if t[j].is_punct('>') || t[j].is_punct(')') || t[j].is_punct(']') => d -= 1,
                _ if t[j].is_punct(';') => return None,
                _ => {}
            }
            j += 1;
        }
    }
    if j >= hi || !t[j].is_punct('=') {
        return None;
    }
    let rlo = j + 1;
    let mut d = 0i32;
    let mut k = rlo;
    while k < hi {
        if t[k].is_punct(';') && d == 0 {
            break;
        }
        match () {
            _ if t[k].is_punct('(') || t[k].is_punct('[') || t[k].is_punct('{') => d += 1,
            _ if t[k].is_punct(')') || t[k].is_punct(']') || t[k].is_punct('}') => d -= 1,
            _ => {}
        }
        k += 1;
    }
    Some((name, rlo, k, k + 1))
}

/// Shape of an `if`: condition range and block range.
fn if_shape(t: &[Token], i: usize, hi: usize) -> Option<(usize, usize, usize, usize)> {
    let clo = i + 1;
    let mut d = 0i32;
    let mut j = clo;
    while j < hi {
        if t[j].is_punct('{') && d == 0 {
            break;
        }
        match () {
            _ if t[j].is_punct('(') || t[j].is_punct('[') => d += 1,
            _ if t[j].is_punct(')') || t[j].is_punct(']') => d -= 1,
            _ if t[j].is_punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    if j >= hi {
        return None;
    }
    let blo = j;
    let mut depth = 0i32;
    let mut k = blo;
    while k < hi {
        if t[k].is_punct('{') {
            depth += 1;
        } else if t[k].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some((clo, j, blo, k));
            }
        }
        k += 1;
    }
    None
}

/// Does the guard body bail out (contain `return`)?
fn guard_block_exits(t: &[Token], blo: usize, bhi: usize) -> bool {
    (blo..bhi.min(t.len())).any(|j| t[j].is_ident("return"))
}

/// Does the condition compare (`<`, `>`, `==`, `!=`, `<=`, `>=`)?
fn cond_has_comparator(t: &[Token], clo: usize, chi: usize) -> bool {
    for j in clo..chi.min(t.len()) {
        if t[j].is_punct('<') || t[j].is_punct('>') {
            return true;
        }
        if (t[j].is_punct('!') || t[j].is_punct('='))
            && t.get(j + 1).is_some_and(|n| n.is_punct('='))
        {
            return true;
        }
    }
    false
}

/// Emit findings for tainted, unclamped allocation sinks in one fn.
fn collect_sink_findings(
    graph: &CallGraph,
    id: usize,
    lx: &Lexed,
    lo: usize,
    hi: usize,
    st: &FnTaint,
    out: &mut Vec<Finding>,
) {
    let f = &graph.fns[id];
    let t = &lx.tokens;
    let mut sinks: Vec<(usize, usize, usize, u32, String)> = Vec::new(); // (tok, alo, ahi, line, label)
    for call in &f.calls {
        if !SINKS.contains(&call.name.as_str()) {
            continue;
        }
        let Some(&(alo, ahi)) = call.args.first() else { continue };
        sinks.push((call.tok, alo, ahi, call.line, format!("{}(", call.name)));
    }
    // `vec![x; n]` — the size expression after the `;`.
    let mut i = lo;
    while i < hi {
        if t[i].is_ident("vec")
            && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && t.get(i + 2).is_some_and(|n| n.is_punct('['))
        {
            let mut d = 0i32;
            let mut semi = None;
            let mut close = None;
            let mut j = i + 2;
            while j < hi {
                if t[j].is_punct('[') {
                    d += 1;
                } else if t[j].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        close = Some(j);
                        break;
                    }
                } else if t[j].is_punct(';') && d == 1 {
                    semi = Some(j);
                }
                j += 1;
            }
            if let (Some(s), Some(c)) = (semi, close) {
                sinks.push((i, s + 1, c, t[i].line, "vec![_; n]".to_string()));
            }
            i = close.map_or(i + 3, |c| c + 1);
            continue;
        }
        i += 1;
    }
    for (tok, alo, ahi, line, label) in sinks {
        if lx.in_test(line) || lx.allowed("wiresize", line) {
            continue;
        }
        if let Some(origin) = hot_expr(t, alo, ahi, st, tok) {
            out.push(Finding {
                rule: "wiresize",
                crate_name: f.crate_name.clone(),
                file: f.file.clone(),
                line,
                msg: format!(
                    "`{label}` sized by an unclamped wire-decoded length in {} — {origin}; \
                     clamp it against MAX_FRAME/geometry before allocating (or annotate \
                     `// audit:allow(wiresize): <reason>`)",
                    f.qual
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn run(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let items = parse_file("demo", "demo/src/lib.rs", &lx);
        let graph = CallGraph::build(vec![items]);
        let lexed = [("demo/src/lib.rs".to_string(), lx)].into_iter().collect();
        check(&graph, &lexed, &["demo".to_string()])
    }

    #[test]
    fn unclamped_decode_into_with_capacity_fires() {
        let src = "fn load(r: &mut Reader) {\n    let n = r.u64()? as usize;\n    \
                   let mut m = HashMap::with_capacity(n);\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].msg.contains("wire-decoded length"), "{}", f[0].msg);
    }

    #[test]
    fn guard_before_the_sink_clamps() {
        let src =
            "fn load(r: &mut Reader) -> Result<(), E> {\n    let n = r.u32()? as usize;\n    \
                   if n != self.groups() { return Err(E::Geometry); }\n    \
                   let v = Vec::with_capacity(n);\n    Ok(())\n}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn min_clamp_at_birth_is_fine() {
        let src = "fn load(r: &mut Reader) {\n    let n = (r.u64()? as usize).min(CAP);\n    \
                   let v = Vec::with_capacity(n);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn inline_sink_clamp_is_fine() {
        let src = "fn load(r: &mut Reader) {\n    let n = r.u64()? as usize;\n    \
                   let v = Vec::with_capacity(n.min(MAX_ROWS));\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn u16_reads_are_exempt() {
        let src = "fn load(r: &mut Reader) {\n    let n = r.u16()? as usize;\n    \
                   let v = Vec::with_capacity(n);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn vec_macro_size_is_a_sink() {
        let src = "fn load(r: &mut Reader) {\n    let n = r.u64()? as usize;\n    \
                   let v = vec![0u8; n];\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("vec![_; n]"), "{}", f[0].msg);
    }

    #[test]
    fn taint_crosses_into_callee_params() {
        let src = "fn parse(r: &mut Reader) {\n    let n = r.u64()? as usize;\n    build(n);\n}\n\
                   fn build(count: usize) {\n    let v = Vec::with_capacity(count);\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert!(f[0].msg.contains("via parse"), "{}", f[0].msg);
    }

    #[test]
    fn caller_side_clamp_does_not_propagate() {
        let src = "fn parse(r: &mut Reader) {\n    let n = r.u64()? as usize;\n    \
                   if n > MAX_N { return; }\n    build(n);\n}\n\
                   fn build(count: usize) {\n    let v = Vec::with_capacity(count);\n}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn allow_suppresses() {
        let src = "fn load(r: &mut Reader) {\n    let n = r.u64()? as usize;\n    \
                   // audit:allow(wiresize): n is bounded by the section length check above\n    \
                   let v = Vec::with_capacity(n);\n}\n";
        assert!(run(src).is_empty());
    }
}
