//! The audit rules. Each rule consumes lexed files and produces
//! [`Finding`]s; the engine in `lib.rs` layers the ratchet and gate
//! semantics on top.

pub mod blocking_io;
pub mod cast;
pub mod growth;
pub mod lock_order;
pub mod panic_path;
pub mod protocol_drift;
pub mod unsafe_inv;
pub mod wiresize;

use std::fmt;

/// One audit finding: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule key: `panic`, `panic-reachable`, `cast`, `growth`, `lock`,
    /// `blocking`, `wiresize`, `unsafe`, or `protocol`.
    pub rule: &'static str,
    /// Crate the finding is in (empty for cross-file protocol findings).
    pub crate_name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 when the finding has no single line, e.g. a
    /// manifest entry with no source counterpart).
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule, self.msg)
        } else {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
        }
    }
}
