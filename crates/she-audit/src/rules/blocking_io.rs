//! **blocking-io v2** — no call chain from a reactor root to a blocking
//! syscall wrapper. The reactor thread multiplexes every client
//! connection; one call that parks it on a socket read, a full write, or
//! an unbounded channel wait stalls *all* of them at once — including a
//! blocking call smuggled in through a helper fn defined in a file the
//! old per-file list never policed.
//!
//! v1 policed `RuleConfig::blocking_files` directly. v2 walks the
//! workspace call graph from the configured roots (the epoll poll loop,
//! the inline dispatch arm, the `QUERY_FAST` handler) and flags every
//! blocking call site inside any reachable fn, printing the full
//! root → … → fn chain. The old file list survives as a coverage
//! assertion: every legacy reactor-path file must contain at least one
//! root-reachable fn, so the computed root set can never silently rot
//! below what the hand-maintained list used to police.
//!
//! A reachable site that must block deliberately — e.g. handing a
//! connection off to a dedicated thread — carries
//! `// audit:allow(blocking): <reason>` naming the thread that actually
//! blocks. Findings are a hard gate failure, not ratcheted.

use std::collections::BTreeMap;

use crate::graph::{CallGraph, Reach};
use crate::lexer::{Lexed, TokKind};
use crate::rules::Finding;

/// Calls that park the calling thread on I/O or an unbounded wait.
/// Covers the repo's own frame codec (`read_frame` and friends are
/// blocking by design), the std blocking read/write combinators, socket
/// timeout configuration (only meaningful on blocking sockets), and
/// blocking channel receives.
pub const BLOCKERS: [&str; 10] = [
    "read_frame",
    "read_frame_deadline",
    "write_frame",
    "read_exact",
    "read_to_end",
    "write_all",
    "recv",
    "recv_timeout",
    "set_read_timeout",
    "set_write_timeout",
];

/// Blocking call sites in the token range `lo..hi`: `(line, callee)`.
/// Definitions (`fn read_frame(`), imports, test code, and
/// allow-annotated lines are excluded.
pub fn sink_sites(lx: &Lexed, lo: usize, hi: usize) -> Vec<(u32, String)> {
    let toks = &lx.tokens;
    let mut out = Vec::new();
    for i in lo..hi.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !BLOCKERS.contains(&t.text.as_str()) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        if lx.in_test(t.line) || lx.allowed("blocking", t.line) {
            continue;
        }
        out.push((t.line, t.text.clone()));
    }
    out
}

/// Run the reachability rule: every blocking sink in a root-reachable fn
/// is a finding carrying the full call chain; every legacy reactor-path
/// file must be covered by the root set; every configured root must
/// exist in the graph.
pub fn check_graph(
    graph: &CallGraph,
    reach: &Reach,
    lexed: &BTreeMap<String, Lexed>,
    blocking_files: &[String],
    missing_roots: &[String],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for spec in missing_roots {
        out.push(Finding {
            rule: "blocking",
            crate_name: String::new(),
            file: "RuleConfig::blocking_roots".to_string(),
            line: 0,
            msg: format!(
                "configured reactor root `{spec}` matches no fn in the workspace — the \
                 root set must track the code or the whole rule silently under-approximates"
            ),
        });
    }
    for (id, f) in graph.fns.iter().enumerate() {
        if !reach.reachable[id] {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let Some(lx) = lexed.get(&f.file) else { continue };
        // Tokens inside a nested fn or a carved-out spawn closure belong
        // to *that* node; scanning them here would blame the spawner for
        // work a dedicated thread does.
        let mut holes: Vec<(usize, usize)> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|&(j, g)| j != id && g.file == f.file)
            .filter_map(|(_, g)| g.body)
            .filter(|&(glo, ghi)| glo > lo && ghi < hi)
            .collect();
        holes.sort_unstable();
        let mut segments = Vec::new();
        let mut cursor = lo;
        for (hlo, hhi) in holes {
            if hlo > cursor {
                segments.push((cursor, hlo));
            }
            cursor = cursor.max(hhi + 1);
        }
        if cursor < hi + 1 {
            segments.push((cursor, hi + 1));
        }
        for (line, name) in segments.iter().flat_map(|&(slo, shi)| sink_sites(lx, slo, shi)) {
            out.push(Finding {
                rule: "blocking",
                crate_name: f.crate_name.clone(),
                file: f.file.clone(),
                line,
                msg: format!(
                    "`{name}(` blocks the reactor thread; chain: {} — go through epoll \
                     readiness, offload it, or annotate `// audit:allow(blocking): <reason>` \
                     naming the thread that actually blocks",
                    graph.chain_str(reach, id)
                ),
            });
        }
    }
    // Coverage assertion: the computed root set must still reach every
    // file the retired v1 list policed by hand.
    for suffix in blocking_files {
        let covered = graph.fns_in_file(suffix).iter().any(|&i| reach.reachable[i]);
        if !covered {
            out.push(Finding {
                rule: "blocking",
                crate_name: String::new(),
                file: suffix.clone(),
                line: 0,
                msg: "reactor root set does not reach any fn in this legacy reactor-path \
                      file — extend RuleConfig::blocking_roots to cover it"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn run(src: &str, roots: &[&str], files: &[&str]) -> Vec<Finding> {
        let lx = lex(src);
        let items = parse_file("demo", "demo/src/lib.rs", &lx);
        let graph = CallGraph::build(vec![items]);
        let specs: Vec<(String, String)> =
            roots.iter().map(|r| ("demo".to_string(), r.to_string())).collect();
        let (ids, missing) = graph.find_roots(&specs);
        let reach = graph.reach(&ids, false);
        let lexed = [("demo/src/lib.rs".to_string(), lx)].into_iter().collect();
        let files: Vec<String> = files.iter().map(|s| s.to_string()).collect();
        check_graph(&graph, &reach, &lexed, &files, &missing)
    }

    #[test]
    fn chain_through_helper_is_flagged() {
        let src = "fn run() { helper(); }\nfn helper() { s.read_exact(&mut b); }\n";
        let f = run(src, &["run"], &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert!(f[0].msg.contains("run → helper"), "{}", f[0].msg);
        assert!(f[0].msg.contains("blocks the reactor thread"));
    }

    #[test]
    fn unreachable_blocking_is_fine() {
        let src = "fn run() {}\nfn feed_thread() { s.write_all(&b); }\n";
        assert!(run(src, &["run"], &[]).is_empty());
    }

    #[test]
    fn spawned_closure_does_not_taint_the_spawner() {
        let src = "fn run() { spawn(move || { rx.recv(); }); poll(); }\nfn poll() {}\n";
        assert!(run(src, &["run"], &[]).is_empty());
    }

    #[test]
    fn allow_suppresses_a_reachable_sink() {
        let src = "fn run() { handoff(); }\nfn handoff() {\n    \
                   // audit:allow(blocking): runs once, then the fd moves to the feed thread\n    \
                   s.set_read_timeout(None);\n}\n";
        assert!(run(src, &["run"], &[]).is_empty());
    }

    #[test]
    fn missing_root_is_a_finding() {
        let f = run("fn run() {}\n", &["ghost"], &[]);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("matches no fn"), "{}", f[0].msg);
    }

    #[test]
    fn uncovered_legacy_file_is_a_finding() {
        let f = run("fn run() {}\n", &["run"], &["demo/src/other.rs"]);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("does not reach any fn"), "{}", f[0].msg);
    }

    #[test]
    fn covered_legacy_file_is_quiet() {
        let f = run("fn run() { helper(); }\nfn helper() {}\n", &["run"], &["demo/src/lib.rs"]);
        assert!(f.is_empty(), "{f:?}");
    }
}
