//! **blocking-io** — files on the epoll reactor path must not call
//! blocking I/O primitives. The reactor thread multiplexes every client
//! connection; one call that parks it on a socket read, a full write, or
//! an unbounded channel wait stalls *all* of them at once. The serving
//! path must stay event-driven: nonblocking sockets, readiness from
//! epoll, and `try_recv`/`try_send` on channels.
//!
//! The rule polices an explicit file list (`RuleConfig::blocking_files`)
//! rather than whole crates: the same crate legitimately hosts blocking
//! helpers for clients, feed threads, and workers. A policed file that
//! must block deliberately — e.g. handing a connection off to a
//! dedicated thread — carries `// audit:allow(blocking): <reason>`
//! stating which thread actually blocks. Findings are a hard gate
//! failure, not ratcheted: a blocking call on the reactor is never a
//! baseline to preserve.

use crate::lexer::{Lexed, TokKind};
use crate::rules::Finding;

/// Calls that park the calling thread on I/O or an unbounded wait.
/// Covers the repo's own frame codec (`read_frame` and friends are
/// blocking by design), the std blocking read/write combinators, socket
/// timeout configuration (only meaningful on blocking sockets), and
/// blocking channel receives.
const BLOCKERS: [&str; 10] = [
    "read_frame",
    "read_frame_deadline",
    "write_frame",
    "read_exact",
    "read_to_end",
    "write_all",
    "recv",
    "recv_timeout",
    "set_read_timeout",
    "set_write_timeout",
];

/// Run the rule over one lexed policed file.
pub fn check(crate_name: &str, file: &str, lx: &Lexed) -> Vec<Finding> {
    let toks = &lx.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !BLOCKERS.contains(&t.text.as_str()) {
            continue;
        }
        // Only calls count — `.read_exact(`, `read_frame(`, or
        // `codec::read_frame(` — not definitions (`fn read_frame(`) or
        // imports (`use codec::read_frame;`).
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn" {
            continue;
        }
        if lx.in_test(t.line) || lx.allowed("blocking", t.line) {
            continue;
        }
        out.push(Finding {
            rule: "blocking",
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            line: t.line,
            msg: format!(
                "`{}(` blocks the calling thread on a reactor-path file (go through epoll \
                 readiness, or annotate `// audit:allow(blocking): <reason>` naming the \
                 thread that actually blocks)",
                t.text
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lines(src: &str) -> Vec<u32> {
        check("c", "f.rs", &lex(src)).into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn flags_method_and_free_function_calls() {
        let src = "fn f(s: &mut TcpStream) {\n    s.read_exact(&mut buf)?;\n    \
                   let p = read_frame(s)?;\n    codec::write_frame(s, &p)?;\n}";
        assert_eq!(lines(src), [2, 3, 4]);
    }

    #[test]
    fn definitions_and_imports_are_not_calls() {
        let src = "use crate::codec::{read_frame, write_frame};\n\
                   fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {\n    todo()\n}";
        assert!(lines(src).is_empty());
    }

    #[test]
    fn channel_receives_and_timeout_config_are_flagged() {
        let src = "fn f(rx: &Receiver<u32>, s: &TcpStream) {\n    let v = rx.recv();\n    \
                   s.set_read_timeout(None);\n}";
        assert_eq!(lines(src), [2, 3]);
    }

    #[test]
    fn try_recv_is_not_recv() {
        assert!(lines("fn f(rx: &Receiver<u32>) { while let Ok(v) = rx.try_recv() {} }").is_empty());
    }

    #[test]
    fn allow_and_tests_suppress() {
        let src = "fn f(s: &mut TcpStream) {\n    \
                   // audit:allow(blocking): runs on the detached feed thread\n    \
                   s.write_all(&out);\n}\n\
                   #[cfg(test)]\nmod t {\n    fn g(s: &mut TcpStream) { s.write_all(&[1]); }\n}";
        assert!(lines(src).is_empty());
    }
}
