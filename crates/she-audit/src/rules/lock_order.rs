//! **lock-order** — every mutex in the policed crates must be a named
//! [`OrderedMutex`](../../../she-core/src/ordered.rs) whose name has a
//! rank in the committed `audit-locks.toml` manifest. The wrapper panics
//! (debug/test builds) when a lock is acquired while holding one of equal
//! or higher rank, turning a potential deadlock into a deterministic test
//! failure; this rule keeps the manifest and the source in lock-step:
//!
//! * raw `Mutex::new(...)` in non-test code is a finding (annotate
//!   `// audit:allow(lock): <reason>` for the wrapper's own internals);
//! * an `OrderedMutex::new("name", ...)` whose name is missing from the
//!   manifest is a finding;
//! * a manifest entry no source file uses is a stale finding;
//! * two manifest entries sharing a rank is a finding (ranks are a total
//!   order).
//!
//! `.lock()` call sites are also collected, for `she audit --list-locks`.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, TokKind};
use crate::rules::Finding;

/// Cross-file scan state; feed every policed file, then call
/// [`LockScan::finish`].
#[derive(Debug, Default)]
pub struct LockScan {
    findings: Vec<Finding>,
    used_names: BTreeSet<String>,
    /// `file:line — crate` for every `.lock()` call site (tests included;
    /// the listing is for humans mapping the lock graph).
    pub sites: Vec<String>,
}

impl LockScan {
    /// Scan one lexed file from a policed crate.
    pub fn scan_file(&mut self, crate_name: &str, file: &str, lx: &Lexed) {
        let toks = &lx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let path_new = |name: &str| -> bool {
                t.text == name
                    && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|a| a.is_ident("new"))
            };
            if path_new("Mutex") && !lx.in_test(t.line) && !lx.allowed("lock", t.line) {
                self.findings.push(Finding {
                    rule: "lock",
                    crate_name: crate_name.to_string(),
                    file: file.to_string(),
                    line: t.line,
                    msg: "raw Mutex::new in a lock-order-policed crate (use she_core::OrderedMutex with a rank in audit-locks.toml)".to_string(),
                });
            }
            // Tests may construct OrderedMutexes with any manifest name
            // (e.g. to prove out-of-rank acquisition panics); only
            // non-test constructions bind the manifest.
            if path_new("OrderedMutex") && !lx.in_test(t.line) {
                match toks.get(i + 5) {
                    Some(arg)
                        if arg.kind == TokKind::Str
                            && toks.get(i + 4).is_some_and(|a| a.is_punct('(')) =>
                    {
                        self.used_names.insert(arg.text.clone());
                        // Unknown names are reported in finish(), where
                        // the manifest is in hand.
                        self.findings.push(Finding {
                            rule: "lock",
                            crate_name: crate_name.to_string(),
                            file: file.to_string(),
                            line: t.line,
                            msg: format!("__name__:{}", arg.text),
                        });
                    }
                    _ => self.findings.push(Finding {
                        rule: "lock",
                        crate_name: crate_name.to_string(),
                        file: file.to_string(),
                        line: t.line,
                        msg: "OrderedMutex::new without a string-literal name (the audit must be able to read the name statically)".to_string(),
                    }),
                }
            }
            if t.is_ident("lock")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                self.sites.push(format!("{file}:{} — {crate_name}", t.line));
            }
        }
    }

    /// Resolve name placeholders against the manifest and check the
    /// manifest itself. Consumes the scan.
    pub fn finish(self, manifest: &BTreeMap<String, u16>) -> (Vec<Finding>, Vec<String>) {
        let mut out = Vec::new();
        for f in self.findings {
            if let Some(name) = f.msg.strip_prefix("__name__:") {
                if !manifest.contains_key(name) {
                    out.push(Finding {
                        msg: format!(
                            "OrderedMutex name \"{name}\" has no rank in audit-locks.toml"
                        ),
                        ..f
                    });
                }
            } else {
                out.push(f);
            }
        }
        for name in manifest.keys() {
            if !self.used_names.contains(name) {
                out.push(Finding {
                    rule: "lock",
                    crate_name: String::new(),
                    file: "audit-locks.toml".to_string(),
                    line: 0,
                    msg: format!(
                        "stale manifest entry: no OrderedMutex named \"{name}\" in the source tree"
                    ),
                });
            }
        }
        let mut by_rank: BTreeMap<u16, Vec<&String>> = BTreeMap::new();
        for (name, rank) in manifest {
            by_rank.entry(*rank).or_default().push(name);
        }
        for (rank, names) in by_rank {
            if names.len() > 1 {
                out.push(Finding {
                    rule: "lock",
                    crate_name: String::new(),
                    file: "audit-locks.toml".to_string(),
                    line: 0,
                    msg: format!(
                        "duplicate rank {rank} for locks {:?} (ranks must be a total order)",
                        names
                    ),
                });
            }
        }
        (out, self.sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(srcs: &[&str], manifest: &[(&str, u16)]) -> Vec<String> {
        let mut scan = LockScan::default();
        for (i, src) in srcs.iter().enumerate() {
            scan.scan_file("c", &format!("f{i}.rs"), &lex(src));
        }
        let m: BTreeMap<String, u16> = manifest.iter().map(|(n, r)| (n.to_string(), *r)).collect();
        scan.finish(&m).0.into_iter().map(|f| f.msg).collect()
    }

    #[test]
    fn raw_mutex_is_flagged_ordered_is_not() {
        let msgs = run(
            &["fn f() { let m = Mutex::new(0); let o = OrderedMutex::new(\"a\", 0); }"],
            &[("a", 10)],
        );
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("raw Mutex::new"));
    }

    #[test]
    fn allow_suppresses_raw_mutex() {
        let msgs = run(
            &["// audit:allow(lock): this IS the wrapper\nfn f() { let m = Mutex::new(0); }"],
            &[],
        );
        assert!(msgs.is_empty());
    }

    #[test]
    fn unknown_name_and_stale_entry_are_findings() {
        let msgs =
            run(&["fn f() { let o = OrderedMutex::new(\"mystery\", 0); }"], &[("listed", 10)]);
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().any(|m| m.contains("\"mystery\" has no rank")));
        assert!(msgs.iter().any(|m| m.contains("stale manifest entry") && m.contains("listed")));
    }

    #[test]
    fn duplicate_rank_is_a_finding() {
        let msgs = run(
            &["fn f() { OrderedMutex::new(\"a\", 0); OrderedMutex::new(\"b\", 0); }"],
            &[("a", 7), ("b", 7)],
        );
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("duplicate rank 7"));
    }

    #[test]
    fn non_literal_name_is_flagged() {
        let msgs = run(&["fn f(n: &str) { OrderedMutex::new(n, 0); }"], &[]);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("without a string-literal name"));
    }

    #[test]
    fn lock_sites_are_collected() {
        let mut scan = LockScan::default();
        scan.scan_file("c", "f.rs", &lex("fn f() { m.lock(); g.lock.poisoned; }"));
        assert_eq!(scan.sites, ["f.rs:1 — c"]);
    }
}
