//! **lock-order** — every mutex in the policed crates must be a named
//! [`OrderedMutex`](../../../she-core/src/ordered.rs) whose name has a
//! rank in the committed `audit-locks.toml` manifest. The wrapper panics
//! (debug/test builds) when a lock is acquired while holding one of equal
//! or higher rank, turning a potential deadlock into a deterministic test
//! failure; this rule keeps the manifest and the source in lock-step:
//!
//! * raw `Mutex::new(...)` in non-test code is a finding (annotate
//!   `// audit:allow(lock): <reason>` for the wrapper's own internals);
//! * an `OrderedMutex::new("name", ...)` whose name is missing from the
//!   manifest is a finding;
//! * a manifest entry no source file uses is a stale finding;
//! * two manifest entries sharing a rank is a finding (ranks are a total
//!   order).
//!
//! `.lock()` call sites are also collected, for `she audit --list-locks`.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, TokKind};
use crate::rules::Finding;

/// Cross-file scan state; feed every policed file, then call
/// [`LockScan::finish`].
#[derive(Debug, Default)]
pub struct LockScan {
    findings: Vec<Finding>,
    used_names: BTreeSet<String>,
    /// `file:line — crate` for every `.lock()` call site (tests included;
    /// the listing is for humans mapping the lock graph).
    pub sites: Vec<String>,
}

impl LockScan {
    /// Scan one lexed file from a policed crate.
    pub fn scan_file(&mut self, crate_name: &str, file: &str, lx: &Lexed) {
        let toks = &lx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let path_new = |name: &str| -> bool {
                t.text == name
                    && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|a| a.is_ident("new"))
            };
            if path_new("Mutex") && !lx.in_test(t.line) && !lx.allowed("lock", t.line) {
                self.findings.push(Finding {
                    rule: "lock",
                    crate_name: crate_name.to_string(),
                    file: file.to_string(),
                    line: t.line,
                    msg: "raw Mutex::new in a lock-order-policed crate (use she_core::OrderedMutex with a rank in audit-locks.toml)".to_string(),
                });
            }
            // Tests may construct OrderedMutexes with any manifest name
            // (e.g. to prove out-of-rank acquisition panics); only
            // non-test constructions bind the manifest.
            if path_new("OrderedMutex") && !lx.in_test(t.line) {
                match toks.get(i + 5) {
                    Some(arg)
                        if arg.kind == TokKind::Str
                            && toks.get(i + 4).is_some_and(|a| a.is_punct('(')) =>
                    {
                        self.used_names.insert(arg.text.clone());
                        // Unknown names are reported in finish(), where
                        // the manifest is in hand.
                        self.findings.push(Finding {
                            rule: "lock",
                            crate_name: crate_name.to_string(),
                            file: file.to_string(),
                            line: t.line,
                            msg: format!("__name__:{}", arg.text),
                        });
                    }
                    _ => self.findings.push(Finding {
                        rule: "lock",
                        crate_name: crate_name.to_string(),
                        file: file.to_string(),
                        line: t.line,
                        msg: "OrderedMutex::new without a string-literal name (the audit must be able to read the name statically)".to_string(),
                    }),
                }
            }
            if t.is_ident("lock")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                self.sites.push(format!("{file}:{} — {crate_name}", t.line));
            }
        }
    }

    /// Resolve name placeholders against the manifest and check the
    /// manifest itself. Consumes the scan.
    pub fn finish(self, manifest: &BTreeMap<String, u16>) -> (Vec<Finding>, Vec<String>) {
        let mut out = Vec::new();
        for f in self.findings {
            if let Some(name) = f.msg.strip_prefix("__name__:") {
                if !manifest.contains_key(name) {
                    out.push(Finding {
                        msg: format!(
                            "OrderedMutex name \"{name}\" has no rank in audit-locks.toml"
                        ),
                        ..f
                    });
                }
            } else {
                out.push(f);
            }
        }
        for name in manifest.keys() {
            if !self.used_names.contains(name) {
                out.push(Finding {
                    rule: "lock",
                    crate_name: String::new(),
                    file: "audit-locks.toml".to_string(),
                    line: 0,
                    msg: format!(
                        "stale manifest entry: no OrderedMutex named \"{name}\" in the source tree"
                    ),
                });
            }
        }
        let mut by_rank: BTreeMap<u16, Vec<&String>> = BTreeMap::new();
        for (name, rank) in manifest {
            by_rank.entry(*rank).or_default().push(name);
        }
        for (rank, names) in by_rank {
            if names.len() > 1 {
                out.push(Finding {
                    rule: "lock",
                    crate_name: String::new(),
                    file: "audit-locks.toml".to_string(),
                    line: 0,
                    msg: format!(
                        "duplicate rank {rank} for locks {:?} (ranks must be a total order)",
                        names
                    ),
                });
            }
        }
        (out, self.sites)
    }
}

/// One mined acquisition-order edge: lock `from` is held while `to` is
/// acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct OrderEdge {
    from: String,
    to: String,
    fn_qual: String,
    file: String,
    line: u32,
    /// Qualified name of the callee the nested acquisition sits in, when
    /// the edge crosses a fn boundary.
    via: Option<String>,
}

/// **v2**: mine acquisition-order edges from nested `.lock()` sites —
/// within one fn and across fn boundaries via *confident* call-graph
/// edges — and check them against the manifest ranks statically, plus
/// cycle detection over the mined edge set. The `OrderedMutex` runtime
/// panic still backstops in debug builds; this reports the same class
/// of bug without waiting for a test to drive the exact interleaving.
pub fn check_order(
    graph: &crate::graph::CallGraph,
    lexed: &BTreeMap<String, Lexed>,
    lock_crates: &[String],
    manifest: &BTreeMap<String, u16>,
) -> Vec<Finding> {
    // 1. Bind receiver idents to lock names: `field: OrderedMutex::new("n", ..)`
    //    and `let x = OrderedMutex::new("n", ..)`. Per-file bindings win;
    //    a workspace-global binding is used only when unambiguous.
    let mut per_file: BTreeMap<&str, BTreeMap<String, BTreeSet<String>>> = BTreeMap::new();
    let mut global: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (file, lx) in lexed {
        let toks = &lx.tokens;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("OrderedMutex")
                || !toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                || !toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                || !toks.get(i + 3).is_some_and(|a| a.is_ident("new"))
                || !toks.get(i + 4).is_some_and(|a| a.is_punct('('))
                || lx.in_test(t.line)
            {
                continue;
            }
            let Some(name_tok) = toks.get(i + 5) else { continue };
            if name_tok.kind != TokKind::Str {
                continue;
            }
            // `field: OrderedMutex::new(..)` (struct literal) or
            // `let x = OrderedMutex::new(..)`.
            let struct_field = i >= 2
                && toks[i - 1].is_punct(':')
                && toks[i - 2].kind == TokKind::Ident
                && !(i >= 3 && toks[i - 3].is_punct(':'));
            let let_bind =
                i >= 2 && toks[i - 1].is_punct('=') && toks[i - 2].kind == TokKind::Ident;
            let bound =
                if struct_field || let_bind { Some(toks[i - 2].text.clone()) } else { None };
            if let Some(ident) = bound {
                per_file
                    .entry(file.as_str())
                    .or_default()
                    .entry(ident.clone())
                    .or_default()
                    .insert(name_tok.text.clone());
                global.entry(ident).or_default().insert(name_tok.text.clone());
            }
        }
    }
    let names_for = |file: &str, ident: &str| -> BTreeSet<String> {
        if let Some(m) = per_file.get(file).and_then(|m| m.get(ident)) {
            return m.clone();
        }
        match global.get(ident) {
            Some(s) if s.len() == 1 => s.clone(),
            _ => BTreeSet::new(),
        }
    };

    // 2. Per-fn acquisitions with hold ranges.
    struct Acq {
        tok: usize,
        end: usize,
        names: BTreeSet<String>,
    }
    let policed: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.body.is_some() && lock_crates.iter().any(|c| c == &f.crate_name))
        .map(|(i, _)| i)
        .collect();
    let mut acqs: BTreeMap<usize, Vec<Acq>> = BTreeMap::new();
    for &id in &policed {
        let f = &graph.fns[id];
        let Some(lx) = lexed.get(&f.file) else { continue };
        let toks = &lx.tokens;
        let mut list = Vec::new();
        for call in &f.calls {
            if call.name != "lock" || call.kind != crate::parse::CallKind::Method {
                continue;
            }
            if lx.in_test(call.line) {
                continue;
            }
            let Some(q) = &call.qual else { continue };
            let names = names_for(&f.file, q);
            if names.is_empty() {
                continue;
            }
            let end = hold_end(toks, call, f.body.map(|(_, h)| h).unwrap_or(call.close));
            list.push(Acq { tok: call.tok, end, names });
        }
        if !list.is_empty() {
            acqs.insert(id, list);
        }
    }

    // 3. Transitive lock closure of each policed fn over confident edges.
    fn closure(
        graph: &crate::graph::CallGraph,
        acqs: &BTreeMap<usize, Vec<Acq>>,
        id: usize,
        memo: &mut BTreeMap<usize, BTreeSet<String>>,
        visiting: &mut BTreeSet<usize>,
    ) -> BTreeSet<String> {
        if let Some(s) = memo.get(&id) {
            return s.clone();
        }
        if !visiting.insert(id) {
            return BTreeSet::new(); // recursion cycle: stop
        }
        let mut out = BTreeSet::new();
        if let Some(list) = acqs.get(&id) {
            for a in list {
                out.extend(a.names.iter().cloned());
            }
        }
        let edges: Vec<usize> = graph.edges[id]
            .iter()
            .filter(|e| e.confident && !graph.fns[e.callee].is_spawn)
            .map(|e| e.callee)
            .collect();
        for callee in edges {
            out.extend(closure(graph, acqs, callee, memo, visiting));
        }
        visiting.remove(&id);
        memo.insert(id, out.clone());
        out
    }
    let mut memo = BTreeMap::new();

    // 4. Mine edges: nested acquisitions in the same fn, plus locks
    //    acquired by callees invoked while a lock is held.
    let mut edges: BTreeSet<OrderEdge> = BTreeSet::new();
    for (&id, list) in &acqs {
        let f = &graph.fns[id];
        for a in list {
            for b in list {
                if a.tok < b.tok && b.tok <= a.end {
                    for na in &a.names {
                        for nb in &b.names {
                            edges.insert(OrderEdge {
                                from: na.clone(),
                                to: nb.clone(),
                                fn_qual: f.qual.clone(),
                                file: f.file.clone(),
                                line: graph.fns[id]
                                    .calls
                                    .iter()
                                    .find(|c| c.tok == b.tok)
                                    .map(|c| c.line)
                                    .unwrap_or(f.line),
                                via: None,
                            });
                        }
                    }
                }
            }
            for rc in &graph.resolved[id] {
                if !rc.confident {
                    continue;
                }
                let call = &f.calls[rc.call];
                if call.name == "lock" || call.tok <= a.tok || call.tok > a.end {
                    continue;
                }
                for &callee in &rc.callees {
                    let mut visiting = BTreeSet::new();
                    let held = closure(graph, &acqs, callee, &mut memo, &mut visiting);
                    for na in &a.names {
                        for nb in &held {
                            edges.insert(OrderEdge {
                                from: na.clone(),
                                to: nb.clone(),
                                fn_qual: f.qual.clone(),
                                file: f.file.clone(),
                                line: call.line,
                                via: Some(graph.fns[callee].qual.clone()),
                            });
                        }
                    }
                }
            }
        }
    }

    // 5. Rank check + cycle detection.
    let mut out = Vec::new();
    for e in &edges {
        let (Some(&ra), Some(&rb)) = (manifest.get(&e.from), manifest.get(&e.to)) else {
            continue; // unknown names are already v1 findings
        };
        if ra >= rb {
            let via = e.via.as_deref().map(|v| format!(" via {v}")).unwrap_or_default();
            out.push(Finding {
                rule: "lock",
                crate_name: String::new(),
                file: e.file.clone(),
                line: e.line,
                msg: format!(
                    "acquisition-order edge \"{}\" (rank {ra}) → \"{}\" (rank {rb}) in \
                     {}{via} — ranks must strictly increase along every chain \
                     (reorder the acquisitions or re-rank audit-locks.toml)",
                    e.from, e.to, e.fn_qual
                ),
            });
        }
    }
    if let Some(cycle) = find_cycle(&edges) {
        out.push(Finding {
            rule: "lock",
            crate_name: String::new(),
            file: "audit-locks.toml".to_string(),
            line: 0,
            msg: format!("lock acquisition cycle: {}", cycle.join(" → ")),
        });
    }
    out
}

/// End of the hold range for a `.lock()` call: a `let`-bound guard lives
/// to its `drop(guard)` call or enclosing-block close; a temporary lives
/// to the end of its statement.
fn hold_end(t: &[crate::lexer::Token], call: &crate::parse::Call, body_hi: usize) -> usize {
    // Statement start: scan back to the nearest `;`, `{`, or `}`.
    let mut s = call.tok;
    while s > 0 && !(t[s - 1].is_punct(';') || t[s - 1].is_punct('{') || t[s - 1].is_punct('}')) {
        s -= 1;
    }
    let guard = (s..call.tok)
        .find(|&j| t[j].is_ident("let"))
        .and_then(|j| t.get(j + 1))
        .filter(|g| g.kind == TokKind::Ident)
        .map(|g| g.text.clone());
    if let Some(g) = guard {
        // Block close from the statement end, or an earlier `drop(g)`.
        let mut depth = 0i32;
        let mut j = call.close;
        while j < body_hi {
            if t[j].is_ident("drop")
                && t.get(j + 1).is_some_and(|n| n.is_punct('('))
                && t.get(j + 2).is_some_and(|n| n.is_ident(&g))
            {
                return j;
            }
            if t[j].is_punct('{') {
                depth += 1;
            } else if t[j].is_punct('}') {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            j += 1;
        }
        body_hi
    } else {
        let mut depth = 0i32;
        let mut j = call.close;
        while j < body_hi {
            if t[j].is_punct(';') && depth == 0 {
                return j;
            }
            if t[j].is_punct('{') {
                depth += 1;
            } else if t[j].is_punct('}') {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            j += 1;
        }
        body_hi
    }
}

/// DFS cycle search over the mined name graph; returns one cycle's node
/// sequence if any.
fn find_cycle(edges: &BTreeSet<OrderEdge>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        if e.from != e.to {
            adj.entry(&e.from).or_default().insert(&e.to);
        }
    }
    let succs = |n: &str| -> Vec<&str> {
        adj.get(n).map(|s| s.iter().copied().collect()).unwrap_or_default()
    };
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        if done.contains(start) {
            continue;
        }
        let mut stack = vec![(start, succs(start))];
        let mut path = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into_iter().collect();
        while !stack.is_empty() {
            let next = {
                let last = stack.last_mut().expect("nonempty");
                last.1.pop()
            };
            match next {
                Some(next) if on_path.contains(next) => {
                    let pos = path.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cyc: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
                    cyc.push(next.to_string());
                    return Some(cyc);
                }
                Some(next) if done.contains(next) => {}
                Some(next) => {
                    on_path.insert(next);
                    path.push(next);
                    stack.push((next, succs(next)));
                }
                None => {
                    if let Some((n, _)) = stack.pop() {
                        on_path.remove(n);
                        path.pop();
                        done.insert(n);
                    }
                }
            }
        }
        done.insert(start);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(srcs: &[&str], manifest: &[(&str, u16)]) -> Vec<String> {
        let mut scan = LockScan::default();
        for (i, src) in srcs.iter().enumerate() {
            scan.scan_file("c", &format!("f{i}.rs"), &lex(src));
        }
        let m: BTreeMap<String, u16> = manifest.iter().map(|(n, r)| (n.to_string(), *r)).collect();
        scan.finish(&m).0.into_iter().map(|f| f.msg).collect()
    }

    #[test]
    fn raw_mutex_is_flagged_ordered_is_not() {
        let msgs = run(
            &["fn f() { let m = Mutex::new(0); let o = OrderedMutex::new(\"a\", 0); }"],
            &[("a", 10)],
        );
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("raw Mutex::new"));
    }

    #[test]
    fn allow_suppresses_raw_mutex() {
        let msgs = run(
            &["// audit:allow(lock): this IS the wrapper\nfn f() { let m = Mutex::new(0); }"],
            &[],
        );
        assert!(msgs.is_empty());
    }

    #[test]
    fn unknown_name_and_stale_entry_are_findings() {
        let msgs =
            run(&["fn f() { let o = OrderedMutex::new(\"mystery\", 0); }"], &[("listed", 10)]);
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().any(|m| m.contains("\"mystery\" has no rank")));
        assert!(msgs.iter().any(|m| m.contains("stale manifest entry") && m.contains("listed")));
    }

    #[test]
    fn duplicate_rank_is_a_finding() {
        let msgs = run(
            &["fn f() { OrderedMutex::new(\"a\", 0); OrderedMutex::new(\"b\", 0); }"],
            &[("a", 7), ("b", 7)],
        );
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("duplicate rank 7"));
    }

    #[test]
    fn non_literal_name_is_flagged() {
        let msgs = run(&["fn f(n: &str) { OrderedMutex::new(n, 0); }"], &[]);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("without a string-literal name"));
    }

    #[test]
    fn lock_sites_are_collected() {
        let mut scan = LockScan::default();
        scan.scan_file("c", "f.rs", &lex("fn f() { m.lock(); g.lock.poisoned; }"));
        assert_eq!(scan.sites, ["f.rs:1 — c"]);
    }

    fn run_order(src: &str, manifest: &[(&str, u16)]) -> Vec<String> {
        let lx = lex(src);
        let items = crate::parse::parse_file("demo", "demo/src/lib.rs", &lx);
        let graph = crate::graph::CallGraph::build(vec![items]);
        let lexed = [("demo/src/lib.rs".to_string(), lx)].into_iter().collect();
        let m: BTreeMap<String, u16> = manifest.iter().map(|(n, r)| (n.to_string(), *r)).collect();
        check_order(&graph, &lexed, &["demo".to_string()], &m).into_iter().map(|f| f.msg).collect()
    }

    #[test]
    fn increasing_rank_nesting_is_fine() {
        let src = "struct S { a: X, b: X }\nfn mk() -> S { S { a: OrderedMutex::new(\"lo\", 0), b: OrderedMutex::new(\"hi\", 0) } }\nimpl S { fn f(&self) { let g = self.a.lock(); self.b.lock(); } }\n";
        assert!(run_order(src, &[("lo", 10), ("hi", 20)]).is_empty());
    }

    #[test]
    fn out_of_rank_nesting_is_flagged_with_the_edge() {
        let src = "struct S { a: X, b: X }\nfn mk() -> S { S { a: OrderedMutex::new(\"lo\", 0), b: OrderedMutex::new(\"hi\", 0) } }\nimpl S { fn f(&self) { let g = self.b.lock(); self.a.lock(); } }\n";
        let msgs = run_order(src, &[("lo", 10), ("hi", 20)]);
        assert!(
            msgs.iter()
                .any(|m| m.contains("\"hi\" (rank 20) → \"lo\" (rank 10)") && m.contains("S::f")),
            "{msgs:?}"
        );
    }

    #[test]
    fn cross_fn_nesting_goes_through_the_graph() {
        let src = "struct S { a: X, b: X }\n\
                   fn mk() -> S { S { a: OrderedMutex::new(\"lo\", 0), b: OrderedMutex::new(\"hi\", 0) } }\n\
                   impl S { fn outer(&self) { let g = self.b.lock(); self.helper(); }\n\
                   fn helper(&self) { self.a.lock(); } }\n";
        let msgs = run_order(src, &[("lo", 10), ("hi", 20)]);
        assert!(
            msgs.iter().any(|m| m.contains("via S::helper")),
            "cross-fn edge must name the callee: {msgs:?}"
        );
    }

    #[test]
    fn dropped_guard_ends_the_hold() {
        let src = "struct S { a: X, b: X }\nfn mk() -> S { S { a: OrderedMutex::new(\"lo\", 0), b: OrderedMutex::new(\"hi\", 0) } }\nimpl S { fn f(&self) { let g = self.b.lock(); drop(g); self.a.lock(); } }\n";
        assert!(run_order(src, &[("lo", 10), ("hi", 20)]).is_empty());
    }

    #[test]
    fn statement_temporary_does_not_overlap_the_next_statement() {
        let src = "struct S { a: X, b: X }\nfn mk() -> S { S { a: OrderedMutex::new(\"lo\", 0), b: OrderedMutex::new(\"hi\", 0) } }\nimpl S { fn f(&self) { self.b.lock().poke(); self.a.lock().poke(); } }\n";
        assert!(run_order(src, &[("lo", 10), ("hi", 20)]).is_empty());
    }

    #[test]
    fn rank_respecting_cycle_is_impossible_but_detected() {
        // Manifest ranks that *permit* each edge individually can still
        // form a cycle when edges are mined from different fns against a
        // drifted manifest; the cycle check reports it directly.
        let src = "struct S { a: X, b: X }\nfn mk() -> S { S { a: OrderedMutex::new(\"lo\", 0), b: OrderedMutex::new(\"hi\", 0) } }\nimpl S { fn f(&self) { let g = self.a.lock(); self.b.lock(); }\n fn g(&self) { let h = self.b.lock(); self.a.lock(); } }\n";
        let msgs = run_order(src, &[("lo", 10), ("hi", 20)]);
        assert!(msgs.iter().any(|m| m.contains("lock acquisition cycle")), "{msgs:?}");
    }
}
