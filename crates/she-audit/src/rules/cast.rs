//! **truncating-cast** — non-test code in the policed crates must not use
//! narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`). On the serving path
//! a silently truncated cell index or frame length corrupts data without
//! an error; use `try_from` or the checked helpers in `she-core::convert`
//! instead. Sites with a proven bound carry
//! `// audit:allow(cast): <reason>`.

use crate::lexer::{Lexed, TokKind};
use crate::rules::Finding;

const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Run the rule over one lexed non-test-only file.
pub fn check(crate_name: &str, file: &str, lx: &Lexed) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else { continue };
        if target.kind != TokKind::Ident || !NARROW.contains(&target.text.as_str()) {
            continue;
        }
        // `use path as u8` can't happen (keywords), so any `as <narrow>`
        // is a cast expression. Skip numeric-literal suffix-style casts
        // like `0xFF as u8`: the value is constant and visible, the cast
        // cannot truncate at runtime.
        if i > 0 && toks[i - 1].kind == TokKind::Num {
            continue;
        }
        if lx.in_test(t.line) || lx.allowed("cast", t.line) {
            continue;
        }
        out.push(Finding {
            rule: "cast",
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            line: t.line,
            msg: format!("narrowing `as {}` cast (use try_from/checked helpers, or annotate `// audit:allow(cast): <reason>`)", target.text),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lines(src: &str) -> Vec<u32> {
        check("c", "f.rs", &lex(src)).into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn flags_narrowing_casts_only() {
        let src = "fn f(n: usize) {\n    let a = n as u32;\n    let b = n as u64;\n    let c = n as u16;\n    let d = n as usize;\n    let e = n as f64;\n}";
        assert_eq!(lines(src), [2, 4]);
    }

    #[test]
    fn constant_literal_casts_are_fine() {
        assert!(lines("const M: u8 = 0xFF as u8; fn f() { let x = 300 as u16; }").is_empty());
    }

    #[test]
    fn allow_and_tests_suppress() {
        let src = "fn f(n: usize) {\n    let a = n as u32; // audit:allow(cast): n < SHARDS <= 256\n}\n#[cfg(test)]\nmod t {\n    fn g(n: usize) -> u8 { n as u8 }\n}";
        assert!(lines(src).is_empty());
    }
}
