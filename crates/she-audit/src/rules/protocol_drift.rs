//! **protocol-drift** — the opcode constants in
//! `she-server/src/protocol.rs` and the tables in `docs/PROTOCOL.md` are
//! two hand-maintained copies of the same facts. This rule parses both
//! and fails when they disagree:
//!
//! * a value used by two constants, or by two doc rows;
//! * a constant with no doc row, or a doc row with no constant (stale);
//! * a name mismatch at the same value (doc names drop the `_REPLY`
//!   suffix — `STATS_REPLY` documents as `STATS` in the response table);
//! * a value outside its table's documented range (requests
//!   `0x01..=0x7F`, responses `0x80..=0xFF`);
//! * version-coverage drift: `PROTOCOL_VERSION: u16 = N` in the source
//!   must be matched by `## Protocol vK` doc headings for every
//!   `K in 2..=N` (v1 is the base framing, documented without its own
//!   heading), with no heading above `N` and no version heading twice.
//!
//! The inputs are paths (not hardwired file contents) so the self-test
//! can mutate fixture copies and assert the gate fails.

use std::io;
use std::path::Path;

use crate::lexer::{lex, TokKind};
use crate::rules::Finding;

/// One opcode constant from `protocol.rs`.
#[derive(Debug, Clone)]
struct Op {
    name: String,
    value: u8,
    line: u32,
}

/// Run the rule. `rs` is the protocol source, `md` the normative doc.
pub fn check(rs: &Path, md: &Path) -> io::Result<Vec<Finding>> {
    let rs_text = std::fs::read_to_string(rs)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", rs.display())))?;
    let md_text = std::fs::read_to_string(md)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", md.display())))?;
    let rs_name = rs.display().to_string();
    let md_name = md.display().to_string();

    let mut out = Vec::new();
    let consts = parse_consts(&rs_text);
    let rows = parse_doc_rows(&md_text, &md_name, &mut out);

    let finding = |file: &str, line: u32, msg: String| Finding {
        rule: "protocol",
        crate_name: "she-server".to_string(),
        file: file.to_string(),
        line,
        msg,
    };

    // Duplicate values on either side.
    for (i, a) in consts.iter().enumerate() {
        if let Some(b) = consts[..i].iter().find(|b| b.value == a.value) {
            out.push(finding(
                &rs_name,
                a.line,
                format!("opcode 0x{:02X} assigned to both {} and {}", a.value, b.name, a.name),
            ));
        }
    }
    for (i, a) in rows.iter().enumerate() {
        if let Some(b) = rows[..i].iter().find(|b| b.value == a.value) {
            out.push(finding(
                &md_name,
                a.line,
                format!("doc lists 0x{:02X} twice ({} and {})", a.value, b.name, a.name),
            ));
        }
    }

    // Range checks. Constants classify by value; doc rows by table.
    for c in &consts {
        if c.value == 0x00 {
            out.push(finding(&rs_name, c.line, format!("{}: 0x00 is reserved", c.name)));
        }
    }
    for r in &rows {
        let ok =
            if r.in_response_table { r.value >= 0x80 } else { (0x01..=0x7F).contains(&r.value) };
        if !ok {
            let table = if r.in_response_table {
                "response (0x80..=0xFF)"
            } else {
                "request (0x01..=0x7F)"
            };
            out.push(finding(
                &md_name,
                r.line,
                format!("{} (0x{:02X}) is outside the {table} table's range", r.name, r.value),
            ));
        }
    }

    // Cross-matching by value.
    for c in &consts {
        match rows.iter().find(|r| r.value == c.value) {
            None => out.push(finding(
                &rs_name,
                c.line,
                format!("{} (0x{:02X}) is not documented in PROTOCOL.md", c.name, c.value),
            )),
            Some(r) if r.name != c.name && c.name != format!("{}_REPLY", r.name) => {
                out.push(finding(
                    &md_name,
                    r.line,
                    format!(
                        "0x{:02X} is `{}` in the doc but `{}` in protocol.rs",
                        c.value, r.name, c.name
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for r in &rows {
        if !consts.iter().any(|c| c.value == r.value) {
            out.push(finding(
                &md_name,
                r.line,
                format!(
                    "stale doc row: {} (0x{:02X}) has no constant in protocol.rs",
                    r.name, r.value
                ),
            ));
        }
    }

    // Version coverage: every negotiated protocol revision must carry a
    // `## Protocol vN` section, and the doc must not describe revisions
    // the server does not negotiate.
    match parse_version(&rs_text) {
        None => out.push(finding(
            &rs_name,
            1,
            "no `PROTOCOL_VERSION: u16 = N` constant found".to_string(),
        )),
        Some((version, vline)) => {
            let headings = parse_doc_versions(&md_text);
            for (i, (v, line)) in headings.iter().enumerate() {
                if let Some((_, first)) = headings[..i].iter().find(|(w, _)| w == v) {
                    out.push(finding(
                        &md_name,
                        *line,
                        format!("`## Protocol v{v}` appears twice (first at line {first})"),
                    ));
                }
                if *v > version {
                    out.push(finding(
                        &md_name,
                        *line,
                        format!("doc describes Protocol v{v} but PROTOCOL_VERSION is {version}"),
                    ));
                }
            }
            for v in 2..=version {
                if !headings.iter().any(|(w, _)| *w == v) {
                    out.push(finding(
                        &rs_name,
                        vline,
                        format!(
                            "PROTOCOL_VERSION is {version} but PROTOCOL.md has no \
                             `## Protocol v{v}` section"
                        ),
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Extract `const PROTOCOL_VERSION: u16 = N;` → `(N, line)`.
fn parse_version(src: &str) -> Option<(u16, u32)> {
    let lx = lex(src);
    let toks = &lx.tokens;
    toks.windows(7).find_map(|w| {
        let seq_ok = w[0].is_ident("const")
            && w[1].is_ident("PROTOCOL_VERSION")
            && w[2].is_punct(':')
            && w[3].is_ident("u16")
            && w[4].is_punct('=')
            && w[5].kind == TokKind::Num
            && w[6].is_punct(';');
        if seq_ok {
            Some((w[5].text.parse().ok()?, w[1].line))
        } else {
            None
        }
    })
}

/// Extract `## Protocol vN[: title]` headings → `(N, line)` pairs, in
/// document order.
fn parse_doc_versions(md: &str) -> Vec<(u16, u32)> {
    md.lines()
        .enumerate()
        .filter_map(|(idx, raw)| {
            let rest = raw.trim().strip_prefix("## Protocol v")?;
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            let after = &rest[digits.len()..];
            if !after.is_empty() && !after.starts_with(':') && !after.starts_with(' ') {
                return None;
            }
            Some((digits.parse().ok()?, u32::try_from(idx + 1).unwrap_or(u32::MAX)))
        })
        .collect()
}

/// Extract `pub const NAME: u8 = 0xNN;` items via the lexer (comments,
/// strings, and cfg'd-out lookalikes in literals can't confuse it).
fn parse_consts(src: &str) -> Vec<Op> {
    let lx = lex(src);
    let toks = &lx.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let seq_ok = toks[i].is_ident("const")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("u8")
            && toks[i + 4].is_punct('=')
            && toks[i + 5].kind == TokKind::Num
            && toks[i + 6].is_punct(';');
        if seq_ok {
            if let Some(value) = parse_u8(&toks[i + 5].text) {
                out.push(Op { name: toks[i + 1].text.clone(), value, line: toks[i + 1].line });
            }
            i += 7;
        } else {
            i += 1;
        }
    }
    out
}

fn parse_u8(num: &str) -> Option<u8> {
    let clean: String = num.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = clean.strip_prefix("0x").or_else(|| clean.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        clean.parse().ok()
    }
}

#[derive(Debug)]
struct DocRow {
    name: String,
    value: u8,
    line: u32,
    in_response_table: bool,
}

/// Extract `` | `0xNN` | `NAME` | … `` rows, tracking which table a row
/// belongs to via the `## Request opcodes` / `## Response opcodes`
/// headings. A row whose first cell looks like an opcode but doesn't
/// parse is reported as malformed rather than silently skipped.
fn parse_doc_rows(md: &str, md_name: &str, out: &mut Vec<Finding>) -> Vec<DocRow> {
    let mut rows = Vec::new();
    let mut in_response_table = false;
    let mut in_opcode_section = false;
    for (idx, raw) in md.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if let Some(h) = line.strip_prefix("## ") {
            in_opcode_section = h.contains("opcodes");
            in_response_table = h.starts_with("Response");
            continue;
        }
        if !in_opcode_section || !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let code = cells[0].trim_matches('`');
        if !code.starts_with("0x") && !code.starts_with("0X") {
            continue; // header or separator row
        }
        let Some(value) = parse_u8(code) else {
            out.push(Finding {
                rule: "protocol",
                crate_name: "she-server".to_string(),
                file: md_name.to_string(),
                line: lineno,
                msg: format!("malformed opcode cell `{code}`"),
            });
            continue;
        };
        rows.push(DocRow {
            name: cells[1].trim_matches('`').to_string(),
            value,
            line: lineno,
            in_response_table,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_consts_ignoring_noise() {
        let ops = parse_consts(
            "pub mod opcode {\n    // const FAKE: u8 = 0x99;\n    pub const INSERT: u8 = 0x01;\n    pub const OK: u8 = 0x80;\n    const NOT_U8: u16 = 0x0102;\n}",
        );
        let got: Vec<(&str, u8)> = ops.iter().map(|o| (o.name.as_str(), o.value)).collect();
        assert_eq!(got, [("INSERT", 1), ("OK", 0x80)]);
    }

    #[test]
    fn parses_the_version_constant() {
        let src = "// const PROTOCOL_VERSION: u16 = 9;\npub const PROTOCOL_VERSION: u16 = 5;\n";
        assert_eq!(parse_version(src), Some((5, 2)));
        assert_eq!(parse_version("pub const PROTOCOL_VERSION: u8 = 5;"), None);
    }

    #[test]
    fn parses_version_headings_and_rejects_lookalikes() {
        let md = "## Protocol v2: snapshots\n## Protocol v3\n## Protocol v10: future\n\
                  ## Protocol version notes\n## Protocol v2b\n";
        assert_eq!(parse_doc_versions(md), [(2, 1), (3, 2), (10, 3)]);
    }

    #[test]
    fn parses_doc_rows_with_table_context() {
        let md = "## Request opcodes\n\n| opcode | name |\n|---|---|\n| `0x01` | `INSERT` |\n\n## Response opcodes\n\n| opcode | name |\n|---|---|\n| `0x80` | `OK` |\n\n## Sharding\n\n| `0xFF` | `NOT_AN_OPCODE_TABLE` |\n";
        let mut findings = Vec::new();
        let rows = parse_doc_rows(md, "d.md", &mut findings);
        assert!(findings.is_empty());
        let got: Vec<(&str, u8, bool)> =
            rows.iter().map(|r| (r.name.as_str(), r.value, r.in_response_table)).collect();
        assert_eq!(got, [("INSERT", 1, false), ("OK", 0x80, true)]);
    }
}
