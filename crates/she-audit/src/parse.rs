//! Item parser on top of the token stream: extracts `fn`/`impl`/`trait`
//! items, call sites, and lightweight type hints (struct fields, `let`
//! annotations, parameter types) from one file.
//!
//! This is deliberately not a Rust parser. It walks the lexer's token
//! stream with a handful of structural heuristics — matched delimiters,
//! `impl`/`trait` headers, `fn` signatures — and records just enough
//! shape for the call graph: who defines what, who calls what, and which
//! identifiers carry which nominal types. Generics are skipped, macros
//! are opaque, and anything the walk cannot classify is simply dropped
//! (the graph layer counts unresolved calls so the loss is visible).

use crate::lexer::{Lexed, TokKind, Token};

/// How a call site is spelled, which determines how the graph resolves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)` — a free function call.
    Free,
    /// `Type::foo(..)` or `path::foo(..)` — qualified path call.
    Path,
    /// `recv.foo(..)` — method call; `qual` holds the receiver hint.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment / method name).
    pub name: String,
    pub kind: CallKind,
    /// Resolution hint: the path qualifier for `Path` calls, the
    /// receiver identifier (or `self`) for `Method` calls.
    pub qual: Option<String>,
    /// For chained method calls (`a.b().c()`): token index of the `)`
    /// closing the receiver call, so return types can be threaded.
    pub recv_close: Option<usize>,
    /// Token index of the callee name.
    pub tok: usize,
    /// Token index of the `)` closing the argument list.
    pub close: usize,
    pub line: u32,
    /// Token ranges `[start, end)` of each comma-separated argument.
    pub args: Vec<(usize, usize)>,
}

/// One `fn` item: free function, inherent/trait-impl method, trait
/// declaration, nested fn, or a synthetic `<spawn@LINE>` closure node.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub crate_name: String,
    pub file: String,
    pub line: u32,
    pub name: String,
    /// Display-qualified name: `Type::name`, `Trait::name`, bare
    /// `name`, or `parent::<spawn@LINE>` for spawn closures.
    pub qual: String,
    /// `impl` self type, for methods.
    pub self_ty: Option<String>,
    /// Trait being implemented (for `impl Trait for Type`) or declared
    /// (for methods inside `trait` blocks).
    pub trait_name: Option<String>,
    /// True for methods declared inside a `trait { .. }` block.
    pub is_trait_decl: bool,
    /// True for synthetic nodes carved out of `spawn(..)` arguments.
    pub is_spawn: bool,
    pub has_self: bool,
    /// Parameter names in order (excluding `self`).
    pub params: Vec<String>,
    /// Identifiers appearing in the return type (for chained-call
    /// receiver resolution). Empty for `()` / no return.
    pub ret_tys: Vec<String>,
    /// Token range `(open_brace, close_brace)` of the body, if any.
    pub body: Option<(usize, usize)>,
    /// Line span of the whole item, for enclosing-fn lookups.
    pub body_lines: (u32, u32),
    pub calls: Vec<Call>,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub fns: Vec<FnDef>,
    /// `impl Trait for Type` relationships seen in this file.
    pub trait_impls: Vec<(String, String)>,
    /// `(ident, type)` hints from struct fields, `let` annotations and
    /// fn parameters; consumed by the graph's receiver resolution.
    pub ident_tys: Vec<(String, String)>,
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "else", "break", "continue", "in", "as",
    "move", "let", "mut", "ref", "pub", "use", "mod", "where", "dyn", "impl", "fn", "struct",
    "enum", "trait", "const", "static", "type", "unsafe", "extern", "crate", "super", "Self",
    "self", "true", "false", "async", "await",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Skip a `<...>` generics group starting at an opening `<`. Returns
/// the index after the matching `>`, or `start` if it does not look
/// like a balanced group (shifts, comparisons).
fn skip_angles(t: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    let limit = (start + 256).min(t.len());
    while i < limit {
        if t[i].is_punct('<') {
            depth += 1;
        } else if t[i].is_punct('>') {
            // `->` arrows inside generic bounds (fn pointers) keep depth.
            if i > 0 && t[i - 1].is_punct('-') {
                i += 1;
                continue;
            }
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if t[i].is_punct(';') || t[i].is_punct('{') {
            return start; // ran into a statement: not generics
        }
        i += 1;
    }
    start
}

/// Index just past the brace that matches the opening brace at `open`.
fn match_brace(t: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < t.len() {
        if t[i].is_punct('{') {
            depth += 1;
        } else if t[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    t.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open`.
fn match_paren(t: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < t.len() {
        if t[i].is_punct('(') {
            depth += 1;
        } else if t[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    t.len().saturating_sub(1)
}

#[derive(Clone, Copy, Default)]
struct ImplCtx<'a> {
    self_ty: Option<&'a str>,
    trait_name: Option<&'a str>,
    in_trait_decl: bool,
}

/// Parse one lexed file into items.
pub fn parse_file(crate_name: &str, file: &str, lx: &Lexed) -> FileItems {
    let t = &lx.tokens;
    let mut items = FileItems::default();
    collect_items(t, lx, 0, t.len(), ImplCtx::default(), &mut items, crate_name, file);
    carve_spawns(t, &mut items);

    // Each fn's calls exclude the bodies of fns nested strictly inside
    // it (including carved-out spawn closures), so every call is
    // attributed to exactly one node.
    let ranges: Vec<Option<(usize, usize)>> = items.fns.iter().map(|f| f.body).collect();
    for (idx, f) in items.fns.iter_mut().enumerate() {
        let Some((lo, hi)) = f.body else { continue };
        let excluded: Vec<(usize, usize)> = ranges
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != idx)
            .filter_map(|(_, r)| *r)
            .filter(|(o, c)| lo < *o && *c < hi)
            .collect();
        extract_calls(t, lo + 1, hi, &excluded, &mut f.calls, &mut items.ident_tys);
    }
    items
}

#[allow(clippy::too_many_arguments)]
fn collect_items(
    t: &[Token],
    lx: &Lexed,
    lo: usize,
    hi: usize,
    ctx: ImplCtx<'_>,
    items: &mut FileItems,
    crate_name: &str,
    file: &str,
) {
    let mut i = lo;
    while i < hi {
        let tok = &t[i];
        if tok.is_ident("impl") {
            if let Some((self_ty, trait_name, open)) = parse_impl_header(t, i, hi) {
                let close = match_brace(t, open);
                if let Some(tr) = &trait_name {
                    items.trait_impls.push((tr.clone(), self_ty.clone()));
                }
                let inner = ImplCtx {
                    self_ty: Some(&self_ty),
                    trait_name: trait_name.as_deref(),
                    in_trait_decl: false,
                };
                collect_items(t, lx, open + 1, close, inner, items, crate_name, file);
                i = close + 1;
                continue;
            }
        } else if tok.is_ident("trait") && i + 1 < hi && t[i + 1].kind == TokKind::Ident {
            let name = t[i + 1].text.clone();
            let mut j = i + 2;
            while j < hi && !t[j].is_punct('{') && !t[j].is_punct(';') {
                j += 1;
            }
            if j < hi && t[j].is_punct('{') {
                let close = match_brace(t, j);
                let inner = ImplCtx { self_ty: None, trait_name: Some(&name), in_trait_decl: true };
                collect_items(t, lx, j + 1, close, inner, items, crate_name, file);
                i = close + 1;
                continue;
            }
            i = j + 1;
            continue;
        } else if tok.is_ident("struct") && i + 1 < hi && t[i + 1].kind == TokKind::Ident {
            i = parse_struct_fields(t, i, hi, &mut items.ident_tys);
            continue;
        } else if tok.is_ident("fn") && i + 1 < hi && t[i + 1].kind == TokKind::Ident {
            if let Some((def, next)) =
                parse_fn(t, i, hi, ctx, crate_name, file, &mut items.ident_tys)
            {
                let in_test = lx.in_test(def.line);
                if let Some((open, close)) = def.body {
                    // Nested fns (and items in nested mods) still parse.
                    collect_items(
                        t,
                        lx,
                        open + 1,
                        close,
                        ImplCtx::default(),
                        items,
                        crate_name,
                        file,
                    );
                }
                if !in_test {
                    items.fns.push(def);
                }
                i = next;
                continue;
            }
        }
        i += 1;
    }
}

/// `impl [<..>] [Trait for] Type [<..>] {` → (type, trait, open-brace).
fn parse_impl_header(t: &[Token], at: usize, hi: usize) -> Option<(String, Option<String>, usize)> {
    let mut i = at + 1;
    if i < hi && t[i].is_punct('<') {
        i = skip_angles(t, i);
    }
    // Collect path segments until `for`, `{`, or `where`.
    let mut first_path = last_segment(t, &mut i, hi)?;
    let mut trait_name = None;
    if i < hi && t[i].is_ident("for") {
        trait_name = Some(first_path);
        i += 1;
        first_path = last_segment(t, &mut i, hi)?;
    }
    while i < hi && !t[i].is_punct('{') && !t[i].is_punct(';') {
        i += 1;
    }
    if i < hi && t[i].is_punct('{') {
        Some((first_path, trait_name, i))
    } else {
        None
    }
}

/// Read a (possibly `::`-qualified, possibly generic) path starting at
/// `*i`; advance past it and return the last identifier segment.
fn last_segment(t: &[Token], i: &mut usize, hi: usize) -> Option<String> {
    let mut last = None;
    // Leading `&`/`mut`/`dyn` on impl types.
    while *i < hi && (t[*i].is_punct('&') || t[*i].is_ident("mut") || t[*i].is_ident("dyn")) {
        *i += 1;
    }
    loop {
        if *i >= hi {
            break;
        }
        if t[*i].kind == TokKind::Ident && !t[*i].is_ident("for") && !t[*i].is_ident("where") {
            last = Some(t[*i].text.clone());
            *i += 1;
            if *i < hi && t[*i].is_punct('<') {
                *i = skip_angles(t, *i);
            }
            if *i + 1 < hi && t[*i].is_punct(':') && t[*i + 1].is_punct(':') {
                *i += 2;
                continue;
            }
        }
        break;
    }
    last
}

/// Struct fields: `name: Type` at brace depth 1. Returns the index
/// after the item.
fn parse_struct_fields(
    t: &[Token],
    at: usize,
    hi: usize,
    out: &mut Vec<(String, String)>,
) -> usize {
    let mut i = at + 2;
    if i < hi && t[i].is_punct('<') {
        i = skip_angles(t, i);
    }
    while i < hi && !t[i].is_punct('{') && !t[i].is_punct(';') && !t[i].is_punct('(') {
        i += 1;
    }
    if i >= hi || !t[i].is_punct('{') {
        // Tuple/unit struct: skip to the terminating `;`.
        while i < hi && !t[i].is_punct(';') {
            i += 1;
        }
        return i + 1;
    }
    let close = match_brace(t, i);
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < close {
        if t[j].is_punct('(') || t[j].is_punct('[') || t[j].is_punct('{') {
            depth += 1;
        } else if t[j].is_punct(')') || t[j].is_punct(']') || t[j].is_punct('}') {
            depth -= 1;
        } else if depth == 0
            && t[j].kind == TokKind::Ident
            && !is_keyword(&t[j].text)
            && j + 1 < close
            && t[j + 1].is_punct(':')
            && (j + 2 >= close || !t[j + 2].is_punct(':'))
        {
            // Field type: every uppercase-initial ident until `,` at depth 0.
            let field = t[j].text.clone();
            let mut k = j + 2;
            let mut d = 0i32;
            while k < close {
                if t[k].is_punct(',') && d == 0 {
                    break;
                }
                match () {
                    _ if t[k].is_punct('(') || t[k].is_punct('[') || t[k].is_punct('<') => d += 1,
                    _ if t[k].is_punct(')') || t[k].is_punct(']') || t[k].is_punct('>') => d -= 1,
                    _ => {}
                }
                if t[k].kind == TokKind::Ident
                    && t[k].text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    out.push((field.clone(), t[k].text.clone()));
                }
                k += 1;
            }
            j = k;
            continue;
        }
        j += 1;
    }
    close + 1
}

/// Parse a `fn` item starting at the `fn` token. Returns the def and
/// the index to resume scanning at.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    t: &[Token],
    at: usize,
    hi: usize,
    ctx: ImplCtx<'_>,
    crate_name: &str,
    file: &str,
    ident_tys: &mut Vec<(String, String)>,
) -> Option<(FnDef, usize)> {
    let name = t[at + 1].text.clone();
    let mut i = at + 2;
    if i < hi && t[i].is_punct('<') {
        i = skip_angles(t, i);
    }
    if i >= hi || !t[i].is_punct('(') {
        return None;
    }
    let pclose = match_paren(t, i);
    let mut params = Vec::new();
    let mut has_self = false;
    {
        let mut j = i + 1;
        let mut depth = 1i32;
        while j < pclose {
            if t[j].is_punct('(') || t[j].is_punct('[') || t[j].is_punct('{') {
                depth += 1;
            } else if t[j].is_punct(')') || t[j].is_punct(']') || t[j].is_punct('}') {
                depth -= 1;
            } else if depth == 1 && t[j].kind == TokKind::Ident {
                if t[j].is_ident("self") {
                    has_self = true;
                } else if j + 1 < pclose + 1
                    && t[j + 1].is_punct(':')
                    && (j + 2 > pclose || !t[j + 2].is_punct(':'))
                    && !is_keyword(&t[j].text)
                {
                    // Record the parameter's nominal type idents so the
                    // graph can resolve method calls on parameters.
                    let mut k = j + 2;
                    let mut d = depth;
                    while k < pclose {
                        if t[k].is_punct(',') && d == 1 {
                            break;
                        }
                        match () {
                            _ if t[k].is_punct('(') || t[k].is_punct('[') => d += 1,
                            _ if t[k].is_punct(')') || t[k].is_punct(']') => d -= 1,
                            _ => {}
                        }
                        if t[k].kind == TokKind::Ident
                            && t[k].text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                        {
                            ident_tys.push((t[j].text.clone(), t[k].text.clone()));
                        }
                        k += 1;
                    }
                    params.push(t[j].text.clone());
                }
            }
            j += 1;
        }
    }
    // Return type idents, up to `{`, `;`, or `where`.
    let mut ret_tys = Vec::new();
    let mut k = pclose + 1;
    if k + 1 < hi && t[k].is_punct('-') && t[k + 1].is_punct('>') {
        k += 2;
        while k < hi && !t[k].is_punct('{') && !t[k].is_punct(';') && !t[k].is_ident("where") {
            if t[k].kind == TokKind::Ident && !is_keyword(&t[k].text) {
                ret_tys.push(t[k].text.clone());
            }
            k += 1;
        }
    }
    while k < hi && !t[k].is_punct('{') && !t[k].is_punct(';') {
        k += 1;
    }
    let (body, next, end_line) = if k < hi && t[k].is_punct('{') {
        let close = match_brace(t, k);
        (Some((k, close)), close + 1, t[close].line)
    } else {
        (None, k + 1, t[at].line)
    };
    let qual = match (ctx.self_ty, ctx.trait_name) {
        (Some(ty), _) => format!("{ty}::{name}"),
        (None, Some(tr)) => format!("{tr}::{name}"),
        _ => name.clone(),
    };
    let def = FnDef {
        crate_name: crate_name.to_string(),
        file: file.to_string(),
        line: t[at].line,
        name,
        qual,
        self_ty: ctx.self_ty.map(str::to_string),
        trait_name: ctx.trait_name.map(str::to_string),
        is_trait_decl: ctx.in_trait_decl,
        is_spawn: false,
        has_self,
        params,
        ret_tys,
        body,
        body_lines: (t[at].line, end_line),
        calls: Vec::new(),
    };
    Some((def, next))
}

/// Carve `spawn(..)` argument ranges out of each fn into detached
/// synthetic nodes (`parent::<spawn@LINE>`): the closure body runs on
/// its own thread, so its calls must not count as reachable from the
/// spawning function.
fn carve_spawns(t: &[Token], items: &mut FileItems) {
    let mut spawned = Vec::new();
    for f in &items.fns {
        let Some((lo, hi)) = f.body else { continue };
        let mut i = lo + 1;
        while i < hi {
            if t[i].is_ident("spawn") && i + 1 < hi && t[i + 1].is_punct('(') {
                let close = match_paren(t, i + 1);
                spawned.push(FnDef {
                    crate_name: f.crate_name.clone(),
                    file: f.file.clone(),
                    line: t[i].line,
                    name: format!("<spawn@{}>", t[i].line),
                    qual: format!("{}::<spawn@{}>", f.qual, t[i].line),
                    self_ty: None,
                    trait_name: None,
                    is_trait_decl: false,
                    is_spawn: true,
                    has_self: false,
                    params: Vec::new(),
                    ret_tys: Vec::new(),
                    body: Some((i + 1, close)),
                    body_lines: (t[i].line, t[close].line),
                    calls: Vec::new(),
                });
                i = close + 1;
                continue;
            }
            i += 1;
        }
    }
    items.fns.extend(spawned);
}

/// Walk a body range collecting call sites and `let x: Type` hints,
/// skipping nested-fn ranges and attributes.
fn extract_calls(
    t: &[Token],
    lo: usize,
    hi: usize,
    excluded: &[(usize, usize)],
    out: &mut Vec<Call>,
    ident_tys: &mut Vec<(String, String)>,
) {
    let mut i = lo;
    'outer: while i < hi {
        for (o, c) in excluded {
            if i >= *o && i <= *c {
                i = c + 1;
                continue 'outer;
            }
        }
        let tok = &t[i];
        // Skip attribute groups: `#[ .. ]`.
        if tok.is_punct('#') && i + 1 < hi && t[i + 1].is_punct('[') {
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < hi {
                if t[j].is_punct('[') {
                    depth += 1;
                } else if t[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        // `let x: Type = ..` / `let x = ..` type hints.
        if tok.is_ident("let")
            && i + 2 < hi
            && t[i + 1].kind == TokKind::Ident
            && !is_keyword(&t[i + 1].text)
            && t[i + 2].is_punct(':')
            && (i + 3 >= hi || !t[i + 3].is_punct(':'))
        {
            let name = t[i + 1].text.clone();
            let mut k = i + 3;
            while k < hi && !t[k].is_punct('=') && !t[k].is_punct(';') {
                if t[k].kind == TokKind::Ident
                    && t[k].text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                {
                    ident_tys.push((name.clone(), t[k].text.clone()));
                }
                k += 1;
            }
            i = k;
            continue;
        }
        if tok.kind == TokKind::Ident && i + 1 < hi && t[i + 1].is_punct('(') {
            let name = &tok.text;
            if is_keyword(name) {
                i += 1;
                continue;
            }
            let prev = if i > lo { Some(&t[i - 1]) } else { None };
            if prev.is_some_and(|p| p.is_ident("fn")) {
                i += 1;
                continue;
            }
            let close = match_paren(t, i + 1);
            let (kind, qual, recv_close) = classify_call(t, lo, i);
            if kind == CallKind::Free && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            {
                // Tuple-struct / enum-variant constructor, not a call.
                i += 1;
                continue;
            }
            let args = split_args(t, i + 1, close);
            out.push(Call {
                name: name.clone(),
                kind,
                qual,
                recv_close,
                tok: i,
                close,
                line: tok.line,
                args,
            });
            i += 1; // keep scanning inside the argument list
            continue;
        }
        i += 1;
    }
}

/// Classify the call at token `i` by its preceding tokens.
fn classify_call(t: &[Token], lo: usize, i: usize) -> (CallKind, Option<String>, Option<usize>) {
    if i == lo {
        return (CallKind::Free, None, None);
    }
    let p = &t[i - 1];
    if p.is_punct('.') {
        // Method call: look one further back for the receiver hint.
        let mut r = i.checked_sub(2);
        // `recv()?.m(..)` / `recv().m(..)`: skip `?` to find the `)`.
        while let Some(ri) = r {
            if t[ri].is_punct('?') {
                r = ri.checked_sub(1);
            } else {
                break;
            }
        }
        if let Some(ri) = r {
            if t[ri].kind == TokKind::Ident {
                return (CallKind::Method, Some(t[ri].text.clone()), None);
            }
            if t[ri].is_punct(')') {
                return (CallKind::Method, None, Some(ri));
            }
        }
        return (CallKind::Method, None, None);
    }
    if p.is_punct(':') && i >= 2 && t[i - 2].is_punct(':') {
        let qual = if i >= 3 && t[i - 3].kind == TokKind::Ident {
            Some(t[i - 3].text.clone())
        } else {
            None
        };
        return (CallKind::Path, qual, None);
    }
    (CallKind::Free, None, None)
}

/// Split an argument list `( .. )` into per-argument token ranges.
/// Closure parameter lists (`|a, b|`) do not split arguments.
fn split_args(t: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    if close <= open + 1 {
        return args;
    }
    let mut start = open + 1;
    let mut depth = 0i32;
    let mut j = open + 1;
    while j < close {
        let tok = &t[j];
        if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct(')') || tok.is_punct(']') || tok.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && tok.is_punct('|') {
            // Closure parameter list at the head of an argument: scan to
            // the closing `|` without splitting on its commas.
            let head = j == start || t[j - 1].is_ident("move");
            if head {
                let mut k = j + 1;
                while k < close && !t[k].is_punct('|') {
                    k += 1;
                }
                j = k + 1;
                continue;
            }
        } else if depth == 0 && tok.is_punct(',') {
            args.push((start, j));
            start = j + 1;
        }
        j += 1;
    }
    if start < close {
        args.push((start, close));
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileItems {
        parse_file("demo", "demo/src/lib.rs", &lex(src))
    }

    #[test]
    fn free_fn_and_calls() {
        let items = parse("fn a() { b(); c.d(); E::f(); }\nfn b() {}\n");
        assert_eq!(items.fns.len(), 2);
        let a = &items.fns[0];
        assert_eq!(a.qual, "a");
        let names: Vec<&str> = a.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["b", "d", "f"]);
        assert_eq!(a.calls[0].kind, CallKind::Free);
        assert_eq!(a.calls[1].kind, CallKind::Method);
        assert_eq!(a.calls[1].qual.as_deref(), Some("c"));
        assert_eq!(a.calls[2].kind, CallKind::Path);
        assert_eq!(a.calls[2].qual.as_deref(), Some("E"));
    }

    #[test]
    fn impl_methods_and_trait_impl() {
        let src = "struct S { inner: Inner }\nimpl Frob for S { fn frob(&self) -> Out { self.go() } }\nimpl S { fn go(&self) {} }\n";
        let items = parse(src);
        let quals: Vec<&str> = items.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["S::frob", "S::go"]);
        assert_eq!(items.trait_impls, [("Frob".to_string(), "S".to_string())]);
        assert!(items.ident_tys.contains(&("inner".to_string(), "Inner".to_string())));
        let frob = &items.fns[0];
        assert!(frob.has_self);
        assert_eq!(frob.ret_tys, ["Out"]);
        assert_eq!(frob.calls[0].qual.as_deref(), Some("self"));
    }

    #[test]
    fn trait_decl_methods() {
        let items = parse("trait T { fn req(&self); fn prov(&self) { self.req() } }\n");
        let quals: Vec<&str> = items.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["T::req", "T::prov"]);
        assert!(items.fns[0].is_trait_decl && items.fns[0].body.is_none());
        assert!(items.fns[1].body.is_some());
    }

    #[test]
    fn spawn_carved_out() {
        let items = parse("fn a() { spawn(move || { danger(); }); after(); }\n");
        assert_eq!(items.fns.len(), 2);
        let a = &items.fns[0];
        let names: Vec<&str> = a.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["spawn", "after"], "closure body excluded from parent");
        let sp = &items.fns[1];
        assert!(sp.is_spawn);
        assert_eq!(sp.qual, "a::<spawn@1>");
        assert_eq!(sp.calls.len(), 1);
        assert_eq!(sp.calls[0].name, "danger");
    }

    #[test]
    fn nested_fn_excluded_from_parent() {
        let items = parse("fn outer() { fn inner() { hidden(); } inner(); }\n");
        let outer = items.fns.iter().find(|f| f.name == "outer").unwrap();
        let names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["inner"]);
    }

    #[test]
    fn chained_receiver_records_close() {
        let items = parse("fn a() { b().c(); }\n");
        let calls = &items.fns[0].calls;
        assert_eq!(calls[0].name, "b");
        assert_eq!(calls[1].name, "c");
        assert_eq!(calls[1].recv_close, Some(calls[0].close));
    }

    #[test]
    fn params_and_let_types() {
        let items = parse("fn a(x: usize, y: &Wire) { let z: Frame = decode(x); z.go(); }\n");
        let a = &items.fns[0];
        assert_eq!(a.params, ["x", "y"]);
        assert!(items.ident_tys.contains(&("y".to_string(), "Wire".to_string())));
        assert!(items.ident_tys.contains(&("z".to_string(), "Frame".to_string())));
    }

    #[test]
    fn test_fns_skipped() {
        let items =
            parse("#[cfg(test)]\nmod tests {\n #[test]\n fn t() { boom(); }\n}\nfn live() {}\n");
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["live"]);
    }

    #[test]
    fn closure_args_do_not_split() {
        let items = parse("fn a() { fold(0, |acc, x| acc + x); }\n");
        let call = &items.fns[0].calls[0];
        assert_eq!(call.args.len(), 2, "closure comma must not split args");
    }
}
