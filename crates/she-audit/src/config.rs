//! Audit configuration: which crates each rule polices, the lock-rank
//! manifest, and the ratchet baseline — plus the tiny TOML-subset parser
//! that reads the two committed manifest files.
//!
//! The subset is deliberately small: `[section]` headers, `key = value`
//! lines (values: bare integers or quoted strings), `#` comments, blank
//! lines. Anything else is a hard error — manifests are committed files,
//! so strictness beats leniency.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Everything the rule engine needs to know beyond the source tree.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Crates where the panic-path rule applies to non-test code.
    pub panic_crates: Vec<String>,
    /// Crates where the truncating-cast rule applies to non-test code.
    pub cast_crates: Vec<String>,
    /// Crates where the unbounded-growth rule applies to non-test code.
    pub growth_crates: Vec<String>,
    /// Crates where the lock-order rule applies (raw `Mutex::new` banned,
    /// `OrderedMutex` names cross-checked against the manifest).
    pub lock_crates: Vec<String>,
    /// Workspace-relative path suffixes of files on the epoll reactor
    /// path. v2 coverage assertion: the computed reactor root set must
    /// reach at least one fn in each of these files.
    pub blocking_files: Vec<String>,
    /// `(crate, qualified-fn)` roots of the reactor path: the poll loop,
    /// the inline dispatch arm, and the `QUERY_FAST` handlers. Blocking
    /// sinks reachable from these are hard findings with the chain.
    pub blocking_roots: Vec<(String, String)>,
    /// Additional `(crate, qualified-fn)` serving roots for the
    /// reachable-panic split (worker loops, feed threads, refreshers) —
    /// the blocking roots and every spawn closure in a pinned crate are
    /// added automatically.
    pub serving_roots: Vec<(String, String)>,
    /// Crates whose reachable-from-serving panic sites are pinned at
    /// zero (hard), with spawn closures auto-rooted as serving entry
    /// points. Unreachable sites in these crates stay ratcheted.
    pub panic_pinned_crates: Vec<String>,
    /// Crates where the wire-length-allocation rule applies.
    pub wiresize_crates: Vec<String>,
    /// Path suffixes of the files allowed to contain `unsafe` (each
    /// block still needs `// audit:allow(unsafe): <reason>`). Everywhere
    /// else `unsafe` is a hard finding.
    pub unsafe_files: Vec<String>,
    /// Named lock ranks from `audit-locks.toml` (name → rank).
    pub locks: BTreeMap<String, u16>,
    /// Ratchet baseline from `audit-ratchet.toml`: `"rule/crate"` → count.
    /// Crates absent from the map have an implicit baseline of zero.
    pub ratchet: BTreeMap<String, u64>,
    /// Protocol-drift inputs: (path to protocol.rs, path to PROTOCOL.md).
    /// `None` disables the rule (used by fixture self-tests for other rules).
    pub protocol: Option<(PathBuf, PathBuf)>,
}

impl RuleConfig {
    /// The repo's production configuration, anchored at the workspace
    /// root. Reads both manifests; missing manifest files are an error —
    /// the gate must not silently run unratcheted.
    pub fn for_workspace(root: &Path) -> io::Result<Self> {
        let locks_doc = parse_toml_file(&root.join("audit-locks.toml"))?;
        let ratchet_doc = parse_toml_file(&root.join("audit-ratchet.toml"))?;

        let mut locks = BTreeMap::new();
        for ((section, key), value) in &locks_doc {
            if section != "locks" {
                return Err(bad(format!("audit-locks.toml: unknown section [{section}]")));
            }
            let Value::Int(rank) = value else {
                return Err(bad(format!("audit-locks.toml: rank for {key} must be an integer")));
            };
            let rank = u16::try_from(*rank)
                .map_err(|_| bad(format!("audit-locks.toml: rank for {key} out of u16 range")))?;
            locks.insert(key.clone(), rank);
        }

        let mut ratchet = BTreeMap::new();
        for ((section, key), value) in &ratchet_doc {
            if section != "panic" && section != "cast" && section != "growth" && section != "unsafe"
            {
                return Err(bad(format!("audit-ratchet.toml: unknown section [{section}]")));
            }
            let Value::Int(n) = value else {
                return Err(bad(format!("audit-ratchet.toml: {section}.{key} must be an integer")));
            };
            let n = u64::try_from(*n)
                .map_err(|_| bad(format!("audit-ratchet.toml: {section}.{key} is negative")))?;
            ratchet.insert(format!("{section}/{key}"), n);
        }

        Ok(RuleConfig {
            panic_crates: vec![
                "she-server".into(),
                "she-replica".into(),
                "she-cluster".into(),
                "she-core".into(),
                "she-chaos".into(),
                "she-cli".into(),
                "she-readpath".into(),
            ],
            cast_crates: vec![
                "she-core".into(),
                "she-sketch".into(),
                "she-server".into(),
                "she-replica".into(),
                "she-cluster".into(),
                "she-readpath".into(),
            ],
            growth_crates: vec![
                "she-server".into(),
                "she-replica".into(),
                "she-cluster".into(),
                "she-core".into(),
                "she-readpath".into(),
            ],
            lock_crates: vec![
                "she-server".into(),
                "she-replica".into(),
                "she-cluster".into(),
                "she-core".into(),
                "she-chaos".into(),
                "she-readpath".into(),
            ],
            blocking_files: vec![
                "she-server/src/reactor.rs".into(),
                "she-server/src/conn.rs".into(),
                "she-server/src/sys.rs".into(),
            ],
            blocking_roots: vec![
                ("she-server".into(), "Reactor::run".into()),
                ("she-server".into(), "Reactor::dispatch".into()),
                ("she-server".into(), "Shared::handle_inline".into()),
                ("she-readpath".into(), "ReadPath::query".into()),
            ],
            serving_roots: vec![
                ("she-server".into(), "Shared::handle".into()),
                ("she-server".into(), "run_worker".into()),
                ("she-replica".into(), "run_tail".into()),
                ("she-cluster".into(), "Monitor::run".into()),
            ],
            panic_pinned_crates: vec![
                "she-server".into(),
                "she-replica".into(),
                "she-cluster".into(),
                "she-readpath".into(),
            ],
            wiresize_crates: vec![
                "she-core".into(),
                "she-server".into(),
                "she-replica".into(),
                "she-cluster".into(),
                "she-readpath".into(),
            ],
            unsafe_files: vec!["she-server/src/sys.rs".into()],
            locks,
            ratchet,
            protocol: Some((
                root.join("crates/she-server/src/protocol.rs"),
                root.join("docs/PROTOCOL.md"),
            )),
        })
    }
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A bare integer.
    Int(i64),
    /// A double-quoted string (no escape processing).
    Str(String),
}

/// A parsed manifest entry: `(section, key)` mapped to its value, in
/// file order.
pub type TomlEntry = ((String, String), Value);

/// Parse a manifest file into ((section, key) → value), preserving order.
pub fn parse_toml_file(path: &Path) -> io::Result<Vec<TomlEntry>> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    parse_toml(&text).map_err(|msg| bad(format!("{}: {msg}", path.display())))
}

/// Parse TOML-subset text. Returns `Err(message)` on anything outside the
/// subset; `message` includes the 1-based line number.
pub fn parse_toml(text: &str) -> Result<Vec<TomlEntry>, String> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            // A '#' inside a quoted value is part of the value, not a
            // comment; only strip when it isn't inside quotes.
            Some(h) if raw[..h].matches('"').count() % 2 == 0 => &raw[..h],
            _ => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("line {lineno}: empty section header"));
            }
            section = name.to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let key = key.trim();
        let value = value.trim();
        if key.is_empty() {
            return Err(format!("line {lineno}: empty key"));
        }
        let parsed = if let Some(s) = value.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
            Value::Str(s.to_string())
        } else if let Ok(n) = value.parse::<i64>() {
            Value::Int(n)
        } else {
            return Err(format!(
                "line {lineno}: value `{value}` is neither an integer nor a quoted string"
            ));
        };
        out.push(((section.clone(), key.to_string()), parsed));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_comments() {
        let doc =
            parse_toml("# ranks\n[locks]\nrepl-log = 10 # the log\n\n[other]\nname = \"x # y\"\n")
                .expect("parses");
        assert_eq!(
            doc,
            vec![
                (("locks".into(), "repl-log".into()), Value::Int(10)),
                (("other".into(), "name".into()), Value::Str("x # y".into())),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_toml("just words\n").is_err());
        assert!(parse_toml("[locks]\nk = [1, 2]\n").is_err());
        assert!(parse_toml("[]\n").is_err());
        assert!(parse_toml(" = 3\n").is_err());
    }
}
