//! Workspace source discovery: find every `.rs` file, attribute it to a
//! crate, and mark files that are test-only by location (`tests/`,
//! `benches/`, `examples/` directories are integration-test surface; the
//! rules skip them entirely).

use std::io;
use std::path::{Path, PathBuf};

/// One source file scheduled for auditing.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Crate the file belongs to (directory name under `crates/`, or the
    /// workspace root package's name for `src/` at the root).
    pub crate_name: String,
    /// Path relative to the workspace root (for reporting).
    pub rel_path: String,
    /// Absolute path (for reading).
    pub abs_path: PathBuf,
    /// True when the file lives under `tests/`, `benches/`, or
    /// `examples/` — audited rules skip it wholesale.
    pub test_only: bool,
}

/// Discover the workspace's Rust sources: `<root>/src/**.rs` plus
/// `<root>/crates/*/{src,tests,benches,examples}/**.rs`. `target/` and
/// hidden directories are never entered. Results are sorted by path so
/// findings are deterministic.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect(&root_src, root, "she", false, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let Some(name) = dir.file_name().and_then(|n| n.to_str()) else { continue };
            let crate_name = name.to_string();
            for (sub, test_only) in
                [("src", false), ("tests", true), ("benches", true), ("examples", true)]
            {
                let d = dir.join(sub);
                if d.is_dir() {
                    collect(&d, root, &crate_name, test_only, &mut out)?;
                }
            }
        }
    }
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn collect(
    dir: &Path,
    root: &Path,
    crate_name: &str,
    test_only: bool,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect(&path, root, crate_name, test_only, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).display().to_string();
            out.push(SourceFile {
                crate_name: crate_name.to_string(),
                rel_path: rel,
                abs_path: path,
                test_only,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_and_classifies() {
        let tmp = std::env::temp_dir().join(format!("she-audit-walk-{}", std::process::id()));
        let mk = |p: &str| {
            let f = tmp.join(p);
            std::fs::create_dir_all(f.parent().expect("parent")).expect("mkdir");
            std::fs::write(&f, "fn x() {}\n").expect("write");
        };
        mk("src/main.rs");
        mk("crates/she-core/src/lib.rs");
        mk("crates/she-core/src/rules/deep.rs");
        mk("crates/she-core/tests/it.rs");
        mk("crates/she-core/benches/b.rs");
        let files = discover(&tmp).expect("discover");
        std::fs::remove_dir_all(&tmp).ok();

        let rels: Vec<(&str, &str, bool)> = files
            .iter()
            .map(|f| (f.crate_name.as_str(), f.rel_path.as_str(), f.test_only))
            .collect();
        assert_eq!(
            rels,
            vec![
                ("she-core", "crates/she-core/benches/b.rs", true),
                ("she-core", "crates/she-core/src/lib.rs", false),
                ("she-core", "crates/she-core/src/rules/deep.rs", false),
                ("she-core", "crates/she-core/tests/it.rs", true),
                ("she", "src/main.rs", false),
            ]
        );
    }
}
