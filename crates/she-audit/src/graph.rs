//! Conservative workspace call graph over the parsed items.
//!
//! Resolution is name + receiver-heuristic based:
//!
//! * `recv.m(..)` — the receiver's nominal type is guessed from `self`,
//!   struct-field / `let` / parameter type hints, or (for chains) the
//!   return type of the receiver call; candidates are the matching
//!   inherent methods plus trait-method fan-out (every implementor of a
//!   trait the type implements, and trait default bodies). Such edges
//!   are *confident*. A hinted type with no such workspace method is an
//!   external call (`AtomicBool::load`), not a fan-out. Only when no
//!   type hint lands at all does the call fan out — to every same-named
//!   method in the *caller's own crate* (*unconfident* edges); bare-name
//!   matching across crates invents edges between unrelated subsystems.
//! * `Type::m(..)` — resolved against the qualifier (type or trait);
//!   lowercase qualifiers (module paths) fall back to free functions.
//! * `m(..)` — free functions, same-crate definitions preferred.
//!
//! Calls that resolve to nothing (std, externs) are counted as
//! unresolved — the over/under-approximation budget is part of the
//! graph's observable surface (`GraphStats`), not silent.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{Call, CallKind, FileItems, FnDef};

/// One resolved call: indexes into `CallGraph::fns`.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// Index into the owning fn's `calls`.
    pub call: usize,
    pub callees: Vec<usize>,
    /// True when resolution went through a type hint (receiver type,
    /// path qualifier, or free-fn name match) rather than a blind
    /// same-name fan-out.
    pub confident: bool,
}

#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub callee: usize,
    pub confident: bool,
}

/// Headline numbers for `--json` and the CLI banner.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub roots: usize,
    pub unresolved_calls: usize,
}

#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnDef>,
    /// Adjacency: `edges[caller]` → deduped callee edges.
    pub edges: Vec<Vec<Edge>>,
    /// Per-fn resolution results, parallel to `fns[i].calls` subsets.
    pub resolved: Vec<Vec<ResolvedCall>>,
    pub unresolved_calls: usize,
    /// trait name → implementing types.
    pub trait_impls: BTreeMap<String, Vec<String>>,
    /// ident → possible nominal types (workspace-merged hints).
    pub ident_tys: BTreeMap<String, BTreeSet<String>>,
    by_file: BTreeMap<String, Vec<usize>>,
}

/// BFS reachability with parent links for chain printing.
#[derive(Debug)]
pub struct Reach {
    pub reachable: Vec<bool>,
    parent: Vec<Option<usize>>,
    pub roots: Vec<usize>,
}

impl Reach {
    /// Root-to-`id` chain of fn indices (inclusive).
    pub fn chain(&self, mut id: usize) -> Vec<usize> {
        let mut rev = vec![id];
        while let Some(p) = self.parent[id] {
            rev.push(p);
            id = p;
        }
        rev.reverse();
        rev
    }
}

impl CallGraph {
    /// Build the graph from every parsed file in the workspace.
    pub fn build(files: Vec<FileItems>) -> CallGraph {
        let mut fns = Vec::new();
        let mut trait_impls: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut ident_tys: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for items in files {
            for (tr, ty) in items.trait_impls {
                let e = trait_impls.entry(tr).or_default();
                if !e.contains(&ty) {
                    e.push(ty);
                }
            }
            for (id, ty) in items.ident_tys {
                ident_tys.entry(id).or_default().insert(ty);
            }
            fns.extend(items.fns);
        }

        // Symbol tables.
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut trait_decl: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_file: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_file.entry(f.file.clone()).or_default().push(i);
            if f.is_spawn {
                continue;
            }
            if f.is_trait_decl {
                if let Some(tr) = &f.trait_name {
                    trait_decl.entry((tr, &f.name)).or_default().push(i);
                }
            } else if let Some(ty) = &f.self_ty {
                typed.entry((ty, &f.name)).or_default().push(i);
            } else {
                free.entry(&f.name).or_default().push(i);
            }
            if f.has_self {
                methods.entry(&f.name).or_default().push(i);
            }
        }
        // Traits implemented by each type, for default-body fan-in.
        let mut tys_traits: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (tr, tys) in &trait_impls {
            for ty in tys {
                tys_traits.entry(ty).or_default().push(tr);
            }
        }

        let candidates_for_ty = |ty: &str, name: &str| -> Vec<usize> {
            let mut out = Vec::new();
            if let Some(ids) = typed.get(&(ty, name)) {
                out.extend(ids);
            }
            // `ty` is a trait: fan out to every implementor + defaults.
            if let Some(impls) = trait_impls.get(ty) {
                for imp in impls {
                    if let Some(ids) = typed.get(&(imp.as_str(), name)) {
                        out.extend(ids);
                    }
                }
                if let Some(ids) = trait_decl.get(&(ty, name)) {
                    out.extend(ids.iter().filter(|&&i| fns[i].body.is_some()));
                }
            }
            // `ty` is a type whose trait provides a default body.
            if let Some(trs) = tys_traits.get(ty) {
                for tr in trs {
                    if let Some(ids) = trait_decl.get(&(*tr, name)) {
                        out.extend(ids.iter().filter(|&&i| fns[i].body.is_some()));
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        };

        let resolve_free = |name: &str, caller_crate: &str| -> Vec<usize> {
            let Some(ids) = free.get(name) else { return Vec::new() };
            let same: Vec<usize> =
                ids.iter().copied().filter(|&i| fns[i].crate_name == caller_crate).collect();
            if same.is_empty() {
                ids.clone()
            } else {
                same
            }
        };

        let mut resolved: Vec<Vec<ResolvedCall>> = Vec::with_capacity(fns.len());
        let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(fns.len());
        let mut unresolved = 0usize;
        for f in &fns {
            let mut rets: BTreeMap<usize, BTreeSet<&str>> = BTreeMap::new();
            let mut rcs = Vec::new();
            let mut adj: BTreeMap<usize, bool> = BTreeMap::new();
            for (ci, call) in f.calls.iter().enumerate() {
                let (callees, confident) = resolve_call(
                    &fns,
                    f,
                    call,
                    &rets,
                    &ident_tys,
                    &candidates_for_ty,
                    &resolve_free,
                    &methods,
                );
                if callees.is_empty() {
                    unresolved += 1;
                } else {
                    let tys: BTreeSet<&str> = callees
                        .iter()
                        .flat_map(|&i| fns[i].ret_tys.iter().map(String::as_str))
                        .collect();
                    rets.insert(call.close, tys);
                    for &c in &callees {
                        let e = adj.entry(c).or_insert(confident);
                        *e = *e || confident;
                    }
                }
                rcs.push(ResolvedCall { call: ci, callees, confident });
            }
            resolved.push(rcs);
            edges.push(
                adj.into_iter().map(|(callee, confident)| Edge { callee, confident }).collect(),
            );
        }

        CallGraph {
            fns,
            edges,
            resolved,
            unresolved_calls: unresolved,
            trait_impls,
            ident_tys,
            by_file,
        }
    }

    pub fn stats(&self, roots: usize) -> GraphStats {
        GraphStats {
            nodes: self.fns.len(),
            edges: self.edges.iter().map(Vec::len).sum(),
            roots,
            unresolved_calls: self.unresolved_calls,
        }
    }

    /// Resolve `(crate, qualified-name)` root specs to fn indices.
    /// Returns the indices plus any specs that matched nothing.
    pub fn find_roots(&self, specs: &[(String, String)]) -> (Vec<usize>, Vec<String>) {
        let mut ids = Vec::new();
        let mut missing = Vec::new();
        for (krate, qual) in specs {
            let mut hit = false;
            for (i, f) in self.fns.iter().enumerate() {
                if &f.crate_name == krate && &f.qual == qual && f.body.is_some() {
                    ids.push(i);
                    hit = true;
                }
            }
            if !hit {
                missing.push(format!("{krate}::{qual}"));
            }
        }
        ids.sort_unstable();
        ids.dedup();
        (ids, missing)
    }

    /// Every synthetic spawn-closure node in the given crates.
    pub fn spawn_nodes(&self, crates: &[String]) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.is_spawn && crates.iter().any(|c| c == &f.crate_name))
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `roots`; `confident_only` restricts traversal to
    /// type-hinted edges (used where blind fan-out would drown the
    /// rule in false positives, e.g. lock-order closure).
    pub fn reach(&self, roots: &[usize], confident_only: bool) -> Reach {
        let mut reachable = vec![false; self.fns.len()];
        let mut parent = vec![None; self.fns.len()];
        let mut q = VecDeque::new();
        for &r in roots {
            if !reachable[r] {
                reachable[r] = true;
                q.push_back(r);
            }
        }
        while let Some(n) = q.pop_front() {
            for e in &self.edges[n] {
                if confident_only && !e.confident {
                    continue;
                }
                // Spawn nodes run on their own thread: never reachable
                // *through* the graph, only as explicit roots.
                if self.fns[e.callee].is_spawn {
                    continue;
                }
                if !reachable[e.callee] {
                    reachable[e.callee] = true;
                    parent[e.callee] = Some(n);
                    q.push_back(e.callee);
                }
            }
        }
        Reach { reachable, parent, roots: roots.to_vec() }
    }

    /// Human-readable root→fn chain, e.g. `Reactor::run → Shared::handle → ask`.
    pub fn chain_str(&self, reach: &Reach, id: usize) -> String {
        reach
            .chain(id)
            .into_iter()
            .map(|i| self.fns[i].qual.as_str())
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Innermost fn containing `line` of `file` (by item line span).
    pub fn fn_at(&self, file: &str, line: u32) -> Option<usize> {
        let ids = self.by_file.get(file)?;
        ids.iter()
            .copied()
            .filter(|&i| {
                let (lo, hi) = self.fns[i].body_lines;
                lo <= line && line <= hi
            })
            .min_by_key(|&i| {
                let (lo, hi) = self.fns[i].body_lines;
                hi - lo
            })
    }

    /// Fn indices whose file ends with `suffix`.
    pub fn fns_in_file(&self, suffix: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file.ends_with(suffix))
            .map(|(i, _)| i)
            .collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_call(
    fns: &[FnDef],
    caller: &FnDef,
    call: &Call,
    rets: &BTreeMap<usize, BTreeSet<&str>>,
    ident_tys: &BTreeMap<String, BTreeSet<String>>,
    candidates_for_ty: &dyn Fn(&str, &str) -> Vec<usize>,
    resolve_free: &dyn Fn(&str, &str) -> Vec<usize>,
    methods: &BTreeMap<&str, Vec<usize>>,
) -> (Vec<usize>, bool) {
    match call.kind {
        CallKind::Method => {
            let mut tys: BTreeSet<String> = BTreeSet::new();
            match (&call.qual, call.recv_close) {
                (Some(q), _) if q == "self" => {
                    if let Some(ty) = &caller.self_ty {
                        tys.insert(ty.clone());
                    }
                }
                (Some(q), _) => {
                    if let Some(ts) = ident_tys.get(q) {
                        tys.extend(ts.iter().cloned());
                    }
                }
                (None, Some(close)) => {
                    if let Some(ts) = rets.get(&close) {
                        tys.extend(ts.iter().map(|s| s.to_string()));
                    }
                }
                (None, None) => {}
            }
            let mut out = Vec::new();
            for ty in &tys {
                out.extend(candidates_for_ty(ty, &call.name));
            }
            out.sort_unstable();
            out.dedup();
            if !out.is_empty() {
                return (out, true);
            }
            // The receiver's type is known but owns no such workspace
            // method: the call targets external code (`AtomicBool::load`,
            // `TcpStream::write`). Fanning out by bare name here would
            // invent edges between unrelated subsystems.
            if !tys.is_empty() {
                return (Vec::new(), true);
            }
            // Blind fan-out, same crate only: a method on an unhinted
            // receiver is plausibly defined nearby; matching bare names
            // like `write`/`load`/`run` across crates is noise.
            let fan: Vec<usize> = methods
                .get(call.name.as_str())
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&i| fns[i].crate_name == caller.crate_name)
                        .collect()
                })
                .unwrap_or_default();
            (fan, false)
        }
        CallKind::Path => {
            let out = if let Some(q) = &call.qual {
                let ty = if q == "Self" { caller.self_ty.as_deref().unwrap_or(q) } else { q };
                let by_ty = candidates_for_ty(ty, &call.name);
                if by_ty.is_empty() && ty.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
                    // Module path (`crate::readpath::run_refresher`).
                    resolve_free(&call.name, &caller.crate_name)
                } else {
                    by_ty
                }
            } else {
                resolve_free(&call.name, &caller.crate_name)
            };
            (out, true)
        }
        CallKind::Free => (resolve_free(&call.name, &caller.crate_name), true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    fn graph(srcs: &[(&str, &str, &str)]) -> CallGraph {
        let files =
            srcs.iter().map(|(krate, file, src)| parse_file(krate, file, &lex(src))).collect();
        CallGraph::build(files)
    }

    fn idx(g: &CallGraph, qual: &str) -> usize {
        g.fns.iter().position(|f| f.qual == qual).unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn free_call_resolves_same_crate_first() {
        let g = graph(&[
            ("a", "a/src/lib.rs", "fn go() { helper(); }\nfn helper() {}\n"),
            ("b", "b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let go = idx(&g, "go");
        let tgt = g.edges[go][0].callee;
        assert_eq!(g.fns[tgt].crate_name, "a");
        assert!(g.edges[go][0].confident);
    }

    #[test]
    fn trait_method_fans_out_to_implementors() {
        let src = "trait T { fn m(&self); }\nstruct A; struct B;\nimpl T for A { fn m(&self) {} }\nimpl T for B { fn m(&self) {} }\nfn go(x: &dyn T) { x.m(); }\n";
        let g = graph(&[("a", "a/src/lib.rs", src)]);
        let go = idx(&g, "go");
        let callees: Vec<&str> =
            g.edges[go].iter().map(|e| g.fns[e.callee].qual.as_str()).collect();
        assert!(callees.contains(&"A::m") && callees.contains(&"B::m"), "{callees:?}");
        assert!(g.edges[go].iter().all(|e| e.confident));
    }

    #[test]
    fn chained_call_threads_return_type() {
        let src = "struct W; impl W { fn sink(&self) {} }\nfn make() -> W { W }\nfn go() { make().sink(); }\n";
        let g = graph(&[("a", "a/src/lib.rs", src)]);
        let go = idx(&g, "go");
        let callees: Vec<&str> =
            g.edges[go].iter().map(|e| g.fns[e.callee].qual.as_str()).collect();
        assert!(callees.contains(&"W::sink"), "{callees:?}");
    }

    #[test]
    fn cross_crate_method_resolution() {
        let g = graph(&[
            ("core", "core/src/lib.rs", "pub struct Rp; impl Rp { pub fn query(&self) {} }\n"),
            ("srv", "srv/src/lib.rs", "fn go(rp: &Rp) { rp.query(); }\n"),
        ]);
        let go = idx(&g, "go");
        assert_eq!(g.fns[g.edges[go][0].callee].qual, "Rp::query");
    }

    #[test]
    fn hinted_type_without_the_method_is_extern_not_fanout() {
        // `flag.load(..)` on a hinted AtomicBool must not fan out to an
        // unrelated workspace `load` method.
        let g = graph(&[
            ("a", "a/src/lib.rs", "struct R { flag: AtomicBool }\nimpl R { fn go(&self) { self.flag.load(); } }\nstruct Eng; impl Eng { fn load(&self) {} }\n"),
        ]);
        let go = idx(&g, "R::go");
        assert!(g.edges[go].is_empty(), "{:?}", g.edges[go]);
        assert!(g.unresolved_calls >= 1);
    }

    #[test]
    fn blind_fanout_stays_within_the_callers_crate() {
        let g = graph(&[
            (
                "a",
                "a/src/lib.rs",
                "fn go() { (mystery()).run(); }\nstruct L; impl L { fn run(&self) {} }\n",
            ),
            ("b", "b/src/lib.rs", "struct M; impl M { fn run(&self) {} }\n"),
        ]);
        let go = idx(&g, "go");
        let callees: Vec<&str> =
            g.edges[go].iter().map(|e| g.fns[e.callee].qual.as_str()).collect();
        assert!(callees.contains(&"L::run"), "{callees:?}");
        assert!(!callees.contains(&"M::run"), "{callees:?}");
    }

    #[test]
    fn unresolved_extern_counted() {
        let g = graph(&[("a", "a/src/lib.rs", "fn go() { std_thing(); }\n")]);
        assert_eq!(g.unresolved_calls, 1);
        assert!(g.edges[idx(&g, "go")].is_empty());
    }

    #[test]
    fn spawn_nodes_are_detached_but_rootable() {
        let src =
            "fn serve() { spawn(move || { worker(); }); }\nfn worker() { sink(); }\nfn sink() {}\n";
        let g = graph(&[("a", "a/src/lib.rs", src)]);
        let serve = idx(&g, "serve");
        let r = g.reach(&[serve], false);
        assert!(!r.reachable[idx(&g, "worker")], "spawned work not reachable from spawner");
        let spawns = g.spawn_nodes(&["a".to_string()]);
        assert_eq!(spawns.len(), 1);
        let r2 = g.reach(&spawns, false);
        assert!(r2.reachable[idx(&g, "sink")], "spawn roots reach their closure's callees");
        assert_eq!(g.chain_str(&r2, idx(&g, "sink")), "serve::<spawn@1> → worker → sink");
    }

    #[test]
    fn reach_chain_prints_root_to_sink() {
        let src = "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n";
        let g = graph(&[("a", "a/src/lib.rs", src)]);
        let r = g.reach(&[idx(&g, "root")], false);
        assert_eq!(g.chain_str(&r, idx(&g, "leaf")), "root → mid → leaf");
    }

    #[test]
    fn find_roots_reports_missing() {
        let g = graph(&[("a", "a/src/lib.rs", "fn root() {}\n")]);
        let (ids, missing) = g.find_roots(&[
            ("a".to_string(), "root".to_string()),
            ("a".to_string(), "ghost".to_string()),
        ]);
        assert_eq!(ids.len(), 1);
        assert_eq!(missing, ["a::ghost"]);
    }

    #[test]
    fn fn_at_picks_innermost() {
        let src = "fn outer() {\n fn inner() {\n  x();\n }\n}\n";
        let g = graph(&[("a", "a/src/lib.rs", src)]);
        let id = g.fn_at("a/src/lib.rs", 3).unwrap();
        assert_eq!(g.fns[id].qual, "inner");
    }
}
