//! Lock-order fixture. Never compiled — only lexed by
//! `tests/graph_rules.rs` with a manifest of `outer = 10, inner = 20`:
//! `forwards` nests in increasing rank (fine), `backwards` inverts it
//! (an acquisition-order finding), and `caller` reaches the inversion
//! through a helper so the edge must be mined across fn boundaries.

use she_core::OrderedMutex;

pub struct Pair {
    first: OrderedMutex<u32>,
    second: OrderedMutex<u32>,
}

pub fn make() -> Pair {
    Pair {
        first: OrderedMutex::new("outer", 0),
        second: OrderedMutex::new("inner", 0),
    }
}

pub fn forwards(p: &Pair) -> u32 {
    let lo = p.first.lock();
    let hi = p.second.lock();
    *lo + *hi
}

pub fn backwards(p: &Pair) -> u32 {
    let hi = p.second.lock();
    let lo = p.first.lock();
    *lo + *hi
}

pub fn caller(p: &Pair) -> u32 {
    let hi = p.second.lock();
    tail(p) + *hi
}

fn tail(p: &Pair) -> u32 {
    *p.first.lock()
}
