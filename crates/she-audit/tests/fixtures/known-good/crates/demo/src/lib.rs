//! Rule-clean fixture. Never compiled — only lexed by
//! `tests/audit_self.rs`, which asserts the audit reports zero findings
//! here: checked conversions instead of casts, a ranked OrderedMutex
//! instead of a raw mutex, a properly-annotated allow, and unwraps only
//! inside test code.

pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn low_half(x: u64) -> u32 {
    u32::try_from(x & 0xFFFF_FFFF).unwrap_or(u32::MAX)
}

pub fn ranked_lock() -> u32 {
    let m = she_core::OrderedMutex::new("listed", 7u32);
    *m.lock()
}

pub fn annotated() -> u32 {
    // audit:allow(panic): fixture exercising a well-formed allow
    [1u32].first().copied().unwrap()
}

pub fn bounded_log(log: &mut Vec<u32>, x: u32, cap: usize) {
    if log.len() >= cap {
        log.remove(0);
    }
    log.push(x);
}

pub fn annotated_growth(v: &mut Vec<u32>, batch: &[u32]) {
    // audit:allow(growth): grows by at most one element per batch entry
    for &x in batch {
        v.push(x);
    }
}

pub fn hand_off(s: &mut std::net::TcpStream, out: &[u8]) -> std::io::Result<()> {
    // audit:allow(blocking): runs on the detached per-connection thread
    s.write_all(out)
}

// ---- v2 reachability counterparts ----

/// Blocking root (`demo_cfg().blocking_roots`): exists (a missing root
/// is itself a finding), reaches only panic-free, non-blocking code,
/// and covers the legacy `blocking_files` entry for this file.
pub fn reactor_loop(v: &[u32]) -> Option<u32> {
    first(v)
}

/// Serving root (`demo_cfg().serving_roots`): same, for the
/// reachable-panic split.
pub fn serve_loop(v: &[u32]) -> Option<u32> {
    first(v)
}

/// Wire-decoded length clamped at birth: quiet under the wiresize rule.
pub fn inflate(r: &mut Reader, cap: usize) -> Vec<u8> {
    let n = (r.u64() as usize).min(cap);
    Vec::with_capacity(n)
}

// A string mentioning Mutex::new must not confuse the lexer:
pub const DOC: &str = "call Mutex::new(0) and x as u32 here";

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_tests_are_fine() {
        assert_eq!(super::first(&[3]).unwrap(), 3);
        let v: u32 = u32::try_from(5u64).unwrap();
        assert_eq!(v, 5);
    }
}
