//! Deliberately rule-violating fixture. Never compiled — only lexed by
//! `tests/audit_self.rs`, which asserts every audit rule fires on this
//! file. If you add a rule to she-audit, add a violation here.

use std::sync::Mutex;

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn last(v: &[u32]) -> u32 {
    *v.last().expect("non-empty")
}

pub fn low_half(x: u64) -> u32 {
    x as u32
}

pub fn raw_lock() -> Mutex<u32> {
    Mutex::new(0)
}

pub fn ghost_lock() {
    let _m = she_core::OrderedMutex::new("ghost", 0u8);
}

// audit:allow(panic)
pub fn malformed_allow_above() {
    panic!("the allow above has no reason, so it is itself a finding");
}

pub fn boom() -> ! {
    unreachable!("unannotated")
}

pub fn hoard(log: &mut Vec<u32>, x: u32) {
    log.push(x);
}

pub fn stall_the_reactor(s: &mut std::net::TcpStream, buf: &mut [u8]) {
    s.read_exact(buf).unwrap();
}
