//! Deliberately rule-violating fixture. Never compiled — only lexed by
//! `tests/audit_self.rs`, which asserts every audit rule fires on this
//! file. If you add a rule to she-audit, add a violation here.

use std::sync::Mutex;

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn last(v: &[u32]) -> u32 {
    *v.last().expect("non-empty")
}

pub fn low_half(x: u64) -> u32 {
    x as u32
}

pub fn raw_lock() -> Mutex<u32> {
    Mutex::new(0)
}

pub fn ghost_lock() {
    let _m = she_core::OrderedMutex::new("ghost", 0u8);
}

// audit:allow(panic)
pub fn malformed_allow_above() {
    panic!("the allow above has no reason, so it is itself a finding");
}

pub fn boom() -> ! {
    unreachable!("unannotated")
}

pub fn hoard(log: &mut Vec<u32>, x: u32) {
    log.push(x);
}

pub fn stall_the_reactor(s: &mut std::net::TcpStream, buf: &mut [u8]) {
    s.read_exact(buf).unwrap();
}

// ---- v2 reachability violations ----

/// Blocking root (`demo_cfg().blocking_roots`): reaches the blocking
/// `read_exact` through a helper, so the finding must carry the chain.
pub fn reactor_loop(s: &mut std::net::TcpStream, buf: &mut [u8]) {
    stall_the_reactor(s, buf);
}

/// Serving root (`demo_cfg().serving_roots`): reaches `first`'s unwrap,
/// which must reclassify from the ratcheted `panic` rule to the hard
/// `panic-reachable` rule.
pub fn serve_loop(v: &[u32]) -> u32 {
    first(v)
}

/// Allocation sized straight off a decoded wire length, never clamped.
pub fn inflate(r: &mut Reader) -> Vec<u8> {
    let n = r.u64() as usize;
    Vec::with_capacity(n)
}

/// `unsafe` outside the audited boundary file set.
pub fn poke(p: *const u8) -> u8 {
    unsafe { *p }
}
