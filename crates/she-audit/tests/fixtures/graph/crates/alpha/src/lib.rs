//! Call-graph construction fixture. Never compiled — only lexed and
//! parsed by `tests/graph_rules.rs`, which asserts the graph's shape:
//! trait fan-out, closures attributed to the enclosing fn, spawn
//! closures detached onto synthetic nodes, cross-crate method
//! resolution, and unresolved externs counted (not silently dropped).

pub trait Sink {
    fn emit(&self);
    fn twice(&self) {
        self.emit();
        self.emit();
    }
}

pub struct A;
pub struct B;

impl Sink for A {
    fn emit(&self) {
        a_leaf();
    }
}

impl Sink for B {
    fn emit(&self) {
        b_leaf();
    }
}

fn a_leaf() {}
fn b_leaf() {}

/// Trait-object dispatch must fan out to every implementor.
pub fn drive(s: &dyn Sink) {
    s.emit();
}

/// Calls inside a plain closure belong to the enclosing fn.
pub fn closures() {
    let add = |x: u32| helper(x);
    add(1);
}

fn helper(_x: u32) {}

/// The spawn closure's body belongs to a detached synthetic node, not
/// to `spawner` — but `foreground` stays attributed here.
pub fn spawner() {
    std::thread::spawn(move || {
        background();
    });
    foreground();
}

fn background() {}
fn foreground() {}

/// A call no workspace fn answers: counted as unresolved.
pub fn external() {
    zzz_not_in_this_workspace();
}

/// A typed cross-crate receiver resolves into `beta`.
pub fn cross(w: &Wire) {
    w.pull();
}
