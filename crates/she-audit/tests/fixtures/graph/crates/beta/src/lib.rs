//! The cross-crate half of the call-graph fixture: `alpha::cross` takes
//! a `&Wire` parameter and calls `w.pull()`, which must resolve to the
//! method below via the parameter type hint.

pub struct Wire;

impl Wire {
    pub fn pull(&self) {
        pull_leaf();
    }
}

fn pull_leaf() {}
