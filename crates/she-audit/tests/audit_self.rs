//! Self-tests for the audit gate: known-bad fixtures must fire every
//! rule, known-good fixtures must be silent, mutated protocol copies
//! must trip the drift rule, and — the gate behind the gate — the real
//! workspace must pass with a zero serving-path baseline.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use she_audit::{audit, Finding, RuleConfig};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// A config policing the fixture's `demo` crate with an empty ratchet
/// and a one-entry lock manifest.
fn demo_cfg() -> RuleConfig {
    RuleConfig {
        panic_crates: vec!["demo".into()],
        cast_crates: vec!["demo".into()],
        growth_crates: vec!["demo".into()],
        lock_crates: vec!["demo".into()],
        blocking_files: vec!["demo/src/lib.rs".into()],
        blocking_roots: vec![("demo".into(), "reactor_loop".into())],
        serving_roots: vec![("demo".into(), "serve_loop".into())],
        panic_pinned_crates: vec!["demo".into()],
        wiresize_crates: vec!["demo".into()],
        unsafe_files: vec![],
        locks: [("listed".to_string(), 10u16)].into_iter().collect(),
        ratchet: BTreeMap::new(),
        protocol: None,
    }
}

fn rules_fired(findings: &[Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

#[test]
fn known_bad_fixture_fires_every_rule() {
    let report = audit(&fixture("known-bad"), &demo_cfg()).expect("audit runs");
    assert!(!report.ok(), "known-bad fixture must fail the gate");
    assert_eq!(
        rules_fired(&report.findings),
        [
            "allow",
            "blocking",
            "cast",
            "growth",
            "lock",
            "panic",
            "panic-reachable",
            "unsafe",
            "wiresize"
        ]
    );

    let msgs: Vec<&str> = report.findings.iter().map(|f| f.msg.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("unwrap")), "unwrap finding: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("narrowing `as u32`")), "cast finding: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("grows a collection")), "growth finding: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("raw Mutex::new")), "raw mutex finding: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("\"ghost\" has no rank")), "unknown name: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("stale manifest entry")), "stale entry: {msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("malformed audit:allow")), "malformed allow: {msgs:?}");
    // Reachability findings carry the root → … → sink chain.
    assert!(
        msgs.iter().any(|m| m.contains("blocks the reactor thread")
            && m.contains("reactor_loop → stall_the_reactor")),
        "blocking chain: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("reachable from serving roots") && m.contains("serve_loop")),
        "reachable-panic chain: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("unclamped wire-decoded length")),
        "wiresize finding: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("outside the audited boundary")),
        "unsafe finding: {msgs:?}"
    );

    // The gate lines must cover the hard rules and the ratcheted rules.
    for rule in [
        "panic:",
        "cast:",
        "growth:",
        "lock:",
        "allow:",
        "blocking:",
        "panic-reachable:",
        "wiresize:",
        "unsafe:",
    ] {
        assert!(
            report.gate_failures.iter().any(|g| g.starts_with(rule)),
            "missing {rule} gate failure in {:?}",
            report.gate_failures
        );
    }
}

#[test]
fn known_good_fixture_is_quiet() {
    let report = audit(&fixture("known-good"), &demo_cfg()).expect("audit runs");
    assert!(report.ok(), "gate failures on known-good: {:?}", report.gate_failures);
    assert!(report.findings.is_empty(), "findings on known-good: {:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
}

/// A ratchet baseline above the live count must also fail: improvements
/// have to be banked by lowering the committed number.
#[test]
fn unbanked_improvement_fails_the_gate() {
    let mut cfg = demo_cfg();
    cfg.ratchet.insert("cast/demo".to_string(), 5);
    let report = audit(&fixture("known-good"), &cfg).expect("audit runs");
    assert!(!report.ok());
    assert!(
        report.gate_failures.iter().any(|g| g.contains("tighten audit-ratchet.toml")),
        "expected shrink failure, got {:?}",
        report.gate_failures
    );
}

/// Copy the real protocol source + doc into a scratch dir, optionally
/// mutate them, and run an audit policing nothing but protocol drift.
fn protocol_audit(label: &str, mutate: impl Fn(String, String) -> (String, String)) -> Vec<String> {
    let root = workspace_root();
    let rs = fs::read_to_string(root.join("crates/she-server/src/protocol.rs")).expect("read rs");
    let md = fs::read_to_string(root.join("docs/PROTOCOL.md")).expect("read md");
    let (rs, md) = mutate(rs, md);

    let dir = std::env::temp_dir().join(format!("she-audit-proto-{label}-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(dir.join("protocol.rs"), rs).expect("write rs");
    fs::write(dir.join("PROTOCOL.md"), md).expect("write md");

    let cfg = RuleConfig {
        panic_crates: vec![],
        cast_crates: vec![],
        growth_crates: vec![],
        lock_crates: vec![],
        blocking_files: vec![],
        blocking_roots: vec![],
        serving_roots: vec![],
        panic_pinned_crates: vec![],
        wiresize_crates: vec![],
        unsafe_files: vec![],
        locks: BTreeMap::new(),
        ratchet: BTreeMap::new(),
        protocol: Some((dir.join("protocol.rs"), dir.join("PROTOCOL.md"))),
    };
    let report = audit(&dir, &cfg).expect("audit runs");
    fs::remove_dir_all(&dir).ok();
    report.gate_failures
}

#[test]
fn pristine_protocol_copies_pass() {
    let failures = protocol_audit("pristine", |rs, md| (rs, md));
    assert!(failures.is_empty(), "pristine copies must pass: {failures:?}");
}

#[test]
fn renumbered_opcode_fails_the_gate() {
    // Move CLUSTER_STATUS off the documented value: the doc row now
    // points at a constant that no longer exists at 0x33.
    let failures = protocol_audit("renumber", |rs, md| {
        assert!(rs.contains("pub const CLUSTER_STATUS: u8 = 0x33;"), "fixture drifted");
        (
            rs.replace(
                "pub const CLUSTER_STATUS: u8 = 0x33;",
                "pub const CLUSTER_STATUS: u8 = 0x34;",
            ),
            md,
        )
    });
    assert!(
        failures.iter().any(|g| g.starts_with("protocol:")),
        "renumbering must trip protocol drift: {failures:?}"
    );
}

#[test]
fn duplicate_opcode_fails_the_gate() {
    let failures = protocol_audit("duplicate", |rs, md| {
        assert!(rs.contains("pub const INSERT_BATCH: u8 = 0x02;"), "fixture drifted");
        (rs.replace("pub const INSERT_BATCH: u8 = 0x02;", "pub const INSERT_BATCH: u8 = 0x01;"), md)
    });
    assert!(
        failures.iter().any(|g| g.starts_with("protocol:")),
        "duplicate opcode must trip protocol drift: {failures:?}"
    );
}

#[test]
fn undocumented_opcode_fails_the_gate() {
    // Drop the INSERT row from the doc: the constant becomes stale.
    let failures = protocol_audit("undocumented", |rs, md| {
        let row_start = md.find("| `0x01` |").expect("INSERT doc row present");
        let row_end = md[row_start..].find('\n').map(|n| row_start + n + 1).expect("row newline");
        (rs, format!("{}{}", &md[..row_start], &md[row_end..]))
    });
    assert!(
        failures.iter().any(|g| g.starts_with("protocol:")),
        "undocumented opcode must trip protocol drift: {failures:?}"
    );
}

#[test]
fn version_bump_without_doc_section_fails_the_gate() {
    // Negotiating v7 without a `## Protocol v7` section is drift: the
    // doc is the normative spec for every negotiated revision.
    let failures = protocol_audit("verbump", |rs, md| {
        assert!(rs.contains("pub const PROTOCOL_VERSION: u16 = "), "fixture drifted");
        let bumped = rs.replacen(
            "pub const PROTOCOL_VERSION: u16 = 6;",
            "pub const PROTOCOL_VERSION: u16 = 7;",
            1,
        );
        assert_ne!(bumped, rs, "version constant moved off 6; update this fixture");
        (bumped, md)
    });
    assert!(
        failures.iter().any(|g| g.starts_with("protocol:")),
        "a version bump without a doc section must trip protocol drift: {failures:?}"
    );
}

#[test]
fn doc_section_beyond_negotiated_version_fails_the_gate() {
    let failures = protocol_audit("verfuture", |rs, md| {
        (rs, format!("{md}\n## Protocol v9: speculative extensions\n\nNot negotiated.\n"))
    });
    assert!(
        failures.iter().any(|g| g.starts_with("protocol:")),
        "documenting an unnegotiated version must trip protocol drift: {failures:?}"
    );
}

/// The gate behind the gate: `cargo test` fails if the tree this test
/// compiled from does not pass its own audit with the committed
/// manifests — including the zero baseline for the serving path.
#[test]
fn real_workspace_is_clean() {
    let root = workspace_root();
    let cfg = RuleConfig::for_workspace(&root).expect("manifests parse");
    let report = audit(&root, &cfg).expect("audit runs");
    assert!(report.ok(), "the workspace fails its own audit: {:?}", report.gate_failures);
    for crate_name in ["she-server", "she-replica"] {
        let n = report.findings.iter().filter(|f| f.crate_name == crate_name).count();
        assert_eq!(n, 0, "{crate_name} must stay at a zero finding baseline");
    }
    // The reachability rules are only as good as their root set: if a
    // rename ever empties it, this is the assertion that notices (a
    // missing individual root is already a hard finding).
    assert!(report.graph_stats.roots > 0, "reactor/serving root set must be non-empty");
    assert!(
        report.graph_stats.nodes > 100 && report.graph_stats.edges > 100,
        "implausibly small workspace graph: {:?}",
        report.graph_stats
    );
    // Reachable-panic and reactor-blocking stay pinned at zero across
    // the whole serving tier.
    for rule in ["panic-reachable", "blocking", "wiresize", "unsafe"] {
        let n = report.findings.iter().filter(|f| f.rule == rule).count();
        assert_eq!(n, 0, "{rule} findings must be zero on the real workspace");
    }
}
