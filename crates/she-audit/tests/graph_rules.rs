//! Integration tests for the v2 call graph and the graph-driven rules,
//! over the fixture trees in `tests/fixtures/graph` and
//! `tests/fixtures/lock-order`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use she_audit::{discover, lex, parse, CallGraph, Lexed};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

/// Lex + parse a fixture tree the same way the audit engine does.
fn load(name: &str) -> (CallGraph, BTreeMap<String, Lexed>) {
    let files = discover(&fixture(name)).expect("fixture discovers");
    let mut lexed = BTreeMap::new();
    let mut parsed = Vec::new();
    for f in &files {
        if f.test_only {
            continue;
        }
        let src = std::fs::read_to_string(&f.abs_path).expect("fixture reads");
        let lx = lex(&src);
        parsed.push(parse::parse_file(&f.crate_name, &f.rel_path, &lx));
        lexed.insert(f.rel_path.clone(), lx);
    }
    (CallGraph::build(parsed), lexed)
}

fn idx(g: &CallGraph, qual: &str) -> usize {
    g.fns.iter().position(|f| f.qual == qual).unwrap_or_else(|| panic!("no fn {qual}"))
}

fn callees<'g>(g: &'g CallGraph, qual: &str) -> Vec<&'g str> {
    g.edges[idx(g, qual)].iter().map(|e| g.fns[e.callee].qual.as_str()).collect()
}

#[test]
fn trait_object_call_fans_out_to_every_implementor() {
    let (g, _) = load("graph");
    let c = callees(&g, "drive");
    assert!(c.contains(&"A::emit") && c.contains(&"B::emit"), "{c:?}");
}

#[test]
fn trait_default_body_calls_the_required_method() {
    let (g, _) = load("graph");
    let c = callees(&g, "Sink::twice");
    assert!(c.contains(&"A::emit") && c.contains(&"B::emit"), "{c:?}");
}

#[test]
fn closure_calls_belong_to_the_enclosing_fn() {
    let (g, _) = load("graph");
    assert!(callees(&g, "closures").contains(&"helper"));
}

#[test]
fn spawn_closure_is_a_detached_synthetic_node() {
    let (g, _) = load("graph");
    let r = g.reach(&[idx(&g, "spawner")], false);
    assert!(r.reachable[idx(&g, "foreground")], "inline work stays attributed");
    assert!(!r.reachable[idx(&g, "background")], "spawned work must not taint the spawner");

    let spawns = g.spawn_nodes(&["alpha".to_string()]);
    assert_eq!(spawns.len(), 1, "one synthetic spawn node");
    let r2 = g.reach(&spawns, false);
    assert!(r2.reachable[idx(&g, "background")], "the spawn node roots its closure");
}

#[test]
fn cross_crate_param_type_resolves_the_method() {
    let (g, _) = load("graph");
    assert!(callees(&g, "cross").contains(&"Wire::pull"), "{:?}", callees(&g, "cross"));
    let pull = idx(&g, "Wire::pull");
    assert_eq!(g.fns[pull].crate_name, "beta");
}

#[test]
fn unresolved_externs_are_counted_not_dropped() {
    let (g, _) = load("graph");
    assert!(g.edges[idx(&g, "external")].is_empty());
    assert!(g.unresolved_calls > 0);
    let stats = g.stats(0);
    assert_eq!(stats.unresolved_calls, g.unresolved_calls);
    assert_eq!(stats.nodes, g.fns.len());
}

#[test]
fn lock_order_inversion_is_mined_within_and_across_fns() {
    let (g, lexed) = load("lock-order");
    let manifest: BTreeMap<String, u16> =
        [("outer".to_string(), 10u16), ("inner".to_string(), 20u16)].into_iter().collect();
    let findings =
        she_audit::rules::lock_order::check_order(&g, &lexed, &["demo".to_string()], &manifest);
    // `forwards` is rank-increasing: no finding may name it.
    assert!(
        findings.iter().all(|f| !f.msg.contains("in forwards")),
        "forwards flagged: {findings:?}"
    );
    // `backwards` inverts in one fn; `caller` inverts through `tail`.
    assert!(
        findings.iter().any(|f| f.msg.contains("in backwards")),
        "intra-fn inversion missed: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.msg.contains("via tail")),
        "cross-fn inversion missed: {findings:?}"
    );
}
