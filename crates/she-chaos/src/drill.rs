//! The kill-primary failover drill: a partitioned cluster under a seeded
//! workload loses one primary outright, the surviving nodes must elect
//! and converge on a new map within the failover budget, and a
//! scatter-gather battery through a surviving coordinator must stay
//! bit-for-bit identical to a single in-process mirror of the full
//! stream.
//!
//! The drill is the cluster-layer counterpart of [`crate::soak`]: the
//! soak fires faults at one replication link, the drill removes a whole
//! node and checks the *membership* machinery — deterministic election
//! (lowest-id live replica holder), gossip convergence, and query
//! re-routing — end to end against real servers.

use she_cluster::{ClusterNode, NodeConfig};
use she_hash::{mix64, RandomSource, Xoshiro256};
use she_server::protocol::Response;
use she_server::{cluster_op, Client, ClusterMap, DirectEngine, EngineConfig, NodeRef};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Everything the drill needs; [`ClusterDrillConfig::default`] is the
/// check.sh configuration.
#[derive(Debug, Clone)]
pub struct ClusterDrillConfig {
    /// Master seed for the workload and probe set.
    pub seed: u64,
    /// Cluster size (one partition per node; ≥ 3 so a kill leaves a
    /// functioning majority of untouched partitions).
    pub nodes: usize,
    /// Keys inserted before the kill.
    pub keys: usize,
    /// Cluster-wide window, in items.
    pub window: u64,
    /// Cluster-wide memory budget per structure.
    pub memory_bytes: usize,
    /// Heartbeat timeout after which a silent peer is declared dead.
    pub heartbeat_timeout_ms: u64,
}

impl Default for ClusterDrillConfig {
    fn default() -> Self {
        Self {
            seed: 0xFA11_0E5A_D411,
            nodes: 3,
            keys: 3_000,
            window: 6 * 1024,
            memory_bytes: 12 * 1024,
            heartbeat_timeout_ms: 800,
        }
    }
}

/// What the drill observed. A report implies every check passed; the
/// fields feed the human-readable summary.
#[derive(Debug, Clone)]
pub struct ClusterDrillReport {
    /// Cluster size at start.
    pub nodes: usize,
    /// Keys inserted (cluster and mirror alike).
    pub inserted: u64,
    /// Node id of the killed primary.
    pub killed: u64,
    /// Node id promoted to own the orphaned partition.
    pub promoted: u64,
    /// Wall-clock from kill to every survivor serving the new map.
    pub failover_ms: u64,
    /// Battery answers compared bit-for-bit after failover.
    pub battery: usize,
}

impl std::fmt::Display for ClusterDrillReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster drill: {} nodes, {} keys, killed primary {} — node {} promoted in {}ms",
            self.nodes, self.inserted, self.killed, self.promoted, self.failover_ms
        )?;
        write!(f, "  post-failover scatter-gather: {} answers, bit-for-bit vs mirror", self.battery)
    }
}

/// Outer bound on any single wait inside the drill.
const DRILL_TIMEOUT: Duration = Duration::from_secs(60);

fn ctx<E: std::fmt::Display>(what: &str) -> impl FnOnce(E) -> String + '_ {
    move |e| format!("{what}: {e}")
}

/// Grab `n` distinct loopback ports by binding and immediately releasing
/// them; the tiny reuse window is acceptable in a drill.
fn reserve_addrs(n: usize) -> Result<Vec<String>, String> {
    let mut listeners = Vec::with_capacity(n);
    for _ in 0..n {
        listeners.push(TcpListener::bind("127.0.0.1:0").map_err(ctx("reserve port"))?);
    }
    let mut addrs = Vec::with_capacity(n);
    for l in &listeners {
        addrs.push(l.local_addr().map_err(ctx("read reserved port"))?.to_string());
    }
    Ok(addrs)
}

fn connect_v4(addr: &str) -> Result<Client, String> {
    let mut c = Client::connect_timeout(addr, Duration::from_secs(5))
        .map_err(ctx("connect to cluster node"))?;
    let v = c.hello().map_err(ctx("hello"))?;
    if v < 4 {
        return Err(format!("node {addr} negotiated protocol v{v}, need v4"));
    }
    Ok(c)
}

/// Run the drill; `Err` carries the first failed check (the caller
/// prints the seed for replay).
pub fn run(cfg: &ClusterDrillConfig) -> Result<ClusterDrillReport, String> {
    if cfg.nodes < 3 {
        return Err("cluster drill needs at least 3 nodes".to_string());
    }
    let addrs = reserve_addrs(cfg.nodes)?;
    let roster: Vec<NodeRef> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| NodeRef {
            node_id: u64::try_from(i).unwrap_or(u64::MAX) + 1,
            addr: a.clone(),
        })
        .collect();

    let mut nodes: Vec<ClusterNode> = Vec::with_capacity(cfg.nodes);
    for r in &roster {
        nodes.push(
            ClusterNode::start(NodeConfig {
                node_id: r.node_id,
                roster: roster.clone(),
                window: cfg.window,
                memory_bytes: cfg.memory_bytes,
                seed: 7,
                gossip_ms: 50,
                heartbeat_timeout_ms: cfg.heartbeat_timeout_ms,
                ..Default::default()
            })
            .map_err(ctx("start cluster node"))?,
        );
    }
    let map = nodes[0].directory().get();

    // ---- seeded workload, routed like a cluster-aware writer ----------
    let mut mirror = DirectEngine::new(EngineConfig {
        window: cfg.window,
        shards: cfg.nodes,
        memory_bytes: cfg.memory_bytes,
        seed: 7,
    });
    let mut rng = Xoshiro256::new(mix64(cfg.seed ^ 0xD1CE_D1CE));
    let mut inserted = 0u64;
    for stream in [0u8, 1u8] {
        let count = if stream == 0 { cfg.keys } else { cfg.keys / 4 };
        let keys: Vec<u64> = (0..count).map(|_| rng.next_range(0, 4_096)).collect();
        for &k in &keys {
            mirror.insert(stream, k);
        }
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); cfg.nodes];
        for &k in &keys {
            // audit:allow(growth): one entry per workload key
            buckets[map.partition_of(k)].push(k);
        }
        for (p, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let mut c = connect_v4(&map.partitions[p].primary.addr)?;
            inserted += c.insert_batch(stream, bucket).map_err(ctx("insert on partition"))?;
        }
    }

    // ---- drain every partition's replica before the kill --------------
    // The primary knows its subscriber's acked sequence; a kill before
    // the tail drains would be testing data loss, not failover.
    let drain_by = Instant::now() + DRILL_TIMEOUT;
    for part in &map.partitions {
        loop {
            let info = connect_v4(&part.primary.addr)?
                .cluster_status()
                .map_err(ctx("partition cluster status"))?;
            if info.head == 0 || info.peers.iter().any(|p| p.acked >= info.head) {
                break;
            }
            if Instant::now() >= drain_by {
                return Err(format!(
                    "partition {} replica never drained (head {}, peers {:?})",
                    part.primary.node_id, info.head, info.peers
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // ---- kill partition 0's primary -----------------------------------
    let killed = map.partitions[0].primary.node_id;
    let victim_addr = map.partitions[0].primary.addr.clone();
    let victim_at = nodes
        .iter()
        .position(|n| n.local_addr().to_string() == victim_addr)
        .ok_or_else(|| format!("node {killed} not found in the started set"))?;
    let victim = nodes.remove(victim_at);
    let killed_at = Instant::now();
    victim.shutdown();
    victim.wait();

    // ---- every survivor must converge on the promoted map -------------
    let deadline = killed_at + DRILL_TIMEOUT;
    let new_map: ClusterMap = loop {
        let mut views: Vec<ClusterMap> = nodes.iter().map(|n| n.directory().get()).collect();
        let settled = views.iter().all(|v| {
            v.epoch > map.epoch && v.partitions[0].primary.node_id != killed && v == &views[0]
        });
        if settled {
            break views.remove(0);
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "failover did not converge within {}s (epochs: {:?})",
                DRILL_TIMEOUT.as_secs(),
                views.iter().map(|v| v.epoch).collect::<Vec<_>>()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let failover_ms = u64::try_from(killed_at.elapsed().as_millis()).unwrap_or(u64::MAX);
    let promoted = new_map.partitions[0].primary.node_id;

    // ---- post-failover battery, bit-for-bit vs the mirror -------------
    let coordinator = nodes.last().ok_or("no survivors")?.local_addr().to_string();
    let mut c = connect_v4(&coordinator)?;
    let probes: Vec<u64> = (0..64).map(|_| rng.next_range(0, 4_096)).collect();
    let mut battery = 0usize;
    for &k in &probes {
        match c.cluster_query(cluster_op::MEMBER, k).map_err(ctx("cluster member"))? {
            Response::Bool(b) if b == mirror.member(k) => battery += 1,
            other => return Err(format!("member({k}) diverged after failover: {other:?}")),
        }
        match c.cluster_query(cluster_op::FREQ, k).map_err(ctx("cluster freq"))? {
            Response::U64(n) if n == mirror.frequency(k) => battery += 1,
            other => return Err(format!("freq({k}) diverged after failover: {other:?}")),
        }
    }
    match c.cluster_query(cluster_op::CARD, 0).map_err(ctx("cluster card"))? {
        Response::F64(v) if v.to_bits() == mirror.cardinality().to_bits() => battery += 1,
        other => return Err(format!("cardinality diverged after failover: {other:?}")),
    }
    match c.cluster_query(cluster_op::SIM, 0).map_err(ctx("cluster sim"))? {
        Response::F64(v) if v.to_bits() == mirror.similarity().to_bits() => battery += 1,
        other => return Err(format!("similarity diverged after failover: {other:?}")),
    }

    for n in nodes {
        n.shutdown();
        n.wait();
    }

    Ok(ClusterDrillReport { nodes: cfg.nodes, inserted, killed, promoted, failover_ms, battery })
}
