//! The kill-primary failover drill: a quorum-replicated cluster under a
//! seeded workload loses primaries outright — by default the partition-0
//! primary and then the node just promoted in its place — while every
//! `CLUSTER_JOIN` gossip exchange is routed through a fault proxy
//! (partial reads, delays, mid-frame resets, duplicated deliveries). The
//! surviving nodes must elect and converge on a new map within the
//! failover budget after every kill, acknowledged writes must continue
//! from the correct offset, and a scatter-gather battery through a
//! surviving coordinator must stay bit-for-bit identical to a single
//! in-process mirror of the full stream.
//!
//! The drill is the cluster-layer counterpart of [`crate::soak`]: the
//! soak fires faults at one replication link, the drill removes whole
//! nodes and checks the *membership* machinery — deterministic election
//! over the full holder set (lowest-id live holder), replica top-up back
//! toward the replication factor, gossip convergence through a hostile
//! network, and query re-routing — end to end against real servers.

use crate::fault::FaultConfig;
use crate::proxy::ChaosProxy;
use she_cluster::{ClusterNode, NodeConfig};
use she_hash::{mix64, RandomSource, Xoshiro256};
use she_server::protocol::Response;
use she_server::{
    cluster_op, Client, ClusterMap, DirectEngine, EngineConfig, NodeRef, PartitionMap,
};
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// Everything the drill needs; [`ClusterDrillConfig::default`] is the
/// check.sh configuration.
#[derive(Debug, Clone)]
pub struct ClusterDrillConfig {
    /// Master seed for the workload, the probe set, and the gossip fault
    /// schedules.
    pub seed: u64,
    /// Cluster size (one partition per node; ≥ 3 so a kill leaves a
    /// functioning majority of untouched partitions).
    pub nodes: usize,
    /// Keys inserted before the first kill; each later round inserts a
    /// quarter more.
    pub keys: usize,
    /// Cluster-wide window, in items.
    pub window: u64,
    /// Cluster-wide memory budget per structure.
    pub memory_bytes: usize,
    /// Heartbeat timeout after which a silent peer is declared dead.
    pub heartbeat_timeout_ms: u64,
    /// Replication factor: holders per partition, primary included.
    pub replication: u16,
    /// Primaries to kill, one per round: each round kills partition 0's
    /// *current* primary, so round two takes out the freshly promoted
    /// node. Must leave at least one survivor.
    pub kills: usize,
    /// Route every gossip exchange through a [`ChaosProxy`] drawing from
    /// [`FaultConfig::gossip`] (drops, delays, mid-frame resets,
    /// duplicated deliveries).
    pub gossip_faults: bool,
}

impl Default for ClusterDrillConfig {
    fn default() -> Self {
        Self {
            seed: 0xFA11_0E5A_D411,
            nodes: 3,
            keys: 3_000,
            window: 6 * 1024,
            memory_bytes: 12 * 1024,
            heartbeat_timeout_ms: 800,
            replication: 2,
            kills: 2,
            gossip_faults: true,
        }
    }
}

/// What the drill observed. A report implies every check passed; the
/// fields feed the human-readable summary.
#[derive(Debug, Clone)]
pub struct ClusterDrillReport {
    /// Cluster size at start.
    pub nodes: usize,
    /// Replication factor the cluster ran at.
    pub replication: u16,
    /// Keys inserted (cluster and mirror alike), all rounds.
    pub inserted: u64,
    /// Node ids killed, in order.
    pub killed: Vec<u64>,
    /// Partition 0's primary after each kill.
    pub promoted: Vec<u64>,
    /// Wall-clock from each kill to every survivor serving the new map.
    pub failover_ms: Vec<u64>,
    /// Faults the gossip proxies injected (0 when faults were off).
    pub gossip_faults: u64,
    /// Battery answers compared bit-for-bit after the last failover.
    pub battery: usize,
}

impl std::fmt::Display for ClusterDrillReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "cluster drill: {} nodes at RF={}, {} keys, killed {:?} — promoted {:?} in {:?}ms",
            self.nodes,
            self.replication,
            self.inserted,
            self.killed,
            self.promoted,
            self.failover_ms
        )?;
        writeln!(f, "  gossip faults injected: {}", self.gossip_faults)?;
        write!(f, "  post-failover scatter-gather: {} answers, bit-for-bit vs mirror", self.battery)
    }
}

/// Outer bound on any single wait inside the drill.
const DRILL_TIMEOUT: Duration = Duration::from_secs(60);

fn ctx<E: std::fmt::Display>(what: &str) -> impl FnOnce(E) -> String + '_ {
    move |e| format!("{what}: {e}")
}

/// Grab `n` distinct loopback ports by binding and immediately releasing
/// them; the tiny reuse window is acceptable in a drill.
fn reserve_addrs(n: usize) -> Result<Vec<String>, String> {
    let mut listeners = Vec::with_capacity(n);
    for _ in 0..n {
        listeners.push(TcpListener::bind("127.0.0.1:0").map_err(ctx("reserve port"))?);
    }
    let mut addrs = Vec::with_capacity(n);
    for l in &listeners {
        addrs.push(l.local_addr().map_err(ctx("read reserved port"))?.to_string());
    }
    Ok(addrs)
}

fn connect_v4(addr: &str) -> Result<Client, String> {
    let mut c = Client::connect_timeout(addr, Duration::from_secs(5))
        .map_err(ctx("connect to cluster node"))?;
    let v = c.hello().map_err(ctx("hello"))?;
    if v < 4 {
        return Err(format!("node {addr} negotiated protocol v{v}, need v4"));
    }
    Ok(c)
}

/// Block until every replica the map lists for this partition has acked
/// the primary's log head. Replicas subscribe with their node id, so the
/// primary's peer list carries `id@addr` labels we can match holders
/// against. A kill before the holders drain would be testing data loss,
/// not failover.
fn drain_partition(part: &PartitionMap, deadline: Instant) -> Result<(), String> {
    loop {
        let info = connect_v4(&part.primary.addr)?
            .cluster_status()
            .map_err(ctx("partition cluster status"))?;
        let caught = |id: u64| {
            let tag = format!("{id}@");
            info.peers.iter().any(|p| p.addr.starts_with(&tag) && p.acked >= info.head)
        };
        if info.head == 0 || part.replicas.iter().all(|r| caught(r.node_id)) {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "partition of primary {} never drained (head {}, peers {:?}, want {:?})",
                part.primary.node_id,
                info.head,
                info.peers,
                part.replicas.iter().map(|r| r.node_id).collect::<Vec<_>>()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Route one batch of keys into the cluster the way a map-aware writer
/// would, mirroring every key into the in-process engine first.
fn insert_routed(
    map: &ClusterMap,
    mirror: &mut DirectEngine,
    stream: u8,
    keys: &[u64],
) -> Result<u64, String> {
    for &k in keys {
        mirror.insert(stream, k);
    }
    let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); map.partitions.len()];
    for &k in keys {
        // audit:allow(growth): one entry per workload key
        buckets[map.partition_of(k)].push(k);
    }
    let mut inserted = 0u64;
    for (p, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let mut c = connect_v4(&map.partitions[p].primary.addr)?;
        inserted += c.insert_batch(stream, bucket).map_err(ctx("insert on partition"))?;
    }
    Ok(inserted)
}

/// Run the drill; `Err` carries the first failed check (the caller
/// prints the seed for replay).
pub fn run(cfg: &ClusterDrillConfig) -> Result<ClusterDrillReport, String> {
    if cfg.nodes < 3 {
        return Err("cluster drill needs at least 3 nodes".to_string());
    }
    if cfg.kills >= cfg.nodes {
        return Err(format!(
            "cluster drill needs a survivor: kills {} must stay below nodes {}",
            cfg.kills, cfg.nodes
        ));
    }
    let addrs = reserve_addrs(cfg.nodes)?;
    let roster: Vec<NodeRef> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| NodeRef {
            node_id: u64::try_from(i).unwrap_or(u64::MAX) + 1,
            addr: a.clone(),
        })
        .collect();

    // Every CLUSTER_JOIN dial goes through a per-peer fault proxy; the
    // data plane (inserts, queries, replication, anti-entropy) keeps the
    // real addresses — the drill attacks membership, not payloads.
    let mut proxies: Vec<ChaosProxy> = Vec::with_capacity(cfg.nodes);
    let mut gossip_via: BTreeMap<u64, String> = BTreeMap::new();
    if cfg.gossip_faults {
        for r in &roster {
            let proxy =
                ChaosProxy::start(r.addr.clone(), FaultConfig::gossip(cfg.seed ^ mix64(r.node_id)))
                    .map_err(ctx("start gossip proxy"))?;
            gossip_via.insert(r.node_id, proxy.local_addr().to_string());
            // audit:allow(growth): one proxy per node
            proxies.push(proxy);
        }
    }

    let mut nodes: Vec<(u64, ClusterNode)> = Vec::with_capacity(cfg.nodes);
    for r in &roster {
        nodes.push((
            r.node_id,
            ClusterNode::start(NodeConfig {
                node_id: r.node_id,
                roster: roster.clone(),
                window: cfg.window,
                memory_bytes: cfg.memory_bytes,
                seed: 7,
                gossip_ms: 50,
                heartbeat_timeout_ms: cfg.heartbeat_timeout_ms,
                replication: cfg.replication,
                anti_entropy_ms: 500,
                gossip_via: gossip_via.clone(),
                ..Default::default()
            })
            .map_err(ctx("start cluster node"))?,
        ));
    }
    let map = nodes[0].1.directory().get();

    // ---- seeded workload, routed like a cluster-aware writer ----------
    let mut mirror = DirectEngine::new(EngineConfig {
        window: cfg.window,
        shards: cfg.nodes,
        memory_bytes: cfg.memory_bytes,
        seed: 7,
    });
    let mut rng = Xoshiro256::new(mix64(cfg.seed ^ 0xD1CE_D1CE));
    let mut inserted = 0u64;
    for stream in [0u8, 1u8] {
        let count = if stream == 0 { cfg.keys } else { cfg.keys / 4 };
        let keys: Vec<u64> = (0..count).map(|_| rng.next_range(0, 4_096)).collect();
        inserted += insert_routed(&map, &mut mirror, stream, &keys)?;
    }

    // ---- drain every partition's holders before the first kill --------
    let drain_by = Instant::now() + DRILL_TIMEOUT;
    for part in &map.partitions {
        drain_partition(part, drain_by)?;
    }

    // ---- kill rounds: partition 0's current primary, each time --------
    let mut killed: Vec<u64> = Vec::with_capacity(cfg.kills);
    let mut promoted: Vec<u64> = Vec::with_capacity(cfg.kills);
    let mut failover_ms: Vec<u64> = Vec::with_capacity(cfg.kills);
    let mut cur = map;
    for _round in 0..cfg.kills {
        let victim_id = cur.partitions[0].primary.node_id;
        let at = nodes
            .iter()
            .position(|(id, _)| *id == victim_id)
            .ok_or_else(|| format!("node {victim_id} not found in the started set"))?;
        let (_, victim) = nodes.remove(at);
        let killed_at = Instant::now();
        victim.shutdown();
        victim.wait();
        // audit:allow(growth): one entry per kill round
        killed.push(victim_id);

        // Every survivor must converge on one map in which every
        // partition — not just partition 0; the victim may have held or
        // served others — is led by a live node.
        let deadline = killed_at + DRILL_TIMEOUT;
        let new_map: ClusterMap = loop {
            let mut views: Vec<ClusterMap> =
                nodes.iter().map(|(_, n)| n.directory().get()).collect();
            let settled = views.iter().all(|v| v == &views[0])
                && views[0].partitions.iter().all(|p| !killed.contains(&p.primary.node_id));
            if settled {
                break views.remove(0);
            }
            if Instant::now() >= deadline {
                return Err(format!(
                    "failover did not converge within {}s after killing {victim_id} \
                     (epochs: {:?})",
                    DRILL_TIMEOUT.as_secs(),
                    views.iter().map(|v| v.epoch).collect::<Vec<_>>()
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        failover_ms.push(u64::try_from(killed_at.elapsed().as_millis()).unwrap_or(u64::MAX));
        promoted.push(new_map.partitions[0].primary.node_id);

        // Acknowledged writes must continue from the correct offset:
        // route a fresh slice of the workload by the new map, then drain
        // the (topped-up) holder sets so the next kill finds every
        // surviving holder caught up.
        let extra: Vec<u64> = (0..cfg.keys / 4).map(|_| rng.next_range(0, 4_096)).collect();
        inserted += insert_routed(&new_map, &mut mirror, 0, &extra)?;
        let drain_by = Instant::now() + DRILL_TIMEOUT;
        for part in &new_map.partitions {
            drain_partition(part, drain_by)?;
        }
        cur = new_map;
    }

    // ---- post-failover battery, bit-for-bit vs the mirror -------------
    let coordinator = nodes.last().ok_or("no survivors")?.1.local_addr().to_string();
    let mut c = connect_v4(&coordinator)?;
    let probes: Vec<u64> = (0..64).map(|_| rng.next_range(0, 4_096)).collect();
    let mut battery = 0usize;
    for &k in &probes {
        match c.cluster_query(cluster_op::MEMBER, k).map_err(ctx("cluster member"))? {
            Response::Bool(b) if b == mirror.member(k) => battery += 1,
            other => return Err(format!("member({k}) diverged after failover: {other:?}")),
        }
        match c.cluster_query(cluster_op::FREQ, k).map_err(ctx("cluster freq"))? {
            Response::U64(n) if n == mirror.frequency(k) => battery += 1,
            other => return Err(format!("freq({k}) diverged after failover: {other:?}")),
        }
    }
    match c.cluster_query(cluster_op::CARD, 0).map_err(ctx("cluster card"))? {
        Response::F64(v) if v.to_bits() == mirror.cardinality().to_bits() => battery += 1,
        other => return Err(format!("cardinality diverged after failover: {other:?}")),
    }
    match c.cluster_query(cluster_op::SIM, 0).map_err(ctx("cluster sim"))? {
        Response::F64(v) if v.to_bits() == mirror.similarity().to_bits() => battery += 1,
        other => return Err(format!("similarity diverged after failover: {other:?}")),
    }

    let gossip_fault_total: u64 = proxies.iter().map(|p| p.counters().snapshot().total()).sum();
    if cfg.gossip_faults && gossip_fault_total == 0 {
        return Err("gossip proxies injected nothing — the chaos leg did not engage".to_string());
    }

    for (_, n) in nodes {
        n.shutdown();
        n.wait();
    }
    for p in proxies {
        p.stop();
    }

    Ok(ClusterDrillReport {
        nodes: cfg.nodes,
        replication: cfg.replication,
        inserted,
        killed,
        promoted,
        failover_ms,
        gossip_faults: gossip_fault_total,
        battery,
    })
}
