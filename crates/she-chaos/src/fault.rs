//! The fault model: what can go wrong, how often, and — crucially — a
//! *deterministic schedule* of it. Every decision is drawn from a seeded
//! [`Xoshiro256`], so a failing run replays bit-for-bit from its seed.

use she_core::{OrderedGuard, OrderedMutex};
use she_hash::{mix64, RandomSource, Xoshiro256};
use she_metrics::FaultCounters;
use std::sync::Arc;
use std::time::Duration;

/// Fault probabilities (per I/O operation) plus the master seed.
///
/// All probabilities default to zero; a default config injects nothing.
/// At most one fault fires per operation — the draws are a partition of
/// `[0, 1)`, so raising one probability never changes *which* operations
/// another fault lands on less than the sum requires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Master seed; every derived injector's schedule is a pure function
    /// of this and its salt.
    pub seed: u64,
    /// P(read/write is cut short to a random prefix).
    pub partial_io: f64,
    /// P(an injected delay of up to `delay_ms` before the operation).
    pub delay: f64,
    /// Ceiling for one injected delay, in milliseconds.
    pub delay_ms: u64,
    /// P(the operation fails with `ConnectionReset`).
    pub reset: f64,
    /// P(a single bit of the transferred bytes is flipped).
    pub bitflip: f64,
    /// P(the transferred bytes are delivered twice — the duplicated
    /// delivery a retrying network or a confused middlebox produces).
    pub duplicate: f64,
    /// P(a file write fails as if the disk were full, writing nothing).
    pub enospc: f64,
    /// P(a file write is torn: a prefix lands, then the "process dies").
    pub torn_write: f64,
}

impl FaultConfig {
    /// No faults at all — a transparent wrapper (useful as a control).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            partial_io: 0.0,
            delay: 0.0,
            delay_ms: 0,
            reset: 0.0,
            bitflip: 0.0,
            duplicate: 0.0,
            enospc: 0.0,
            torn_write: 0.0,
        }
    }

    /// A hostile-but-survivable wire preset: frequent short reads, some
    /// delays, occasional resets and bit flips. Tuned so a replication
    /// link keeps converging between disruptions.
    pub fn wire(seed: u64) -> Self {
        Self {
            partial_io: 0.05,
            delay: 0.01,
            delay_ms: 5,
            reset: 0.001,
            bitflip: 0.002,
            ..Self::quiet(seed)
        }
    }

    /// A gossip-link preset: short reads, delays, mid-frame resets, and
    /// duplicated deliveries — everything a flaky network does to a
    /// `CLUSTER_JOIN` push-pull exchange. Deliberately no bit flips:
    /// cluster maps carry no checksum, so a flipped byte could decode as
    /// a *valid* poisoned map instead of a detectable transport error.
    pub fn gossip(seed: u64) -> Self {
        Self {
            partial_io: 0.08,
            delay: 0.02,
            delay_ms: 5,
            reset: 0.02,
            duplicate: 0.04,
            ..Self::quiet(seed)
        }
    }

    /// A failing-disk preset for the FS shim.
    pub fn disk(seed: u64) -> Self {
        Self { enospc: 0.05, torn_write: 0.05, ..Self::quiet(seed) }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::quiet(0)
    }
}

/// One wire-level fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Pass the operation through untouched.
    None,
    /// Transfer at most `keep` bytes (≥ 1, so progress is guaranteed).
    Partial { keep: usize },
    /// Sleep this long, then do the operation normally.
    Delay(Duration),
    /// Fail with `ConnectionReset`.
    Reset,
    /// Flip bit `bit` of byte `byte % transferred_len`.
    BitFlip { byte: usize, bit: u8 },
    /// Deliver the transferred bytes twice.
    Duplicate,
}

/// One file-write fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFault {
    /// Write normally.
    None,
    /// Fail before writing anything ("no space left on device").
    Enospc,
    /// Write only `keep` bytes (< the full length), then fail — the
    /// simulated crash mid-write.
    Torn { keep: usize },
}

/// A live, seeded fault injector: draws [`WireFault`]/[`FileFault`]
/// decisions and tallies what it injected into a shared
/// [`FaultCounters`].
///
/// The schedule of injector `i` is a pure function of `(cfg.seed, salt)`
/// and the sequence of calls made on it — independent of wall clock,
/// thread timing, or any other injector. [`Faults::derive`] hands out
/// per-connection injectors that share the counters but not the RNG, so
/// concurrent connections stay individually reproducible.
#[derive(Debug)]
pub struct Faults {
    cfg: FaultConfig,
    rng: OrderedMutex<Xoshiro256>,
    counters: Arc<FaultCounters>,
}

impl Faults {
    /// A root injector with fresh counters.
    pub fn new(cfg: FaultConfig) -> Self {
        Self::with_counters(cfg, Arc::new(FaultCounters::new()))
    }

    /// A root injector tallying into existing counters.
    pub fn with_counters(cfg: FaultConfig, counters: Arc<FaultCounters>) -> Self {
        Self {
            cfg,
            rng: OrderedMutex::new("chaos-rng", Xoshiro256::new(mix64(cfg.seed))),
            counters,
        }
    }

    /// A child injector whose schedule depends only on `(seed, salt)`,
    /// sharing this injector's counters.
    pub fn derive(&self, salt: u64) -> Faults {
        Faults {
            cfg: self.cfg,
            rng: OrderedMutex::new(
                "chaos-rng",
                Xoshiro256::new(mix64(self.cfg.seed ^ mix64(salt))),
            ),
            counters: Arc::clone(&self.counters),
        }
    }

    /// The shared fault tallies.
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// The config this injector draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn rng(&self) -> OrderedGuard<'_, Xoshiro256> {
        self.rng.lock()
    }

    /// Decide the fault (if any) for one read/write of `len` bytes.
    /// Counters are bumped at decision time, so the tally is part of the
    /// deterministic schedule.
    pub fn wire_fault(&self, len: usize) -> WireFault {
        let mut rng = self.rng();
        let draw = rng.next_f64();
        let c = &self.cfg;
        let mut edge = c.reset;
        if draw < edge {
            drop(rng);
            self.counters.resets.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return WireFault::Reset;
        }
        edge += c.delay;
        if draw < edge {
            let ms = rng.next_range(0, c.delay_ms.max(1)) + 1;
            drop(rng);
            self.counters.delays.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return WireFault::Delay(Duration::from_millis(ms));
        }
        edge += c.bitflip;
        if draw < edge {
            let byte = rng.next_below(len.max(1));
            let bit = (rng.next_u64() % 8) as u8;
            drop(rng);
            self.counters.bitflips.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return WireFault::BitFlip { byte, bit };
        }
        edge += c.partial_io;
        if draw < edge && len > 1 {
            let keep = rng.next_range(1, len as u64) as usize;
            drop(rng);
            self.counters.partial_io.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return WireFault::Partial { keep };
        }
        edge += c.duplicate;
        if draw < edge {
            drop(rng);
            self.counters.duplicates.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return WireFault::Duplicate;
        }
        WireFault::None
    }

    /// Decide the fault (if any) for one file write of `len` bytes.
    pub fn file_fault(&self, len: usize) -> FileFault {
        let mut rng = self.rng();
        let draw = rng.next_f64();
        let c = &self.cfg;
        if draw < c.enospc {
            drop(rng);
            self.counters.enospc.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return FileFault::Enospc;
        }
        if draw < c.enospc + c.torn_write && len > 1 {
            let keep = rng.next_range(1, len as u64) as usize;
            drop(rng);
            self.counters.torn_writes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return FileFault::Torn { keep };
        }
        FileFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(f: &Faults, n: usize) -> Vec<WireFault> {
        (0..n).map(|_| f.wire_fault(4096)).collect()
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = Faults::new(FaultConfig::wire(42));
        let b = Faults::new(FaultConfig::wire(42));
        assert_eq!(schedule(&a, 500), schedule(&b, 500));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Faults::new(FaultConfig::wire(42));
        let b = Faults::new(FaultConfig::wire(43));
        assert_ne!(schedule(&a, 500), schedule(&b, 500));
    }

    #[test]
    fn derived_injectors_are_independent_and_reproducible() {
        let root = Faults::new(FaultConfig::wire(7));
        let a1 = schedule(&root.derive(1), 200);
        // Burn the sibling's schedule; it must not perturb a re-derived 1.
        let _ = schedule(&root.derive(2), 123);
        let a2 = schedule(&root.derive(1), 200);
        assert_eq!(a1, a2);
    }

    #[test]
    fn quiet_config_injects_nothing() {
        let f = Faults::new(FaultConfig::quiet(9));
        assert!(schedule(&f, 1000).iter().all(|w| *w == WireFault::None));
        assert_eq!(f.counters().snapshot().total(), 0);
    }

    #[test]
    fn counters_match_the_schedule() {
        let f = Faults::new(FaultConfig { duplicate: 0.01, ..FaultConfig::wire(11) });
        let sched = schedule(&f, 2000);
        let snap = f.counters().snapshot();
        let count = |pred: fn(&WireFault) -> bool| sched.iter().filter(|w| pred(w)).count() as u64;
        assert_eq!(snap.resets, count(|w| matches!(w, WireFault::Reset)));
        assert_eq!(snap.delays, count(|w| matches!(w, WireFault::Delay(_))));
        assert_eq!(snap.bitflips, count(|w| matches!(w, WireFault::BitFlip { .. })));
        assert_eq!(snap.partial_io, count(|w| matches!(w, WireFault::Partial { .. })));
        assert_eq!(snap.duplicates, count(|w| matches!(w, WireFault::Duplicate)));
        assert!(snap.total() > 0, "wire preset over 2000 ops should inject something");
    }

    #[test]
    fn gossip_preset_never_flips_bits() {
        let f = Faults::new(FaultConfig::gossip(17));
        let sched = schedule(&f, 2000);
        assert!(sched.iter().all(|w| !matches!(w, WireFault::BitFlip { .. })));
        let snap = f.counters().snapshot();
        assert_eq!(snap.bitflips, 0);
        assert!(snap.duplicates > 0, "gossip preset should duplicate some deliveries");
    }
}
