//! A fault-injecting TCP proxy: clients connect to the proxy, the proxy
//! connects upstream, and every byte in both directions flows through a
//! [`ChaosStream`] drawing from a per-connection derived injector.
//!
//! The proxy is the tool for hardening *protocols*: placed on the
//! replication path it subjects bootstrap blobs, op-log records, and
//! heartbeats to partial reads, delays, resets, and bit flips — all of
//! which the checksummed `SHEF` frames and the replica's
//! reconnect/resync machinery must absorb. [`ChaosProxy::sever`] cuts
//! every live link at once, the scripted "network blip".

use crate::fault::{FaultConfig, Faults};
use crate::stream::ChaosStream;
use she_core::OrderedMutex;
use she_metrics::FaultCounters;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often pump threads wake to poll the stop flag.
const PUMP_POLL: Duration = Duration::from_millis(50);

#[derive(Debug)]
struct ProxyShared {
    stop: AtomicBool,
    /// Raw sockets of live links, kept so `sever` can cut them all.
    links: OrderedMutex<Vec<TcpStream>>,
    pumps: OrderedMutex<Vec<JoinHandle<()>>>,
    conn_seq: AtomicU64,
}

/// A running fault proxy; see the module docs.
#[derive(Debug)]
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shared: Arc<ProxyShared>,
    faults: Arc<Faults>,
    accept_thread: JoinHandle<()>,
}

impl ChaosProxy {
    /// Bind an ephemeral local port and forward every connection to
    /// `upstream`, injecting `cfg`'s faults in both directions.
    pub fn start(upstream: String, cfg: FaultConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            stop: AtomicBool::new(false),
            links: OrderedMutex::new("chaos-links", Vec::new()),
            pumps: OrderedMutex::new("chaos-pumps", Vec::new()),
            conn_seq: AtomicU64::new(0),
        });
        let faults = Arc::new(Faults::new(cfg));
        let accept_shared = Arc::clone(&shared);
        let accept_faults = Arc::clone(&faults);
        let accept_thread =
            std::thread::Builder::new().name("chaos-accept".into()).spawn(move || {
                accept_loop(listener, upstream, accept_shared, accept_faults);
            })?;
        Ok(ChaosProxy { local_addr, shared, faults, accept_thread })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The injected-fault tallies.
    pub fn counters(&self) -> Arc<FaultCounters> {
        self.faults.counters()
    }

    /// Cut every live link (both directions). New connections are still
    /// accepted — this is a blip, not an outage.
    pub fn sever(&self) {
        let mut links = self.shared.links.lock();
        for s in links.drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    /// Stop accepting, cut every link, and join the worker threads.
    pub fn stop(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr); // unblock accept
        self.sever();
        let _ = self.accept_thread.join();
        let pumps = {
            let mut g = self.shared.pumps.lock();
            std::mem::take(&mut *g)
        };
        for p in pumps {
            let _ = p.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: String,
    shared: Arc<ProxyShared>,
    faults: Arc<Faults>,
) {
    loop {
        let Ok((client, _)) = listener.accept() else {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(server) = TcpStream::connect(&upstream) else {
            continue; // upstream down: drop the client, as a dead router would
        };
        let id = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        // Pump reads poll at PUMP_POLL so the stop flag is honoured even
        // on an idle link (SO_RCVTIMEO is shared by the clones below).
        let _ = client.set_read_timeout(Some(PUMP_POLL));
        let _ = server.set_read_timeout(Some(PUMP_POLL));
        let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        {
            let mut links = shared.links.lock();
            if let (Ok(cl), Ok(sl)) = (client.try_clone(), server.try_clone()) {
                links.push(cl);
                links.push(sl);
            }
        }
        // Faults ride the upstream-facing half in each direction, each
        // pump with its own derived schedule.
        let up = ChaosStream::new(server, faults.derive(id * 2));
        let down = ChaosStream::new(s2, faults.derive(id * 2 + 1));
        let mut handles = Vec::with_capacity(2);
        let stop_a = Arc::clone(&shared);
        let stop_b = Arc::clone(&shared);
        if let Ok(h) = std::thread::Builder::new()
            .name("chaos-c2s".into())
            .spawn(move || pump(client, up, &stop_a.stop))
        {
            handles.push(h);
        }
        if let Ok(h) = std::thread::Builder::new()
            .name("chaos-s2c".into())
            .spawn(move || pump(down, c2, &stop_b.stop))
        {
            handles.push(h);
        }
        shared.pumps.lock().extend(handles);
    }
}

/// Shut both endpoints of a pump down, whatever types wrap them.
trait Sever {
    fn sever(&self);
}

impl Sever for TcpStream {
    fn sever(&self) {
        let _ = self.shutdown(Shutdown::Both);
    }
}

impl Sever for ChaosStream<TcpStream> {
    fn sever(&self) {
        let _ = self.get_ref().shutdown(Shutdown::Both);
    }
}

/// Copy bytes `src` → `dst` until EOF, error, or stop; then cut both
/// sockets so the sibling pump unblocks too.
fn pump<R, W>(mut src: R, mut dst: W, stop: &AtomicBool)
where
    R: Read + Sever,
    W: Write + Sever,
{
    let mut buf = [0u8; 8192];
    while !stop.load(Ordering::SeqCst) {
        match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).and_then(|()| dst.flush()).is_err() {
                    break;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    src.sever();
    dst.sever();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An upstream echo server good for one round per connection batch.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            while let Ok((mut s, _)) = listener.accept() {
                std::thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    while let Ok(n) = s.read(&mut buf) {
                        if n == 0 || s.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, h)
    }

    #[test]
    fn quiet_proxy_is_transparent() {
        let (up, _h) = echo_upstream();
        let proxy = ChaosProxy::start(up.to_string(), FaultConfig::quiet(1)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"ping").unwrap();
        let mut got = [0u8; 4];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"ping");
        proxy.stop();
    }

    #[test]
    fn sever_cuts_live_links() {
        let (up, _h) = echo_upstream();
        let proxy = ChaosProxy::start(up.to_string(), FaultConfig::quiet(2)).unwrap();
        let mut c = TcpStream::connect(proxy.local_addr()).unwrap();
        c.write_all(b"ping").unwrap();
        let mut got = [0u8; 4];
        c.read_exact(&mut got).unwrap();
        proxy.sever();
        // After the cut the client sees EOF or a reset, never a hang.
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 1];
        match c.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("link should be dead after sever"),
        }
        // And a *new* connection still works.
        let mut c2 = TcpStream::connect(proxy.local_addr()).unwrap();
        c2.write_all(b"pong").unwrap();
        c2.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pong");
        proxy.stop();
    }
}
