//! `she-chaos`: deterministic fault injection for the SHE serving path.
//!
//! Everything here is driven by one seed. A [`fault::Faults`] injector
//! draws each fault decision from a seeded in-tree RNG: the decision
//! *schedule* is a pure function of the seed, so a failing run — a unit
//! test, the chaos soak in CI, a by-hand repro — replays from the seed
//! printed with the failure. (Over live sockets, which operation lands
//! on which decision still depends on TCP chunking; the workload, the
//! schedule, and every in-memory test replay exactly.)
//!
//! The pieces, bottom-up:
//!
//! - [`fault`] — the fault model: per-operation probabilities
//!   ([`FaultConfig`]), the decisions ([`WireFault`], [`FileFault`]),
//!   and the seeded injector ([`Faults`]) that tallies what it injected.
//! - [`stream`] — [`ChaosStream`], a `Read`/`Write` wrapper applying the
//!   schedule to any transport: partial transfers, delays, mid-frame
//!   resets, single-bit flips.
//! - [`fs`] — [`atomic_write`] (temp file + `sync_all` + rename), the
//!   crash-safe write the serving path uses, and [`ChaosFs`], the shim
//!   that proves it survives injected `ENOSPC` and torn writes.
//! - [`proxy`] — [`ChaosProxy`], a TCP proxy that pushes every byte of a
//!   real connection through fault injection; [`ChaosProxy::sever`] is
//!   the scripted network blip.
//! - [`soak`] — the end-to-end scenario: primary + replica under the
//!   proxy, kill/restart cycles, checkpoint corruption with generation
//!   fallback, and a bit-for-bit verdict against an in-process mirror.
//!   `scripts/check.sh` runs it with a fixed seed.
//! - [`drill`] — the cluster failover drill: a partitioned cluster loses
//!   one primary outright; election, gossip convergence, and
//!   scatter-gather re-routing must keep answers bit-for-bit identical
//!   to a single-engine mirror.
//! - [`sansio`] — chaos for the protocol state machine itself, with zero
//!   sockets: seeded frame streams torn at seeded split points (and
//!   optionally bit-flipped) drive `she-server`'s sans-IO `Connection`
//!   directly, asserting it never panics and reassembles byte-exactly.

pub mod drill;
pub mod fault;
pub mod fs;
pub mod proxy;
pub mod sansio;
pub mod soak;
pub mod stream;

pub use drill::{ClusterDrillConfig, ClusterDrillReport};
pub use fault::{FaultConfig, Faults, FileFault, WireFault};
pub use fs::{atomic_write, ChaosFs};
pub use proxy::ChaosProxy;
pub use sansio::{drive, SansIoConfig, SansIoReport};
pub use soak::{SoakConfig, SoakReport};
pub use stream::ChaosStream;
