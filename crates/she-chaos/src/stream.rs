//! [`ChaosStream`]: a `Read`/`Write` wrapper that applies one injector's
//! fault schedule to every operation passing through it.
//!
//! The wrapper is transparent when the schedule says [`WireFault::None`]
//! and otherwise perturbs exactly one thing per operation: the length
//! (partial), the timing (delay), the data (bit flip), or the connection
//! itself (reset). Partial transfers always move ≥ 1 byte, so a caller
//! looping on `read`/`write_all` still terminates — the faults model a
//! flaky network, not a wedged one.
//!
//! On the read side the fault is drawn *after* bytes arrive: a read that
//! returns an error (notably a poll timeout on an idle link) or EOF
//! consumes nothing from the schedule, so the decision sequence is a
//! function of the data stream, not of how often a pump thread polled.
//! Bytes withheld by a `Partial` fault are stashed and served to the
//! next read before the wrapped transport is touched again.

use crate::fault::{Faults, WireFault};
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// A fault-injecting transport wrapper. `S` is typically a `TcpStream`
/// (or one half of a proxy pipe), but any `Read + Write` works — tests
/// wrap in-memory buffers.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    faults: Faults,
    /// Bytes already read from `inner` but withheld by a `Partial`
    /// fault; served to subsequent reads fault-free.
    stash: VecDeque<u8>,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner`, drawing faults from `faults`.
    pub fn new(inner: S, faults: Faults) -> Self {
        Self { inner, faults, stash: VecDeque::new() }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

fn injected_reset() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "injected connection reset")
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        if !self.stash.is_empty() {
            let n = buf.len().min(self.stash.len());
            for (slot, b) in buf.iter_mut().zip(self.stash.drain(..n)) {
                *slot = b;
            }
            return Ok(n);
        }
        // Draw only once bytes are in hand: errors (poll timeouts on an
        // idle link) and EOF consume nothing from the schedule.
        let n = self.inner.read(buf)?;
        if n == 0 {
            return Ok(0);
        }
        match self.faults.wire_fault(n) {
            WireFault::None => Ok(n),
            WireFault::Partial { keep } => {
                let keep = keep.min(n).max(1);
                self.stash.extend(&buf[keep..n]);
                Ok(keep)
            }
            WireFault::Delay(d) => {
                std::thread::sleep(d);
                Ok(n)
            }
            // The n bytes in hand are dropped, as a real reset drops
            // whatever was in flight.
            WireFault::Reset => Err(injected_reset()),
            WireFault::BitFlip { byte, bit } => {
                buf[byte % n] ^= 1 << (bit % 8);
                Ok(n)
            }
            // Deliver now AND stash a copy, so the same bytes arrive
            // again on the next read — a duplicated delivery.
            WireFault::Duplicate => {
                self.stash.extend(&buf[..n]);
                Ok(n)
            }
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        match self.faults.wire_fault(buf.len()) {
            WireFault::None => self.inner.write(buf),
            WireFault::Partial { keep } => {
                let keep = keep.min(buf.len()).max(1);
                self.inner.write(&buf[..keep])
            }
            WireFault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            WireFault::Reset => Err(injected_reset()),
            WireFault::BitFlip { byte, bit } => {
                let mut corrupted = buf.to_vec();
                let i = byte % corrupted.len();
                corrupted[i] ^= 1 << (bit % 8);
                self.inner.write(&corrupted)
            }
            WireFault::Duplicate => {
                self.inner.write_all(buf)?;
                self.inner.write_all(buf)?;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use std::io::Cursor;

    #[test]
    fn quiet_stream_is_transparent() {
        let mut out = ChaosStream::new(Vec::new(), Faults::new(FaultConfig::quiet(1)));
        out.write_all(b"hello chaos").unwrap();
        assert_eq!(out.get_ref(), b"hello chaos");

        let mut inp = ChaosStream::new(
            Cursor::new(b"hello chaos".to_vec()),
            Faults::new(FaultConfig::quiet(1)),
        );
        let mut got = Vec::new();
        inp.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"hello chaos");
    }

    #[test]
    fn partial_writes_still_complete_under_write_all() {
        let cfg = FaultConfig { partial_io: 0.9, ..FaultConfig::quiet(3) };
        let mut out = ChaosStream::new(Vec::new(), Faults::new(cfg));
        let payload: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        out.write_all(&payload).unwrap();
        assert_eq!(out.get_ref(), &payload);
        assert!(out.faults.counters().snapshot().partial_io > 0);
    }

    #[test]
    fn partial_reads_still_complete_under_read_exact() {
        let cfg = FaultConfig { partial_io: 0.9, ..FaultConfig::quiet(4) };
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 7) as u8).collect();
        let mut inp = ChaosStream::new(Cursor::new(payload.clone()), Faults::new(cfg));
        let mut got = vec![0u8; payload.len()];
        inp.read_exact(&mut got).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn bitflips_corrupt_exactly_one_bit() {
        let cfg = FaultConfig { bitflip: 1.0, ..FaultConfig::quiet(5) };
        let mut out = ChaosStream::new(Vec::new(), Faults::new(cfg));
        let payload = vec![0u8; 64];
        let n = out.write(&payload).unwrap();
        assert_eq!(n, 64);
        let ones: u32 = out.get_ref().iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
    }

    #[test]
    fn duplicates_deliver_the_same_bytes_twice() {
        let cfg = FaultConfig { duplicate: 1.0, ..FaultConfig::quiet(8) };
        let mut out = ChaosStream::new(Vec::new(), Faults::new(cfg));
        let n = out.write(b"abc").unwrap();
        assert_eq!(n, 3);
        assert_eq!(out.get_ref(), b"abcabc");

        let cfg = FaultConfig { duplicate: 1.0, ..FaultConfig::quiet(8) };
        let mut inp = ChaosStream::new(Cursor::new(b"xyz".to_vec()), Faults::new(cfg));
        let mut got = Vec::new();
        inp.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"xyzxyz");
    }

    #[test]
    fn resets_surface_as_connection_reset() {
        let cfg = FaultConfig { reset: 1.0, ..FaultConfig::quiet(6) };
        let mut out = ChaosStream::new(Vec::new(), Faults::new(cfg));
        let err = out.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }
}
