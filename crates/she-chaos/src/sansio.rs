//! Chaos-drive the sans-IO protocol state machine — **zero sockets**.
//!
//! The epoll reactor trusts [`Connection`] to keep byte streams and frame
//! boundaries straight no matter how the transport slices them. This
//! module earns that trust deterministically: generate a seeded sequence
//! of well-formed request frames, concatenate them into one byte stream,
//! then feed that stream to a `Connection` in seeded splits — byte-by-byte
//! tears, frame-straddling chunks, everything between — optionally
//! flipping bits on the way in.
//!
//! Invariants checked (a violation panics inside `drive`, so tests simply
//! assert on the returned [`SansIoReport`]):
//!
//! * the state machine never panics on any split or corruption;
//! * with no corruption, the reassembled payload sequence is **byte-for-
//!   byte identical** to what was framed in, in order;
//! * every payload that decodes as a [`Request`] re-encodes to exactly
//!   the bytes that arrived (codec round-trip stability under chaos);
//! * once the stream turns fatal (an oversize length prefix after a
//!   bit flip lands in a frame header), it stays fatal — no payload is
//!   ever produced from a desynchronised stream.

use she_hash::{mix64, RandomSource, Xoshiro256};
use she_server::protocol::Request;
use she_server::{Connection, FrameEvent};

/// Configuration for one deterministic sans-IO drive.
#[derive(Debug, Clone, Copy)]
pub struct SansIoConfig {
    /// Master seed: frames, split points, and flipped bits all derive
    /// from it.
    pub seed: u64,
    /// How many well-formed request frames to generate.
    pub frames: usize,
    /// Flip one input bit roughly every this many bytes (0 = clean run).
    pub bitflip_every: usize,
}

impl Default for SansIoConfig {
    fn default() -> Self {
        Self { seed: 0xC0FFEE, frames: 256, bitflip_every: 0 }
    }
}

/// What one drive did and saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SansIoReport {
    /// Frames generated and fed in.
    pub frames_in: usize,
    /// Complete payloads the state machine produced.
    pub frames_out: usize,
    /// Payloads that decoded as requests and round-tripped byte-exactly.
    pub decoded: usize,
    /// Payloads that failed to decode (possible under bit flips only).
    pub rejected: usize,
    /// Bits flipped on the way in.
    pub bitflips: usize,
    /// Whether the stream ended in the fatal (desynchronised) state.
    pub fatal: bool,
}

/// A seeded, well-formed request — spans every frame shape the wire can
/// carry, from 1-byte (`QUERY_CARD`) to multi-kilobyte batches.
fn gen_request(rng: &mut Xoshiro256) -> Request {
    match rng.next_u64() % 8 {
        0 => Request::Insert { stream: (rng.next_u64() % 2) as u8, key: rng.next_u64() },
        1 => {
            let n = (rng.next_u64() % 64) as usize;
            Request::InsertBatch {
                stream: (rng.next_u64() % 2) as u8,
                keys: (0..n).map(|_| rng.next_u64()).collect(),
            }
        }
        2 => Request::QueryMember { key: rng.next_u64() },
        3 => Request::QueryFreq { key: rng.next_u64() },
        4 => Request::QueryCard,
        5 => Request::QueryBatch {
            op: (rng.next_u64() % 2) as u8 * 2, // member (0) or freq (2)
            keys: (0..(rng.next_u64() % 32) as usize).map(|_| rng.next_u64()).collect(),
        },
        6 => Request::Stats,
        _ => Request::Hello { version: (rng.next_u64() % 8) as u16 },
    }
}

/// Length-prefix one payload exactly like the wire codec.
fn frame(payload: &[u8]) -> Vec<u8> {
    // audit:allow(panic): chaos-harness helper; generated frames are far below u32::MAX
    let len = u32::try_from(payload.len()).expect("test frame fits u32");
    let mut framed = len.to_le_bytes().to_vec();
    framed.extend_from_slice(payload);
    framed
}

/// Run one deterministic drive. Panics (test failure) on any invariant
/// violation; otherwise returns the tally.
pub fn drive(cfg: SansIoConfig) -> SansIoReport {
    let mut rng = Xoshiro256::new(mix64(cfg.seed));
    let mut report = SansIoReport { frames_in: cfg.frames, ..SansIoReport::default() };

    // 1. Generate the ground-truth payload sequence and its byte stream.
    let payloads: Vec<Vec<u8>> = (0..cfg.frames).map(|_| gen_request(&mut rng).encode()).collect();
    let mut stream = Vec::new();
    for p in &payloads {
        stream.extend_from_slice(&frame(p));
    }

    // 2. Optionally flip bits (never in a clean run).
    if cfg.bitflip_every > 0 {
        let mut at = 0usize;
        while at < stream.len() {
            at += 1 + (rng.next_u64() as usize) % cfg.bitflip_every;
            if let Some(b) = stream.get_mut(at) {
                *b ^= 1 << (rng.next_u64() % 8);
                report.bitflips += 1;
            }
        }
    }

    // 3. Feed the stream in seeded splits and collect what comes out.
    let mut conn = Connection::new();
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut fed = 0usize;
    let mut now_ms = 0u64;
    while fed < stream.len() {
        let chunk = 1 + (rng.next_u64() as usize) % 96;
        let end = (fed + chunk).min(stream.len());
        now_ms += rng.next_u64() % 4;
        conn.feed(&stream[fed..end], now_ms);
        fed = end;
        loop {
            match conn.poll_frame() {
                FrameEvent::Payload(p) => {
                    assert!(!report.fatal, "a fatal stream must never yield another payload");
                    out.push(p);
                }
                FrameEvent::NeedMore => break,
                FrameEvent::Fatal => {
                    report.fatal = true;
                    assert!(conn.is_fatal(), "fatal event without the sticky fatal flag");
                    break;
                }
            }
        }
        if report.fatal {
            break;
        }
    }

    report.frames_out = out.len();
    if cfg.bitflip_every == 0 {
        assert_eq!(
            out, payloads,
            "clean split-only input must reassemble the exact payload sequence"
        );
        assert!(!report.fatal, "clean input must never turn the stream fatal");
    }
    for p in &out {
        match Request::decode(p) {
            Ok(req) => {
                assert_eq!(&req.encode(), p, "decode(encode) must round-trip byte-exactly");
                report.decoded += 1;
            }
            Err(_) => report.rejected += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_runs_reassemble_for_many_seeds() {
        for seed in 0..32 {
            let r = drive(SansIoConfig { seed, frames: 128, bitflip_every: 0 });
            assert_eq!(r.frames_out, 128, "seed {seed}");
            assert_eq!(r.decoded, 128, "seed {seed}: every clean payload decodes");
            assert_eq!(r.rejected, 0);
            assert!(!r.fatal);
        }
    }

    #[test]
    fn bitflipped_runs_never_panic_and_stay_sane() {
        for seed in 0..32 {
            let r = drive(SansIoConfig { seed, frames: 256, bitflip_every: 64 });
            assert!(r.bitflips > 0, "seed {seed}: the schedule must actually flip bits");
            // Whatever came out was either a valid round-tripping request
            // or a cleanly rejected payload — counted, never panicked.
            assert_eq!(r.decoded + r.rejected, r.frames_out, "seed {seed}");
        }
    }

    #[test]
    fn the_same_seed_replays_the_same_report() {
        let cfg = SansIoConfig { seed: 42, frames: 200, bitflip_every: 48 };
        assert_eq!(drive(cfg), drive(cfg));
    }
}
