//! The chaos soak: a primary + replica under the fault proxy, scripted
//! disconnect and kill/restart cycles, and a bit-for-bit verdict against
//! an in-process mirror engine.
//!
//! The scenario (all deterministic from [`SoakConfig::seed`], modulo
//! thread scheduling — which the protocol must absorb, that being the
//! point):
//!
//! 1. Start a primary with an op log, a [`ChaosProxy`] in front of it,
//!    and a replica whose *only* route to the primary is the proxy. A
//!    [`DirectEngine`] mirror receives the same keys in process.
//! 2. For each cycle: insert a seeded batch of keys on the primary
//!    (directly — the mirror comparison needs an unfaulted data path;
//!    the *replication* path is the one under fire), then disrupt: even
//!    cycles sever every proxy link mid-flight, odd cycles kill the
//!    replica outright and start a fresh one (which must re-bootstrap
//!    through the faulty proxy). Wait for the replica to converge.
//! 3. Run one query battery (membership, frequency, cardinality,
//!    similarity) on the mirror, the primary, and the replica — all
//!    three must agree bit-for-bit.
//! 4. Stall a raw client mid-frame and require the primary to evict it
//!    within the connection deadline.
//! 5. Write a checkpoint, then attack it with injected `ENOSPC` and torn
//!    writes: the atomic path must leave the previous checkpoint intact,
//!    and a torn file (legacy bare-write path) must fail checkpoint
//!    decode with a clean error — never a panic.

use crate::fault::{FaultConfig, Faults};
use crate::fs::{atomic_write, ChaosFs};
use crate::proxy::ChaosProxy;
use she_hash::{mix64, RandomSource, Xoshiro256};
use she_metrics::{FaultCountersSnapshot, ServeCountersSnapshot};
use she_replica::{Replica, ReplicaConfig};
use she_server::{
    Checkpoint, CheckpointStore, Client, DirectEngine, EngineConfig, LoadOutcome, Server,
    ServerConfig,
};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Everything the soak needs; [`SoakConfig::default`] is the check.sh
/// configuration (fixed seed, 3 cycles).
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed: workload, probe set, and every injected fault.
    pub seed: u64,
    /// Disruption cycles (≥ 3 for the acceptance bar).
    pub cycles: u32,
    /// Keys inserted per cycle.
    pub keys_per_cycle: usize,
    /// Scratch directory for the checkpoint fault checks.
    pub dir: PathBuf,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FF_EE00_5EED,
            cycles: 3,
            keys_per_cycle: 2_000,
            dir: std::env::temp_dir().join("she-chaos-soak"),
        }
    }
}

/// What the soak observed; all the acceptance booleans must be true (a
/// failed check returns `Err` instead, so a report implies success — the
/// fields exist for the human-readable summary).
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Cycles survived.
    pub cycles: u32,
    /// Total keys inserted (primary and mirror alike).
    pub inserted: u64,
    /// Faults the proxy injected into the replication path.
    pub wire_faults: FaultCountersSnapshot,
    /// Self-protection events on the primary.
    pub primary_serve: ServeCountersSnapshot,
    /// The stalled client was evicted within the deadline.
    pub stalled_client_evicted: bool,
    /// A torn checkpoint was detected at decode with a clean error.
    pub torn_checkpoint_detected: bool,
    /// Corrupting the latest checkpoint generation triggered automatic
    /// fallback to the previous generation, bit-for-bit.
    pub checkpoint_fallback_bit_for_bit: bool,
}

impl std::fmt::Display for SoakReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos soak: {} cycles, {} keys, mirror verified bit-for-bit on primary and replica",
            self.cycles, self.inserted
        )?;
        writeln!(f, "  wire faults injected: {}", self.wire_faults)?;
        writeln!(f, "  primary self-protection: {}", self.primary_serve)?;
        writeln!(f, "  stalled client evicted: {}", self.stalled_client_evicted)?;
        writeln!(f, "  torn checkpoint detected at restore: {}", self.torn_checkpoint_detected)?;
        write!(
            f,
            "  corrupt-latest fallback recovered bit-for-bit: {}",
            self.checkpoint_fallback_bit_for_bit
        )
    }
}

/// Per-connection deadline on the soak primary, kept short so the
/// eviction check is fast.
const DEADLINE_MS: u64 = 750;

/// Outer bound on any single convergence wait.
const CONVERGE_TIMEOUT: Duration = Duration::from_secs(60);

fn ctx<E: std::fmt::Display>(what: &str) -> impl FnOnce(E) -> String + '_ {
    move |e| format!("{what}: {e}")
}

/// Run the soak; `Err` carries the first failed check (the caller prints
/// the seed for replay).
pub fn run(cfg: &SoakConfig) -> Result<SoakReport, String> {
    std::fs::create_dir_all(&cfg.dir).map_err(ctx("create scratch dir"))?;
    let engine = EngineConfig { window: 4096, shards: 2, memory_bytes: 32 << 10, seed: 1 };

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        engine,
        queue_capacity: 64,
        retry_after_ms: 1,
        repl_log: 1 << 16,
        heartbeat_ms: 100,
        client_deadline_ms: DEADLINE_MS,
        max_connections: 32,
        ..Default::default()
    })
    .map_err(ctx("start primary"))?;
    let primary_addr = server.local_addr().to_string();
    let counters = server.counters();

    let proxy = ChaosProxy::start(primary_addr.clone(), FaultConfig::wire(cfg.seed))
        .map_err(ctx("start proxy"))?;

    let replica_cfg = ReplicaConfig {
        listen_addr: "127.0.0.1:0".to_string(),
        primary: proxy.local_addr().to_string(),
        queue_capacity: 64,
        retry_after_ms: 1,
        anti_entropy_ms: 0,
        heartbeat_timeout_ms: 700,
        reconnect_base_ms: 10,
        reconnect_cap_ms: 100,
        max_bootstrap_attempts: 200,
        op_timeout_ms: 5_000,
        ..Default::default()
    };
    let mut replica = Replica::start(replica_cfg.clone()).map_err(ctx("start replica"))?;

    let mut mirror = DirectEngine::new(engine);
    let mut client = Client::connect(&primary_addr).map_err(ctx("connect to primary"))?;
    client.set_op_timeout(Some(Duration::from_secs(10))).map_err(ctx("arm client deadline"))?;

    // ---- cycles: insert, disrupt, converge --------------------------------
    let mut rng = Xoshiro256::new(mix64(cfg.seed ^ 0x50AC_50AC));
    let mut inserted = 0u64;
    for cycle in 0..cfg.cycles {
        let mut pairs = Vec::with_capacity(cfg.keys_per_cycle);
        for _ in 0..cfg.keys_per_cycle {
            let stream = u8::from(rng.next_bool(0.25));
            let key = rng.next_range(0, 5_000);
            pairs.push((stream, key));
        }
        for &(stream, key) in &pairs {
            mirror.insert(stream, key);
        }
        // Send maximal same-stream runs as batches: per-shard order (the
        // thing that must match the mirror) is preserved.
        let mut i = 0;
        while i < pairs.len() {
            let stream = pairs[i].0;
            let j = pairs[i..].iter().position(|p| p.0 != stream).map_or(pairs.len(), |o| i + o);
            let keys: Vec<u64> = pairs[i..j].iter().map(|p| p.1).collect();
            inserted +=
                client.insert_batch(stream, &keys).map_err(ctx("insert batch on primary"))?;
            i = j;
        }

        if cycle % 2 == 0 {
            proxy.sever();
        } else {
            // Kill the replica and make a fresh one re-join mid-stream
            // through the faulty proxy.
            replica.join();
            replica =
                Replica::start(replica_cfg.clone()).map_err(ctx("restart replica after kill"))?;
        }

        let head = client.cluster_status().map_err(ctx("primary cluster status"))?.head;
        converge(&replica, head)?;
    }

    // ---- bit-for-bit battery: mirror vs primary vs replica ----------------
    let probes: Vec<u64> = (0..64).map(|_| rng.next_range(0, 6_000)).collect();
    let want = battery_mirror(&mut mirror, &probes);
    let got_primary = battery_client(&mut client, &probes).map_err(ctx("battery on primary"))?;
    if want != got_primary {
        return Err(format!(
            "primary diverged from mirror: {} of {} battery answers differ",
            want.iter().zip(&got_primary).filter(|(a, b)| a != b).count(),
            want.len()
        ));
    }
    let mut rclient = Client::connect(replica.local_addr()).map_err(ctx("connect to replica"))?;
    rclient.set_op_timeout(Some(Duration::from_secs(10))).map_err(ctx("arm replica deadline"))?;
    let got_replica = battery_client(&mut rclient, &probes).map_err(ctx("battery on replica"))?;
    if want != got_replica {
        return Err(format!(
            "replica diverged from mirror: {} of {} battery answers differ",
            want.iter().zip(&got_replica).filter(|(a, b)| a != b).count(),
            want.len()
        ));
    }

    // ---- stalled client must be evicted within the deadline ---------------
    let evicted_before = counters.snapshot().evicted_conns;
    let mut stall = TcpStream::connect(&primary_addr).map_err(ctx("connect stall client"))?;
    // A 20-byte frame announced, 3 bytes delivered, then silence.
    stall.write_all(&20u32.to_le_bytes()).map_err(ctx("stall header"))?;
    stall.write_all(&[0x01, 0x00, 0x2A]).map_err(ctx("stall partial body"))?;
    let evict_by = Instant::now() + Duration::from_millis(DEADLINE_MS * 4 + 2_000);
    let stalled_client_evicted = loop {
        if counters.snapshot().evicted_conns > evicted_before {
            break true;
        }
        if Instant::now() >= evict_by {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    if !stalled_client_evicted {
        return Err(format!(
            "stalled client was not evicted within {}ms (deadline {}ms)",
            DEADLINE_MS * 4 + 2_000,
            DEADLINE_MS
        ));
    }
    drop(stall);

    // ---- checkpoint fault checks ------------------------------------------
    let blob = client.snapshot_all().map_err(ctx("fetch checkpoint"))?;
    let path = cfg.dir.join("soak-checkpoint.shef");
    atomic_write(&path, &blob).map_err(ctx("write checkpoint"))?;

    for (name, shim_cfg) in [
        ("enospc", FaultConfig { enospc: 1.0, ..FaultConfig::quiet(cfg.seed ^ 1) }),
        ("torn", FaultConfig { torn_write: 1.0, ..FaultConfig::quiet(cfg.seed ^ 2) }),
    ] {
        let shim = ChaosFs::new(Faults::new(shim_cfg));
        if shim.atomic_write(&path, &blob).is_ok() {
            return Err(format!("injected {name} fault did not surface as an error"));
        }
        let still = std::fs::read(&path).map_err(ctx("re-read checkpoint"))?;
        if still != blob {
            return Err(format!("checkpoint damaged by a failed atomic write ({name} fault)"));
        }
        Checkpoint::decode(&still)
            .map_err(|e| format!("surviving checkpoint no longer decodes: {e}"))?;
    }

    // The legacy bare-write path, by contrast, tears the file — and the
    // tear must be *detected* at decode, cleanly.
    let torn_path = cfg.dir.join("soak-torn.shef");
    let shim = ChaosFs::new(Faults::new(FaultConfig {
        torn_write: 1.0,
        ..FaultConfig::quiet(cfg.seed ^ 3)
    }));
    if shim.bare_write(&torn_path, &blob).is_ok() {
        return Err("injected torn write on the bare path did not surface".to_string());
    }
    let torn = std::fs::read(&torn_path).map_err(ctx("read torn checkpoint"))?;
    let torn_checkpoint_detected = Checkpoint::decode(&torn).is_err();
    if !torn_checkpoint_detected {
        return Err(format!(
            "torn checkpoint ({} of {} bytes) decoded as valid — corruption undetected",
            torn.len(),
            blob.len()
        ));
    }

    // ---- corruption drill: corrupt latest, fall back bit-for-bit ---------
    // Two real generations: the battery-verified checkpoint, then a
    // strictly newer one after more traffic. Mangling the newer one must
    // make the store quarantine it and serve the older generation
    // unchanged — the "one flipped bit, zero data loss" contract.
    let store = CheckpointStore::new(cfg.dir.join("store"));
    let _ = std::fs::remove_dir_all(store.dir());
    store.save(&blob).map_err(ctx("save checkpoint generation 1"))?;
    let extra: Vec<u64> = (0..256).map(|_| rng.next_range(0, 6_000)).collect();
    client.insert_batch(0, &extra).map_err(ctx("insert post-checkpoint batch"))?;
    let blob2 = client.snapshot_all().map_err(ctx("fetch checkpoint generation 2"))?;
    if blob2 == blob {
        return Err("generation 2 checkpoint identical to generation 1 — drill is vacuous".into());
    }
    store.save(&blob2).map_err(ctx("save checkpoint generation 2"))?;
    let mut mangled = std::fs::read(store.latest_path()).map_err(ctx("read latest generation"))?;
    let mid = mangled.len() / 2;
    mangled[mid] ^= 0xFF;
    std::fs::write(store.latest_path(), &mangled).map_err(ctx("corrupt latest generation"))?;
    let (recovered, outcome) =
        store.load().map_err(|e| format!("fallback load after corruption failed: {e}"))?;
    match outcome {
        LoadOutcome::FellBack { quarantined } => {
            if !quarantined.exists() {
                return Err("corrupt generation was not kept in quarantine".to_string());
            }
        }
        LoadOutcome::Latest => {
            return Err("corrupt latest generation decoded as valid — fallback never ran".into());
        }
    }
    if recovered.encode() != blob {
        return Err(
            "fallback recovery is not bit-for-bit identical to the previous generation".into()
        );
    }
    let checkpoint_fallback_bit_for_bit = true;

    // ---- teardown ---------------------------------------------------------
    let primary_serve = counters.snapshot();
    let wire_faults = proxy.counters().snapshot();
    replica.join();
    proxy.stop();
    server.join();

    Ok(SoakReport {
        cycles: cfg.cycles,
        inserted,
        wire_faults,
        primary_serve,
        stalled_client_evicted,
        torn_checkpoint_detected,
        checkpoint_fallback_bit_for_bit,
    })
}

/// Wait until the replica has applied everything up to `head`.
fn converge(replica: &Replica, head: u64) -> Result<(), String> {
    let by = Instant::now() + CONVERGE_TIMEOUT;
    loop {
        let applied = replica.status().applied.load(std::sync::atomic::Ordering::SeqCst);
        if applied >= head {
            return Ok(());
        }
        if Instant::now() >= by {
            return Err(format!(
                "replica failed to converge: applied {applied} of {head} after {}s",
                CONVERGE_TIMEOUT.as_secs()
            ));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The query battery, encoded to exact bits so `==` is bit-for-bit:
/// per probe membership and frequency, then cardinality and similarity.
fn battery_mirror(engine: &mut DirectEngine, probes: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(probes.len() * 2 + 2);
    for &k in probes {
        out.push(u64::from(engine.member(k)));
        out.push(engine.frequency(k));
    }
    out.push(engine.cardinality().to_bits());
    out.push(engine.similarity().to_bits());
    out
}

/// The same battery over the wire.
fn battery_client(client: &mut Client, probes: &[u64]) -> std::io::Result<Vec<u64>> {
    let mut out = Vec::with_capacity(probes.len() * 2 + 2);
    for &k in probes {
        out.push(u64::from(client.query_member(k)?));
        out.push(client.query_freq(k)?);
    }
    out.push(client.query_card()?.to_bits());
    out.push(client.query_sim()?.to_bits());
    Ok(out)
}
