//! Crash-safe file writes, plus the fault-injecting FS shim that proves
//! they are crash-safe.
//!
//! [`atomic_write`] is the production path (used by `she checkpoint` and
//! anything else that persists engine state): write a temp file in the
//! destination directory, `sync_all`, then atomically rename over the
//! target. A crash at any point leaves either the old file or the new
//! file — never a torn mix.
//!
//! [`ChaosFs`] wraps both the atomic path and the legacy bare-write path
//! with injected `ENOSPC` and torn-write faults, so tests can assert the
//! atomic path's invariant (target intact after any injected failure)
//! and demonstrate the failure mode the bare path invites.

use crate::fault::{Faults, FileFault};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling temp path a write stages through.
fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Write `bytes` to `path` crash-safely: temp file in the same directory,
/// `sync_all`, atomic rename, then a best-effort directory sync so the
/// rename itself is durable. On any error the target is untouched and
/// the temp file is cleaned up.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = temp_path(path);
    let staged = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    })();
    if let Err(e) = staged {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Durability of the rename needs the directory synced; opening a
    // directory read-only works on Linux and is best-effort elsewhere.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn injected_enospc() -> io::Error {
    io::Error::new(io::ErrorKind::WriteZero, "injected ENOSPC: no space left on device")
}

fn injected_crash() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected crash mid-write (torn write)")
}

/// A file-writing shim with injected disk faults.
#[derive(Debug)]
pub struct ChaosFs {
    faults: Faults,
}

impl ChaosFs {
    /// A shim drawing from `faults`.
    pub fn new(faults: Faults) -> Self {
        Self { faults }
    }

    /// The shared fault tallies.
    pub fn counters(&self) -> std::sync::Arc<she_metrics::FaultCounters> {
        self.faults.counters()
    }

    /// [`atomic_write`] under fault injection. An injected `ENOSPC`
    /// writes nothing; an injected torn write leaves a *temp* file with a
    /// prefix (the simulated crash happens before the rename). Either
    /// way the destination keeps its previous contents — the invariant
    /// the chaos soak asserts.
    pub fn atomic_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.faults.file_fault(bytes.len()) {
            FileFault::Enospc => Err(injected_enospc()),
            FileFault::Torn { keep } => {
                // The crash strikes after a prefix reached the temp file;
                // it is deliberately left behind, as a real crash would.
                let _ = fs::write(temp_path(path), &bytes[..keep.min(bytes.len())]);
                Err(injected_crash())
            }
            FileFault::None => atomic_write(path, bytes),
        }
    }

    /// The legacy single-`fs::write` path under fault injection: a torn
    /// fault tears the *destination itself*, which is exactly why the
    /// serving path moved to [`ChaosFs::atomic_write`].
    pub fn bare_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.faults.file_fault(bytes.len()) {
            FileFault::Enospc => Err(injected_enospc()),
            FileFault::Torn { keep } => {
                fs::write(path, &bytes[..keep.min(bytes.len())])?;
                Err(injected_crash())
            }
            FileFault::None => fs::write(path, bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("she-chaos-fs-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = scratch("roundtrip");
        let p = dir.join("state.bin");
        atomic_write(&p, b"v1").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"v1");
        atomic_write(&p, b"v2 longer").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"v2 longer");
        assert!(!temp_path(&p).exists(), "temp staging file must not linger");
    }

    #[test]
    fn injected_enospc_leaves_target_untouched() {
        let dir = scratch("enospc");
        let p = dir.join("state.bin");
        atomic_write(&p, b"previous").unwrap();
        let shim = ChaosFs::new(Faults::new(FaultConfig { enospc: 1.0, ..FaultConfig::quiet(1) }));
        assert!(shim.atomic_write(&p, b"next").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"previous");
        assert_eq!(shim.counters().snapshot().enospc, 1);
    }

    #[test]
    fn injected_torn_write_leaves_target_untouched_on_atomic_path() {
        let dir = scratch("torn-atomic");
        let p = dir.join("state.bin");
        atomic_write(&p, b"previous").unwrap();
        let shim =
            ChaosFs::new(Faults::new(FaultConfig { torn_write: 1.0, ..FaultConfig::quiet(2) }));
        assert!(shim.atomic_write(&p, b"the replacement contents").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"previous", "atomic path never tears the target");
        assert_eq!(shim.counters().snapshot().torn_writes, 1);
    }

    #[test]
    fn injected_torn_write_tears_target_on_bare_path() {
        let dir = scratch("torn-bare");
        let p = dir.join("state.bin");
        let shim =
            ChaosFs::new(Faults::new(FaultConfig { torn_write: 1.0, ..FaultConfig::quiet(3) }));
        let full = b"the full contents that should have landed";
        assert!(shim.bare_write(&p, full).is_err());
        let got = fs::read(&p).unwrap();
        assert!(got.len() < full.len(), "bare path leaves a torn prefix");
        assert_eq!(&full[..got.len()], &got[..]);
    }
}
