//! Integration tests for the chaos harness: the proxy carrying real
//! protocol traffic under faults, and a scaled-down run of the full
//! soak scenario (the check.sh smoke runs the full-size one).

use she_chaos::{ChaosProxy, FaultConfig, SoakConfig};
use she_server::{Client, EngineConfig, Server, ServerConfig};
use std::time::Duration;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("she-chaos-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A client talking *through* the proxy sees injected faults; the
/// deadline machinery must turn every one of them into an error or a
/// retry, never a hang. Answers that do come back must be correct, so
/// we only assert on operations that succeeded.
#[test]
fn client_through_hostile_proxy_never_hangs() {
    let server = Server::start(ServerConfig {
        engine: EngineConfig { window: 1024, shards: 2, memory_bytes: 32 << 10, seed: 1 },
        client_deadline_ms: 500,
        ..Default::default()
    })
    .unwrap();
    let proxy = ChaosProxy::start(server.local_addr().to_string(), FaultConfig::wire(99)).unwrap();

    let mut successes = 0u32;
    for attempt in 0..20u32 {
        let Ok(mut client) = Client::connect(proxy.local_addr()) else { continue };
        if client.set_op_timeout(Some(Duration::from_secs(2))).is_err() {
            continue;
        }
        // Each op either succeeds or errors within its deadline; a hang
        // here fails the test by timeout.
        let key = 1_000 + u64::from(attempt);
        if client.insert(0, key).is_ok() && matches!(client.query_member(key), Ok(true)) {
            successes += 1;
        }
    }
    assert!(successes > 0, "the wire preset must let some traffic through");
    proxy.stop();
    server.shutdown();
    server.join();
}

/// The full scenario at reduced size: 3 disruption cycles (sever,
/// kill/restart, sever), bit-for-bit mirror verification on both nodes,
/// stalled-client eviction, and torn-checkpoint detection.
#[test]
fn small_soak_survives_three_cycles() {
    let cfg =
        SoakConfig { seed: 0xD5_0AC, cycles: 3, keys_per_cycle: 400, dir: scratch("small-soak") };
    let report = she_chaos::soak::run(&cfg)
        .unwrap_or_else(|e| panic!("soak failed (replay with seed {:#x}): {e}", cfg.seed));
    assert_eq!(report.cycles, 3);
    assert_eq!(report.inserted, 3 * 400);
    assert!(report.stalled_client_evicted);
    assert!(report.torn_checkpoint_detected);
    // The wire preset over a bootstrap + 1200 inserts worth of frames
    // should have injected at least something.
    assert!(report.wire_faults.total() > 0, "no faults injected: {}", report.wire_faults);
}

/// The RF=2 failover drill at reduced size: gossip routed through fault
/// proxies, partition 0's primary killed, then the freshly promoted node
/// killed too — the last holder must promote, writes must continue, and
/// the final scatter-gather battery must match the mirror bit-for-bit
/// (the check.sh smoke runs the full-size drill).
#[test]
fn small_drill_survives_double_kill_under_gossip_faults() {
    let cfg = she_chaos::ClusterDrillConfig { seed: 0xD811_0002, keys: 600, ..Default::default() };
    let report = she_chaos::drill::run(&cfg)
        .unwrap_or_else(|e| panic!("drill failed (replay with seed {:#x}): {e}", cfg.seed));
    assert_eq!(report.killed.len(), 2);
    assert_eq!(report.promoted.len(), 2);
    assert!(report.killed[1] == report.promoted[0], "round two must kill the promoted node");
    assert!(report.gossip_faults > 0, "gossip chaos leg never engaged");
    assert_eq!(report.battery, 130);
}

/// Determinism spot check at the stream level: the same seed over the
/// same byte stream with the same read chunking reproduces the exact
/// same delivered bytes and fault tallies. (Over a live socket the
/// *schedule* is still seed-determined, but which operation lands on
/// which decision depends on TCP chunk boundaries — which is why the
/// reproducibility claim is made here, in lock-step.)
#[test]
fn same_seed_same_bytes_same_chunking_is_bit_reproducible() {
    use she_chaos::{ChaosStream, Faults};
    use std::io::Read;

    let payload: Vec<u8> = (0..16_384u32).map(|i| (i * 31 + 7) as u8).collect();
    let run = |seed: u64| {
        let cfg = FaultConfig { partial_io: 0.3, bitflip: 0.05, ..FaultConfig::quiet(seed) };
        let mut s = ChaosStream::new(std::io::Cursor::new(payload.clone()), Faults::new(cfg));
        let mut out = Vec::new();
        let mut sizes = Vec::new();
        let mut buf = [0u8; 1024];
        loop {
            let n = s.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            sizes.push(n);
            out.extend_from_slice(&buf[..n]);
        }
        (out, sizes, s.into_inner().position())
    };
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b, "same seed, same chunking, same delivered bytes");
    assert_ne!(a.0, payload, "bitflip preset should have corrupted something");
}
