//! Subcommand implementations.

use crate::args::{ArgError, Args};
use she_core::analysis;
use she_hwsim::{ResourceReport, ShePipeline, SheVariant};
use she_metrics::*;
use she_streams::{CaidaLike, CampusLike, DistinctStream, KeyStream, RelevantPair, WebpageLike};

/// Help text.
pub const USAGE: &str = "\
she — sliding-window stream mining (SHE, ICPP'22 reproduction)

USAGE: she <command> [--flag value ...]

COMMANDS
  membership   SHE-BF false-positive rate vs exact ground truth
               --window N --memory BYTES --stream S --items N --probes N --alpha F
  cardinality  SHE-BM / SHE-HLL relative error
               --algo bm|hll --window N --memory BYTES --stream S --items N
  frequency    SHE-CM average relative error
               --window N --memory BYTES --stream S --items N --sample N
  similarity   SHE-MH pair relative error
               --window N --memory BYTES --overlap F --items N
  pipeline     audited 4-stage hardware pipeline (Tables 2-3)
               --variant bm|bf|cm|hll --items N
  analyze      closed-form parameter guidance (Eqs. 1-5)
               --window N --memory BYTES --hashes K --cardinality C
  serve        run the TCP stream-mining server (docs/PROTOCOL.md)
               --addr HOST:PORT --shards N --window N --memory BYTES --seed N
               --queue N --restore DIR (start from DIR/checkpoint.she; --shards
               may differ from the checkpoint — rebalanced by snapshot merge)
               --repl-log N (keep an op log of the last N insert batches so
               replicas can join) --heartbeat-ms N
               --readpath yes (serve v5 QUERY_FAST inline on the reactor
               from a mark-cached read mirror; a primary needs --repl-log,
               the mirror tails the op log — docs/READPATH.md)
               --replica-of HOST:PORT (start a read-only replica instead;
               engine sizing is inherited from the primary's snapshot)
               --anti-entropy-ms N --heartbeat-timeout-ms N (replica only)
  checkpoint   write a running server's state to DIR/checkpoint.she
               (crash-safe: temp file + atomic rename; the prior file is
               rotated to checkpoint.prev.she so a corrupt latest falls
               back automatically on restore)
               --addr HOST:PORT --dir DIR --timeout-ms N
  query        one query against a running server (bit-exact output)
               --addr HOST:PORT --op member|card|freq|sim --key N --timeout-ms N
  cluster-serve  run one node of a partitioned cluster (docs/CLUSTER.md):
               partition primary + a replica slot for every partition the
               map assigns this node (RF-1 ring successors each) + gossip
               failover monitor
               --node-id N --roster \"1@H:P,2@H:P,...\" --window N --memory B
               --seed N --queue N --repl-log N --gossip-ms N
               --heartbeat-timeout-ms N --replication R (holders per
               partition, primary included; default 2) --anti-entropy-ms N
               (periodic commutative merge sweeps on every replica slot)
               --readpath yes (serve v5 QUERY_FAST on primary + replicas)
  cluster-map  print a node's cluster map, one grep-friendly line per
               partition --addr HOST:PORT --timeout-ms N
  cluster-query  scatter-gather one query across the cluster via a
               coordinator node (bit-exact output, same formats as query)
               --addr HOST:PORT --op member|card|freq|sim --key N --timeout-ms N
  cluster-rebalance  live-migrate a running server's partition state to
               another running server, resharding in flight (bulk snapshot
               + op-log delta replay)
               --from HOST:PORT --to HOST:PORT --shards N --timeout-ms N
  cluster-status  one-line replication position of a node, plus per-shard
               queue depths, read-path cache counters, and — on cluster
               nodes — one line per partition with its holder list and
               each replica's apply-lag (docs/REPLICATION.md)
               --addr HOST:PORT --timeout-ms N
  fastcheck    verify a quiescent --readpath server: warm cached answers
               must respect the staleness bound (member-true still true,
               freq never above QUERY), then after a cache flush every
               fresh fill must match QUERY bit-for-bit and every repeat
               ask must hit (docs/READPATH.md)
               --addr HOST:PORT --keys N --universe N --skew F --seed N
               --timeout-ms N
  chaos-soak   deterministic fault-injection soak: primary + replica under a
               fault proxy, kill/restart cycles, checkpoint corruption with
               generation fallback, bit-for-bit mirror verdict
               (docs/ROBUSTNESS.md) --seed N --cycles N --keys N --dir DIR
  chaos-cluster  failover drill on a real quorum-replicated cluster:
               gossip routed through fault proxies (drops, delays,
               mid-frame resets, duplicated deliveries), partition 0's
               primary killed and then its promoted successor too;
               survivors must converge after every kill, writes continue,
               scatter-gather stays bit-for-bit (docs/CLUSTER.md,
               docs/ROBUSTNESS.md) --seed N --nodes N --keys N
               --heartbeat-timeout-ms N --replication R --kills N
               --gossip-faults yes|no
  mirror-check replay the loadgen workload into an in-process mirror and
               compare a quiescent node's answers bit-for-bit
               --addr HOST:PORT --items N --batch N --universe N --skew F
               --seed N --sim-every N --probes N (+ --shards/--window/
               --memory/--engine-seed matching the serving engine)
               --cluster yes (treat --addr as a coordinator: answers come
               from CLUSTER_QUERY scatter-gather, --shards must equal the
               partition count, and the whole --items stream must be
               applied cluster-wide)
               --from-log yes (replay the node's own op log into the
               mirror via a replication subscription instead of re-running
               the keygen — sound for workloads from many concurrent
               connections; the node must run with --repl-log and retain
               the log from sequence 1)
  loadgen      drive a running server with a Zipf workload
               --addr HOST:PORT --items N --batch N --queries N --open RATE
               --universe N --skew F --seed N --verify yes (+ --shards/
               --window/--memory/--engine-seed matching the server)
               --connections N (fan out; merged latency histograms)
               --read-from HOST:PORT (send the queries to a replica)
               --cluster yes (treat --addr as a cluster seed node: writes
               route per partition, queries scatter-gather, and the map is
               refreshed through failovers) --offset N (skip the first N
               items of the seeded stream — continue an interrupted run)
               --query-batch N (batch member/freq probes N keys per round
               trip via QUERY_BATCH / CLUSTER_QUERY_BATCH)
               --read-ratio F (interleave v5 QUERY_FAST reads at F reads
               per read+item — 0.95 is the 95/5 read-heavy profile; needs
               a --readpath server; prints the server-side cache hit rate)
               --zipf F (Zipf exponent of the fast-read key draw, seeded
               from --seed; default 1.1)
               --faults yes --fault-seed N (route traffic through an
               in-process fault proxy — partial writes, delays, resets —
               riding each fault with reconnect + op-log-head resync, so
               --verify stays bit-for-bit; server must run --repl-log.
               With --cluster yes every partition leg gets its own proxy
               and its own per-partition head ledger, and the ledger
               follows a failover to the promoted holder's log)
  shutdown     ask a running server to drain and stop
               --addr HOST:PORT
  audit        run the workspace static-analysis gate (docs/ANALYSIS.md):
               panic-path, truncating-cast, lock-order, protocol-drift
               --root DIR (workspace root, default .) --list-locks yes

Sizes accept k/m/g suffixes: --memory 64k, --items 2m.
Streams: caida (default), distinct, campus, webpage.
--timeout-ms bounds the whole request (connect to final reply, retries
included); default 10000, 0 waits forever.
Exit codes: 0 ok, 1 failure, 2 usage error, 3 connection refused,
4 deadline exceeded.
";

fn make_stream(name: &str, seed: u64) -> Result<Box<dyn KeyStream>, ArgError> {
    Ok(match name {
        "caida" => Box::new(CaidaLike::new(200_000, 1.05, seed)),
        "distinct" => Box::new(DistinctStream::new(seed)),
        "campus" => Box::new(CampusLike::default_trace(seed)),
        "webpage" => Box::new(WebpageLike::default_trace(seed)),
        other => return Err(ArgError(format!("unknown stream '{other}'"))),
    })
}

/// Exit code for "the target server is not reachable" — distinct from
/// 1 (failed run / bad invocation) and 2 (parse error) so scripts can
/// tell "start the server first" from "fix the command".
pub const EXIT_UNREACHABLE: i32 = 3;

/// Exit code for "the request deadline elapsed" — the server is there
/// but slow, wedged, or shedding; distinct from [`EXIT_UNREACHABLE`] so
/// scripts can retry with backoff instead of starting a server.
pub const EXIT_DEADLINE: i32 = 4;

/// A dispatch failure carrying the process exit code `main` should use.
#[derive(Debug)]
pub struct CliError {
    /// User-facing message.
    pub msg: String,
    /// Suggested process exit code.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        Self { msg: e.0, code: 1 }
    }
}

/// Map a transport error: connection-refused gets its own exit code and
/// a hint; everything else stays a generic failure.
fn net_err(addr: &str, err: std::io::Error) -> CliError {
    match err.kind() {
        std::io::ErrorKind::ConnectionRefused => CliError {
            msg: format!("cannot connect to {addr}: connection refused (is the server running?)"),
            code: EXIT_UNREACHABLE,
        },
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => CliError {
            msg: format!("request to {addr} timed out: {err} (raise --timeout-ms?)"),
            code: EXIT_DEADLINE,
        },
        _ => CliError { msg: err.to_string(), code: 1 },
    }
}

/// Parse `--timeout-ms` into the client's per-operation deadline;
/// 0 disables it.
fn op_timeout(a: &Args) -> Result<Option<std::time::Duration>, ArgError> {
    let ms = a.get_u64("timeout-ms", 10_000)?;
    Ok((ms > 0).then(|| std::time::Duration::from_millis(ms)))
}

/// Route a parsed command line.
pub fn dispatch(a: &Args) -> Result<(), CliError> {
    match a.command.as_str() {
        "membership" => Ok(membership(a)?),
        "cardinality" => Ok(cardinality(a)?),
        "frequency" => Ok(frequency(a)?),
        "similarity" => Ok(similarity(a)?),
        "pipeline" => Ok(pipeline(a)?),
        "analyze" => Ok(analyze(a)?),
        "serve" => serve(a),
        "checkpoint" => checkpoint(a),
        "query" => query(a),
        "cluster-serve" => cluster_serve(a),
        "cluster-map" => cluster_map(a),
        "cluster-query" => cluster_query(a),
        "cluster-rebalance" => cluster_rebalance(a),
        "cluster-status" => cluster_status(a),
        "fastcheck" => fastcheck(a),
        "chaos-soak" => chaos_soak(a),
        "chaos-cluster" => chaos_cluster(a),
        "mirror-check" => mirror_check(a),
        "loadgen" => loadgen(a),
        "shutdown" => shutdown(a),
        "audit" => audit(a),
        other => Err(ArgError(format!("unknown command '{other}' (see `she help`)")).into()),
    }
}

fn membership(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "stream", "items", "probes", "alpha", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 64 << 10)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let probes = a.get_u64("probes", 5_000)? as usize;
    let seed = a.get_u64("seed", 1)?;
    let keys = make_stream(&a.get("stream", "distinct"), seed)?.take_vec(items);

    let mut bf = SheBfAdapter::sized(window, memory, seed as u32);
    if let Some(alpha) = a.get_f64("alpha", -1.0).ok().filter(|&v| v > 0.0) {
        bf = SheBfAdapter(
            she_core::SheBloomFilter::builder()
                .window(window)
                .memory_bytes(memory)
                .hash_functions(8)
                .alpha(alpha)
                .seed(seed as u32)
                .build(),
        );
    }
    let guard = (window as usize * 5).min(items / 2);
    let r = membership_fpr(&mut bf, &keys, guard, 4, probes);
    println!("SHE-BF  window={window} memory={memory}B items={items}");
    println!("  FPR = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    println!("  memory used: {} bits", r.memory_bits);
    Ok(())
}

fn cardinality(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["algo", "window", "memory", "stream", "items", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 8 << 10)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let seed = a.get_u64("seed", 1)?;
    let keys = make_stream(&a.get("stream", "caida"), seed)?.take_vec(items);
    let algo = a.get("algo", "bm");
    let r = match algo.as_str() {
        "bm" => {
            let mut s = SheBmAdapter::sized(window, memory, seed as u32);
            cardinality_re(&mut s, &keys, window as usize, 4)
        }
        "hll" => {
            let mut s = SheHllAdapter::sized(window, memory, seed as u32);
            cardinality_re(&mut s, &keys, window as usize, 4)
        }
        other => return Err(ArgError(format!("unknown --algo '{other}' (bm|hll)"))),
    };
    println!("{}  window={window} memory={memory}B items={items}", r.name);
    println!("  RE = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    Ok(())
}

fn frequency(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "stream", "items", "sample", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 1 << 20)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let sample = a.get_u64("sample", 500)? as usize;
    let seed = a.get_u64("seed", 1)?;
    let keys = make_stream(&a.get("stream", "caida"), seed)?.take_vec(items);
    let mut s = SheCmAdapter::sized(window, memory, seed as u32);
    let r = frequency_are(&mut s, &keys, window as usize, 4, sample);
    println!("SHE-CM  window={window} memory={memory}B items={items}");
    println!("  ARE = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    Ok(())
}

fn similarity(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "overlap", "items", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 4 << 10)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let overlap = a.get_f64("overlap", 0.5)?;
    let seed = a.get_u64("seed", 1)?;
    let mut gen = RelevantPair::new(window as usize, overlap, seed);
    let pairs: Vec<(u64, u64)> = (0..items).map(|_| gen.next_pair()).collect();
    let mut s = SheMhAdapter::sized(window, memory, seed as u32);
    let r = similarity_re(&mut s, &pairs, window as usize, 4);
    println!("SHE-MH  window={window} memory={memory}B items={items} overlap={overlap}");
    println!("  RE = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    Ok(())
}

fn pipeline(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["variant", "items"])?;
    let items = a.get_u64("items", 500_000)?;
    let variant = match a.get("variant", "bm").as_str() {
        "bm" => SheVariant::Bitmap,
        "bf" => SheVariant::Bloom { k: 8 },
        "cm" => SheVariant::CountMin { k: 8, counter_bits: 16 },
        "hll" => SheVariant::HyperLogLog { reg_bits: 5 },
        other => return Err(ArgError(format!("unknown --variant '{other}' (bm|bf|cm|hll)"))),
    };
    let mut p = ShePipeline::paper_config(variant);
    let stats = p.run((0..items).map(she_hash::mix64));
    let report = ResourceReport::for_pipeline(&p);
    println!(
        "{variant:?} pipeline: {} items, {} cycles, {} stages",
        stats.items, stats.cycles, stats.stages
    );
    println!("  items/cycle = {:.4}", stats.items as f64 / stats.cycles as f64);
    println!("  constraint violations: {}", stats.violations);
    for v in p.memory().violations() {
        println!("    {v}");
    }
    println!(
        "  state: {} bits | modeled clock {:.2} MHz | throughput {:.1} Mips",
        report.total_bits(),
        report.clock_mhz,
        report.throughput_mips
    );
    Ok(())
}

fn engine_config(a: &Args, seed_flag: &str) -> Result<she_server::EngineConfig, ArgError> {
    Ok(she_server::EngineConfig {
        window: a.get_u64("window", 1 << 16)?,
        shards: a.get_u64("shards", 4)? as usize,
        memory_bytes: a.get_u64("memory", 64 << 10)? as usize,
        seed: a.get_u64(seed_flag, 1)? as u32,
    })
}

/// Read and decode the newest intact checkpoint generation in `DIR` via
/// [`she_server::CheckpointStore`].
///
/// A latest file that *reads* but does not *decode* (torn write, bit rot)
/// is quarantined — moved aside to `checkpoint.she.corrupt` — and the
/// store falls back to the previous generation if one is intact; only
/// when no generation survives does the restore fail, with a clean error.
/// Corruption must never panic or be restored from silently, so a
/// fallback is reported on stderr.
fn load_checkpoint(dir: &str) -> Result<she_server::Checkpoint, Box<dyn std::error::Error>> {
    let store = she_server::CheckpointStore::new(dir);
    let (ckpt, outcome) = store.load()?;
    if let she_server::LoadOutcome::FellBack { quarantined } = outcome {
        eprintln!(
            "warning: {} was corrupt (quarantined to {}); restored the previous generation",
            store.latest_path().display(),
            quarantined.display()
        );
    }
    Ok(ckpt)
}

fn serve(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "addr",
        "shards",
        "window",
        "memory",
        "seed",
        "queue",
        "restore",
        "repl-log",
        "heartbeat-ms",
        "readpath",
        "replica-of",
        "anti-entropy-ms",
        "heartbeat-timeout-ms",
    ])?;
    if a.has("replica-of") {
        return serve_replica(a);
    }
    for flag in ["anti-entropy-ms", "heartbeat-timeout-ms"] {
        if a.has(flag) {
            return Err(ArgError(format!("--{flag} only applies with --replica-of")).into());
        }
    }
    let restore_dir = a.get("restore", "");
    let readpath = matches!(a.get("readpath", "no").as_str(), "yes" | "true" | "1");
    let mut cfg = she_server::ServerConfig {
        addr: a.get("addr", "127.0.0.1:7487"),
        engine: engine_config(a, "seed")?,
        queue_capacity: a.get_u64("queue", 256)? as usize,
        repl_log: a.get_u64("repl-log", 0)? as usize,
        heartbeat_ms: a.get_u64("heartbeat-ms", 500)?,
        readpath: readpath.then(she_server::ReadPathConfig::default),
        ..Default::default()
    };
    if readpath && cfg.repl_log == 0 {
        return Err(ArgError(
            "--readpath on a primary needs --repl-log: the read mirror stays fresh by \
             tailing the op log"
                .into(),
        )
        .into());
    }
    // With --restore, the checkpoint's config is authoritative (rebalanced
    // by build_engines when --shards differs); flag values are ignored.
    let restored = if restore_dir.is_empty() {
        None
    } else {
        let ckpt = load_checkpoint(&restore_dir)
            .map_err(|err| ArgError(format!("--restore {restore_dir}: {err}")))?;
        let shards = a.get_u64("shards", ckpt.cfg.shards as u64)? as usize;
        let (engine, engines) = ckpt
            .build_engines(shards)
            .map_err(|err| ArgError(format!("--restore {restore_dir}: {err}")))?;
        cfg.engine = engine;
        Some(engines)
    };
    let e = cfg.engine;
    let repl_log = cfg.repl_log;
    let server = match restored {
        Some(engines) => she_server::Server::start_with_engines(cfg, engines),
        None => she_server::Server::start(cfg),
    }
    .map_err(|err| ArgError(err.to_string()))?;
    println!(
        "she-server listening on {} — {} shards, window {} ({} per shard), {}B per structure",
        server.local_addr(),
        e.shards,
        e.window,
        e.window / e.shards as u64,
        e.memory_bytes,
    );
    if repl_log > 0 {
        println!(
            "replication enabled: op log holds {repl_log} records; join replicas with \
             `she serve --replica-of {}`",
            server.local_addr()
        );
    }
    if readpath {
        println!(
            "read path enabled: QUERY_FAST served inline from the mark-cached mirror \
             (verify with `she fastcheck --addr {}`)",
            server.local_addr()
        );
    }
    println!("(stop with the wire SHUTDOWN request, e.g. via `she loadgen` or she-server::Client)");
    print_shard_stats(&server.wait());
    Ok(())
}

/// `serve --replica-of`: bootstrap from the primary's snapshot, tail its
/// op log, and serve reads.
fn serve_replica(a: &Args) -> Result<(), CliError> {
    // The replica inherits the primary's engine from the bootstrap
    // snapshot and never serves an op log of its own.
    for flag in ["shards", "window", "memory", "seed", "restore", "repl-log", "heartbeat-ms"] {
        if a.has(flag) {
            return Err(ArgError(format!(
                "--{flag} cannot be combined with --replica-of (engine sizing and the op log \
                 come from the primary)"
            ))
            .into());
        }
    }
    let primary = a.get("replica-of", "");
    let readpath = matches!(a.get("readpath", "no").as_str(), "yes" | "true" | "1");
    let cfg = she_replica::ReplicaConfig {
        listen_addr: a.get("addr", "127.0.0.1:7488"),
        primary: primary.clone(),
        queue_capacity: a.get_u64("queue", 256)? as usize,
        anti_entropy_ms: a.get_u64("anti-entropy-ms", 0)?,
        heartbeat_timeout_ms: a.get_u64("heartbeat-timeout-ms", 2_500)?,
        readpath: readpath.then(she_server::ReadPathConfig::default),
        ..Default::default()
    };
    let replica = she_replica::Replica::start(cfg).map_err(|err| net_err(&primary, err))?;
    println!(
        "she-replica listening on {} — read-only, following primary {primary}",
        replica.local_addr()
    );
    if readpath {
        println!("read path enabled: QUERY_FAST tracks the applied replication position");
    }
    println!("(writes are rejected with NOT_PRIMARY; stop with the wire SHUTDOWN request)");
    print_shard_stats(&replica.wait());
    Ok(())
}

fn print_shard_stats(stats: &[she_server::ShardStats]) {
    println!("drained; final per-shard stats:");
    for (i, s) in stats.iter().enumerate() {
        println!(
            "  shard {i}: inserts={} queries={} memory={} bits",
            s.inserts, s.queries, s.memory_bits
        );
    }
}

fn checkpoint(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "dir", "timeout-ms"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let dir = a.get("dir", "checkpoints");
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 2 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; SNAPSHOT_ALL needs v2"
        ))
        .into());
    }
    let blob = client.snapshot_all().map_err(io)?;
    std::fs::create_dir_all(&dir).map_err(|err| ArgError(format!("{dir}: {err}")))?;
    let path = std::path::Path::new(&dir).join("checkpoint.she");
    // Crash-safe: a failure at any point (full disk, crash mid-write)
    // leaves the previous checkpoint intact, never a torn file.
    she_chaos::atomic_write(&path, &blob)
        .map_err(|err| ArgError(format!("{}: {err}", path.display())))?;
    println!("wrote {} ({} bytes)", path.display(), blob.len());
    Ok(())
}

/// Run the deterministic chaos soak (docs/ROBUSTNESS.md): a real primary
/// and replica in this process, faults injected on the replication path,
/// scripted disconnects and replica kills, and a bit-for-bit comparison
/// against an in-process mirror at the end. Exit 0 means every check
/// held; on failure the seed is printed for an exact replay.
fn chaos_soak(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["seed", "cycles", "keys", "dir"])?;
    let defaults = she_chaos::SoakConfig::default();
    let cfg = she_chaos::SoakConfig {
        seed: a.get_u64("seed", defaults.seed)?,
        cycles: a.get_u64("cycles", u64::from(defaults.cycles))? as u32,
        keys_per_cycle: a.get_u64("keys", defaults.keys_per_cycle as u64)? as usize,
        dir: match a.get("dir", "").as_str() {
            "" => defaults.dir,
            d => std::path::PathBuf::from(d),
        },
    };
    println!(
        "chaos soak starting: seed={} cycles={} keys-per-cycle={}",
        cfg.seed, cfg.cycles, cfg.keys_per_cycle
    );
    match she_chaos::soak::run(&cfg) {
        Ok(report) => {
            println!("{report}");
            Ok(())
        }
        Err(e) => Err(CliError {
            msg: format!("chaos soak FAILED (replay with --seed {}): {e}", cfg.seed),
            code: 1,
        }),
    }
}

/// Run the kill-primary cluster failover drill (docs/CLUSTER.md): a real
/// partitioned cluster in this process, a seeded workload routed by the
/// cluster map, one primary killed outright, and a post-failover
/// scatter-gather battery compared bit-for-bit against an in-process
/// mirror. Exit 0 means every check held; on failure the seed is printed
/// for an exact replay.
fn chaos_cluster(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "seed",
        "nodes",
        "keys",
        "window",
        "memory",
        "heartbeat-timeout-ms",
        "replication",
        "kills",
        "gossip-faults",
    ])?;
    let defaults = she_chaos::ClusterDrillConfig::default();
    let cfg = she_chaos::ClusterDrillConfig {
        seed: a.get_u64("seed", defaults.seed)?,
        nodes: a.get_u64("nodes", defaults.nodes as u64)? as usize,
        keys: a.get_u64("keys", defaults.keys as u64)? as usize,
        window: a.get_u64("window", defaults.window)?,
        memory_bytes: a.get_u64("memory", defaults.memory_bytes as u64)? as usize,
        heartbeat_timeout_ms: a.get_u64("heartbeat-timeout-ms", defaults.heartbeat_timeout_ms)?,
        replication: a.get_u64("replication", u64::from(defaults.replication))? as u16,
        kills: a.get_u64("kills", defaults.kills as u64)? as usize,
        gossip_faults: matches!(
            a.get("gossip-faults", if defaults.gossip_faults { "yes" } else { "no" }).as_str(),
            "yes" | "true" | "1"
        ),
    };
    println!(
        "cluster drill starting: seed={} nodes={} rf={} keys={} kills={} gossip-faults={} \
         heartbeat-timeout-ms={}",
        cfg.seed,
        cfg.nodes,
        cfg.replication,
        cfg.keys,
        cfg.kills,
        cfg.gossip_faults,
        cfg.heartbeat_timeout_ms
    );
    match she_chaos::drill::run(&cfg) {
        Ok(report) => {
            println!("{report}");
            Ok(())
        }
        Err(e) => Err(CliError {
            msg: format!("cluster drill FAILED (replay with --seed {}): {e}", cfg.seed),
            code: 1,
        }),
    }
}

/// The four wire queries `she query --op` can issue. Parsing the flag
/// into a type (instead of validating a string twice) keeps the dispatch
/// below exhaustive — there is no "impossible" arm left to panic in.
#[derive(Debug, Clone, Copy)]
enum QueryOp {
    Member,
    Card,
    Freq,
    Sim,
}

impl QueryOp {
    fn parse(op: &str) -> Result<Self, ArgError> {
        match op {
            "member" => Ok(QueryOp::Member),
            "card" => Ok(QueryOp::Card),
            "freq" => Ok(QueryOp::Freq),
            "sim" => Ok(QueryOp::Sim),
            other => Err(ArgError(format!("unknown --op '{other}' (member|card|freq|sim)"))),
        }
    }
}

fn query(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "op", "key", "timeout-ms"])?;
    let op = QueryOp::parse(&a.get("op", "member"))?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let key = a.get_u64("key", 0)?;
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    // f64 answers also print their raw bits so scripts can diff bit-exactly.
    match op {
        QueryOp::Member => println!("member {key} = {}", client.query_member(key).map_err(io)?),
        QueryOp::Freq => println!("freq {key} = {}", client.query_freq(key).map_err(io)?),
        QueryOp::Card => {
            let v = client.query_card().map_err(io)?;
            println!("card = {v:.6} (bits {:#018x})", v.to_bits());
        }
        QueryOp::Sim => {
            let v = client.query_sim().map_err(io)?;
            println!("sim = {v:.6} (bits {:#018x})", v.to_bits());
        }
    }
    Ok(())
}

/// `she audit` — run the static-analysis gate over the workspace and
/// exit nonzero on any gate failure (new finding above a ratchet
/// baseline, unbanked improvement, lock-manifest drift, protocol drift,
/// or a malformed allow annotation). See `docs/ANALYSIS.md`.
fn audit(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["root", "list-locks", "json", "rule"])?;
    let root = std::path::PathBuf::from(a.get("root", "."));
    let fail = |msg: String| CliError { msg, code: 1 };
    let cfg = she_audit::RuleConfig::for_workspace(&root).map_err(|e| fail(e.to_string()))?;
    let rule = a.get("rule", "");
    let opts = she_audit::AuditOptions { rule: (!rule.is_empty()).then_some(rule) };
    let report = she_audit::audit_with(&root, &cfg, &opts).map_err(|e| fail(e.to_string()))?;
    if a.get("json", "no") == "yes" {
        println!("{}", report.to_json());
        return if report.ok() {
            Ok(())
        } else {
            Err(fail(format!("she audit: {} gate failure(s)", report.gate_failures.len())))
        };
    }
    if a.get("list-locks", "no") == "yes" {
        println!("{} lock() site(s):", report.lock_sites.len());
        for site in &report.lock_sites {
            println!("  {site}");
        }
        return Ok(());
    }
    let g = &report.graph_stats;
    println!(
        "she audit: graph {} fns, {} edges, {} roots, {} unresolved call(s)",
        g.nodes, g.edges, g.roots, g.unresolved_calls
    );
    for t in &report.timings {
        println!("she audit: rule {:<8} {:>6}us  {} finding(s)", t.name, t.micros, t.findings);
    }
    if report.ok() {
        println!(
            "she audit: OK — {} files scanned, {} finding(s), all at committed baselines",
            report.files_scanned,
            report.findings.len()
        );
        return Ok(());
    }
    for f in report.failing_findings() {
        eprintln!("{f}");
    }
    for g in &report.gate_failures {
        eprintln!("audit gate: {g}");
    }
    Err(fail(format!("she audit: {} gate failure(s)", report.gate_failures.len())))
}

fn loadgen(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "addr",
        "items",
        "batch",
        "queries",
        "open",
        "universe",
        "skew",
        "seed",
        "sim-every",
        "verify",
        "shards",
        "window",
        "memory",
        "engine-seed",
        "read-from",
        "connections",
        "cluster",
        "offset",
        "query-batch",
        "faults",
        "fault-seed",
        "read-ratio",
        "zipf",
    ])?;
    let verify = a.get("verify", "no");
    let read_from = a.get("read-from", "");
    let addr = a.get("addr", "127.0.0.1:7487");
    let cluster = matches!(a.get("cluster", "no").as_str(), "yes" | "true" | "1");
    let faults = matches!(a.get("faults", "no").as_str(), "yes" | "true" | "1");
    let mut cfg = she_server::LoadgenConfig {
        addr: addr.clone(),
        items: a.get_u64("items", 1 << 20)?,
        batch: a.get_u64("batch", 512)? as usize,
        queries: a.get_u64("queries", 10_000)?,
        mode: match a.get_f64("open", -1.0).ok().filter(|&r| r > 0.0) {
            Some(rate) => she_server::Mode::Open { items_per_sec: rate },
            None => she_server::Mode::Closed,
        },
        universe: a.get_u64("universe", 100_000)? as usize,
        skew: a.get_f64("skew", 1.05)?,
        seed: a.get_u64("seed", 1)?,
        sim_every: a.get_u64("sim-every", 8)?,
        verify: match verify.as_str() {
            "yes" | "true" | "1" => Some(engine_config(a, "engine-seed")?),
            _ => None,
        },
        read_from: if read_from.is_empty() { None } else { Some(read_from) },
        connections: a.get_u64("connections", 1)? as usize,
        cluster: cluster.then(|| addr.clone()),
        offset: a.get_u64("offset", 0)?,
        query_batch: a.get_u64("query-batch", 0)? as usize,
        resync_addr: None,
        read_ratio: a.get_f64("read-ratio", 0.0)?,
        read_skew: a.get_f64("zipf", 1.1)?,
        cluster_via: std::collections::BTreeMap::new(),
        cluster_resync: false,
    };
    let fault_seed = a.get_u64("fault-seed", 1)?;
    // Bit flips stay off on every fault leg: inserts carry no checksum,
    // so a flipped key would corrupt the run silently instead of failing
    // it. Duplicates stay off too — a duplicated *applied* insert frame
    // would advance the op-log head twice for one committed frame and the
    // resync ledger would read that as divergence.
    let mut proxies = Vec::new();
    if faults {
        if cluster {
            // One proxy per partition primary; every data leg detours
            // through its proxy while head polls and map refreshes go
            // direct. The per-partition head ledger keeps retries
            // exactly-once, and survives failover because a promoted
            // holder continues its predecessor's op-log numbering.
            let mut map_client =
                she_server::Client::connect(&addr).map_err(|err| net_err(&addr, err))?;
            let map = map_client.cluster_map().map_err(|err| net_err(&addr, err))?;
            for (p, part) in map.partitions.iter().enumerate() {
                let mut fault_cfg = she_chaos::FaultConfig::wire(fault_seed + p as u64);
                fault_cfg.bitflip = 0.0;
                let proxy =
                    she_chaos::ChaosProxy::start(part.primary.addr.clone(), fault_cfg).map_err(
                        |e| CliError { msg: format!("fault proxy failed to start: {e}"), code: 1 },
                    )?;
                cfg.cluster_via.insert(part.primary.addr.clone(), proxy.local_addr().to_string());
                proxies.push(proxy);
            }
            cfg.cluster_resync = true;
        } else {
            // All traffic detours through a seeded in-process fault
            // proxy; the loadgen resyncs against the server's *direct*
            // address after each injected fault.
            let mut fault_cfg = she_chaos::FaultConfig::wire(fault_seed);
            fault_cfg.bitflip = 0.0;
            let proxy = she_chaos::ChaosProxy::start(addr.clone(), fault_cfg).map_err(|e| {
                CliError { msg: format!("fault proxy failed to start: {e}"), code: 1 }
            })?;
            cfg.resync_addr = Some(addr.clone());
            cfg.addr = proxy.local_addr().to_string();
            proxies.push(proxy);
        }
    }
    let summary = she_server::loadgen::run(&cfg).map_err(|err| net_err(&cfg.addr, err));
    for p in proxies {
        p.stop();
    }
    let summary = summary?;
    summary.print();
    if summary.mismatches > 0 {
        return Err(
            ArgError(format!("verification failed: {} mismatches", summary.mismatches)).into()
        );
    }
    Ok(())
}

fn shutdown(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let mut client = she_server::Client::connect(&addr).map_err(|err| net_err(&addr, err))?;
    client.shutdown().map_err(|err| net_err(&addr, err))?;
    println!("server at {addr} acknowledged shutdown");
    Ok(())
}

/// One-line replication position, `key=value` formatted for scripts.
fn cluster_status(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "timeout-ms"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 3 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; CLUSTER_STATUS needs v3"
        ))
        .into());
    }
    let info = client.cluster_status().map_err(io)?;
    if info.is_primary {
        println!("role=primary head={} floor={} peers={}", info.head, info.floor, info.peers.len());
        for p in &info.peers {
            println!("  peer={} acked={}", p.addr, p.acked);
        }
    } else {
        println!(
            "role=replica primary={} connected={} applied={} boot_seq={}",
            info.primary, info.connected, info.head, info.boot_seq
        );
    }
    if !info.queue_depths.is_empty() {
        let depths: Vec<String> = info.queue_depths.iter().map(u64::to_string).collect();
        println!("queue_depths={}", depths.join(","));
    }
    let rp = &info.readpath;
    if rp.enabled {
        println!(
            "readpath=enabled hits={} misses={} fills={} invalidations={} seq={}",
            rp.hits, rp.misses, rp.fills, rp.invalidations, rp.seq
        );
    } else {
        println!("readpath=disabled");
    }
    // On a cluster member, one line per partition: the full holder list
    // and each replica's apply-lag behind its primary's op-log head
    // (`id:?` until the holder subscribes, `head=?` when the primary is
    // unreachable). Standalone servers carry no map; skip silently.
    // Checked writes, not `println!`: the lag probes pause between
    // lines, so a reader that closes early (`she cluster-status | grep
    // -q ...`) turns the next line into a broken pipe — stop quietly.
    if version >= 4 {
        if let Ok(map) = client.cluster_map() {
            use std::io::Write as _;
            let mut out = std::io::stdout().lock();
            for (p, pm) in map.partitions.iter().enumerate() {
                let mut holders = vec![pm.primary.node_id.to_string()];
                holders.extend(pm.replicas.iter().map(|r| r.node_id.to_string()));
                let (head, lags) = partition_lag(pm, op_timeout(a)?);
                let line = writeln!(
                    out,
                    "partition={p} primary={}@{} holders={} head={head} lag={}",
                    pm.primary.node_id,
                    pm.primary.addr,
                    holders.join(","),
                    lags.join(",")
                );
                if line.is_err() {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// Apply-lag of every replica holder of one partition, measured at its
/// primary: connect, read the hub's per-peer acked positions (peers are
/// labelled `{node_id}@{addr}`), and report `head - acked` per holder.
/// An unreachable primary yields `?` for everything rather than an
/// error: status must stay printable mid-failover.
fn partition_lag(
    pm: &she_server::PartitionMap,
    timeout: Option<std::time::Duration>,
) -> (String, Vec<String>) {
    let status = she_server::Client::connect(&pm.primary.addr).ok().and_then(|mut c| {
        c.set_op_timeout(timeout).ok()?;
        c.cluster_status().ok()
    });
    let Some(info) = status else {
        let lags = pm.replicas.iter().map(|r| format!("{}:?", r.node_id)).collect();
        return ("?".into(), lags);
    };
    let lags = pm
        .replicas
        .iter()
        .map(|r| {
            let prefix = format!("{}@", r.node_id);
            let acked = info
                .peers
                .iter()
                .filter(|peer| peer.addr.starts_with(&prefix))
                .map(|peer| peer.acked)
                .max();
            match acked {
                Some(acked) => format!("{}:{}", r.node_id, info.head.saturating_sub(acked)),
                None => format!("{}:?", r.node_id),
            }
        })
        .collect();
    (info.head.to_string(), lags)
}

/// `she fastcheck` — verify both halves of a quiescent `--readpath`
/// server's contract (docs/READPATH.md):
///
/// 1. **Bound phase** (cache as-is): entries filled mid-stream stay
///    valid until a relevant time-mark flips, so they may lag inserts —
///    but never outside the bound: a fast `member = true` must be
///    authoritatively true, and a fast frequency can never *exceed* the
///    authoritative estimate.
/// 2. **Exact phase** (after a cache flush): at quiescence the mirror's
///    applied position has reached the op-log head and the window clock
///    is frozen, so a *fresh fill* is the frozen-read answer on the same
///    insert history the workers hold — bit-for-bit. Each key is asked
///    twice back-to-back (fill path, then the signature-checked hit
///    path; authoritative queries touch the workers, never the mirror,
///    so the signature cannot move in between), so N keys must advance
///    the hit counter by at least 2N.
fn fastcheck(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "keys", "universe", "skew", "seed", "timeout-ms"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let keys = a.get_u64("keys", 256)?.max(1);
    let universe = (a.get_u64("universe", 100_000)? as usize).max(2);
    let skew = a.get_f64("skew", 1.1)?;
    let seed = a.get_u64("seed", 1)?;
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 5 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; QUERY_FAST needs v5"
        ))
        .into());
    }

    // Wait for quiescence: the op-log head must stop moving AND the read
    // path must have applied up to it (on a primary the refresher tails
    // the log; on a replica the injector is synchronous).
    let before = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let first = client.cluster_status().map_err(io)?;
            if !first.readpath.enabled {
                return Err(ArgError(format!(
                    "server at {addr} serves without --readpath; nothing to fastcheck"
                ))
                .into());
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
            let second = client.cluster_status().map_err(io)?;
            if first.head == second.head && second.readpath.seq >= second.head {
                break second;
            }
            if std::time::Instant::now() >= deadline {
                return Err(ArgError(format!(
                    "server at {addr} did not quiesce: head {} -> {}, readpath seq {}",
                    first.head, second.head, second.readpath.seq
                ))
                .into());
            }
        }
    };

    // The same seeded Zipf draw + mix64 permutation the loadgen's
    // read-heavy profile uses, so the probe set is hot keys by default —
    // keys a prior 95/5 run left warm in the cache.
    let probe_keys: Vec<u64> = {
        let zipf = she_streams::Zipf::new(universe, skew);
        let mut rng = she_hash::Xoshiro256::new(seed ^ 0xFA57_4EAD_5EED);
        (0..keys).map(|_| she_hash::mix64(zipf.sample(&mut rng) as u64)).collect()
    };

    // Phase 1 — the staleness bound on whatever the cache holds.
    let mut checked = 0u64;
    let mut violations = 0u64;
    for &key in &probe_keys {
        let fast = client.fast_member(key).map_err(io)?;
        let auth = client.query_member(key).map_err(io)?;
        checked += 1;
        if fast && !auth {
            violations += 1;
            eprintln!("bound violation: fast member({key}) = true, QUERY says false");
        }
        let fast = client.fast_freq(key).map_err(io)?;
        let auth = client.query_freq(key).map_err(io)?;
        checked += 1;
        if fast > auth {
            violations += 1;
            eprintln!("bound violation: fast freq({key}) = {fast} exceeds QUERY's {auth}");
        }
    }

    // Phase 2 — flush, then every fresh fill must be bit-for-bit and
    // every immediate repeat ask must hit.
    client.fast_flush().map_err(io)?;
    let mut mismatches = 0u64;
    for &key in &probe_keys {
        for round in 0..2 {
            let fast = client.fast_member(key).map_err(io)?;
            let auth = client.query_member(key).map_err(io)?;
            checked += 1;
            if fast != auth {
                mismatches += 1;
                eprintln!("mismatch: fast member({key}) = {fast}, QUERY says {auth} (ask {round})");
            }
        }
        for round in 0..2 {
            let fast = client.fast_freq(key).map_err(io)?;
            let auth = client.query_freq(key).map_err(io)?;
            checked += 1;
            if fast != auth {
                mismatches += 1;
                eprintln!("mismatch: fast freq({key}) = {fast}, QUERY says {auth} (ask {round})");
            }
        }
    }

    let after = client.cluster_status().map_err(io)?;
    let hits = after.readpath.hits.saturating_sub(before.readpath.hits);
    let misses = after.readpath.misses.saturating_sub(before.readpath.misses);
    println!(
        "fastcheck {addr}: {checked} fast answers checked at seq {}, {violations} bound \
         violation(s), {mismatches} post-flush mismatch(es), cache {hits} hit(s) / {misses} \
         miss(es) over the probe window",
        after.readpath.seq
    );
    if violations > 0 {
        return Err(ArgError(format!(
            "fastcheck failed: {violations} staleness-bound violations on the warm cache"
        ))
        .into());
    }
    if mismatches > 0 {
        return Err(ArgError(format!(
            "fastcheck failed: {mismatches} mismatched answers after a cache flush"
        ))
        .into());
    }
    // Post-flush, each key's repeat asks (2 per op class) must hit: the
    // signature cannot move at quiescence.
    let floor = 2 * keys;
    if hits < floor {
        return Err(ArgError(format!(
            "fastcheck failed: the mark cache served {hits} hit(s), expected at least {floor} \
             (every post-flush repeat ask should hit)"
        ))
        .into());
    }
    Ok(())
}

/// `she cluster-serve` — run one node of a partitioned cluster: the
/// partition primary, the ring-predecessor replica, and the gossip
/// failover monitor (docs/CLUSTER.md).
fn cluster_serve(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "node-id",
        "roster",
        "window",
        "memory",
        "seed",
        "queue",
        "repl-log",
        "gossip-ms",
        "heartbeat-timeout-ms",
        "replication",
        "anti-entropy-ms",
        "readpath",
    ])?;
    let roster = she_cluster::parse_roster(&a.get("roster", "")).map_err(ArgError)?;
    let n = roster.len();
    let defaults = she_cluster::NodeConfig::default();
    let cfg = she_cluster::NodeConfig {
        node_id: a.get_u64("node-id", 1)?,
        roster,
        window: a.get_u64("window", defaults.window)?,
        memory_bytes: a.get_u64("memory", defaults.memory_bytes as u64)? as usize,
        seed: a.get_u64("seed", u64::from(defaults.seed))? as u32,
        queue_capacity: a.get_u64("queue", defaults.queue_capacity as u64)? as usize,
        repl_log: a.get_u64("repl-log", defaults.repl_log as u64)? as usize,
        gossip_ms: a.get_u64("gossip-ms", defaults.gossip_ms)?,
        heartbeat_timeout_ms: a.get_u64("heartbeat-timeout-ms", defaults.heartbeat_timeout_ms)?,
        replication: a.get_u64("replication", u64::from(defaults.replication))? as u16,
        anti_entropy_ms: a.get_u64("anti-entropy-ms", defaults.anti_entropy_ms)?,
        readpath: matches!(
            a.get("readpath", if defaults.readpath { "yes" } else { "no" }).as_str(),
            "yes" | "true" | "1"
        ),
        gossip_via: defaults.gossip_via,
    };
    let node_id = cfg.node_id;
    let rf = cfg.replication;
    let node = she_cluster::ClusterNode::start(cfg).map_err(|err| ArgError(err.to_string()))?;
    println!(
        "she-cluster node {node_id} listening on {} — {n} partition(s) at RF={rf}; \
         gossip failover armed",
        node.local_addr()
    );
    println!("(stop with the wire SHUTDOWN request)");
    print_shard_stats(&node.wait());
    Ok(())
}

/// `she cluster-map` — print a node's current cluster map, one
/// grep-friendly line per partition.
fn cluster_map(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "timeout-ms"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 4 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; CLUSTER_MAP needs v4"
        ))
        .into());
    }
    let map = client.cluster_map().map_err(io)?;
    println!("epoch={} partitions={}", map.epoch, map.partitions.len());
    for (p, pm) in map.partitions.iter().enumerate() {
        let replicas: Vec<String> =
            pm.replicas.iter().map(|r| format!("{}@{}", r.node_id, r.addr)).collect();
        println!(
            "partition={p} primary={}@{} replicas={}",
            pm.primary.node_id,
            pm.primary.addr,
            replicas.join(",")
        );
    }
    Ok(())
}

/// `she cluster-query` — one scatter-gather query through a coordinator
/// node; output formats match `she query` so scripts can diff the two.
fn cluster_query(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "op", "key", "timeout-ms"])?;
    let op = QueryOp::parse(&a.get("op", "member"))?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let key = a.get_u64("key", 0)?;
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 4 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; CLUSTER_QUERY needs v4"
        ))
        .into());
    }
    let wire_op = match op {
        QueryOp::Member => she_server::cluster_op::MEMBER,
        QueryOp::Card => she_server::cluster_op::CARD,
        QueryOp::Freq => she_server::cluster_op::FREQ,
        QueryOp::Sim => she_server::cluster_op::SIM,
    };
    let reply = client.cluster_query(wire_op, key).map_err(io)?;
    match reply {
        she_server::protocol::Response::Bool(v) => println!("member {key} = {v}"),
        she_server::protocol::Response::U64(v) => println!("freq {key} = {v}"),
        she_server::protocol::Response::F64(v) => match op {
            QueryOp::Card => println!("card = {v:.6} (bits {:#018x})", v.to_bits()),
            _ => println!("sim = {v:.6} (bits {:#018x})", v.to_bits()),
        },
        other => return Err(ArgError(format!("unexpected CLUSTER_QUERY reply {other:?}")).into()),
    }
    Ok(())
}

/// `she cluster-rebalance` — live-migrate a running server's state to
/// another running server, optionally resharding in flight.
fn cluster_rebalance(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["from", "to", "shards", "timeout-ms"])?;
    let from = a.get("from", "");
    let to = a.get("to", "");
    if from.is_empty() || to.is_empty() {
        return Err(ArgError("cluster-rebalance needs --from and --to".to_string()).into());
    }
    let shards = a.get_u64("shards", 0)? as usize;
    // migrate() needs a finite convergence bound; 0 gets a generous hour.
    let timeout = op_timeout(a)?.unwrap_or_else(|| std::time::Duration::from_secs(3_600));
    let report =
        she_cluster::migrate(&from, &to, shards, timeout).map_err(|err| net_err(&from, err))?;
    println!(
        "migrated {from} -> {to}: bulk checkpoint cut at seq {}, {} delta record(s) replayed \
         to seq {}, rebuilt at {} shard(s)",
        report.cut, report.records, report.applied, report.dst_shards
    );
    Ok(())
}

/// One mirror-check probe: plain query to the node, or scatter-gather
/// `CLUSTER_QUERY` through it when `cluster` is set.
fn probe_bool(c: &mut she_server::Client, cluster: bool, key: u64) -> std::io::Result<bool> {
    if !cluster {
        return c.query_member(key);
    }
    match c.cluster_query(she_server::cluster_op::MEMBER, key)? {
        she_server::protocol::Response::Bool(v) => Ok(v),
        other => Err(std::io::Error::other(format!("unexpected CLUSTER_QUERY reply {other:?}"))),
    }
}

/// See [`probe_bool`].
fn probe_freq(c: &mut she_server::Client, cluster: bool, key: u64) -> std::io::Result<u64> {
    if !cluster {
        return c.query_freq(key);
    }
    match c.cluster_query(she_server::cluster_op::FREQ, key)? {
        she_server::protocol::Response::U64(v) => Ok(v),
        other => Err(std::io::Error::other(format!("unexpected CLUSTER_QUERY reply {other:?}"))),
    }
}

/// See [`probe_bool`]; `op` is `cluster_op::CARD` or `cluster_op::SIM`.
fn probe_f64(c: &mut she_server::Client, cluster: bool, op: u8) -> std::io::Result<f64> {
    if !cluster {
        return if op == she_server::cluster_op::CARD { c.query_card() } else { c.query_sim() };
    }
    match c.cluster_query(op, 0)? {
        she_server::protocol::Response::F64(v) => Ok(v),
        other => Err(std::io::Error::other(format!("unexpected CLUSTER_QUERY reply {other:?}"))),
    }
}

/// Replay a quiescent node's own op log into the mirror by subscribing
/// to its replication feed from sequence 1. Each `REPL_OP` carries one
/// admitted insert batch in admission order, so the mirror ends up with
/// exactly the server's insert history no matter how many connections
/// produced it. Returns the number of items replayed. The node must
/// retain its log from sequence 1 (no checkpoint truncation).
fn replay_feed(
    addr: &str,
    head: u64,
    mirror: &mut she_server::DirectEngine,
) -> std::io::Result<u64> {
    use she_server::codec::{read_frame_deadline, FrameIn};
    use she_server::protocol::Response;
    let feed_err = |msg: String| std::io::Error::other(msg);
    let sub = she_server::Client::connect(addr)?;
    let mut feed = sub.subscribe(1)?;
    feed.set_read_timeout(Some(std::time::Duration::from_millis(200)))?;
    let mut applied = 0u64;
    let mut items = 0u64;
    let mut last_progress = std::time::Instant::now();
    while applied < head {
        match read_frame_deadline(&mut feed, std::time::Duration::from_secs(30))? {
            FrameIn::Frame(payload) => {
                last_progress = std::time::Instant::now();
                match Response::decode(&payload) {
                    Ok(Response::ReplOp(data)) => {
                        let rec = she_server::Record::decode(&data)
                            .map_err(|e| feed_err(format!("feed record undecodable: {e:?}")))?;
                        if rec.seq != applied + 1 {
                            return Err(feed_err(format!(
                                "feed jumped from seq {applied} to {} — the log no longer \
                                 reaches back to sequence 1 (checkpoint truncation?)",
                                rec.seq
                            )));
                        }
                        for &k in &rec.keys {
                            mirror.insert(rec.stream, k);
                        }
                        items += rec.keys.len() as u64;
                        applied = rec.seq;
                    }
                    Ok(Response::ReplHeartbeat { .. }) => {}
                    Ok(Response::Err(msg)) => {
                        return Err(feed_err(format!("server refused the feed: {msg}")))
                    }
                    Ok(other) => {
                        return Err(feed_err(format!("unexpected frame on the feed: {other:?}")))
                    }
                    Err(e) => return Err(feed_err(format!("feed frame undecodable: {e:?}"))),
                }
            }
            FrameIn::Idle => {
                if last_progress.elapsed() > std::time::Duration::from_secs(30) {
                    return Err(feed_err(format!("feed went quiet at seq {applied} of {head}")));
                }
            }
            FrameIn::Eof => {
                return Err(feed_err(format!("feed closed at seq {applied} of {head}")))
            }
            FrameIn::Stalled => {
                return Err(feed_err(format!("feed stalled mid-frame at seq {applied}")))
            }
        }
    }
    Ok(items)
}

/// Replay the loadgen workload into an in-process [`DirectEngine`]
/// mirror and compare a quiescent node's query answers bit-for-bit.
///
/// Sound because each admitted `INSERT_BATCH` is exactly one op-log
/// record, appended in admission order — so a node whose position is
/// `S` holds precisely the first `S` workload batches, and `she
/// loadgen`'s keygen is deterministic from `--seed`. Queries advance
/// lazy cleaning but cleaning is itself deterministic in the insert
/// history, so answers are unaffected by any reads the node served
/// earlier; the battery below makes the same calls on both sides.
fn mirror_check(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "addr",
        "items",
        "batch",
        "universe",
        "skew",
        "seed",
        "sim-every",
        "probes",
        "window",
        "shards",
        "memory",
        "engine-seed",
        "cluster",
        "from-log",
    ])?;
    let addr = a.get("addr", "127.0.0.1:7488");
    let from_log = matches!(a.get("from-log", "no").as_str(), "yes" | "true" | "1");
    let items = a.get_u64("items", 1 << 20)?;
    let batch = a.get_u64("batch", 512)?.max(1);
    let universe = (a.get_u64("universe", 100_000)? as usize).max(2);
    let skew = a.get_f64("skew", 1.05)?;
    let seed = a.get_u64("seed", 1)?;
    let sim_every = a.get_u64("sim-every", 8)?;
    let probes = a.get_u64("probes", 64)?;
    let cluster = matches!(a.get("cluster", "no").as_str(), "yes" | "true" | "1");
    let engine = engine_config(a, "engine-seed")?;

    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    let version = client.hello().map_err(io)?;
    let need = if cluster { 4 } else { 3 };
    if version < need {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; mirror-check needs v{need}"
        ))
        .into());
    }
    if from_log && cluster {
        return Err(ArgError(
            "--from-log replays one node's replication feed; it does not apply in \
             cluster mode"
                .into(),
        )
        .into());
    }
    let n_batches = items.div_ceil(batch);
    let applied = if cluster {
        // Cluster mode: answers come from CLUSTER_QUERY scatter-gather,
        // so the mirror must hold the *whole* stream — the caller is
        // responsible for having applied all --items cluster-wide. The
        // merge runs in partition order, so the mirror's shard count
        // must equal the partition count.
        let map = client.cluster_map().map_err(io)?;
        if engine.shards != map.partitions.len() {
            return Err(ArgError(format!(
                "--shards {} but the cluster has {} partitions; the scatter-gather merge \
                 runs in partition order, so the mirror must shard identically",
                engine.shards,
                map.partitions.len()
            ))
            .into());
        }
        n_batches
    } else {
        // The node must be quiescent: its position (primary head /
        // replica applied) tells the mirror how many batches to replay,
        // which only holds once it has stopped moving.
        let first = client.cluster_status().map_err(io)?;
        std::thread::sleep(std::time::Duration::from_millis(250));
        let second = client.cluster_status().map_err(io)?;
        if first.head != second.head {
            return Err(ArgError(format!(
                "node at {addr} is still applying (seq {} -> {}); quiesce the stream first",
                first.head, second.head
            ))
            .into());
        }
        if !from_log && second.head > n_batches {
            return Err(ArgError(format!(
                "node is at seq {} but --items {items} --batch {batch} only yields \
                 {n_batches} batches; pass the flags the loadgen run used",
                second.head
            ))
            .into());
        }
        second.head
    };

    let mut mirror = she_server::DirectEngine::new(engine);
    let mut sent = 0u64;
    if from_log {
        // The log is the admission order itself, so this replay stays
        // sound for workloads produced by many concurrent connections —
        // where no keygen rerun could reproduce the interleaving.
        sent = replay_feed(&addr, applied, &mut mirror).map_err(io)?;
    } else {
        let mut keygen = CaidaLike::new(universe, skew, seed);
        for b in 0..applied {
            let take = batch.min(items - sent) as usize;
            let keys = keygen.take_vec(take);
            let stream = if sim_every > 0 && b % sim_every == sim_every - 1 { 1u8 } else { 0u8 };
            for &k in &keys {
                mirror.insert(stream, k);
            }
            sent += take as u64;
        }
    }

    let mut checked = 0u64;
    let mut mismatches = 0u64;
    for i in 0..probes {
        let key = she_hash::mix64(seed.wrapping_add(i)) % universe as u64;
        let got = probe_bool(&mut client, cluster, key).map_err(io)?;
        let want = mirror.member(key);
        checked += 1;
        if got != want {
            mismatches += 1;
            eprintln!("mismatch: member({key}) node={got} mirror={want}");
        }
        let got = probe_freq(&mut client, cluster, key).map_err(io)?;
        let want = mirror.frequency(key);
        checked += 1;
        if got != want {
            mismatches += 1;
            eprintln!("mismatch: freq({key}) node={got} mirror={want}");
        }
    }
    let got = probe_f64(&mut client, cluster, she_server::cluster_op::CARD).map_err(io)?.to_bits();
    let want = mirror.cardinality().to_bits();
    checked += 1;
    if got != want {
        mismatches += 1;
        eprintln!("mismatch: card node_bits={got:#018x} mirror_bits={want:#018x}");
    }
    let got = probe_f64(&mut client, cluster, she_server::cluster_op::SIM).map_err(io)?.to_bits();
    let want = mirror.similarity().to_bits();
    checked += 1;
    if got != want {
        mismatches += 1;
        eprintln!("mismatch: sim node_bits={got:#018x} mirror_bits={want:#018x}");
    }

    println!(
        "mirror-check {addr}: seq {applied} ({sent} items replayed), \
         {checked} answers checked, {mismatches} mismatches"
    );
    if mismatches > 0 {
        return Err(
            ArgError(format!("mirror-check failed: {mismatches} mismatched answers")).into()
        );
    }
    Ok(())
}

fn analyze(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "hashes", "cardinality"])?;
    let window = a.get_u64("window", 1 << 16)?;
    let memory = a.get_u64("memory", 64 << 10)? as usize;
    let k = a.get_u64("hashes", 8)? as usize;
    let c = a.get_u64("cardinality", window)?;
    let m_bits = memory * 8;

    let q = analysis::bf_q(m_bits, k, c as usize);
    let alpha = analysis::optimal_alpha_bf(m_bits, k, c as usize);
    println!("inputs: window={window}, memory={memory}B ({m_bits} bits), H={k}, C={c}");
    println!("Eq.2  optimal alpha for SHE-BF: {alpha:.3}  (Q = {q:.4})");
    println!("      predicted FPR at the optimum: {:.6}", analysis::she_bf_fpr(q, alpha + 1.0, k));
    let g = analysis::max_group_count(0.01, alpha, c, k);
    println!("Eq.1  max groups for <=0.01 expected unswept groups/cycle: {g}");
    println!(
        "Eq.3  SHE-BM RE bound (alpha=0.2):  {:.5}",
        analysis::she_bm_error_bound(0.2, window, c)
    );
    println!(
        "Eq.4  SHE-HLL RE bound (alpha=0.2): {:.5}",
        analysis::she_hll_error_bound(0.2, window, c)
    );
    println!(
        "Eq.5  SHE-MH bias bound (alpha=0.2, S_union=2C): {:.5}",
        analysis::she_mh_error_bound(0.2, window, 2 * c)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        let toks: Vec<String> = line.split_whitespace().map(String::from).collect();
        Args::parse(&toks).expect("parse")
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        assert!(dispatch(&args("frobnicate")).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_flags() {
        assert!(dispatch(&args("membership --bogus 1")).is_err());
        assert!(dispatch(&args("analyze --bogus 1")).is_err());
    }

    #[test]
    fn membership_smoke() {
        dispatch(&args("membership --window 512 --memory 8k --items 4096 --probes 200"))
            .expect("runs");
    }

    #[test]
    fn cardinality_smoke_both_algos() {
        dispatch(&args("cardinality --algo bm --window 512 --memory 1k --items 4096")).expect("bm");
        dispatch(&args("cardinality --algo hll --window 512 --memory 1k --items 4096"))
            .expect("hll");
        assert!(dispatch(&args("cardinality --algo nope")).is_err());
    }

    #[test]
    fn frequency_and_similarity_smoke() {
        dispatch(&args("frequency --window 512 --memory 64k --items 4096 --sample 50"))
            .expect("freq");
        dispatch(&args("similarity --window 512 --memory 2k --items 4096 --overlap 0.6"))
            .expect("sim");
    }

    #[test]
    fn pipeline_smoke_all_variants() {
        for v in ["bm", "bf", "cm", "hll"] {
            dispatch(&args(&format!("pipeline --variant {v} --items 5000"))).expect(v);
        }
        assert!(dispatch(&args("pipeline --variant nope")).is_err());
    }

    #[test]
    fn analyze_smoke() {
        dispatch(&args("analyze --window 4096 --memory 16k --hashes 4")).expect("analyze");
    }

    #[test]
    fn bad_stream_rejected() {
        assert!(dispatch(&args("membership --stream nope --items 4096 --window 512")).is_err());
    }

    #[test]
    fn serve_and_loadgen_reject_unknown_flags() {
        assert!(dispatch(&args("serve --bogus 1")).is_err());
        assert!(dispatch(&args("loadgen --bogus 1")).is_err());
    }

    #[test]
    fn checkpoint_and_query_validate_flags() {
        assert!(dispatch(&args("checkpoint --bogus 1")).is_err());
        assert!(dispatch(&args("query --bogus 1")).is_err());
        // Op validation happens before any connection attempt.
        assert!(dispatch(&args("query --addr 127.0.0.1:1 --op nope")).is_err());
    }

    #[test]
    fn serve_restore_requires_readable_checkpoint() {
        assert!(dispatch(&args("serve --restore /nonexistent-she-checkpoint-dir")).is_err());
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_with_a_clean_error() {
        let dir = std::env::temp_dir().join("she-cli-corrupt-ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("checkpoint.she"), b"SHEF but torn mid-frame").unwrap();
        let err = dispatch(&args(&format!("serve --restore {}", dir.display()))).unwrap_err();
        assert!(err.msg.contains("corrupt checkpoint"), "{}", err.msg);
        assert!(err.msg.contains("quarantined"), "{}", err.msg);
        assert!(dir.join("checkpoint.she.corrupt").exists(), "sidecar written");
        assert!(!dir.join("checkpoint.she").exists(), "corrupt original moved aside");
    }

    #[test]
    fn unreadable_checkpoint_is_not_quarantined() {
        // A missing file is an I/O problem, not corruption: nothing to
        // move aside, and the error says what failed.
        let err = dispatch(&args("serve --restore /nonexistent-she-checkpoint-dir")).unwrap_err();
        assert!(!err.msg.contains("quarantined"), "{}", err.msg);
    }

    #[test]
    fn loadgen_reports_unreachable_server() {
        // Reserved port 1 on localhost refuses connections immediately.
        assert!(dispatch(&args("loadgen --addr 127.0.0.1:1 --items 10 --queries 0")).is_err());
    }

    #[test]
    fn serve_replica_rejects_engine_sizing_flags() {
        // Validation fires before any connection attempt is made.
        let err = dispatch(&args("serve --replica-of 127.0.0.1:1 --shards 4")).unwrap_err();
        assert!(err.msg.contains("--shards"), "{}", err.msg);
        let err = dispatch(&args("serve --replica-of 127.0.0.1:1 --repl-log 64")).unwrap_err();
        assert!(err.msg.contains("--repl-log"), "{}", err.msg);
    }

    #[test]
    fn replica_only_flags_require_replica_of() {
        assert!(dispatch(&args("serve --anti-entropy-ms 50")).is_err());
        assert!(dispatch(&args("serve --heartbeat-timeout-ms 100")).is_err());
    }

    #[test]
    fn unreachable_server_maps_to_exit_code_3() {
        for line in [
            "query --addr 127.0.0.1:1 --op card",
            "checkpoint --addr 127.0.0.1:1 --dir /tmp/she-nope",
            "cluster-status --addr 127.0.0.1:1",
            "mirror-check --addr 127.0.0.1:1",
            "shutdown --addr 127.0.0.1:1",
        ] {
            let err = dispatch(&args(line)).unwrap_err();
            assert_eq!(err.code, EXIT_UNREACHABLE, "{line}: {}", err.msg);
            assert!(err.msg.contains("connection refused"), "{line}: {}", err.msg);
        }
    }

    #[test]
    fn bad_flags_keep_exit_code_1() {
        let err = dispatch(&args("cluster-status --bogus 1")).unwrap_err();
        assert_eq!(err.code, 1);
        let err = dispatch(&args("mirror-check --bogus 1")).unwrap_err();
        assert_eq!(err.code, 1);
        let err = dispatch(&args("loadgen --bogus 1")).unwrap_err();
        assert_eq!(err.code, 1);
    }
}
