//! Subcommand implementations.

use crate::args::{ArgError, Args};
use she_core::analysis;
use she_hwsim::{ResourceReport, ShePipeline, SheVariant};
use she_metrics::*;
use she_streams::{CaidaLike, CampusLike, DistinctStream, KeyStream, RelevantPair, WebpageLike};

/// Help text.
pub const USAGE: &str = "\
she — sliding-window stream mining (SHE, ICPP'22 reproduction)

USAGE: she <command> [--flag value ...]

COMMANDS
  membership   SHE-BF false-positive rate vs exact ground truth
               --window N --memory BYTES --stream S --items N --probes N --alpha F
  cardinality  SHE-BM / SHE-HLL relative error
               --algo bm|hll --window N --memory BYTES --stream S --items N
  frequency    SHE-CM average relative error
               --window N --memory BYTES --stream S --items N --sample N
  similarity   SHE-MH pair relative error
               --window N --memory BYTES --overlap F --items N
  pipeline     audited 4-stage hardware pipeline (Tables 2-3)
               --variant bm|bf|cm|hll --items N
  analyze      closed-form parameter guidance (Eqs. 1-5)
               --window N --memory BYTES --hashes K --cardinality C
  serve        run the TCP stream-mining server (docs/PROTOCOL.md)
               --addr HOST:PORT --shards N --window N --memory BYTES --seed N
               --queue N --restore DIR (start from DIR/checkpoint.she; --shards
               may differ from the checkpoint — rebalanced by snapshot merge)
               --repl-log N (keep an op log of the last N insert batches so
               replicas can join) --heartbeat-ms N
               --replica-of HOST:PORT (start a read-only replica instead;
               engine sizing is inherited from the primary's snapshot)
               --anti-entropy-ms N --heartbeat-timeout-ms N (replica only)
  checkpoint   write a running server's state to DIR/checkpoint.she
               (crash-safe: temp file + fsync + atomic rename)
               --addr HOST:PORT --dir DIR --timeout-ms N
  query        one query against a running server (bit-exact output)
               --addr HOST:PORT --op member|card|freq|sim --key N --timeout-ms N
  cluster-status  one-line replication position of a node (docs/REPLICATION.md)
               --addr HOST:PORT --timeout-ms N
  chaos-soak   deterministic fault-injection soak: primary + replica under a
               fault proxy, kill/restart cycles, bit-for-bit mirror verdict
               (docs/ROBUSTNESS.md) --seed N --cycles N --keys N --dir DIR
  mirror-check replay the loadgen workload into an in-process mirror and
               compare a quiescent node's answers bit-for-bit
               --addr HOST:PORT --items N --batch N --universe N --skew F
               --seed N --sim-every N --probes N (+ --shards/--window/
               --memory/--engine-seed matching the serving engine)
  loadgen      drive a running server with a Zipf workload
               --addr HOST:PORT --items N --batch N --queries N --open RATE
               --universe N --skew F --seed N --verify yes (+ --shards/
               --window/--memory/--engine-seed matching the server)
               --connections N (fan out; merged latency histograms)
               --read-from HOST:PORT (send the queries to a replica)
  shutdown     ask a running server to drain and stop
               --addr HOST:PORT
  audit        run the workspace static-analysis gate (docs/ANALYSIS.md):
               panic-path, truncating-cast, lock-order, protocol-drift
               --root DIR (workspace root, default .) --list-locks yes

Sizes accept k/m/g suffixes: --memory 64k, --items 2m.
Streams: caida (default), distinct, campus, webpage.
--timeout-ms bounds the whole request (connect to final reply, retries
included); default 10000, 0 waits forever.
Exit codes: 0 ok, 1 failure, 2 usage error, 3 connection refused,
4 deadline exceeded.
";

fn make_stream(name: &str, seed: u64) -> Result<Box<dyn KeyStream>, ArgError> {
    Ok(match name {
        "caida" => Box::new(CaidaLike::new(200_000, 1.05, seed)),
        "distinct" => Box::new(DistinctStream::new(seed)),
        "campus" => Box::new(CampusLike::default_trace(seed)),
        "webpage" => Box::new(WebpageLike::default_trace(seed)),
        other => return Err(ArgError(format!("unknown stream '{other}'"))),
    })
}

/// Exit code for "the target server is not reachable" — distinct from
/// 1 (failed run / bad invocation) and 2 (parse error) so scripts can
/// tell "start the server first" from "fix the command".
pub const EXIT_UNREACHABLE: i32 = 3;

/// Exit code for "the request deadline elapsed" — the server is there
/// but slow, wedged, or shedding; distinct from [`EXIT_UNREACHABLE`] so
/// scripts can retry with backoff instead of starting a server.
pub const EXIT_DEADLINE: i32 = 4;

/// A dispatch failure carrying the process exit code `main` should use.
#[derive(Debug)]
pub struct CliError {
    /// User-facing message.
    pub msg: String,
    /// Suggested process exit code.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        Self { msg: e.0, code: 1 }
    }
}

/// Map a transport error: connection-refused gets its own exit code and
/// a hint; everything else stays a generic failure.
fn net_err(addr: &str, err: std::io::Error) -> CliError {
    match err.kind() {
        std::io::ErrorKind::ConnectionRefused => CliError {
            msg: format!("cannot connect to {addr}: connection refused (is the server running?)"),
            code: EXIT_UNREACHABLE,
        },
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => CliError {
            msg: format!("request to {addr} timed out: {err} (raise --timeout-ms?)"),
            code: EXIT_DEADLINE,
        },
        _ => CliError { msg: err.to_string(), code: 1 },
    }
}

/// Parse `--timeout-ms` into the client's per-operation deadline;
/// 0 disables it.
fn op_timeout(a: &Args) -> Result<Option<std::time::Duration>, ArgError> {
    let ms = a.get_u64("timeout-ms", 10_000)?;
    Ok((ms > 0).then(|| std::time::Duration::from_millis(ms)))
}

/// Route a parsed command line.
pub fn dispatch(a: &Args) -> Result<(), CliError> {
    match a.command.as_str() {
        "membership" => Ok(membership(a)?),
        "cardinality" => Ok(cardinality(a)?),
        "frequency" => Ok(frequency(a)?),
        "similarity" => Ok(similarity(a)?),
        "pipeline" => Ok(pipeline(a)?),
        "analyze" => Ok(analyze(a)?),
        "serve" => serve(a),
        "checkpoint" => checkpoint(a),
        "query" => query(a),
        "cluster-status" => cluster_status(a),
        "chaos-soak" => chaos_soak(a),
        "mirror-check" => mirror_check(a),
        "loadgen" => loadgen(a),
        "shutdown" => shutdown(a),
        "audit" => audit(a),
        other => Err(ArgError(format!("unknown command '{other}' (see `she help`)")).into()),
    }
}

fn membership(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "stream", "items", "probes", "alpha", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 64 << 10)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let probes = a.get_u64("probes", 5_000)? as usize;
    let seed = a.get_u64("seed", 1)?;
    let keys = make_stream(&a.get("stream", "distinct"), seed)?.take_vec(items);

    let mut bf = SheBfAdapter::sized(window, memory, seed as u32);
    if let Some(alpha) = a.get_f64("alpha", -1.0).ok().filter(|&v| v > 0.0) {
        bf = SheBfAdapter(
            she_core::SheBloomFilter::builder()
                .window(window)
                .memory_bytes(memory)
                .hash_functions(8)
                .alpha(alpha)
                .seed(seed as u32)
                .build(),
        );
    }
    let guard = (window as usize * 5).min(items / 2);
    let r = membership_fpr(&mut bf, &keys, guard, 4, probes);
    println!("SHE-BF  window={window} memory={memory}B items={items}");
    println!("  FPR = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    println!("  memory used: {} bits", r.memory_bits);
    Ok(())
}

fn cardinality(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["algo", "window", "memory", "stream", "items", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 8 << 10)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let seed = a.get_u64("seed", 1)?;
    let keys = make_stream(&a.get("stream", "caida"), seed)?.take_vec(items);
    let algo = a.get("algo", "bm");
    let r = match algo.as_str() {
        "bm" => {
            let mut s = SheBmAdapter::sized(window, memory, seed as u32);
            cardinality_re(&mut s, &keys, window as usize, 4)
        }
        "hll" => {
            let mut s = SheHllAdapter::sized(window, memory, seed as u32);
            cardinality_re(&mut s, &keys, window as usize, 4)
        }
        other => return Err(ArgError(format!("unknown --algo '{other}' (bm|hll)"))),
    };
    println!("{}  window={window} memory={memory}B items={items}", r.name);
    println!("  RE = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    Ok(())
}

fn frequency(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "stream", "items", "sample", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 1 << 20)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let sample = a.get_u64("sample", 500)? as usize;
    let seed = a.get_u64("seed", 1)?;
    let keys = make_stream(&a.get("stream", "caida"), seed)?.take_vec(items);
    let mut s = SheCmAdapter::sized(window, memory, seed as u32);
    let r = frequency_are(&mut s, &keys, window as usize, 4, sample);
    println!("SHE-CM  window={window} memory={memory}B items={items}");
    println!("  ARE = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    Ok(())
}

fn similarity(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "overlap", "items", "seed"])?;
    let window = a.get_u64("window", 1 << 14)?;
    let memory = a.get_u64("memory", 4 << 10)? as usize;
    let items = a.get_u64("items", 8 * window)? as usize;
    let overlap = a.get_f64("overlap", 0.5)?;
    let seed = a.get_u64("seed", 1)?;
    let mut gen = RelevantPair::new(window as usize, overlap, seed);
    let pairs: Vec<(u64, u64)> = (0..items).map(|_| gen.next_pair()).collect();
    let mut s = SheMhAdapter::sized(window, memory, seed as u32);
    let r = similarity_re(&mut s, &pairs, window as usize, 4);
    println!("SHE-MH  window={window} memory={memory}B items={items} overlap={overlap}");
    println!("  RE = {:.6}  (per-checkpoint: {:?})", r.value, r.series);
    Ok(())
}

fn pipeline(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["variant", "items"])?;
    let items = a.get_u64("items", 500_000)?;
    let variant = match a.get("variant", "bm").as_str() {
        "bm" => SheVariant::Bitmap,
        "bf" => SheVariant::Bloom { k: 8 },
        "cm" => SheVariant::CountMin { k: 8, counter_bits: 16 },
        "hll" => SheVariant::HyperLogLog { reg_bits: 5 },
        other => return Err(ArgError(format!("unknown --variant '{other}' (bm|bf|cm|hll)"))),
    };
    let mut p = ShePipeline::paper_config(variant);
    let stats = p.run((0..items).map(she_hash::mix64));
    let report = ResourceReport::for_pipeline(&p);
    println!(
        "{variant:?} pipeline: {} items, {} cycles, {} stages",
        stats.items, stats.cycles, stats.stages
    );
    println!("  items/cycle = {:.4}", stats.items as f64 / stats.cycles as f64);
    println!("  constraint violations: {}", stats.violations);
    for v in p.memory().violations() {
        println!("    {v}");
    }
    println!(
        "  state: {} bits | modeled clock {:.2} MHz | throughput {:.1} Mips",
        report.total_bits(),
        report.clock_mhz,
        report.throughput_mips
    );
    Ok(())
}

fn engine_config(a: &Args, seed_flag: &str) -> Result<she_server::EngineConfig, ArgError> {
    Ok(she_server::EngineConfig {
        window: a.get_u64("window", 1 << 16)?,
        shards: a.get_u64("shards", 4)? as usize,
        memory_bytes: a.get_u64("memory", 64 << 10)? as usize,
        seed: a.get_u64(seed_flag, 1)? as u32,
    })
}

/// Read and decode `DIR/checkpoint.she`. Boxing lets one error path carry
/// both `io::Error` and `she_core::SnapshotError` (a `std::error::Error`).
///
/// A file that *reads* but does not *decode* (torn write, bit rot) is
/// quarantined: moved aside to `checkpoint.she.corrupt` so the next
/// `she checkpoint` can write a fresh one, and reported as a clean error
/// — corruption must never panic or be restored from silently.
fn load_checkpoint(dir: &str) -> Result<she_server::Checkpoint, Box<dyn std::error::Error>> {
    let path = std::path::Path::new(dir).join("checkpoint.she");
    let bytes = std::fs::read(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    match she_server::Checkpoint::decode(&bytes) {
        Ok(ckpt) => Ok(ckpt),
        Err(e) => {
            let quarantine = std::path::Path::new(dir).join("checkpoint.she.corrupt");
            let moved = std::fs::rename(&path, &quarantine).is_ok();
            Err(format!(
                "{}: corrupt checkpoint ({e}){}",
                path.display(),
                if moved {
                    format!("; quarantined to {}", quarantine.display())
                } else {
                    String::new()
                }
            )
            .into())
        }
    }
}

fn serve(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "addr",
        "shards",
        "window",
        "memory",
        "seed",
        "queue",
        "restore",
        "repl-log",
        "heartbeat-ms",
        "replica-of",
        "anti-entropy-ms",
        "heartbeat-timeout-ms",
    ])?;
    if a.has("replica-of") {
        return serve_replica(a);
    }
    for flag in ["anti-entropy-ms", "heartbeat-timeout-ms"] {
        if a.has(flag) {
            return Err(ArgError(format!("--{flag} only applies with --replica-of")).into());
        }
    }
    let restore_dir = a.get("restore", "");
    let mut cfg = she_server::ServerConfig {
        addr: a.get("addr", "127.0.0.1:7487"),
        engine: engine_config(a, "seed")?,
        queue_capacity: a.get_u64("queue", 256)? as usize,
        repl_log: a.get_u64("repl-log", 0)? as usize,
        heartbeat_ms: a.get_u64("heartbeat-ms", 500)?,
        ..Default::default()
    };
    // With --restore, the checkpoint's config is authoritative (rebalanced
    // by build_engines when --shards differs); flag values are ignored.
    let restored = if restore_dir.is_empty() {
        None
    } else {
        let ckpt = load_checkpoint(&restore_dir)
            .map_err(|err| ArgError(format!("--restore {restore_dir}: {err}")))?;
        let shards = a.get_u64("shards", ckpt.cfg.shards as u64)? as usize;
        let (engine, engines) = ckpt
            .build_engines(shards)
            .map_err(|err| ArgError(format!("--restore {restore_dir}: {err}")))?;
        cfg.engine = engine;
        Some(engines)
    };
    let e = cfg.engine;
    let repl_log = cfg.repl_log;
    let server = match restored {
        Some(engines) => she_server::Server::start_with_engines(cfg, engines),
        None => she_server::Server::start(cfg),
    }
    .map_err(|err| ArgError(err.to_string()))?;
    println!(
        "she-server listening on {} — {} shards, window {} ({} per shard), {}B per structure",
        server.local_addr(),
        e.shards,
        e.window,
        e.window / e.shards as u64,
        e.memory_bytes,
    );
    if repl_log > 0 {
        println!(
            "replication enabled: op log holds {repl_log} records; join replicas with \
             `she serve --replica-of {}`",
            server.local_addr()
        );
    }
    println!("(stop with the wire SHUTDOWN request, e.g. via `she loadgen` or she-server::Client)");
    print_shard_stats(&server.wait());
    Ok(())
}

/// `serve --replica-of`: bootstrap from the primary's snapshot, tail its
/// op log, and serve reads.
fn serve_replica(a: &Args) -> Result<(), CliError> {
    // The replica inherits the primary's engine from the bootstrap
    // snapshot and never serves an op log of its own.
    for flag in ["shards", "window", "memory", "seed", "restore", "repl-log", "heartbeat-ms"] {
        if a.has(flag) {
            return Err(ArgError(format!(
                "--{flag} cannot be combined with --replica-of (engine sizing and the op log \
                 come from the primary)"
            ))
            .into());
        }
    }
    let primary = a.get("replica-of", "");
    let cfg = she_replica::ReplicaConfig {
        listen_addr: a.get("addr", "127.0.0.1:7488"),
        primary: primary.clone(),
        queue_capacity: a.get_u64("queue", 256)? as usize,
        anti_entropy_ms: a.get_u64("anti-entropy-ms", 0)?,
        heartbeat_timeout_ms: a.get_u64("heartbeat-timeout-ms", 2_500)?,
        ..Default::default()
    };
    let replica = she_replica::Replica::start(cfg).map_err(|err| net_err(&primary, err))?;
    println!(
        "she-replica listening on {} — read-only, following primary {primary}",
        replica.local_addr()
    );
    println!("(writes are rejected with NOT_PRIMARY; stop with the wire SHUTDOWN request)");
    print_shard_stats(&replica.wait());
    Ok(())
}

fn print_shard_stats(stats: &[she_server::ShardStats]) {
    println!("drained; final per-shard stats:");
    for (i, s) in stats.iter().enumerate() {
        println!(
            "  shard {i}: inserts={} queries={} memory={} bits",
            s.inserts, s.queries, s.memory_bits
        );
    }
}

fn checkpoint(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "dir", "timeout-ms"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let dir = a.get("dir", "checkpoints");
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 2 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; SNAPSHOT_ALL needs v2"
        ))
        .into());
    }
    let blob = client.snapshot_all().map_err(io)?;
    std::fs::create_dir_all(&dir).map_err(|err| ArgError(format!("{dir}: {err}")))?;
    let path = std::path::Path::new(&dir).join("checkpoint.she");
    // Crash-safe: a failure at any point (full disk, crash mid-write)
    // leaves the previous checkpoint intact, never a torn file.
    she_chaos::atomic_write(&path, &blob)
        .map_err(|err| ArgError(format!("{}: {err}", path.display())))?;
    println!("wrote {} ({} bytes)", path.display(), blob.len());
    Ok(())
}

/// Run the deterministic chaos soak (docs/ROBUSTNESS.md): a real primary
/// and replica in this process, faults injected on the replication path,
/// scripted disconnects and replica kills, and a bit-for-bit comparison
/// against an in-process mirror at the end. Exit 0 means every check
/// held; on failure the seed is printed for an exact replay.
fn chaos_soak(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["seed", "cycles", "keys", "dir"])?;
    let defaults = she_chaos::SoakConfig::default();
    let cfg = she_chaos::SoakConfig {
        seed: a.get_u64("seed", defaults.seed)?,
        cycles: a.get_u64("cycles", u64::from(defaults.cycles))? as u32,
        keys_per_cycle: a.get_u64("keys", defaults.keys_per_cycle as u64)? as usize,
        dir: match a.get("dir", "").as_str() {
            "" => defaults.dir,
            d => std::path::PathBuf::from(d),
        },
    };
    println!(
        "chaos soak starting: seed={} cycles={} keys-per-cycle={}",
        cfg.seed, cfg.cycles, cfg.keys_per_cycle
    );
    match she_chaos::soak::run(&cfg) {
        Ok(report) => {
            println!("{report}");
            Ok(())
        }
        Err(e) => Err(CliError {
            msg: format!("chaos soak FAILED (replay with --seed {}): {e}", cfg.seed),
            code: 1,
        }),
    }
}

/// The four wire queries `she query --op` can issue. Parsing the flag
/// into a type (instead of validating a string twice) keeps the dispatch
/// below exhaustive — there is no "impossible" arm left to panic in.
#[derive(Debug, Clone, Copy)]
enum QueryOp {
    Member,
    Card,
    Freq,
    Sim,
}

impl QueryOp {
    fn parse(op: &str) -> Result<Self, ArgError> {
        match op {
            "member" => Ok(QueryOp::Member),
            "card" => Ok(QueryOp::Card),
            "freq" => Ok(QueryOp::Freq),
            "sim" => Ok(QueryOp::Sim),
            other => Err(ArgError(format!("unknown --op '{other}' (member|card|freq|sim)"))),
        }
    }
}

fn query(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "op", "key", "timeout-ms"])?;
    let op = QueryOp::parse(&a.get("op", "member"))?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let key = a.get_u64("key", 0)?;
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    // f64 answers also print their raw bits so scripts can diff bit-exactly.
    match op {
        QueryOp::Member => println!("member {key} = {}", client.query_member(key).map_err(io)?),
        QueryOp::Freq => println!("freq {key} = {}", client.query_freq(key).map_err(io)?),
        QueryOp::Card => {
            let v = client.query_card().map_err(io)?;
            println!("card = {v:.6} (bits {:#018x})", v.to_bits());
        }
        QueryOp::Sim => {
            let v = client.query_sim().map_err(io)?;
            println!("sim = {v:.6} (bits {:#018x})", v.to_bits());
        }
    }
    Ok(())
}

/// `she audit` — run the static-analysis gate over the workspace and
/// exit nonzero on any gate failure (new finding above a ratchet
/// baseline, unbanked improvement, lock-manifest drift, protocol drift,
/// or a malformed allow annotation). See `docs/ANALYSIS.md`.
fn audit(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["root", "list-locks"])?;
    let root = std::path::PathBuf::from(a.get("root", "."));
    let fail = |msg: String| CliError { msg, code: 1 };
    let cfg = she_audit::RuleConfig::for_workspace(&root).map_err(|e| fail(e.to_string()))?;
    let report = she_audit::audit(&root, &cfg).map_err(|e| fail(e.to_string()))?;
    if a.get("list-locks", "no") == "yes" {
        println!("{} lock() site(s):", report.lock_sites.len());
        for site in &report.lock_sites {
            println!("  {site}");
        }
        return Ok(());
    }
    if report.ok() {
        println!(
            "she audit: OK — {} files scanned, {} finding(s), all at committed baselines",
            report.files_scanned,
            report.findings.len()
        );
        return Ok(());
    }
    for f in report.failing_findings() {
        eprintln!("{f}");
    }
    for g in &report.gate_failures {
        eprintln!("audit gate: {g}");
    }
    Err(fail(format!("she audit: {} gate failure(s)", report.gate_failures.len())))
}

fn loadgen(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "addr",
        "items",
        "batch",
        "queries",
        "open",
        "universe",
        "skew",
        "seed",
        "sim-every",
        "verify",
        "shards",
        "window",
        "memory",
        "engine-seed",
        "read-from",
        "connections",
    ])?;
    let verify = a.get("verify", "no");
    let read_from = a.get("read-from", "");
    let cfg = she_server::LoadgenConfig {
        addr: a.get("addr", "127.0.0.1:7487"),
        items: a.get_u64("items", 1 << 20)?,
        batch: a.get_u64("batch", 512)? as usize,
        queries: a.get_u64("queries", 10_000)?,
        mode: match a.get_f64("open", -1.0).ok().filter(|&r| r > 0.0) {
            Some(rate) => she_server::Mode::Open { items_per_sec: rate },
            None => she_server::Mode::Closed,
        },
        universe: a.get_u64("universe", 100_000)? as usize,
        skew: a.get_f64("skew", 1.05)?,
        seed: a.get_u64("seed", 1)?,
        sim_every: a.get_u64("sim-every", 8)?,
        verify: match verify.as_str() {
            "yes" | "true" | "1" => Some(engine_config(a, "engine-seed")?),
            _ => None,
        },
        read_from: if read_from.is_empty() { None } else { Some(read_from) },
        connections: a.get_u64("connections", 1)? as usize,
    };
    let summary = she_server::loadgen::run(&cfg).map_err(|err| net_err(&cfg.addr, err))?;
    summary.print();
    if summary.mismatches > 0 {
        return Err(
            ArgError(format!("verification failed: {} mismatches", summary.mismatches)).into()
        );
    }
    Ok(())
}

fn shutdown(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let mut client = she_server::Client::connect(&addr).map_err(|err| net_err(&addr, err))?;
    client.shutdown().map_err(|err| net_err(&addr, err))?;
    println!("server at {addr} acknowledged shutdown");
    Ok(())
}

/// One-line replication position, `key=value` formatted for scripts.
fn cluster_status(a: &Args) -> Result<(), CliError> {
    a.expect_only(&["addr", "timeout-ms"])?;
    let addr = a.get("addr", "127.0.0.1:7487");
    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    client.set_op_timeout(op_timeout(a)?).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 3 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; CLUSTER_STATUS needs v3"
        ))
        .into());
    }
    let info = client.cluster_status().map_err(io)?;
    if info.is_primary {
        println!("role=primary head={} floor={} peers={}", info.head, info.floor, info.peers.len());
        for p in &info.peers {
            println!("  peer={} acked={}", p.addr, p.acked);
        }
    } else {
        println!(
            "role=replica primary={} connected={} applied={} boot_seq={}",
            info.primary, info.connected, info.head, info.boot_seq
        );
    }
    Ok(())
}

/// Replay the loadgen workload into an in-process [`DirectEngine`]
/// mirror and compare a quiescent node's query answers bit-for-bit.
///
/// Sound because each admitted `INSERT_BATCH` is exactly one op-log
/// record, appended in admission order — so a node whose position is
/// `S` holds precisely the first `S` workload batches, and `she
/// loadgen`'s keygen is deterministic from `--seed`. Queries advance
/// lazy cleaning but cleaning is itself deterministic in the insert
/// history, so answers are unaffected by any reads the node served
/// earlier; the battery below makes the same calls on both sides.
fn mirror_check(a: &Args) -> Result<(), CliError> {
    a.expect_only(&[
        "addr",
        "items",
        "batch",
        "universe",
        "skew",
        "seed",
        "sim-every",
        "probes",
        "window",
        "shards",
        "memory",
        "engine-seed",
    ])?;
    let addr = a.get("addr", "127.0.0.1:7488");
    let items = a.get_u64("items", 1 << 20)?;
    let batch = a.get_u64("batch", 512)?.max(1);
    let universe = (a.get_u64("universe", 100_000)? as usize).max(2);
    let skew = a.get_f64("skew", 1.05)?;
    let seed = a.get_u64("seed", 1)?;
    let sim_every = a.get_u64("sim-every", 8)?;
    let probes = a.get_u64("probes", 64)?;
    let engine = engine_config(a, "engine-seed")?;

    let io = |err: std::io::Error| net_err(&addr, err);
    let mut client = she_server::Client::connect(&addr).map_err(io)?;
    let version = client.hello().map_err(io)?;
    if version < 3 {
        return Err(ArgError(format!(
            "server at {addr} speaks protocol v{version}; mirror-check needs v3"
        ))
        .into());
    }
    // The node must be quiescent: its position (primary head / replica
    // applied) tells the mirror how many batches to replay, which only
    // holds once it has stopped moving.
    let first = client.cluster_status().map_err(io)?;
    std::thread::sleep(std::time::Duration::from_millis(250));
    let second = client.cluster_status().map_err(io)?;
    if first.head != second.head {
        return Err(ArgError(format!(
            "node at {addr} is still applying (seq {} -> {}); quiesce the stream first",
            first.head, second.head
        ))
        .into());
    }
    let applied = second.head;
    let n_batches = items.div_ceil(batch);
    if applied > n_batches {
        return Err(ArgError(format!(
            "node is at seq {applied} but --items {items} --batch {batch} only yields \
             {n_batches} batches; pass the flags the loadgen run used"
        ))
        .into());
    }

    let mut mirror = she_server::DirectEngine::new(engine);
    let mut keygen = CaidaLike::new(universe, skew, seed);
    let mut sent = 0u64;
    for b in 0..applied {
        let take = batch.min(items - sent) as usize;
        let keys = keygen.take_vec(take);
        let stream = if sim_every > 0 && b % sim_every == sim_every - 1 { 1u8 } else { 0u8 };
        for &k in &keys {
            mirror.insert(stream, k);
        }
        sent += take as u64;
    }

    let mut checked = 0u64;
    let mut mismatches = 0u64;
    for i in 0..probes {
        let key = she_hash::mix64(seed.wrapping_add(i)) % universe as u64;
        let got = client.query_member(key).map_err(io)?;
        let want = mirror.member(key);
        checked += 1;
        if got != want {
            mismatches += 1;
            eprintln!("mismatch: member({key}) node={got} mirror={want}");
        }
        let got = client.query_freq(key).map_err(io)?;
        let want = mirror.frequency(key);
        checked += 1;
        if got != want {
            mismatches += 1;
            eprintln!("mismatch: freq({key}) node={got} mirror={want}");
        }
    }
    let got = client.query_card().map_err(io)?.to_bits();
    let want = mirror.cardinality().to_bits();
    checked += 1;
    if got != want {
        mismatches += 1;
        eprintln!("mismatch: card node_bits={got:#018x} mirror_bits={want:#018x}");
    }
    let got = client.query_sim().map_err(io)?.to_bits();
    let want = mirror.similarity().to_bits();
    checked += 1;
    if got != want {
        mismatches += 1;
        eprintln!("mismatch: sim node_bits={got:#018x} mirror_bits={want:#018x}");
    }

    println!(
        "mirror-check {addr}: seq {applied} ({sent} items replayed), \
         {checked} answers checked, {mismatches} mismatches"
    );
    if mismatches > 0 {
        return Err(
            ArgError(format!("mirror-check failed: {mismatches} mismatched answers")).into()
        );
    }
    Ok(())
}

fn analyze(a: &Args) -> Result<(), ArgError> {
    a.expect_only(&["window", "memory", "hashes", "cardinality"])?;
    let window = a.get_u64("window", 1 << 16)?;
    let memory = a.get_u64("memory", 64 << 10)? as usize;
    let k = a.get_u64("hashes", 8)? as usize;
    let c = a.get_u64("cardinality", window)?;
    let m_bits = memory * 8;

    let q = analysis::bf_q(m_bits, k, c as usize);
    let alpha = analysis::optimal_alpha_bf(m_bits, k, c as usize);
    println!("inputs: window={window}, memory={memory}B ({m_bits} bits), H={k}, C={c}");
    println!("Eq.2  optimal alpha for SHE-BF: {alpha:.3}  (Q = {q:.4})");
    println!("      predicted FPR at the optimum: {:.6}", analysis::she_bf_fpr(q, alpha + 1.0, k));
    let g = analysis::max_group_count(0.01, alpha, c, k);
    println!("Eq.1  max groups for <=0.01 expected unswept groups/cycle: {g}");
    println!(
        "Eq.3  SHE-BM RE bound (alpha=0.2):  {:.5}",
        analysis::she_bm_error_bound(0.2, window, c)
    );
    println!(
        "Eq.4  SHE-HLL RE bound (alpha=0.2): {:.5}",
        analysis::she_hll_error_bound(0.2, window, c)
    );
    println!(
        "Eq.5  SHE-MH bias bound (alpha=0.2, S_union=2C): {:.5}",
        analysis::she_mh_error_bound(0.2, window, 2 * c)
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        let toks: Vec<String> = line.split_whitespace().map(String::from).collect();
        Args::parse(&toks).expect("parse")
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        assert!(dispatch(&args("frobnicate")).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown_flags() {
        assert!(dispatch(&args("membership --bogus 1")).is_err());
        assert!(dispatch(&args("analyze --bogus 1")).is_err());
    }

    #[test]
    fn membership_smoke() {
        dispatch(&args("membership --window 512 --memory 8k --items 4096 --probes 200"))
            .expect("runs");
    }

    #[test]
    fn cardinality_smoke_both_algos() {
        dispatch(&args("cardinality --algo bm --window 512 --memory 1k --items 4096")).expect("bm");
        dispatch(&args("cardinality --algo hll --window 512 --memory 1k --items 4096"))
            .expect("hll");
        assert!(dispatch(&args("cardinality --algo nope")).is_err());
    }

    #[test]
    fn frequency_and_similarity_smoke() {
        dispatch(&args("frequency --window 512 --memory 64k --items 4096 --sample 50"))
            .expect("freq");
        dispatch(&args("similarity --window 512 --memory 2k --items 4096 --overlap 0.6"))
            .expect("sim");
    }

    #[test]
    fn pipeline_smoke_all_variants() {
        for v in ["bm", "bf", "cm", "hll"] {
            dispatch(&args(&format!("pipeline --variant {v} --items 5000"))).expect(v);
        }
        assert!(dispatch(&args("pipeline --variant nope")).is_err());
    }

    #[test]
    fn analyze_smoke() {
        dispatch(&args("analyze --window 4096 --memory 16k --hashes 4")).expect("analyze");
    }

    #[test]
    fn bad_stream_rejected() {
        assert!(dispatch(&args("membership --stream nope --items 4096 --window 512")).is_err());
    }

    #[test]
    fn serve_and_loadgen_reject_unknown_flags() {
        assert!(dispatch(&args("serve --bogus 1")).is_err());
        assert!(dispatch(&args("loadgen --bogus 1")).is_err());
    }

    #[test]
    fn checkpoint_and_query_validate_flags() {
        assert!(dispatch(&args("checkpoint --bogus 1")).is_err());
        assert!(dispatch(&args("query --bogus 1")).is_err());
        // Op validation happens before any connection attempt.
        assert!(dispatch(&args("query --addr 127.0.0.1:1 --op nope")).is_err());
    }

    #[test]
    fn serve_restore_requires_readable_checkpoint() {
        assert!(dispatch(&args("serve --restore /nonexistent-she-checkpoint-dir")).is_err());
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_with_a_clean_error() {
        let dir = std::env::temp_dir().join("she-cli-corrupt-ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("checkpoint.she"), b"SHEF but torn mid-frame").unwrap();
        let err = dispatch(&args(&format!("serve --restore {}", dir.display()))).unwrap_err();
        assert!(err.msg.contains("corrupt checkpoint"), "{}", err.msg);
        assert!(err.msg.contains("quarantined"), "{}", err.msg);
        assert!(dir.join("checkpoint.she.corrupt").exists(), "sidecar written");
        assert!(!dir.join("checkpoint.she").exists(), "corrupt original moved aside");
    }

    #[test]
    fn unreadable_checkpoint_is_not_quarantined() {
        // A missing file is an I/O problem, not corruption: nothing to
        // move aside, and the error says what failed.
        let err = dispatch(&args("serve --restore /nonexistent-she-checkpoint-dir")).unwrap_err();
        assert!(!err.msg.contains("quarantined"), "{}", err.msg);
    }

    #[test]
    fn loadgen_reports_unreachable_server() {
        // Reserved port 1 on localhost refuses connections immediately.
        assert!(dispatch(&args("loadgen --addr 127.0.0.1:1 --items 10 --queries 0")).is_err());
    }

    #[test]
    fn serve_replica_rejects_engine_sizing_flags() {
        // Validation fires before any connection attempt is made.
        let err = dispatch(&args("serve --replica-of 127.0.0.1:1 --shards 4")).unwrap_err();
        assert!(err.msg.contains("--shards"), "{}", err.msg);
        let err = dispatch(&args("serve --replica-of 127.0.0.1:1 --repl-log 64")).unwrap_err();
        assert!(err.msg.contains("--repl-log"), "{}", err.msg);
    }

    #[test]
    fn replica_only_flags_require_replica_of() {
        assert!(dispatch(&args("serve --anti-entropy-ms 50")).is_err());
        assert!(dispatch(&args("serve --heartbeat-timeout-ms 100")).is_err());
    }

    #[test]
    fn unreachable_server_maps_to_exit_code_3() {
        for line in [
            "query --addr 127.0.0.1:1 --op card",
            "checkpoint --addr 127.0.0.1:1 --dir /tmp/she-nope",
            "cluster-status --addr 127.0.0.1:1",
            "mirror-check --addr 127.0.0.1:1",
            "shutdown --addr 127.0.0.1:1",
        ] {
            let err = dispatch(&args(line)).unwrap_err();
            assert_eq!(err.code, EXIT_UNREACHABLE, "{line}: {}", err.msg);
            assert!(err.msg.contains("connection refused"), "{line}: {}", err.msg);
        }
    }

    #[test]
    fn bad_flags_keep_exit_code_1() {
        let err = dispatch(&args("cluster-status --bogus 1")).unwrap_err();
        assert_eq!(err.code, 1);
        let err = dispatch(&args("mirror-check --bogus 1")).unwrap_err();
        assert_eq!(err.code, 1);
        let err = dispatch(&args("loadgen --bogus 1")).unwrap_err();
        assert_eq!(err.code, 1);
    }
}
