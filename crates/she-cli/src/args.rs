//! Tiny hand-rolled `--flag value` argument parser (no external deps).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// First positional token.
    pub command: String,
    flags: HashMap<String, String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse `tokens` (without the binary name).
    pub fn parse(tokens: &[String]) -> Result<Self, ArgError> {
        let mut it = tokens.iter();
        let command = it.next().ok_or_else(|| ArgError("missing subcommand".into()))?.clone();
        let mut flags = HashMap::new();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| ArgError(format!("expected --flag, got '{tok}'")))?;
            let value = it.next().ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Self { command, flags })
    }

    /// String flag with a default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Whether the flag was given at all.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Integer flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => parse_size(v).ok_or_else(|| ArgError(format!("--{key}: bad number '{v}'"))),
        }
    }

    /// Float flag with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("--{key}: bad float '{v}'"))),
        }
    }

    /// Reject unknown flags (catches typos).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{k} for '{}' (allowed: {})",
                    self.command,
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Parse "4096", "64k"/"64K", "2m"/"2M", "1g".
pub fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&toks("membership --window 64k --memory 32K --probes 1000")).unwrap();
        assert_eq!(a.command, "membership");
        assert_eq!(a.get_u64("window", 0).unwrap(), 65536);
        assert_eq!(a.get_u64("memory", 0).unwrap(), 32768);
        assert_eq!(a.get_u64("probes", 0).unwrap(), 1000);
        assert_eq!(a.get_u64("absent", 7).unwrap(), 7);
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("4096"), Some(4096));
        assert_eq!(parse_size("2m"), Some(2 << 20));
        assert_eq!(parse_size("1G"), Some(1 << 30));
        assert_eq!(parse_size("x"), None);
        assert_eq!(parse_size("12kk"), None);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&toks("run --flag")).is_err());
        assert!(Args::parse(&toks("run positional")).is_err());
    }

    #[test]
    fn unknown_flags_flagged() {
        let a = Args::parse(&toks("run --good 1 --bad 2")).unwrap();
        assert!(a.expect_only(&["good"]).is_err());
        assert!(a.expect_only(&["good", "bad"]).is_ok());
    }

    #[test]
    fn float_flags() {
        let a = Args::parse(&toks("run --alpha 0.25")).unwrap();
        assert_eq!(a.get_f64("alpha", 1.0).unwrap(), 0.25);
        assert_eq!(a.get_f64("beta", 0.9).unwrap(), 0.9);
    }
}
