//! `she` — run any SHE task from the command line.
//!
//! ```text
//! she membership  [--window N] [--memory BYTES] [--stream caida|distinct|campus|webpage]
//!                 [--items N] [--probes N] [--alpha F]
//! she cardinality [--algo bm|hll] [--window N] [--memory BYTES] [--stream ...] [--items N]
//! she frequency   [--window N] [--memory BYTES] [--stream ...] [--items N] [--sample N]
//! she similarity  [--window N] [--memory BYTES] [--overlap F] [--items N]
//! she pipeline    [--variant bm|bf|cm|hll] [--items N]
//! she analyze     [--window N] [--memory BYTES] [--hashes K] [--cardinality C]
//! she serve       [--addr HOST:PORT] [--shards N] [--window N] [--memory BYTES] [--queue N]
//!                 [--restore DIR] [--repl-log N] [--heartbeat-ms N]
//!                 [--replica-of HOST:PORT [--anti-entropy-ms N] [--heartbeat-timeout-ms N]]
//! she checkpoint  [--addr HOST:PORT] [--dir DIR]
//! she query       [--addr HOST:PORT] [--op member|card|freq|sim] [--key N]
//! she cluster-status [--addr HOST:PORT]
//! she mirror-check   [--addr HOST:PORT] [--items N] [--batch N] [--probes N] ...
//! she loadgen     [--addr HOST:PORT] [--items N] [--queries N] [--verify yes ...]
//!                 [--connections N] [--read-from HOST:PORT]
//! ```
//!
//! Sizes accept `k`/`m`/`g` suffixes. Every run prints the estimate, the
//! exact ground truth, and the resulting metric. Exit codes: 0 ok,
//! 1 failure, 2 usage error, 3 connection refused.

mod args;
mod run;

use args::Args;

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    if tokens.is_empty() || tokens[0] == "--help" || tokens[0] == "help" {
        print!("{}", run::USAGE);
        return;
    }
    let parsed = match Args::parse(&tokens) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `she help` for usage");
            std::process::exit(2);
        }
    };
    if let Err(e) = run::dispatch(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(e.code);
    }
}
