//! The four-stage SHE insertion pipeline of Section 6, executed against
//! real state with every memory access audited.
//!
//! Stages (per the paper):
//!
//! 1. read + update the **item counter** (a 32-bit register);
//! 2. compute the **hash** of the key (combinational, no memory);
//! 3. compute the current **time mark**, read the stored mark of the mapped
//!    group, compare, write back;
//! 4. read the mapped **cell group**, reset it if stage 3 flagged a flip,
//!    apply the update function `F` to the mapped cell, write back.
//!
//! Multi-hash structures (SHE-BF, SHE-CM) instantiate `k` identical lanes
//! (the paper's "8 identical processes"), each owning its own array and
//! mark slice so no region is shared between lanes — the paper notes "the
//! insertion process of SHE-BF and other SHE algorithms is barely the same
//! as SHE-BM", and this module makes that concrete for all four cell
//! types.

use crate::audit::{AccessKind, MemorySystem, RegionId};
use she_hash::{rank_of, HashFamily};

/// Which SHE structure the pipeline implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SheVariant {
    /// SHE-BM: one hash lane over a bit array.
    Bitmap,
    /// SHE-BF: `k` bit-array lanes.
    Bloom {
        /// Number of hash functions / lanes.
        k: usize,
    },
    /// SHE-CM: `k` counter-array lanes of `counter_bits`-bit saturating
    /// counters.
    CountMin {
        /// Number of hash functions / lanes.
        k: usize,
        /// Counter width in bits.
        counter_bits: u32,
    },
    /// SHE-HLL: one lane of `reg_bits`-bit max-registers (`w = 1`).
    HyperLogLog {
        /// Register width in bits.
        reg_bits: u32,
    },
}

impl SheVariant {
    /// Number of parallel lanes.
    pub fn lanes(&self) -> usize {
        match self {
            Self::Bitmap | Self::HyperLogLog { .. } => 1,
            Self::Bloom { k } | Self::CountMin { k, .. } => *k,
        }
    }

    /// Bit width of one cell.
    pub fn cell_bits(&self) -> u32 {
        match self {
            Self::Bitmap | Self::Bloom { .. } => 1,
            Self::CountMin { counter_bits, .. } => *counter_bits,
            Self::HyperLogLog { reg_bits } => *reg_bits,
        }
    }

    /// The update function `F(x, y)` on a cell value.
    fn apply(&self, operand: u64, old: u64) -> u64 {
        match self {
            Self::Bitmap | Self::Bloom { .. } => 1,
            Self::CountMin { counter_bits, .. } => {
                let max = (1u64 << counter_bits) - 1;
                old.saturating_add(1).min(max)
            }
            Self::HyperLogLog { reg_bits } => {
                let max = (1u64 << reg_bits) - 1;
                operand.min(max).max(old)
            }
        }
    }
}

/// One lane's private state and region handles.
#[derive(Debug, Clone)]
struct Lane {
    /// One entry per cell (bit / counter / register).
    cells: Vec<u64>,
    /// Stored time-mark bit per group.
    marks: Vec<bool>,
    cells_region: RegionId,
    marks_region: RegionId,
    hasher: HashFamily,
    /// Rank hash for the HyperLogLog variant.
    rank_hasher: HashFamily,
}

/// The audited four-stage pipeline simulator.
///
/// ```
/// use she_hwsim::{ShePipeline, SheVariant};
///
/// let mut p = ShePipeline::paper_config(SheVariant::Bloom { k: 8 });
/// let stats = p.run((0..10_000u64).map(she_hash::mix64));
/// assert_eq!(stats.violations, 0);            // all §2.3 constraints hold
/// assert_eq!(stats.cycles, stats.items + 3);  // fully pipelined
/// ```
#[derive(Debug, Clone)]
pub struct ShePipeline {
    variant: SheVariant,
    memory: MemorySystem,
    counter_region: RegionId,
    lanes: Vec<Lane>,
    /// Cells per lane.
    m_cells: usize,
    /// Cells per group.
    group_w: usize,
    window: u64,
    t_cycle: u64,
    /// The 32-bit item counter register (stage 1).
    item_counter: u32,
    cycles: u64,
}

/// Statistics of one simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStats {
    /// Items pushed through the pipeline.
    pub items: u64,
    /// Clock cycles consumed. With the constraints satisfied the pipeline
    /// is fully pipelined: `cycles = items + stages − 1`.
    pub cycles: u64,
    /// Pipeline depth.
    pub stages: u32,
    /// Total memory accesses recorded.
    pub memory_accesses: u64,
    /// Constraint violations (must be empty for a hardware-feasible run).
    pub violations: usize,
}

impl ShePipeline {
    /// Build the pipeline: `m_cells` cells per lane, `group_w` cells per
    /// group, window / cleaning cycle in items.
    pub fn new(
        variant: SheVariant,
        m_cells: usize,
        group_w: usize,
        window: u64,
        t_cycle: u64,
    ) -> Self {
        assert!(m_cells >= group_w && group_w >= 1);
        assert!(t_cycle > window && window > 0);
        let g = m_cells.div_ceil(group_w);
        let mut memory = MemorySystem::default();
        let counter_region = memory.register("item_counter", 32, 32);
        let cell_bits = variant.cell_bits() as usize;
        let lanes = (0..variant.lanes())
            .map(|lane| {
                let cells_region =
                    memory.register("cell_array", m_cells * cell_bits, group_w * cell_bits);
                let marks_region = memory.register("time_marks", g, 1);
                Lane {
                    cells: vec![0u64; m_cells],
                    marks: vec![false; g],
                    cells_region,
                    marks_region,
                    hasher: HashFamily::new(1, 0xC0FFEE ^ lane as u32),
                    rank_hasher: HashFamily::new(1, 0xF1A9 ^ lane as u32),
                }
            })
            .collect();
        Self {
            variant,
            memory,
            counter_region,
            lanes,
            m_cells,
            group_w,
            window,
            t_cycle,
            item_counter: 0,
            cycles: 0,
        }
    }

    /// The paper's exact FPGA configuration: 1024-bit array, 64-bit groups
    /// (group size expressed in cells so the group port stays 64 bits for
    /// the bit-array variants; counter variants get one 64-bit counter
    /// group by default via [`ShePipeline::new`]).
    pub fn paper_config(variant: SheVariant) -> Self {
        match variant {
            SheVariant::Bitmap | SheVariant::Bloom { .. } => {
                Self::new(variant, 1024, 64, 600, 1024)
            }
            // Counter variants: keep the group port at 64 bits.
            SheVariant::CountMin { counter_bits, .. } => {
                let w = (64 / counter_bits).max(1) as usize;
                Self::new(variant, 1024, w, 600, 1024)
            }
            SheVariant::HyperLogLog { .. } => Self::new(variant, 1024, 1, 600, 1024),
        }
    }

    fn num_groups(&self) -> usize {
        self.m_cells.div_ceil(self.group_w)
    }

    fn group_offset(&self, gid: usize) -> u64 {
        let g = self.num_groups();
        ((self.t_cycle as u128 * gid as u128) / g as u128) as u64
    }

    fn current_mark(&self, gid: usize) -> bool {
        let shifted = self.item_counter as i128 - self.group_offset(gid) as i128;
        shifted.div_euclid(self.t_cycle as i128).rem_euclid(2) == 1
    }

    fn group_age(&self, gid: usize) -> u64 {
        (self.item_counter as i128 - self.group_offset(gid) as i128)
            .rem_euclid(self.t_cycle as i128) as u64
    }

    /// Push one item through all four stages.
    pub fn insert(&mut self, key: u64) {
        self.memory.begin_item();
        self.cycles += 1;

        // Stage 1: item counter read-modify-write (32-bit register).
        self.memory.access(1, self.counter_region, AccessKind::Read, 32);
        self.item_counter = self.item_counter.wrapping_add(1);
        self.memory.access(1, self.counter_region, AccessKind::Write, 32);

        // Stage 2: hash computation — combinational, no memory access.
        let lanes_n = self.lanes.len();
        let hashed: Vec<(usize, u64)> = (0..lanes_n)
            .map(|l| {
                let idx = self.lanes[l].hasher.index(0, &key, self.m_cells);
                let operand = match self.variant {
                    SheVariant::HyperLogLog { .. } => {
                        rank_of(self.lanes[l].rank_hasher.hash(0, &key) as u64, 32) as u64
                    }
                    _ => 1,
                };
                (idx, operand)
            })
            .collect();

        let group_bits = self.group_w * self.variant.cell_bits() as usize;
        for (l, (cell_idx, operand)) in hashed.into_iter().enumerate() {
            let gid = cell_idx / self.group_w;

            // Stage 3: time-mark read/compare/write (1-bit access).
            let cur = self.current_mark(gid);
            let (marks_region, cells_region) =
                (self.lanes[l].marks_region, self.lanes[l].cells_region);
            self.memory.access(3, marks_region, AccessKind::Read, 1);
            let stored = self.lanes[l].marks[gid];
            let flip = stored != cur;
            if flip {
                self.lanes[l].marks[gid] = cur;
                self.memory.access(3, marks_region, AccessKind::Write, 1);
            }

            // Stage 4: group read, optional reset, cell update `F`, write
            // back — one read + one write of one group-wide word.
            self.memory.access(4, cells_region, AccessKind::Read, group_bits);
            let start = gid * self.group_w;
            let end = (start + self.group_w).min(self.m_cells);
            if flip {
                self.lanes[l].cells[start..end].fill(0); // group cleaning
            }
            let old = self.lanes[l].cells[cell_idx];
            self.lanes[l].cells[cell_idx] = self.variant.apply(operand, old);
            self.memory.access(4, cells_region, AccessKind::Write, group_bits);
        }
    }

    /// Run a whole key stream and summarize.
    pub fn run(&mut self, keys: impl IntoIterator<Item = u64>) -> PipelineStats {
        let mut items = 0u64;
        for k in keys {
            self.insert(k);
            items += 1;
        }
        self.stats_for(items)
    }

    fn stats_for(&self, items: u64) -> PipelineStats {
        PipelineStats {
            items,
            cycles: items + 3, // 4-stage pipeline: fill latency of 3 cycles
            stages: 4,
            memory_accesses: self.memory.total_accesses(),
            violations: self.memory.violations().len(),
        }
    }

    /// The variant simulated.
    pub fn variant(&self) -> SheVariant {
        self.variant
    }

    /// The audited memory system (violations, region summary).
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Total state bits across counter, arrays, and marks.
    pub fn state_bits(&self) -> usize {
        self.memory.total_bits()
    }

    /// Effective value of a cell, accounting for a pending (lazy) reset.
    fn effective_cell(&self, lane: &Lane, cell_idx: usize) -> u64 {
        let gid = cell_idx / self.group_w;
        if lane.marks[gid] != self.current_mark(gid) {
            0
        } else {
            lane.cells[cell_idx]
        }
    }

    /// Membership probe (SHE-BF / SHE-BM semantics: young groups ignored,
    /// zero mature cell ⇒ absent).
    pub fn contains(&self, key: u64) -> bool {
        for lane in &self.lanes {
            let cell_idx = lane.hasher.index(0, &key, self.m_cells);
            let gid = cell_idx / self.group_w;
            if self.group_age(gid) < self.window {
                continue;
            }
            if self.effective_cell(lane, cell_idx) == 0 {
                return false;
            }
        }
        true
    }

    /// Frequency probe (SHE-CM semantics: min over mature lanes).
    pub fn frequency(&self, key: u64) -> u64 {
        let mut mature_min: Option<u64> = None;
        let mut any_min: Option<u64> = None;
        for lane in &self.lanes {
            let cell_idx = lane.hasher.index(0, &key, self.m_cells);
            let gid = cell_idx / self.group_w;
            let v = self.effective_cell(lane, cell_idx);
            any_min = Some(any_min.map_or(v, |m| m.min(v)));
            if self.group_age(gid) >= self.window {
                mature_min = Some(mature_min.map_or(v, |m| m.min(v)));
            }
        }
        mature_min.or(any_min).unwrap_or(0)
    }

    /// Cardinality probe (SHE-HLL semantics: subset estimate over the
    /// legal registers, scaled to the full array).
    pub fn cardinality(&self) -> f64 {
        let lane = &self.lanes[0];
        let beta_n = (0.9 * self.window as f64) as u64;
        let legal = (0..self.m_cells)
            .filter(|&i| self.group_age(i / self.group_w) >= beta_n)
            .map(|i| self.effective_cell(lane, i));
        she_sketch::hll_estimate_subset(legal, self.m_cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_VARIANTS: [SheVariant; 4] = [
        SheVariant::Bitmap,
        SheVariant::Bloom { k: 8 },
        SheVariant::CountMin { k: 4, counter_bits: 16 },
        SheVariant::HyperLogLog { reg_bits: 5 },
    ];

    #[test]
    fn paper_configs_satisfy_all_constraints() {
        for variant in ALL_VARIANTS {
            let mut p = ShePipeline::paper_config(variant);
            let stats = p.run((0..50_000u64).map(she_hash::mix64));
            assert_eq!(stats.violations, 0, "{variant:?}: {:?}", p.memory().violations());
            assert_eq!(stats.items, 50_000);
            assert_eq!(stats.cycles, 50_003, "fully pipelined: 1 item/cycle");
        }
    }

    #[test]
    fn bloom_lanes_scale_state_and_accesses() {
        let mut bm = ShePipeline::paper_config(SheVariant::Bitmap);
        let mut bf = ShePipeline::paper_config(SheVariant::Bloom { k: 8 });
        let s_bm = bm.run(0..10_000u64);
        let s_bf = bf.run(0..10_000u64);
        assert!(bf.state_bits() > 7 * bm.state_bits());
        assert!(s_bf.memory_accesses > 7 * s_bm.memory_accesses / 2);
    }

    #[test]
    fn membership_semantics_match_sliding_window() {
        let mut p = ShePipeline::new(SheVariant::Bloom { k: 4 }, 1 << 14, 64, 1000, 2000);
        for i in 0..3000u64 {
            p.insert(i);
        }
        let misses = (2000..3000u64).filter(|&i| !p.contains(i)).count();
        assert_eq!(misses, 0, "false negatives in window");
        let fps = (0..1000u64).filter(|&i| p.contains(i + 10_000_000)).count();
        assert!(fps < 400, "false positives: {fps}");
    }

    #[test]
    fn count_min_pipeline_counts() {
        let mut p = ShePipeline::new(
            SheVariant::CountMin { k: 4, counter_bits: 16 },
            1 << 12,
            4,
            1000,
            2000,
        );
        // One heavy key amid distinct traffic.
        for i in 0..900u64 {
            if i % 9 == 0 {
                p.insert(u64::MAX);
            } else {
                p.insert(she_hash::mix64(i));
            }
        }
        let est = p.frequency(u64::MAX);
        assert!(est >= 100, "heavy key underestimated: {est}");
        assert!(p.frequency(0xdead) <= 5);
        assert!(p.memory().violations().is_empty());
    }

    #[test]
    fn hll_pipeline_estimates_cardinality() {
        let mut p =
            ShePipeline::new(SheVariant::HyperLogLog { reg_bits: 5 }, 1 << 12, 1, 20_000, 40_000);
        let n = 15_000u64;
        for i in 0..n {
            p.insert(she_hash::mix64(i));
        }
        let est = p.cardinality();
        let re = (est - n as f64).abs() / n as f64;
        assert!(re < 0.15, "estimate {est}, re {re}");
        assert!(p.memory().violations().is_empty());
    }

    #[test]
    fn counter_groups_respect_port_width() {
        // 16-bit counters, 4 per group = 64-bit port; the audit verifies
        // stage 4 never exceeds it.
        let mut p =
            ShePipeline::new(SheVariant::CountMin { k: 2, counter_bits: 16 }, 256, 4, 100, 256);
        for i in 0..5000u64 {
            p.insert(she_hash::mix64(i));
        }
        assert!(p.memory().violations().is_empty());
        let summary = p.memory().region_summary();
        let port = summary.iter().find(|(n, ..)| *n == "cell_array").map(|&(_, _, p, ..)| p);
        assert_eq!(port, Some(64));
    }

    #[test]
    fn stats_shape() {
        let mut p = ShePipeline::paper_config(SheVariant::Bitmap);
        let stats = p.run(0..10u64);
        assert_eq!(stats.stages, 4);
        assert_eq!(stats.cycles, 13);
        assert!(stats.memory_accesses >= 10 * 5);
    }

    #[test]
    fn group_cleaning_happens_in_stage4_width() {
        let mut p = ShePipeline::new(SheVariant::Bitmap, 256, 64, 100, 256);
        for i in 0..5000u64 {
            p.insert(she_hash::mix64(i));
        }
        assert!(p.memory().violations().is_empty());
    }
}
