//! Memory-access recording and constraint auditing (Section 2.3).
//!
//! A [`MemorySystem`] owns a set of named regions, each with a total size
//! and a maximum per-access width (the SRAM port width). Pipelines declare
//! every read/write through [`MemorySystem::access`]; the system enforces,
//! per item flowing through the pipeline:
//!
//! 1. **Limited SRAM** — the summed region sizes must fit the budget
//!    (default: the Virtex-7's ~30 MB of on-chip memory);
//! 2. **Single stage memory access** — a region may only ever be touched by
//!    one pipeline stage;
//! 3. **Limited concurrent memory access** — a stage may make at most one
//!    access per region per item, of at most the region's port width.

use std::fmt;

/// Default SRAM budget: the paper's "a Virtex FPGA has less than 30 MB".
pub const DEFAULT_SRAM_BUDGET_BITS: usize = 30 * 8 * 1024 * 1024;

/// Handle to a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionId(usize);

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// A detected violation of the three hardware constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// Total registered memory exceeds the SRAM budget.
    OverBudget {
        /// Bits requested across all regions.
        total_bits: usize,
        /// The configured budget.
        budget_bits: usize,
    },
    /// A region was accessed by two different stages.
    MultiStageAccess {
        /// Region name.
        region: &'static str,
        /// Stage that owned the region first.
        first_stage: usize,
        /// The offending second stage.
        second_stage: usize,
    },
    /// One stage accessed the same region twice while processing one item.
    RepeatedAccess {
        /// Region name.
        region: &'static str,
        /// The offending stage.
        stage: usize,
    },
    /// An access was wider than the region's port.
    OverWidth {
        /// Region name.
        region: &'static str,
        /// Requested bits.
        requested_bits: usize,
        /// Port width in bits.
        port_bits: usize,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OverBudget { total_bits, budget_bits } => {
                write!(f, "memory over budget: {total_bits} bits > {budget_bits} bits of SRAM")
            }
            Self::MultiStageAccess { region, first_stage, second_stage } => write!(
                f,
                "region '{region}' accessed by stage {second_stage} but owned by stage {first_stage}"
            ),
            Self::RepeatedAccess { region, stage } => {
                write!(f, "stage {stage} accessed region '{region}' twice for one item")
            }
            Self::OverWidth { region, requested_bits, port_bits } => write!(
                f,
                "access of {requested_bits} bits to region '{region}' exceeds its {port_bits}-bit port"
            ),
        }
    }
}

#[derive(Debug, Clone)]
struct Region {
    name: &'static str,
    total_bits: usize,
    port_bits: usize,
    reads: u64,
    writes: u64,
    /// The unique stage allowed to touch this region (locked on first use).
    owner_stage: Option<usize>,
    /// Accesses made for the in-flight item, per stage (stage, count).
    item_touches: Vec<(usize, u32)>,
}

/// The audited memory system of a simulated pipeline.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    regions: Vec<Region>,
    budget_bits: usize,
    violations: Vec<ConstraintViolation>,
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::new(DEFAULT_SRAM_BUDGET_BITS)
    }
}

impl MemorySystem {
    /// Create a memory system with an SRAM budget in bits.
    pub fn new(budget_bits: usize) -> Self {
        Self { regions: Vec::new(), budget_bits, violations: Vec::new() }
    }

    /// Register a region of `total_bits` with a `port_bits`-wide port.
    /// Records an `OverBudget` violation if the running total exceeds the
    /// budget.
    pub fn register(
        &mut self,
        name: &'static str,
        total_bits: usize,
        port_bits: usize,
    ) -> RegionId {
        self.regions.push(Region {
            name,
            total_bits,
            port_bits,
            reads: 0,
            writes: 0,
            owner_stage: None,
            item_touches: Vec::new(),
        });
        let total: usize = self.regions.iter().map(|r| r.total_bits).sum();
        if total > self.budget_bits {
            self.violations.push(ConstraintViolation::OverBudget {
                total_bits: total,
                budget_bits: self.budget_bits,
            });
        }
        RegionId(self.regions.len() - 1)
    }

    /// Mark the start of a new item flowing through the pipeline (resets
    /// the per-item access tallies).
    pub fn begin_item(&mut self) {
        for r in &mut self.regions {
            r.item_touches.clear();
        }
    }

    /// Record an access of `bits` bits by `stage` to `region`; checks
    /// constraints 2 and 3.
    pub fn access(&mut self, stage: usize, region: RegionId, kind: AccessKind, bits: usize) {
        let r = &mut self.regions[region.0];
        match kind {
            AccessKind::Read => r.reads += 1,
            AccessKind::Write => r.writes += 1,
        }
        if bits > r.port_bits {
            self.violations.push(ConstraintViolation::OverWidth {
                region: r.name,
                requested_bits: bits,
                port_bits: r.port_bits,
            });
        }
        match r.owner_stage {
            None => r.owner_stage = Some(stage),
            Some(owner) if owner != stage => {
                self.violations.push(ConstraintViolation::MultiStageAccess {
                    region: r.name,
                    first_stage: owner,
                    second_stage: stage,
                });
            }
            Some(_) => {}
        }
        // A stage gets one read-modify-write of one address per item: we
        // allow one read + one write, but not two reads or two writes.
        match r.item_touches.iter_mut().find(|(s, _)| *s == stage) {
            Some((_, n)) => {
                *n += 1;
                if *n > 2 {
                    self.violations
                        .push(ConstraintViolation::RepeatedAccess { region: r.name, stage });
                }
            }
            None => r.item_touches.push((stage, 1)),
        }
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[ConstraintViolation] {
        &self.violations
    }

    /// Total registered memory in bits.
    pub fn total_bits(&self) -> usize {
        self.regions.iter().map(|r| r.total_bits).sum()
    }

    /// Total accesses (reads + writes) across all regions.
    pub fn total_accesses(&self) -> u64 {
        self.regions.iter().map(|r| r.reads + r.writes).sum()
    }

    /// Per-region `(name, total_bits, port_bits, reads, writes)` summary.
    pub fn region_summary(&self) -> Vec<(&'static str, usize, usize, u64, u64)> {
        self.regions
            .iter()
            .map(|r| (r.name, r.total_bits, r.port_bits, r.reads, r.writes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_pipeline_has_no_violations() {
        let mut ms = MemorySystem::new(1 << 20);
        let marks = ms.register("marks", 16, 1);
        let cells = ms.register("cells", 1024, 64);
        for _ in 0..100 {
            ms.begin_item();
            ms.access(2, marks, AccessKind::Read, 1);
            ms.access(2, marks, AccessKind::Write, 1);
            ms.access(3, cells, AccessKind::Read, 64);
            ms.access(3, cells, AccessKind::Write, 64);
        }
        assert!(ms.violations().is_empty());
        assert_eq!(ms.total_accesses(), 400);
        assert_eq!(ms.total_bits(), 1040);
    }

    #[test]
    fn detects_multi_stage_access() {
        let mut ms = MemorySystem::new(1 << 20);
        let cells = ms.register("cells", 64, 64);
        ms.begin_item();
        ms.access(1, cells, AccessKind::Read, 32);
        ms.access(2, cells, AccessKind::Write, 32);
        assert!(matches!(
            ms.violations()[0],
            ConstraintViolation::MultiStageAccess {
                region: "cells",
                first_stage: 1,
                second_stage: 2
            }
        ));
    }

    #[test]
    fn detects_repeated_access_per_item() {
        let mut ms = MemorySystem::new(1 << 20);
        let cells = ms.register("cells", 64, 64);
        ms.begin_item();
        ms.access(1, cells, AccessKind::Read, 8);
        ms.access(1, cells, AccessKind::Write, 8);
        ms.access(1, cells, AccessKind::Read, 8); // third touch: violation
        assert!(matches!(
            ms.violations()[0],
            ConstraintViolation::RepeatedAccess { region: "cells", stage: 1 }
        ));
        // The tally resets for the next item.
        let before = ms.violations().len();
        ms.begin_item();
        ms.access(1, cells, AccessKind::Read, 8);
        ms.access(1, cells, AccessKind::Write, 8);
        assert_eq!(ms.violations().len(), before);
    }

    #[test]
    fn detects_over_width() {
        let mut ms = MemorySystem::new(1 << 20);
        let cells = ms.register("cells", 2048, 64);
        ms.begin_item();
        ms.access(1, cells, AccessKind::Read, 128);
        assert!(matches!(
            ms.violations()[0],
            ConstraintViolation::OverWidth { requested_bits: 128, port_bits: 64, .. }
        ));
    }

    #[test]
    fn detects_over_budget() {
        let mut ms = MemorySystem::new(100);
        ms.register("big", 200, 64);
        assert!(matches!(ms.violations()[0], ConstraintViolation::OverBudget { .. }));
    }

    #[test]
    fn violations_display() {
        let v = ConstraintViolation::RepeatedAccess { region: "cells", stage: 3 };
        assert!(v.to_string().contains("cells"));
    }
}
