//! Resource and clock reporting — the software substitute for Tables 2–3.
//!
//! Logic synthesis is out of scope, so LUT/flip-flop counts cannot be
//! measured here; instead [`ResourceReport`] inventories the *state bits*
//! each pipeline component needs (the quantity that drives the paper's
//! register column and the SRAM constraint), and the clock model reproduces
//! Table 3's frequencies: 544.07 MHz for the single-lane SHE-BM and a
//! fan-out derate for multi-lane SHE-BF calibrated so `k = 8` lands on the
//! paper's 468.82 MHz.

use crate::pipeline::{ShePipeline, SheVariant};

/// Table 3's synthesized base clock for SHE-BM (MHz).
pub const BASE_CLOCK_MHZ: f64 = 544.07;

/// Fan-out derate per extra lane, fitted to Table 3
/// (544.07 / (1 + 7·d) = 468.82 ⇒ d ≈ 0.02292).
pub const LANE_DERATE: f64 = 0.022_92;

/// Modeled clock frequency for a pipeline with `lanes` parallel lanes.
pub fn clock_frequency_mhz(lanes: usize) -> f64 {
    assert!(lanes >= 1);
    BASE_CLOCK_MHZ / (1.0 + LANE_DERATE * (lanes as f64 - 1.0))
}

/// Throughput in million items per second: one item per cycle at the
/// modeled clock (valid only when the constraint audit passes).
pub fn throughput_mips(lanes: usize) -> f64 {
    clock_frequency_mhz(lanes)
}

/// Per-component state inventory of a simulated pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceReport {
    /// Variant being reported.
    pub variant: SheVariant,
    /// 32-bit item counter (stage 1).
    pub counter_bits: usize,
    /// Cell-array bits across all lanes.
    pub cell_bits: usize,
    /// Time-mark bits across all lanes.
    pub mark_bits: usize,
    /// Dedicated block RAM used (the paper reports 0: everything fits in
    /// registers at this scale).
    pub block_ram_bits: usize,
    /// Modeled clock (MHz).
    pub clock_mhz: f64,
    /// Modeled throughput (million items per second).
    pub throughput_mips: f64,
}

impl ResourceReport {
    /// Build the report for a pipeline.
    pub fn for_pipeline(p: &ShePipeline) -> Self {
        let lanes = p.variant().lanes();
        let summary = p.memory().region_summary();
        let cell_bits: usize =
            summary.iter().filter(|(n, ..)| *n == "cell_array").map(|(_, b, ..)| b).sum();
        let mark_bits: usize =
            summary.iter().filter(|(n, ..)| *n == "time_marks").map(|(_, b, ..)| b).sum();
        Self {
            variant: p.variant(),
            counter_bits: 32,
            cell_bits,
            mark_bits,
            block_ram_bits: 0,
            clock_mhz: clock_frequency_mhz(lanes),
            throughput_mips: throughput_mips(lanes),
        }
    }

    /// Total state bits.
    pub fn total_bits(&self) -> usize {
        self.counter_bits + self.cell_bits + self.mark_bits + self.block_ram_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_model_matches_table3() {
        assert!((clock_frequency_mhz(1) - 544.07).abs() < 1e-9);
        let bf = clock_frequency_mhz(8);
        assert!((bf - 468.82).abs() < 1.0, "SHE-BF clock {bf}");
    }

    #[test]
    fn throughput_exceeds_typical_fpga_clock() {
        // The paper's bar: both variants beat the typical 200 MHz.
        assert!(throughput_mips(1) > 200.0);
        assert!(throughput_mips(8) > 200.0);
    }

    #[test]
    fn report_inventories_paper_config() {
        let p = ShePipeline::paper_config(SheVariant::Bitmap);
        let r = ResourceReport::for_pipeline(&p);
        assert_eq!(r.cell_bits, 1024);
        assert_eq!(r.mark_bits, 16);
        assert_eq!(r.counter_bits, 32);
        assert_eq!(r.block_ram_bits, 0, "paper reports zero block memory");
        assert_eq!(r.total_bits(), 1024 + 16 + 32);
    }

    #[test]
    fn bloom_report_scales_with_lanes() {
        let p = ShePipeline::paper_config(SheVariant::Bloom { k: 8 });
        let r = ResourceReport::for_pipeline(&p);
        assert_eq!(r.cell_bits, 8 * 1024);
        assert_eq!(r.mark_bits, 8 * 16);
        assert!(r.clock_mhz < clock_frequency_mhz(1));
    }
}
