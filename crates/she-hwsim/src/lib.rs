//! Pipeline simulator standing in for the paper's FPGA implementation
//! (Section 6).
//!
//! The paper's hardware claims are:
//!
//! 1. the SHE insertion path fits a **four-stage pipeline** in which every
//!    memory region is accessed by exactly one stage (*single stage memory
//!    access*), each stage touches at most one address of bounded width per
//!    item (*limited concurrent memory access*), and the whole state fits
//!    in SRAM (*limited memory*);
//! 2. therefore the pipeline sustains **one item per clock cycle**, which at
//!    the synthesized 544.07 MHz clock gives 544 Mips (Table 3) at the
//!    resource cost of Table 2.
//!
//! Logic synthesis is out of scope for a software reproduction, so this
//! crate *checks claim 1 mechanically* and *derives claim 2 from it*:
//!
//! * [`MemorySystem`] + [`ConstraintAuditor`](audit) record every memory
//!   access a pipeline makes, per stage and per item, and report any
//!   violation of the three constraints;
//! * [`ShePipeline`] executes the paper's exact four-stage insertion
//!   datapath for SHE-BM / SHE-BF (item counter → hash → time mark →
//!   cell group) against real state, so the audit covers the true access
//!   pattern, not a paper model;
//! * [`resources`] reports per-component state-bit inventories (the
//!   honest substitute for LUT/register counts) and the clock/throughput
//!   model calibrated to Table 3.

pub mod audit;
pub mod pipeline;
pub mod resources;

pub use audit::{AccessKind, ConstraintViolation, MemorySystem, RegionId};
pub use pipeline::{PipelineStats, ShePipeline, SheVariant};
pub use resources::{clock_frequency_mhz, throughput_mips, ResourceReport};
