//! SplitMix64-style finalizers for integer keys.
//!
//! The experiment harness feeds billions of 32/64-bit keys through the
//! sketches; for those, a multiply-xor-shift finalizer is much faster than
//! running lookup3 over an encoded byte string while having equivalent
//! statistical quality for sketching purposes.

/// Finalize a 64-bit value (the SplitMix64 / Stafford "variant 13" mixer).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable mixer usable as a standalone hash function over `u64` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix64 {
    seed: u64,
}

impl Mix64 {
    /// Create a mixer with the given seed.
    #[inline]
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Hash a 64-bit key.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        mix64(key ^ mix64(self.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_sample() {
        // A mixer must not collide on a sample of sequential inputs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn seeded_mixers_differ() {
        let a = Mix64::new(1);
        let b = Mix64::new(2);
        let mut diff = 0;
        for i in 0..1000 {
            if a.hash(i) != b.hash(i) {
                diff += 1;
            }
        }
        assert_eq!(diff, 1000);
    }

    #[test]
    fn avalanche() {
        let mut total = 0u32;
        for bit in 0..64 {
            total += (mix64(0) ^ mix64(1u64 << bit)).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "avalanche average {avg}");
    }
}
