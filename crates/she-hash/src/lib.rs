//! Hash primitives for the SHE reproduction.
//!
//! The paper uses BOBHash (Bob Jenkins' lookup3) for every sketch. This crate
//! provides:
//!
//! * [`Bob32`] — Jenkins lookup3 (`hashlittle`), implemented from the
//!   public-domain specification, seedable so that independent hash functions
//!   can be derived from one routine;
//! * [`Mix64`] — a splitmix64-style finalizer for fast hashing of integer
//!   keys (used where a 64-bit value is needed, e.g. HyperLogLog's `Hz`);
//! * [`HashFamily`] — `k` independent seeded hash functions with convenient
//!   range reduction, the building block of every multi-hash sketch;
//! * rank helpers ([`rank_of`]) used by HyperLogLog-style estimators;
//! * [`rng`] — deterministic in-tree PRNGs (SplitMix64, xoshiro256**) used
//!   by the workload generators and the seeded-loop test suites.
//!
//! All hashers are deterministic: the same `(seed, key)` pair always produces
//! the same value, which the experiment harness relies on for reproducibility.

mod bob;
mod family;
mod mix;
pub mod rng;

pub use bob::Bob32;
pub use family::HashFamily;
pub use mix::{mix64, Mix64};
pub use rng::{RandomSource, SplitMix64, Xoshiro256};

/// A key that can be fed to the hash primitives.
///
/// Sketches in this workspace hash raw byte strings; integer keys get a
/// fixed-width little-endian encoding so results do not depend on platform
/// endianness.
pub trait HashKey {
    /// Feed the key's canonical byte representation to `f`.
    fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R;
}

impl HashKey for [u8] {
    #[inline]
    fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(self)
    }
}

impl HashKey for &[u8] {
    #[inline]
    fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(self)
    }
}

impl<const N: usize> HashKey for [u8; N] {
    #[inline]
    fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(self)
    }
}

impl HashKey for str {
    #[inline]
    fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(self.as_bytes())
    }
}

impl HashKey for &str {
    #[inline]
    fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(self.as_bytes())
    }
}

macro_rules! impl_hashkey_int {
    ($($t:ty),*) => {$(
        impl HashKey for $t {
            #[inline]
            fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
                f(&self.to_le_bytes())
            }
        }
    )*};
}

impl_hashkey_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

/// The HyperLogLog "rank": one plus the number of leading zeros of `v`
/// restricted to its low `bits` bits, capped so it fits the register width.
///
/// `rank_of(v, 32)` matches the paper's `ℓ_zero + 1` for 32-bit hash values:
/// a value whose top bit (of the 32) is set has rank 1; the all-zero value
/// saturates at `bits + 1`.
#[inline]
pub fn rank_of(v: u64, bits: u32) -> u8 {
    debug_assert!((1..=64).contains(&bits));
    let shifted = if bits == 64 { v } else { v & ((1u64 << bits) - 1) };
    let lz = (shifted << (64 - bits)).leading_zeros().min(bits);
    (lz + 1) as u8
}

/// Reduce a 64-bit hash to `[0, n)` without the modulo bias of `h % n` for
/// non-power-of-two `n` (Lemire's multiply-shift reduction).
#[inline]
pub fn reduce_range(h: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    (((h as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_of_basics() {
        // Top bit of the 32-bit lane set => one leading zero? No: rank is
        // 1 + leading zeros, so top-bit-set means zero leading zeros => rank 1.
        assert_eq!(rank_of(0x8000_0000, 32), 1);
        assert_eq!(rank_of(0x4000_0000, 32), 2);
        assert_eq!(rank_of(0x0000_0001, 32), 32);
        // All-zero value saturates at bits + 1.
        assert_eq!(rank_of(0, 32), 33);
        assert_eq!(rank_of(0, 64), 65);
        assert_eq!(rank_of(u64::MAX, 64), 1);
    }

    #[test]
    fn rank_ignores_high_bits_outside_lane() {
        // Bits above the 32-bit lane must not affect the rank.
        assert_eq!(rank_of(0xFFFF_FFFF_0000_0001, 32), 32);
        assert_eq!(rank_of(0xdead_beef_8000_0000, 32), 1);
    }

    #[test]
    fn reduce_range_bounds() {
        for n in [1usize, 2, 3, 7, 64, 1000, 1 << 20] {
            for h in [0u64, 1, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
                assert!(reduce_range(h, n) < n);
            }
        }
        assert_eq!(reduce_range(u64::MAX, 1), 0);
    }

    #[test]
    fn reduce_range_is_roughly_uniform() {
        let n = 10;
        let mut buckets = [0u32; 10];
        for i in 0..100_000u64 {
            buckets[reduce_range(mix64(i), n)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} out of range");
        }
    }

    #[test]
    fn hashkey_int_encoding_is_le() {
        0x0102_0304u32.with_bytes(|b| assert_eq!(b, &[4, 3, 2, 1]));
        "ab".with_bytes(|b| assert_eq!(b, b"ab"));
    }
}
