//! Families of independent hash functions.
//!
//! Every multi-hash sketch (Bloom filter, Count-Min, MinHash) needs `k`
//! functions that behave independently. We derive them from [`Bob32`] with
//! distinct seeds, matching the paper's use of differently-seeded BOBHash.

use crate::{Bob32, HashKey};

/// `k` independent seeded hash functions with range-reduction helpers.
#[derive(Debug, Clone)]
pub struct HashFamily {
    hashers: Vec<Bob32>,
}

impl HashFamily {
    /// Create a family of `k` hash functions derived from `seed`.
    ///
    /// Seeds are spread with a golden-ratio stride so families built from
    /// adjacent seeds do not share members.
    pub fn new(k: usize, seed: u32) -> Self {
        assert!(k > 0, "a hash family needs at least one function");
        let hashers = (0..k)
            .map(|i| {
                Bob32::new(seed.wrapping_add((i as u32).wrapping_mul(0x9E37_79B9)).wrapping_add(1))
            })
            .collect();
        Self { hashers }
    }

    /// Number of functions in the family.
    #[inline]
    pub fn k(&self) -> usize {
        self.hashers.len()
    }

    /// The `i`-th function applied to `key`, as a raw 32-bit value.
    #[inline]
    pub fn hash<K: HashKey + ?Sized>(&self, i: usize, key: &K) -> u32 {
        key.with_bytes(|b| self.hashers[i].hash(b))
    }

    /// The `i`-th function applied to `key`, as a raw 64-bit value.
    #[inline]
    pub fn hash64<K: HashKey + ?Sized>(&self, i: usize, key: &K) -> u64 {
        key.with_bytes(|b| self.hashers[i].hash64(b))
    }

    /// The `i`-th function reduced to an index in `[0, n)`.
    #[inline]
    pub fn index<K: HashKey + ?Sized>(&self, i: usize, key: &K, n: usize) -> usize {
        (self.hash(i, key) as usize) % n
    }

    /// All `k` indices for `key` in `[0, n)`, pushed into `out`.
    ///
    /// Reuses the caller's buffer so hot insertion paths do not allocate.
    #[inline]
    pub fn indices_into<K: HashKey + ?Sized>(&self, key: &K, n: usize, out: &mut Vec<usize>) {
        out.clear();
        key.with_bytes(|b| {
            for h in &self.hashers {
                out.push((h.hash(b) as usize) % n);
            }
        });
    }

    /// All `k` indices for `key` in `[0, n)` as a fresh vector.
    pub fn indices<K: HashKey + ?Sized>(&self, key: &K, n: usize) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.k());
        self.indices_into(key, n, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_members_are_distinct() {
        let f = HashFamily::new(8, 0);
        let vals: Vec<u32> = (0..8).map(|i| f.hash(i, &123u64)).collect();
        let uniq: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn families_from_adjacent_seeds_differ() {
        let a = HashFamily::new(4, 10);
        let b = HashFamily::new(4, 11);
        assert_ne!(
            (0..4).map(|i| a.hash(i, &7u32)).collect::<Vec<_>>(),
            (0..4).map(|i| b.hash(i, &7u32)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn indices_in_range_and_stable() {
        let f = HashFamily::new(6, 3);
        let idx = f.indices(&"flow-1", 97);
        assert_eq!(idx.len(), 6);
        assert!(idx.iter().all(|&i| i < 97));
        assert_eq!(idx, f.indices(&"flow-1", 97));
        let mut buf = Vec::new();
        f.indices_into(&"flow-1", 97, &mut buf);
        assert_eq!(buf, idx);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let _ = HashFamily::new(0, 0);
    }

    #[test]
    fn pairwise_collision_rate_is_sane() {
        // Two members of the family should rarely agree modulo a big range.
        let f = HashFamily::new(2, 5);
        let n = 1 << 16;
        let mut coll = 0;
        for key in 0..20_000u64 {
            if f.index(0, &key, n) == f.index(1, &key, n) {
                coll += 1;
            }
        }
        // Expected ~ 20000/65536 ≈ 0.3 collisions per 1000; allow slack.
        assert!(coll < 20, "too many cross-member collisions: {coll}");
    }
}
