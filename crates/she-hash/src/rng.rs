//! Deterministic pseudo-random number generation, in-tree so the
//! workspace builds with no external crates.
//!
//! Two generators:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer-based generator.
//!   One u64 of state, trivially seedable, and the standard way to expand
//!   a single seed into the larger state of another generator.
//! * [`Xoshiro256`] — Blackman/Vigna's xoshiro256\*\* ("star-star"), the
//!   general-purpose replacement for `rand::StdRng` in this workspace:
//!   256 bits of state, period 2^256 − 1, excellent equidistribution,
//!   ~1 ns per draw.
//!
//! Both implement [`RandomSource`], the minimal trait the workload
//! generators and seeded-loop tests are written against. Everything is
//! deterministic from the seed — the experiment harness and the
//! server-vs-direct equivalence tests rely on bit-exact replay.

/// A deterministic source of uniform `u64`s with derived conveniences.
pub trait RandomSource {
    /// The next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift reduction.
    #[inline]
    fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        crate::reduce_range(self.next_u64(), n)
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + crate::reduce_range(self.next_u64(), (hi - lo) as usize) as u64
    }

    /// Bernoulli draw: true with probability `p`.
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// SplitMix64: one u64 of state stepped by a Weyl sequence and finalized
/// by the splitmix mixer (the same mixer as [`crate::mix64`]).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator (any seed, including 0, is fine).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\*: the workspace's general-purpose generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the 256-bit state from one u64 through SplitMix64, as the
    /// xoshiro authors recommend (guarantees a non-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

impl RandomSource for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: RandomSource + ?Sized> RandomSource for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the public-domain
        // reference implementation.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256::new(42);
            (0..100).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256::new(42);
            (0..100).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Xoshiro256::new(43);
            (0..100).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = Xoshiro256::new(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn next_range_bounds() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = r.next_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn next_bool_tracks_probability() {
        let mut r = Xoshiro256::new(11);
        let hits = (0..100_000).filter(|_| r.next_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
