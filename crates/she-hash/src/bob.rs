//! Jenkins lookup3 (`hashlittle`), the "BOBHash" the SHE paper uses.
//!
//! Implemented from Bob Jenkins' public-domain description
//! (<http://burtleburtle.net/bob/hash/doobs.html>). The byte-at-a-time tail
//! handling below is equivalent to the original's aligned fast paths; we only
//! need the value, not the last nanosecond, and this form is endianness-safe.

/// Seedable lookup3 hasher producing 32-bit values.
///
/// Two `Bob32` instances with different seeds behave as independent hash
/// functions, which is how the multi-hash sketches derive their families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bob32 {
    seed: u32,
}

#[inline(always)]
fn rot(x: u32, k: u32) -> u32 {
    x.rotate_left(k)
}

#[inline(always)]
fn mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 4);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 6);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 8);
    *b = b.wrapping_add(*a);
    *a = a.wrapping_sub(*c);
    *a ^= rot(*c, 16);
    *c = c.wrapping_add(*b);
    *b = b.wrapping_sub(*a);
    *b ^= rot(*a, 19);
    *a = a.wrapping_add(*c);
    *c = c.wrapping_sub(*b);
    *c ^= rot(*b, 4);
    *b = b.wrapping_add(*a);
}

#[inline(always)]
fn final_mix(a: &mut u32, b: &mut u32, c: &mut u32) {
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 14));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 11));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 25));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 16));
    *a ^= *c;
    *a = a.wrapping_sub(rot(*c, 4));
    *b ^= *a;
    *b = b.wrapping_sub(rot(*a, 14));
    *c ^= *b;
    *c = c.wrapping_sub(rot(*b, 24));
}

#[inline(always)]
fn load_word(chunk: &[u8]) -> u32 {
    // Little-endian load with zero padding for short tails.
    let mut w = 0u32;
    for (i, &byte) in chunk.iter().enumerate().take(4) {
        w |= (byte as u32) << (8 * i);
    }
    w
}

impl Bob32 {
    /// Create a hasher with the given seed (the lookup3 `initval`).
    #[inline]
    pub const fn new(seed: u32) -> Self {
        Self { seed }
    }

    /// The seed this hasher was constructed with.
    #[inline]
    pub const fn seed(&self) -> u32 {
        self.seed
    }

    /// Hash a byte string to 32 bits (lookup3 `hashlittle`).
    pub fn hash(&self, key: &[u8]) -> u32 {
        let mut a = 0xdead_beef_u32.wrapping_add(key.len() as u32).wrapping_add(self.seed);
        let mut b = a;
        let mut c = a;

        let mut rest = key;
        while rest.len() > 12 {
            a = a.wrapping_add(load_word(&rest[0..4]));
            b = b.wrapping_add(load_word(&rest[4..8]));
            c = c.wrapping_add(load_word(&rest[8..12]));
            mix(&mut a, &mut b, &mut c);
            rest = &rest[12..];
        }

        if rest.is_empty() {
            // lookup3 returns c untouched for zero-length tails.
            return c;
        }
        a = a.wrapping_add(load_word(rest));
        if rest.len() > 4 {
            b = b.wrapping_add(load_word(&rest[4..]));
        }
        if rest.len() > 8 {
            c = c.wrapping_add(load_word(&rest[8..]));
        }
        final_mix(&mut a, &mut b, &mut c);
        c
    }

    /// Hash to 64 bits by running the 32-bit core with two related seeds.
    ///
    /// This mirrors lookup3's `hashlittle2`, which produces two 32-bit
    /// results; concatenating them yields a 64-bit value good enough for
    /// rank extraction and range reduction.
    pub fn hash64(&self, key: &[u8]) -> u64 {
        let lo = self.hash(key) as u64;
        let hi = Bob32::new(self.seed ^ 0x9E37_79B9).hash(key) as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = Bob32::new(7);
        assert_eq!(h.hash(b"hello world"), h.hash(b"hello world"));
        assert_eq!(h.hash64(b"hello world"), h.hash64(b"hello world"));
    }

    #[test]
    fn seed_changes_output() {
        let a = Bob32::new(1).hash(b"key");
        let b = Bob32::new(2).hash(b"key");
        assert_ne!(a, b);
    }

    #[test]
    fn key_changes_output() {
        let h = Bob32::new(42);
        assert_ne!(h.hash(b"key0"), h.hash(b"key1"));
        assert_ne!(h.hash(b""), h.hash(b"\0"));
    }

    #[test]
    fn all_tail_lengths_distinct() {
        // Exercise every tail length 0..=12 plus a multi-block key and make
        // sure prefixes don't collide (they shouldn't, for a decent hash).
        let h = Bob32::new(0);
        let key = b"abcdefghijklmnopqrstuvwxyz";
        let mut seen = std::collections::HashSet::new();
        for len in 0..=key.len() {
            assert!(seen.insert(h.hash(&key[..len])), "collision at len {len}");
        }
    }

    #[test]
    fn avalanche_is_reasonable() {
        // Flipping one input bit should flip roughly half the output bits.
        let h = Bob32::new(123);
        let base = h.hash(&0xdead_beef_u32.to_le_bytes());
        let mut total = 0u32;
        for bit in 0..32 {
            let flipped = 0xdead_beef_u32 ^ (1 << bit);
            total += (base ^ h.hash(&flipped.to_le_bytes())).count_ones();
        }
        let avg = total as f64 / 32.0;
        assert!((10.0..22.0).contains(&avg), "avalanche average {avg}");
    }

    #[test]
    fn distribution_over_small_range() {
        let h = Bob32::new(99);
        let mut buckets = [0u32; 16];
        for i in 0..50_000u32 {
            buckets[(h.hash(&i.to_le_bytes()) % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((2_500..3_800).contains(&b), "bucket {b}");
        }
    }
}
