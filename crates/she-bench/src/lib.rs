//! Shared plumbing for the figure/table regenerators.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). Absolute runtimes on a laptop force
//! a scale-down from the paper's 30 M-item traces; the scale is uniform and
//! printed in every header, and can be raised with the `SHE_SCALE`
//! environment variable (1 = CI-fast default, 4 ≈ a minute per figure,
//! 16 ≈ paper-sized windows).

use she_streams::{CaidaLike, KeyStream, RelevantPair};

pub mod harness;

/// Scale factor from the `SHE_SCALE` env var (default 1).
pub fn scale() -> usize {
    std::env::var("SHE_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1).max(1)
}

/// The default window for the scaled experiments: `4096 · scale` items
/// (the paper uses 2^16; `SHE_SCALE=16` reproduces that exactly).
pub fn window() -> u64 {
    (4096 * scale()) as u64
}

/// The HLL window (paper: 2^21, scaled down by the same ratio).
pub fn hll_window() -> u64 {
    (1 << 17) * scale() as u64
}

/// A CAIDA-like trace of `n` keys (universe scales with the window).
pub fn caida_trace(n: usize, seed: u64) -> Vec<u64> {
    CaidaLike::new((window() as usize * 4).max(10_000), 1.05, seed).take_vec(n)
}

/// An aligned pair trace for the similarity experiments.
pub fn relevant_trace(n: usize, overlap: f64, seed: u64) -> Vec<(u64, u64)> {
    let mut gen = RelevantPair::new((window() as usize).max(2_000), overlap, seed);
    (0..n).map(|_| gen.next_pair()).collect()
}

/// Print a figure/table header with the active scale.
pub fn header(tag: &str, title: &str) {
    println!("=== {tag}: {title} ===");
    println!(
        "(scale={} window={} items; set SHE_SCALE=16 for paper-sized windows)",
        scale(),
        window()
    );
}

/// Render one row of a result table.
pub fn row(label: &str, cells: &[(String, f64)]) {
    let cols: Vec<String> = cells.iter().map(|(k, v)| format!("{k}={v:.6}")).collect();
    println!("{label:16} {}", cols.join("  "));
}

/// Kilobyte label helper.
pub fn kb(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_one() {
        // (Assumes the test env does not set SHE_SCALE.)
        if std::env::var("SHE_SCALE").is_err() {
            assert_eq!(scale(), 1);
            assert_eq!(window(), 4096);
        }
    }

    #[test]
    fn traces_have_requested_length() {
        assert_eq!(caida_trace(1000, 1).len(), 1000);
        assert_eq!(relevant_trace(500, 0.5, 1).len(), 500);
    }

    #[test]
    fn kb_labels() {
        assert_eq!(kb(512), "512B");
        assert_eq!(kb(2048), "2KB");
        assert_eq!(kb(3 << 20), "3.0MB");
    }
}
