//! Minimal timing harness standing in for Criterion, so `cargo bench`
//! works fully offline with no external crates.
//!
//! Each bench target is a plain `main()` (`harness = false`) that builds
//! [`Group`]s and calls [`Group::bench`] with a closure per measured
//! operation. The harness self-calibrates the batch size, takes the median
//! of several timed passes, and prints ns/op plus Mops/s — the same
//! shape the figure binaries report, so numbers are directly comparable.
//!
//! Knobs (environment variables):
//! * `SHE_BENCH_MS` — target wall time per measured pass (default 60 ms);
//! * `SHE_BENCH_PASSES` — timed passes per benchmark (default 5).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named group of benchmarks (mirrors Criterion's `benchmark_group`).
#[derive(Debug)]
pub struct Group {
    measure: Duration,
    passes: usize,
}

impl Group {
    /// Start a group; prints the header immediately.
    pub fn new(name: &str) -> Self {
        let ms = std::env::var("SHE_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(60u64);
        let passes =
            std::env::var("SHE_BENCH_PASSES").ok().and_then(|s| s.parse().ok()).unwrap_or(5usize);
        println!("## {name}");
        Self { measure: Duration::from_millis(ms.max(1)), passes: passes.max(1) }
    }

    /// Measure `f` (one operation per call) and print one result line.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        // Calibrate: double the batch until one batch takes >= measure/4.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            if t.elapsed() >= self.measure / 4 || batch >= 1 << 30 {
                break;
            }
            batch *= 2;
        }
        // Timed passes; report the median ns/op.
        let mut per_op: Vec<f64> = (0..self.passes)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    f();
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        per_op.sort_by(|a, b| a.total_cmp(b));
        let ns = per_op[per_op.len() / 2];
        let mops = 1e3 / ns;
        println!("  {name:<28} {ns:>10.1} ns/op {mops:>9.2} Mops/s  (batch {batch})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("SHE_BENCH_MS", "2");
        std::env::set_var("SHE_BENCH_PASSES", "2");
        let mut g = Group::new("smoke");
        let mut acc = 0u64;
        g.bench("wrapping_add", || {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(acc > 0);
    }
}
