//! Fig. 11: insertion throughput of the five SHE algorithms versus their
//! fixed-window originals (the "Ideal" bars).
//!
//! Expected shape: the SHE bar within a small constant of the original for
//! every structure — the time-mark check adds one compare per hashed cell.

use she_bench::{header, window};
use she_core::{SheBitmap, SheBloomFilter, SheCountMin, SheHyperLogLog, SheMinHash};
use she_metrics::throughput_mips;
use she_sketch::{Bitmap, BloomFilter, CountMin, HyperLogLog, MinHash};
use she_streams::{CaidaLike, KeyStream};

fn main() {
    let w = window();
    let s = she_bench::scale();
    let n = 1_000_000 * s.min(4);
    let warmup = n / 4;
    let mem = (8 << 10) * s;
    let keys = CaidaLike::default_trace(100).take_vec(n);

    header("Fig 11", "Throughput (Mips): Ideal (fixed-window) vs SHE");

    let mut bm = Bitmap::with_memory(mem, 1);
    let t = throughput_mips(|k| bm.insert(&k), &keys, warmup);
    let mut sbm = SheBitmap::builder().window(w).memory_bytes(mem).build();
    let ts = throughput_mips(|k| sbm.insert(&k), &keys, warmup);
    println!("BM        Ideal={t:.1}  SHE={ts:.1}");

    let mut cm = CountMin::with_memory(mem * 8, 8, 2);
    let t = throughput_mips(|k| cm.insert(&k), &keys, warmup);
    let mut scm = SheCountMin::builder().window(w).memory_bytes(mem * 8).build();
    let ts = throughput_mips(|k| scm.insert(&k), &keys, warmup);
    println!("CM-sketch Ideal={t:.1}  SHE={ts:.1}");

    let mut bf = BloomFilter::with_memory(mem, 8, 3);
    let t = throughput_mips(|k| bf.insert(&k), &keys, warmup);
    let mut sbf = SheBloomFilter::builder().window(w).memory_bytes(mem).build();
    let ts = throughput_mips(|k| sbf.insert(&k), &keys, warmup);
    println!("BF        Ideal={t:.1}  SHE={ts:.1}");

    let mut hll = HyperLogLog::with_memory(mem, 4);
    let t = throughput_mips(|k| hll.insert(&k), &keys, warmup);
    let mut shll = SheHyperLogLog::builder().window(w).memory_bytes(mem).build();
    let ts = throughput_mips(|k| shll.insert(&k), &keys, warmup);
    println!("HLL       Ideal={t:.1}  SHE={ts:.1}");

    // MinHash updates every cell per insertion; keep signatures small so the
    // run finishes quickly, exactly like the paper's small MH memories.
    let mh_keys = &keys[..n / 8];
    let mut mh = MinHash::new(128, 5);
    let t = throughput_mips(|k| mh.insert(&k), mh_keys, warmup / 8);
    let mut smh = SheMinHash::builder().window(w).num_hashes(128).build();
    let ts = throughput_mips(|k| smh.insert(&k), mh_keys, warmup / 8);
    println!("MH        Ideal={t:.1}  SHE={ts:.1}");
}
