//! Table 3: clock frequency / throughput of the FPGA implementation.
//!
//! The simulator verifies the pipeline sustains one item per cycle (zero
//! stalls, zero constraint violations); throughput then follows from the
//! clock model calibrated to the paper's synthesis results (544.07 MHz base,
//! fan-out derate fitted so 8 lanes land on 468.82 MHz).

use she_hwsim::{clock_frequency_mhz, throughput_mips, ShePipeline, SheVariant};

fn main() {
    println!("=== Table 3: clock frequency (modeled) ===");
    for (variant, paper_mhz) in [(SheVariant::Bitmap, 544.07), (SheVariant::Bloom { k: 8 }, 468.82)]
    {
        let mut p = ShePipeline::paper_config(variant);
        let stats = p.run((0..500_000u64).map(she_hash::mix64));
        let ipc = stats.items as f64 / stats.cycles as f64;
        let mhz = clock_frequency_mhz(variant.lanes());
        println!(
            "{:?}: paper={paper_mhz} MHz | model={mhz:.2} MHz | items/cycle={ipc:.4} | violations={} | throughput={:.1} Mips",
            variant,
            stats.violations,
            throughput_mips(variant.lanes()) * ipc
        );
    }
    println!();
    println!("Both exceed the typical 200 MHz FPGA clock the paper cites;");
    println!("the headline 544 Mips follows from 1 item/cycle at 544.07 MHz.");
}
