//! Table 2: resource utilization of the FPGA implementation.
//!
//! LUT counts require logic synthesis; the honest software substitute is
//! the per-component state-bit inventory plus a mechanical audit that the
//! three §2.3 hardware constraints hold on the paper's exact configuration
//! (1024-bit array, 64-bit groups, 32-bit item counter; 8 lanes for
//! SHE-BF). Paper numbers are printed alongside for reference.

use she_hwsim::{ResourceReport, ShePipeline, SheVariant};

fn report(variant: SheVariant, paper_lut: &str, paper_reg: &str) {
    let mut p = ShePipeline::paper_config(variant);
    let stats = p.run((0..200_000u64).map(she_hash::mix64));
    let r = ResourceReport::for_pipeline(&p);
    println!("--- {:?} ---", variant);
    println!("  paper: LUT={paper_lut}  Register={paper_reg}  BlockMemory=0");
    println!(
        "  simulated state bits: cells={} marks={} counter={} total={}  block_ram={}",
        r.cell_bits,
        r.mark_bits,
        r.counter_bits,
        r.total_bits(),
        r.block_ram_bits
    );
    println!(
        "  constraint audit over {} items: {} violations ({} memory accesses)",
        stats.items, stats.violations, stats.memory_accesses
    );
    for v in p.memory().violations() {
        println!("    VIOLATION: {v}");
    }
}

fn main() {
    println!("=== Table 2: resource utilization (simulated substitute) ===");
    report(SheVariant::Bitmap, "1653 (0.38%)", "1509 (0.17%)");
    report(SheVariant::Bloom { k: 8 }, "12875 (2.97%)", "11790 (1.36%)");
    println!();
    println!("Shape check vs the paper: SHE-BF uses ~8x the SHE-BM resources");
    println!("(8 identical lanes), and neither uses block memory.");
    println!();
    println!("--- extension: the other SHE structures on the same pipeline ---");
    println!("(the paper: \"the insertion process of SHE-BF and other SHE");
    println!(" algorithms is barely the same as SHE-BM\")");
    report(SheVariant::CountMin { k: 8, counter_bits: 16 }, "n/a", "n/a");
    report(SheVariant::HyperLogLog { reg_bits: 5 }, "n/a", "n/a");
}
