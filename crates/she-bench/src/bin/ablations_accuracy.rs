//! Accuracy ablations for the design choices DESIGN.md §7 calls out.
//!
//! * group size `w` — SHE-BF FPR vs `w` (on-demand cleaning failures grow
//!   with the group count per Eq. 1; huge groups coarsen ages);
//! * β sweep — the legal-age band of the two-sided estimators;
//! * on-demand (hardware) vs continuous (software) cleaning on the same
//!   configuration;
//! * SHE-CM vs SHE-CS — the paper's frequency adapter against the extra
//!   count-sketch instance.

use she_bench::{caida_trace, header, window};
use she_core::{SheBitmap, SheBloomFilter, SoftClock};
use she_metrics::*;
use she_streams::{DistinctStream, KeyStream};

struct Bf(SheBloomFilter);
impl MemberSketch for Bf {
    fn name(&self) -> &'static str {
        "SHE-BF"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn query(&mut self, key: u64) -> bool {
        self.0.contains(&key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// Software-version SHE-BF under the membership harness.
struct SoftBf(SoftClock<she_sketch::BloomSpec>);
impl MemberSketch for SoftBf {
    fn name(&self) -> &'static str {
        "SHE-BF-soft"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn query(&mut self, key: u64) -> bool {
        self.0.contains_bf(&key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

fn main() {
    let w = window();
    let s = she_bench::scale();
    let n = w as usize * 8;
    let bytes = (8 << 10) * s;
    let distinct = DistinctStream::new(30).take_vec(n);
    let guard = w as usize * 6;

    header("Ablation A", "SHE-BF FPR vs group size w");
    for group_w in [1usize, 8, 64, 256, 1024] {
        let mut bf = Bf(SheBloomFilter::builder()
            .window(w)
            .memory_bytes(bytes)
            .alpha(3.0)
            .group_cells(group_w)
            .seed(1)
            .build());
        let r = membership_fpr(&mut bf, &distinct, guard, 3, 4_000);
        println!("w={group_w:<5} fpr={:.6}", r.value);
    }

    header("Ablation B", "SHE-BM RE vs beta (legal-age band)");
    let keys = caida_trace(n, 31);
    for beta in [0.25, 0.5, 0.75, 0.9, 1.0] {
        let mut bm = SheBmAdapter(
            SheBitmap::builder().window(w).memory_bytes(512 * s).beta(beta).seed(2).build(),
        );
        let r = cardinality_re(&mut bm, &keys, w as usize, 4);
        println!("beta={beta:<5} re={:.5}", r.value);
    }

    header("Ablation C", "on-demand (hw) vs continuous (soft) cleaning, SHE-BF");
    {
        let cfg = she_core::SheConfig::builder().window(w).alpha(3.0).group_cells(64).build();
        let mut hw = Bf(SheBloomFilter::builder()
            .window(w)
            .memory_bytes(bytes)
            .alpha(3.0)
            .group_cells(64)
            .seed(3)
            .build());
        let r_hw = membership_fpr(&mut hw, &distinct, guard, 3, 4_000);
        let mut soft = SoftBf(SoftClock::new(she_sketch::BloomSpec::new(bytes * 8, 8, 3), cfg));
        let r_soft = membership_fpr(&mut soft, &distinct, guard, 3, 4_000);
        println!("hardware marks: fpr={:.6}", r_hw.value);
        println!("software sweep: fpr={:.6}", r_soft.value);
    }

    header("Ablation D", "frequency: SHE-CM vs SHE-CS at equal memory");
    for mem in [(32 << 10) * s, (128 << 10) * s] {
        let mut cm = SheCmAdapter::sized(w, mem, 4);
        let r_cm = frequency_are(&mut cm, &keys, w as usize, 3, 400);
        let mut cs = SheCsAdapter::sized(w, mem, 4);
        let r_cs = frequency_are(&mut cs, &keys, w as usize, 3, 400);
        println!("mem={mem:>8}B  SHE-CM={:.4}  SHE-CS={:.4}", r_cm.value, r_cs.value);
    }
}
