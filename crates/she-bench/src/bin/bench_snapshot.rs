//! Versioned performance snapshot + regression ratchet.
//!
//! ```text
//! bench_snapshot [--out BENCH_YYYY-MM-DD.json] [--check bench-ratchet.toml]
//!                [--items N] [--seed N]
//! ```
//!
//! Three measurements, the serving two through a *real* in-process
//! she-server (epoll reactor, shard workers, op log, read path):
//!
//! 1. **ingest** — raw single-thread insert throughput (Mops/s) of each
//!    SHE sketch adapter on the CAIDA-like trace;
//! 2. **serve** — insert-batch and `QUERY_FAST` latency (p50/p99) under
//!    the canonical 95/5 zipfian read-heavy loadgen profile;
//! 3. **readpath** — the mark cache's server-side hit rate over that run.
//!
//! `--out` writes the snapshot as hand-rolled JSON (no dependencies);
//! `--check` gates the same fresh measurements against the floors in
//! `bench-ratchet.toml` and exits 1 on a breach. The floors are
//! deliberately loose (roughly an order of magnitude below typical
//! numbers) so the gate catches structural regressions — an accidental
//! O(n) in the hot loop, a read path that stopped caching — rather than
//! machine-to-machine noise.

use she_metrics::{
    FrequencySketch, MemberSketch, SheBfAdapter, SheBmAdapter, SheCmAdapter, SheHllAdapter,
};
use she_server::{loadgen, LoadgenConfig, Mode, ReadPathConfig, Server, ServerConfig};
use she_streams::{CaidaLike, KeyStream};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: bench_snapshot [--out PATH.json] [--check bench-ratchet.toml]\n\
         \x20                     [--items N] [--seed N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(v: Option<String>, flag: &str) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("bench_snapshot: bad or missing value for {flag}");
        usage()
    })
}

/// Today's UTC date as `YYYY-MM-DD`, via the civil-from-days algorithm
/// (no time-zone database, no dependencies).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days, adjusted to the 0000-03-01 epoch.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Measure one adapter's insert throughput in Mops/s.
fn ingest_mops(label: &str, trace: &[u64], mut insert: impl FnMut(u64)) -> (String, f64) {
    let t = Instant::now();
    for &k in trace {
        insert(k);
    }
    let mops = trace.len() as f64 / t.elapsed().as_secs_f64() / 1e6;
    (label.to_string(), mops)
}

struct Snapshot {
    date: String,
    ingest: Vec<(String, f64)>,
    serve_insert_p50_us: f64,
    serve_insert_p99_us: f64,
    fast_p50_us: f64,
    fast_p99_us: f64,
    serve_insert_kitems_per_s: f64,
    fast_reads: u64,
    hit_rate: Option<f64>,
}

impl Snapshot {
    fn to_json(&self) -> String {
        let ingest: Vec<String> =
            self.ingest.iter().map(|(k, v)| format!("    \"{k}\": {v:.3}")).collect();
        let hit = match self.hit_rate {
            Some(r) => format!("{r:.4}"),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"schema\": 1,\n  \"date\": \"{}\",\n  \"ingest_mops\": {{\n{}\n  }},\n  \
             \"serve\": {{\n    \"insert_p50_us\": {:.1},\n    \"insert_p99_us\": {:.1},\n    \
             \"fast_p50_us\": {:.1},\n    \"fast_p99_us\": {:.1},\n    \
             \"insert_kitems_per_s\": {:.1}\n  }},\n  \"readpath\": {{\n    \
             \"fast_reads\": {},\n    \"hit_rate\": {}\n  }}\n}}\n",
            self.date,
            ingest.join(",\n"),
            self.serve_insert_p50_us,
            self.serve_insert_p99_us,
            self.fast_p50_us,
            self.fast_p99_us,
            self.serve_insert_kitems_per_s,
            self.fast_reads,
            hit
        )
    }
}

/// Parse `key = value` floats out of a flat ratchet file, ignoring
/// comments and section headers.
fn parse_ratchet(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('['))
        .filter_map(|l| {
            let (k, v) = l.split_once('=')?;
            Some((k.trim().to_string(), v.trim().parse().ok()?))
        })
        .collect()
}

fn check(snap: &Snapshot, path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read ratchet {path}: {e}"))?;
    let floors = parse_ratchet(&text);
    if floors.is_empty() {
        return Err(format!("ratchet {path} holds no `key = value` entries"));
    }
    let worst_ingest = self::min_f64(snap.ingest.iter().map(|(_, v)| *v)).unwrap_or(f64::INFINITY);
    let mut failures = Vec::new();
    for (key, bound) in &floors {
        let breach = match key.as_str() {
            "ingest_mops_min" => (worst_ingest < *bound)
                .then(|| format!("slowest ingest adapter {worst_ingest:.3} Mops/s < {bound}")),
            "serve_insert_p99_us_max" => (snap.serve_insert_p99_us > *bound)
                .then(|| format!("insert p99 {:.1} us > {bound}", snap.serve_insert_p99_us)),
            "fast_p99_us_max" => (snap.fast_p99_us > *bound)
                .then(|| format!("QUERY_FAST p99 {:.1} us > {bound}", snap.fast_p99_us)),
            "readpath_hit_rate_min" => match snap.hit_rate {
                Some(r) if r >= *bound => None,
                Some(r) => Some(format!("read-path hit rate {r:.4} < {bound}")),
                None => Some("read path reported no hit rate".to_string()),
            },
            other => Some(format!("unknown ratchet key '{other}'")),
        };
        if let Some(msg) = breach {
            failures.push(msg);
        }
    }
    if failures.is_empty() {
        println!("bench ratchet OK: {} floor(s) held", floors.len());
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

fn min_f64(it: impl Iterator<Item = f64>) -> Option<f64> {
    it.fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
}

fn measure(items: u64, seed: u64) -> Result<Snapshot, String> {
    // --- ingest: raw adapter insert rates on the paper's trace shape.
    let (window, memory) = (1u64 << 14, 64usize << 10);
    let trace = CaidaLike::new(100_000, 1.05, seed).take_vec(400_000);
    let mut bf = SheBfAdapter::sized(window, memory, seed as u32);
    let mut bm = SheBmAdapter::sized(window, memory, seed as u32);
    let mut cm = SheCmAdapter::sized(window, memory, seed as u32);
    let mut hll = SheHllAdapter::sized(window, memory, seed as u32);
    let ingest = vec![
        ingest_mops("she_bf", &trace, |k| MemberSketch::insert(&mut bf, k)),
        ingest_mops("she_bm", &trace, |k| bm.0.insert(&k)),
        ingest_mops("she_cm", &trace, |k| FrequencySketch::insert(&mut cm, k)),
        ingest_mops("she_hll", &trace, |k| hll.0.insert(&k)),
    ];

    // --- serve: a real server with the read path on, driven by the
    // canonical 95/5 zipfian profile.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        repl_log: 8_192,
        readpath: Some(ReadPathConfig::default()),
        ..Default::default()
    })
    .map_err(|e| format!("server start: {e}"))?;
    let addr = server.local_addr().to_string();
    let cfg = LoadgenConfig {
        addr: addr.clone(),
        items,
        batch: 256,
        queries: 0,
        mode: Mode::Closed,
        universe: 20_000,
        skew: 1.05,
        seed,
        read_ratio: 0.95,
        read_skew: 1.1,
        ..Default::default()
    };
    let summary = loadgen::run(&cfg).map_err(|e| format!("loadgen: {e}"))?;
    let mut c = she_server::Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    server.wait();

    let us = |ns: u64| ns as f64 / 1e3;
    Ok(Snapshot {
        date: today_utc(),
        ingest,
        serve_insert_p50_us: us(summary.insert.latency.quantile_ns(0.5)),
        serve_insert_p99_us: us(summary.insert.latency.quantile_ns(0.99)),
        fast_p50_us: us(summary.fast.latency.quantile_ns(0.5)),
        fast_p99_us: us(summary.fast.latency.quantile_ns(0.99)),
        serve_insert_kitems_per_s: summary.insert.items_per_sec() / 1e3,
        fast_reads: summary.fast.ops,
        hit_rate: summary.fast_hit_rate,
    })
}

fn main() {
    let mut out: Option<String> = None;
    let mut ratchet: Option<String> = None;
    let mut items = 10_000u64;
    let mut seed = 1u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = Some(parse(args.next(), "--out")),
            "--check" => ratchet = Some(parse(args.next(), "--check")),
            "--items" => items = parse(args.next(), "--items"),
            "--seed" => seed = parse(args.next(), "--seed"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("bench_snapshot: unknown flag {other}");
                usage();
            }
        }
    }

    let snap = match measure(items, seed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_snapshot: {e}");
            std::process::exit(1);
        }
    };
    for (k, v) in &snap.ingest {
        println!("ingest {k:<8} {v:>8.2} Mops/s");
    }
    println!(
        "serve  insert p50={:.1}us p99={:.1}us ({:.1} kitems/s)  fast p50={:.1}us p99={:.1}us",
        snap.serve_insert_p50_us,
        snap.serve_insert_p99_us,
        snap.serve_insert_kitems_per_s,
        snap.fast_p50_us,
        snap.fast_p99_us
    );
    match snap.hit_rate {
        Some(r) => println!("readpath {} fast reads, hit rate {r:.4}", snap.fast_reads),
        None => println!("readpath {} fast reads, no hit rate reported", snap.fast_reads),
    }

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, snap.to_json()) {
            eprintln!("bench_snapshot: write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if let Some(path) = &ratchet {
        if let Err(e) = check(&snap, path) {
            eprintln!("bench_snapshot: RATCHET BREACH: {e}");
            std::process::exit(1);
        }
    }
}
