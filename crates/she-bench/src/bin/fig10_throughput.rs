//! Fig. 10: insertion throughput on three datasets.
//!
//! (a) SHE-HLL vs SHLL vs the fixed-window HLL ("Ideal");
//! (b) SHE-BM vs CVS vs the fixed-window Bitmap ("Ideal").
//!
//! Expected shape: SHE within a small constant of the original algorithm
//! and clearly above the queue/decay baselines, on every dataset.

use she_baselines::{CounterVectorSketch, SlidingHyperLogLog};
use she_bench::{header, window};
use she_core::{SheBitmap, SheHyperLogLog};
use she_metrics::throughput_mips;
use she_sketch::{Bitmap, HyperLogLog};
use she_streams::{CaidaLike, CampusLike, KeyStream, WebpageLike};

fn datasets(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("CAIDA", CaidaLike::default_trace(90).take_vec(n)),
        ("Campus", CampusLike::default_trace(91).take_vec(n)),
        ("Webpage", WebpageLike::default_trace(92).take_vec(n)),
    ]
}

fn main() {
    let w = window();
    let s = she_bench::scale();
    let n = 2_000_000 * s.min(4);
    let warmup = n / 4;
    let mem = (8 << 10) * s;

    header("Fig 10a", "Throughput (Mips): Ideal HLL vs SHE-HLL vs SHLL");
    for (name, keys) in datasets(n) {
        let mut ideal = HyperLogLog::with_memory(mem, 1);
        let t_ideal = throughput_mips(|k| ideal.insert(&k), &keys, warmup);
        let mut she = SheHyperLogLog::builder().window(w).memory_bytes(mem).build();
        let t_she = throughput_mips(|k| she.insert(&k), &keys, warmup);
        let mut shll = SlidingHyperLogLog::new(mem * 8 / (3 * 69), w, 1);
        let t_shll = throughput_mips(|k| shll.insert(k), &keys, warmup);
        println!("{name:8} Ideal={t_ideal:.1}  SHE-HLL={t_she:.1}  SHLL={t_shll:.1}");
    }

    header("Fig 10b", "Throughput (Mips): Ideal Bitmap vs SHE-BM vs CVS");
    for (name, keys) in datasets(n) {
        let mut ideal = Bitmap::with_memory(mem, 2);
        let t_ideal = throughput_mips(|k| ideal.insert(&k), &keys, warmup);
        let mut she = SheBitmap::builder().window(w).memory_bytes(mem).build();
        let t_she = throughput_mips(|k| she.insert(&k), &keys, warmup);
        let mut cvs = CounterVectorSketch::with_memory(mem, 10, w, 2);
        let t_cvs = throughput_mips(|k| cvs.insert(k), &keys, warmup);
        println!("{name:8} Ideal={t_ideal:.1}  SHE-BM={t_she:.1}  CVS={t_cvs:.1}");
    }
}
