//! Fig. 6 (a–e): adaptation to different window sizes.
//!
//! For each task, three memory budgets, window sweep ×1 / ×4 / ×16 / ×64 of
//! the base window. Expected shape: the SHE error stays flat (SHE-HLL /
//! SHE-MH) or tracks the load factor exactly as the fixed-window original
//! would — no degradation specific to sliding.

use she_bench::{header, kb, row};
use she_metrics::*;
use she_streams::{CaidaLike, DistinctStream, KeyStream, RelevantPair};

fn main() {
    let s = she_bench::scale();
    let base = 1024 * s as u64;
    let windows: Vec<u64> = [1u64, 4, 16, 64].iter().map(|m| base * m).collect();
    let checkpoints = 3;

    header("Fig 6a", "SHE-BM: RE vs window size");
    for &bytes in &[64 * s, 128 * s, 256 * s] {
        let cells: Vec<(String, f64)> = windows
            .iter()
            .map(|&w| {
                let keys = CaidaLike::new(w as usize * 4, 1.05, 60).take_vec(w as usize * 6);
                let mut a = SheBmAdapter::sized(w, bytes, 1);
                let r = cardinality_re(&mut a, &keys, w as usize, checkpoints);
                (format!("W={w}"), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 6b", "SHE-HLL: RE vs window size");
    for &bytes in &[32 * s, 128 * s, 512 * s] {
        let cells: Vec<(String, f64)> = windows
            .iter()
            .map(|&w| {
                let keys = CaidaLike::new(w as usize * 4, 1.05, 61).take_vec(w as usize * 6);
                let mut a = SheHllAdapter::sized(w, bytes, 2);
                let r = cardinality_re(&mut a, &keys, w as usize, checkpoints);
                (format!("W={w}"), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 6c", "SHE-CM: ARE vs window size");
    for &bytes in &[(32 << 10) * s, (64 << 10) * s, (128 << 10) * s] {
        let cells: Vec<(String, f64)> = windows
            .iter()
            .map(|&w| {
                let keys = CaidaLike::new(w as usize * 4, 1.05, 62).take_vec(w as usize * 6);
                let mut a = SheCmAdapter::sized(w, bytes, 3);
                let r = frequency_are(&mut a, &keys, w as usize, checkpoints, 300);
                (format!("W={w}"), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 6d", "SHE-BF: FPR vs window size");
    for &bytes in &[(2 << 10) * s, (8 << 10) * s, (32 << 10) * s] {
        let cells: Vec<(String, f64)> = windows
            .iter()
            .map(|&w| {
                let keys = DistinctStream::new(63).take_vec(w as usize * 8);
                let mut a = SheBfAdapter::sized(w, bytes, 4);
                let r = membership_fpr(&mut a, &keys, w as usize * 5, checkpoints, 3_000);
                (format!("W={w}"), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 6e", "SHE-MH: RE vs window size");
    for &bytes in &[512 * s, 1024 * s, 2048 * s] {
        let cells: Vec<(String, f64)> = windows
            .iter()
            .map(|&w| {
                let mut gen = RelevantPair::new((w as usize).max(2_000), 0.6, 64);
                let pairs: Vec<(u64, u64)> = (0..w as usize * 6).map(|_| gen.next_pair()).collect();
                let mut a = SheMhAdapter::sized(w, bytes, 5);
                let r = similarity_re(&mut a, &pairs, w as usize, checkpoints);
                (format!("W={w}"), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }
}
