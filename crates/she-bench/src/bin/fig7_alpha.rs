//! Fig. 7: performance vs α.
//!
//! (a) SHE-BF FPR vs memory for α ∈ {1, 2, Eq.2-optimal, 4} — the optimal α
//!     should trace the lower envelope;
//! (b) SHE-BM RE vs memory for α ∈ {0.1, 0.2, 0.4} — 0.2–0.4 is the stable
//!     empirical band (§7.2).

use she_bench::{header, kb, row, window};
use she_core::{analysis, SheBloomFilter};
use she_metrics::*;
use she_streams::{DistinctStream, KeyStream};

struct BfWithAlpha(SheBloomFilter);

impl MemberSketch for BfWithAlpha {
    fn name(&self) -> &'static str {
        "SHE-BF"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn query(&mut self, key: u64) -> bool {
        self.0.contains(&key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

fn main() {
    let w = window();
    let s = she_bench::scale();
    let n = w as usize * 8;
    let checkpoints = 3;

    header("Fig 7a", "SHE-BF: FPR vs memory, per α");
    let keys = DistinctStream::new(70).take_vec(n);
    let guard = w as usize * 6;
    for bytes in [2 << 10, 4 << 10, 8 << 10, 16 << 10].map(|b| b * s) {
        let opt = analysis::optimal_alpha_bf(bytes * 8, 8, w as usize);
        let mut cells = Vec::new();
        for (label, alpha) in [
            ("a=1".to_string(), 1.0),
            ("a=2".to_string(), 2.0),
            (format!("a*={opt:.2}"), opt),
            ("a=4".to_string(), 4.0),
        ] {
            let mut bf = BfWithAlpha(
                SheBloomFilter::builder()
                    .window(w)
                    .memory_bytes(bytes)
                    .hash_functions(8)
                    .alpha(alpha)
                    .seed(1)
                    .build(),
            );
            let r = membership_fpr(&mut bf, &keys, guard, checkpoints, 5_000);
            cells.push((label, r.value));
        }
        row(&kb(bytes), &cells);
    }

    header("Fig 7b", "SHE-BM: RE vs memory, per α");
    let keys = she_bench::caida_trace(n, 71);
    for bytes in [64, 128, 256, 512].map(|b| b * s) {
        let mut cells = Vec::new();
        for alpha in [0.1, 0.2, 0.4] {
            let mut bm = SheBmAdapter(
                she_core::SheBitmap::builder()
                    .window(w)
                    .memory_bytes(bytes)
                    .alpha(alpha)
                    .seed(2)
                    .build(),
            );
            let r = cardinality_re(&mut bm, &keys, w as usize, checkpoints);
            cells.push((format!("a={alpha}"), r.value));
        }
        row(&kb(bytes), &cells);
    }
}
