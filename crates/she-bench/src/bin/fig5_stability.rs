//! Fig. 5 (a–e): stability of SHE as the window slides with time.
//!
//! For each task, three memory budgets; each row prints the metric measured
//! every half window over several windows (the paper's x-axis "Time
//! (Window)"). Expected shape: flat series — SHE's error does not drift as
//! the window slides.

use she_bench::{caida_trace, header, kb, relevant_trace, window};
use she_metrics::*;

fn print_series(label: &str, r: &AccuracyResult) {
    let pts: Vec<String> = r.series.iter().map(|v| format!("{v:.5}")).collect();
    println!("{label:20} [{}]", pts.join(", "));
}

fn main() {
    let w = window();
    let n = w as usize * 10; // ~8 windows after warm-up, sampled half-windowly
    let checkpoints = 10;
    let s = she_bench::scale();
    let keys = caida_trace(n, 50);

    header("Fig 5a", "SHE-BM relative error over time");
    for bytes in [128 * s, 256 * s, 512 * s] {
        let mut a = SheBmAdapter::sized(w, bytes, 1);
        print_series(&kb(bytes), &cardinality_re(&mut a, &keys, w as usize, checkpoints));
    }

    header("Fig 5b", "SHE-HLL relative error over time");
    for bytes in [64 * s, 256 * s, 2048 * s] {
        let mut a = SheHllAdapter::sized(w, bytes, 2);
        print_series(&kb(bytes), &cardinality_re(&mut a, &keys, w as usize, checkpoints));
    }

    header("Fig 5c", "SHE-CM average relative error over time");
    for bytes in [64 << 10, 128 << 10, 256 << 10].map(|b| b * s) {
        let mut a = SheCmAdapter::sized(w, bytes, 3);
        print_series(&kb(bytes), &frequency_are(&mut a, &keys, w as usize, checkpoints, 400));
    }

    header("Fig 5d", "SHE-BF false positive rate over time");
    let distinct: Vec<u64> =
        she_streams::KeyStream::take_vec(&mut she_streams::DistinctStream::new(51), n);
    let guard = w as usize * 5;
    for bytes in [2 << 10, 8 << 10, 32 << 10].map(|b| b * s) {
        let mut a = SheBfAdapter::sized(w, bytes, 4);
        print_series(&kb(bytes), &membership_fpr(&mut a, &distinct, guard, checkpoints, 4_000));
    }

    header("Fig 5e", "SHE-MH relative error over time");
    let pairs = relevant_trace(n, 0.6, 52);
    for bytes in [512 * s, 1024 * s, 2048 * s] {
        let mut a = SheMhAdapter::sized(w, bytes, 5);
        print_series(&kb(bytes), &similarity_re(&mut a, &pairs, w as usize, checkpoints));
    }
}
