//! Fig. 9 (a–e): accuracy vs memory for all five tasks, every competitor.
//!
//! Prints one block per sub-figure; each row is one algorithm, each column
//! one memory budget. Shapes to check against the paper: SHE-BF ~100× below
//! the timestamp filters at small memory (9d); SHE-BM good from ~1 KB while
//! SWAMP needs two orders of magnitude more (9a); SHE-CM ~10× below
//! ECM/SWAMP when memory is scarce (9c); SHE-MH ~10× below the straw-man
//! (9e).

use she_bench::{caida_trace, header, kb, relevant_trace, row, window};
use she_metrics::*;

fn main() {
    let n = window() as usize * 8;
    let w = window();
    let checkpoints = 4;
    // Memory axes: the paper's figures scaled by window ratio (×16 at
    // SHE_SCALE=16 restores the paper's byte counts).
    let s = she_bench::scale();

    header("Fig 9a", "Cardinality (Bitmap family): RE vs memory");
    let keys = caida_trace(n, 42);
    for bytes in [64 * s, 128 * s, 256 * s, 512 * s, 1024 * s, 6400 * s] {
        let mut algos: Vec<Box<dyn CardinalitySketch>> = vec![
            Box::new(SheBmAdapter::sized(w, bytes, 1)),
            Box::new(SwampCard::sized(w, bytes, 1)),
            Box::new(TsvAdapter::sized(w, bytes, 1)),
            Box::new(CvsAdapter::sized(w, bytes, 1)),
            Box::new(IdealBitmap::sized(w, bytes, 1)),
        ];
        let cells: Vec<(String, f64)> = algos
            .iter_mut()
            .map(|a| {
                let r = cardinality_re(a.as_mut(), &keys, w as usize, checkpoints);
                (r.name.to_string(), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 9b", "Cardinality (HLL family): RE vs memory");
    let hw = she_bench::hll_window();
    let keys_hll = caida_trace((hw as usize * 4).min(4_000_000), 43);
    for bytes in [64 * s, 256 * s, 512 * s, 1024 * s, 2048 * s] {
        let mut algos: Vec<Box<dyn CardinalitySketch>> = vec![
            Box::new(SheHllAdapter::sized(hw, bytes, 2)),
            Box::new(ShllAdapter::sized(hw, bytes, 2)),
            Box::new(IdealHll::sized(hw, bytes, 2)),
        ];
        let cells: Vec<(String, f64)> = algos
            .iter_mut()
            .map(|a| {
                let r = cardinality_re(a.as_mut(), &keys_hll, hw as usize, 2);
                (r.name.to_string(), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 9c", "Frequency: ARE vs memory");
    for bytes in [8 << 10, 32 << 10, 64 << 10, 128 << 10].map(|b| b * s) {
        let mut algos: Vec<Box<dyn FrequencySketch>> = vec![
            Box::new(SheCmAdapter::sized(w, bytes, 3)),
            Box::new(SwampFreq::sized(w, bytes, 3)),
            Box::new(EcmAdapter::sized(w, bytes, 3)),
            Box::new(IdealCm::sized(w, bytes, 3)),
        ];
        let cells: Vec<(String, f64)> = algos
            .iter_mut()
            .map(|a| {
                let r = frequency_are(a.as_mut(), &keys, w as usize, checkpoints, 500);
                (r.name.to_string(), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 9d", "Membership: FPR vs memory");
    // The worst case for SHE-BF per §7.1: the Distinct Stream.
    let distinct: Vec<u64> =
        she_streams::KeyStream::take_vec(&mut she_streams::DistinctStream::new(44), n);
    let guard = (w as usize) * 5;
    for bytes in [2 << 10, 8 << 10, 16 << 10, 32 << 10].map(|b| b * s) {
        let mut algos: Vec<Box<dyn MemberSketch>> = vec![
            Box::new(SheBfAdapter::sized(w, bytes, 4)),
            Box::new(SwampMember::sized(w, bytes, 4)),
            Box::new(TobfAdapter::sized(w, bytes, 4)),
            Box::new(TbfAdapter::sized(w, bytes, 4)),
            Box::new(IdealBloom::sized(w, bytes, 4)),
        ];
        let cells: Vec<(String, f64)> = algos
            .iter_mut()
            .map(|a| {
                let r = membership_fpr(a.as_mut(), &distinct, guard, checkpoints, 5_000);
                (r.name.to_string(), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }

    header("Fig 9e", "Similarity: RE vs memory");
    let pairs = relevant_trace(n, 0.5, 45);
    for bytes in [512, 1024, 2048, 4096].map(|b| b * s) {
        let mut algos: Vec<Box<dyn SimilaritySketch>> = vec![
            Box::new(SheMhAdapter::sized(w, bytes, 5)),
            Box::new(StrawmanMhAdapter::sized(w, bytes, 5)),
            Box::new(IdealMh::sized(w, bytes, 5)),
        ];
        let cells: Vec<(String, f64)> = algos
            .iter_mut()
            .map(|a| {
                let r = similarity_re(a.as_mut(), &pairs, w as usize, checkpoints);
                (r.name.to_string(), r.value)
            })
            .collect();
        row(&kb(bytes), &cells);
    }
}
