//! Fig. 8: SHE-BF parameter studies on the Distinct Stream.
//!
//! (a) FPR vs item age: the probability that an item whose last appearance
//!     is `a` windows old is still (falsely) reported present. Expected
//!     shape: near-exponential decay until the age exceeds the relaxed
//!     window `(1+α)·N`, then flat at the hash-collision floor.
//! (b) FPR vs number of hash functions, Eq.2-optimal α versus a fixed α —
//!     the optimum from Equation 2 should dominate across the sweep.

use she_bench::{header, window};
use she_core::{analysis, SheBloomFilter};
use she_streams::{DistinctStream, KeyStream};

/// Measure P(report present) for probes whose age is exactly `age` items.
fn fpr_at_age(bf_alpha: f64, k: usize, bytes: usize, age: u64, trials: usize) -> f64 {
    let w = window();
    let mut bf = SheBloomFilter::builder()
        .window(w)
        .memory_bytes(bytes)
        .hash_functions(k)
        .alpha(bf_alpha)
        .seed(7)
        .build();
    let mut stream = DistinctStream::new(80);
    // Warm up one full cleaning cycle.
    for _ in 0..(w as f64 * (1.0 + bf_alpha)) as usize + w as usize {
        bf.insert(&stream.next_key());
    }
    let mut hits = 0usize;
    let mut probes = Vec::with_capacity(trials);
    for _ in 0..trials {
        probes.push(stream.next_key());
    }
    // Insert the probes, then age them by exactly `age` further items.
    for &p in &probes {
        bf.insert(&p);
    }
    for _ in 0..age {
        bf.insert(&stream.next_key());
    }
    for &p in &probes {
        if bf.contains(&p) {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

fn main() {
    let w = window();
    let s = she_bench::scale();
    let bytes = (8 << 10) * s;

    header("Fig 8a", "SHE-BF: FPR vs item age (Distinct Stream)");
    let alpha = 3.0;
    for mult in [1.0f64, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0] {
        let age = (w as f64 * mult) as u64;
        let fpr = fpr_at_age(alpha, 8, bytes, age, 3_000);
        println!("age={mult:.1}W  fpr={fpr:.6}");
    }

    header("Fig 8b", "SHE-BF: FPR vs number of hash functions");
    for k in [1usize, 2, 4, 8, 12, 16, 24, 30] {
        let opt = analysis::optimal_alpha_bf(bytes * 8, k, w as usize);
        let fpr_opt = fpr_absent(opt, k, bytes, 5_000);
        let fpr_fixed = fpr_absent(1.0, k, bytes, 5_000);
        println!(
            "k={k:2}  optimal_alpha={opt:.2}  fpr(opt)={fpr_opt:.6}  fpr(alpha=1)={fpr_fixed:.6}"
        );
    }
}

/// Measure the FPR against keys that were *never* inserted — the quantity
/// Eq. 2 minimizes (the aged-item acceptance of Fig. 8a is a different,
/// deliberately stricter protocol).
fn fpr_absent(bf_alpha: f64, k: usize, bytes: usize, trials: usize) -> f64 {
    let w = window();
    let mut bf = SheBloomFilter::builder()
        .window(w)
        .memory_bytes(bytes)
        .hash_functions(k)
        .alpha(bf_alpha)
        .seed(8)
        .build();
    let mut stream = DistinctStream::new(81);
    for _ in 0..((w as f64 * (2.0 + 2.0 * bf_alpha)) as usize) {
        bf.insert(&stream.next_key());
    }
    let mut hits = 0usize;
    for i in 0..trials {
        if bf.contains(&she_hash::mix64(0xF00D_0000_0000_0000 + i as u64)) {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}
