//! Companion to Figs. 10–11: per-item insertion cost of every SHE
//! algorithm, its fixed-window original, and the sliding baselines.
//!
//! Runs on the in-tree harness (see `she_bench::harness`), which reports
//! ns/item; Mips = 1000 / (ns/item). The figure bins (`fig10_throughput`,
//! `fig11_overhead`) print the Mips tables directly.

use she_baselines::{CounterVectorSketch, SlidingHyperLogLog, Swamp, TimestampVector};
use she_bench::harness::{black_box, Group};
use she_core::{SheBitmap, SheBloomFilter, SheCountMin, SheHyperLogLog, SheMinHash};
use she_sketch::{Bitmap, BloomFilter, CountMin, HyperLogLog, MinHash};
use she_streams::{CaidaLike, KeyStream};

const WINDOW: u64 = 1 << 14;
const MEM: usize = 8 << 10;

fn keys(n: usize) -> Vec<u64> {
    CaidaLike::default_trace(7).take_vec(n)
}

fn bench_insert<T>(
    g: &mut Group,
    name: &str,
    make: impl Fn() -> T,
    mut insert: impl FnMut(&mut T, u64),
) {
    let ks = keys(10_000);
    let mut s = make();
    let mut i = 0usize;
    g.bench(name, || {
        i += 1;
        if i == ks.len() {
            // Rebuild periodically so the structure never ages past the
            // regime the figure measures (fresh-window insertion cost).
            i = 0;
            s = make();
        }
        insert(&mut s, black_box(ks[i]));
    });
}

fn fig10a_hll() {
    let mut g = Group::new("fig10a_hll");
    bench_insert(&mut g, "ideal_hll", || HyperLogLog::with_memory(MEM, 1), |s, k| s.insert(&k));
    bench_insert(
        &mut g,
        "she_hll",
        || SheHyperLogLog::builder().window(WINDOW).memory_bytes(MEM).build(),
        |s, k| s.insert(&k),
    );
    bench_insert(
        &mut g,
        "shll",
        || SlidingHyperLogLog::new(MEM * 8 / (3 * 69), WINDOW, 1),
        |s, k| s.insert(k),
    );
}

fn fig10b_bitmap() {
    let mut g = Group::new("fig10b_bitmap");
    bench_insert(&mut g, "ideal_bitmap", || Bitmap::with_memory(MEM, 2), |s, k| s.insert(&k));
    bench_insert(
        &mut g,
        "she_bm",
        || SheBitmap::builder().window(WINDOW).memory_bytes(MEM).build(),
        |s, k| s.insert(&k),
    );
    bench_insert(
        &mut g,
        "cvs",
        || CounterVectorSketch::with_memory(MEM, 10, WINDOW, 2),
        |s, k| s.insert(k),
    );
}

fn fig11_overhead() {
    let mut g = Group::new("fig11_bf");
    bench_insert(&mut g, "ideal_bf", || BloomFilter::with_memory(MEM, 8, 3), |s, k| s.insert(&k));
    bench_insert(
        &mut g,
        "she_bf",
        || SheBloomFilter::builder().window(WINDOW).memory_bytes(MEM).build(),
        |s, k| s.insert(&k),
    );
    let mut g = Group::new("fig11_cm");
    bench_insert(&mut g, "ideal_cm", || CountMin::with_memory(MEM * 8, 8, 4), |s, k| s.insert(&k));
    bench_insert(
        &mut g,
        "she_cm",
        || SheCountMin::builder().window(WINDOW).memory_bytes(MEM * 8).build(),
        |s, k| s.insert(&k),
    );
    let mut g = Group::new("fig11_mh");
    bench_insert(&mut g, "ideal_mh", || MinHash::new(128, 5), |s, k| s.insert(&k));
    bench_insert(
        &mut g,
        "she_mh",
        || SheMinHash::builder().window(WINDOW).num_hashes(128).build(),
        |s, k| s.insert(&k),
    );
}

fn baseline_cost() {
    let mut g = Group::new("baseline_insert");
    bench_insert(&mut g, "swamp", || Swamp::new(WINDOW as usize, 16, 6), |s, k| s.insert(k));
    bench_insert(
        &mut g,
        "tsv",
        || TimestampVector::with_memory(MEM, WINDOW, 6),
        |s, k| s.insert(k),
    );
}

fn main() {
    fig10a_hll();
    fig10b_bitmap();
    fig11_overhead();
    baseline_cost();
}
