//! Criterion companion to Figs. 10–11: per-item insertion cost of every
//! SHE algorithm, its fixed-window original, and the sliding baselines.
//!
//! Criterion reports ns/item; Mips = 1000 / (ns/item). The figure bins
//! (`fig10_throughput`, `fig11_overhead`) print the Mips tables directly.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use she_baselines::{CounterVectorSketch, SlidingHyperLogLog, Swamp, TimestampVector};
use she_core::{SheBitmap, SheBloomFilter, SheCountMin, SheHyperLogLog, SheMinHash};
use she_sketch::{Bitmap, BloomFilter, CountMin, HyperLogLog, MinHash};
use she_streams::{CaidaLike, KeyStream};

const WINDOW: u64 = 1 << 14;
const MEM: usize = 8 << 10;

fn keys(n: usize) -> Vec<u64> {
    CaidaLike::default_trace(7).take_vec(n)
}

fn bench_insert<T>(
    c: &mut Criterion,
    group: &str,
    name: &str,
    mut make: impl FnMut() -> T,
    mut insert: impl FnMut(&mut T, u64),
) {
    let ks = keys(10_000);
    let mut g = c.benchmark_group(group);
    g.sample_size(20);
    g.bench_function(name, |b| {
        b.iter_batched_ref(
            &mut make,
            |s| {
                for &k in &ks {
                    insert(s, black_box(k));
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn fig10a_hll(c: &mut Criterion) {
    bench_insert(c, "fig10a_hll", "ideal_hll", || HyperLogLog::with_memory(MEM, 1), |s, k| s.insert(&k));
    bench_insert(
        c,
        "fig10a_hll",
        "she_hll",
        || SheHyperLogLog::builder().window(WINDOW).memory_bytes(MEM).build(),
        |s, k| s.insert(&k),
    );
    bench_insert(
        c,
        "fig10a_hll",
        "shll",
        || SlidingHyperLogLog::new(MEM * 8 / (3 * 69), WINDOW, 1),
        |s, k| s.insert(k),
    );
}

fn fig10b_bitmap(c: &mut Criterion) {
    bench_insert(c, "fig10b_bitmap", "ideal_bitmap", || Bitmap::with_memory(MEM, 2), |s, k| s.insert(&k));
    bench_insert(
        c,
        "fig10b_bitmap",
        "she_bm",
        || SheBitmap::builder().window(WINDOW).memory_bytes(MEM).build(),
        |s, k| s.insert(&k),
    );
    bench_insert(
        c,
        "fig10b_bitmap",
        "cvs",
        || CounterVectorSketch::with_memory(MEM, 10, WINDOW, 2),
        |s, k| s.insert(k),
    );
}

fn fig11_overhead(c: &mut Criterion) {
    bench_insert(c, "fig11_bf", "ideal_bf", || BloomFilter::with_memory(MEM, 8, 3), |s, k| s.insert(&k));
    bench_insert(
        c,
        "fig11_bf",
        "she_bf",
        || SheBloomFilter::builder().window(WINDOW).memory_bytes(MEM).build(),
        |s, k| s.insert(&k),
    );
    bench_insert(c, "fig11_cm", "ideal_cm", || CountMin::with_memory(MEM * 8, 8, 4), |s, k| s.insert(&k));
    bench_insert(
        c,
        "fig11_cm",
        "she_cm",
        || SheCountMin::builder().window(WINDOW).memory_bytes(MEM * 8).build(),
        |s, k| s.insert(&k),
    );
    bench_insert(c, "fig11_mh", "ideal_mh", || MinHash::new(128, 5), |s, k| s.insert(&k));
    bench_insert(
        c,
        "fig11_mh",
        "she_mh",
        || SheMinHash::builder().window(WINDOW).num_hashes(128).build(),
        |s, k| s.insert(&k),
    );
}

fn baseline_cost(c: &mut Criterion) {
    bench_insert(c, "baseline_insert", "swamp", || Swamp::new(WINDOW as usize, 16, 6), |s, k| s.insert(k));
    bench_insert(
        c,
        "baseline_insert",
        "tsv",
        || TimestampVector::with_memory(MEM, WINDOW, 6),
        |s, k| s.insert(k),
    );
}

criterion_group!(benches, fig10a_hll, fig10b_bitmap, fig11_overhead, baseline_cost);
criterion_main!(benches);
