//! Companion to Figs. 5–9: cost of the full feed-and-measure accuracy
//! runs at CI scale. The numeric accuracy tables themselves come from the
//! `fig*` binaries; here the harness tracks that the experiment pipeline
//! (workload generation → insertion → ground truth → checkpoint queries)
//! stays fast enough to rerun on every change.

use she_bench::harness::{black_box, Group};
use she_metrics::*;
use she_streams::{CaidaLike, DistinctStream, KeyStream, RelevantPair};

const WINDOW: u64 = 1 << 12;

fn fig9a_cardinality_run() {
    let keys = CaidaLike::new(20_000, 1.05, 1).take_vec(WINDOW as usize * 6);
    let mut g = Group::new("fig9a_run");
    g.bench("she_bm_512B", || {
        let mut a = SheBmAdapter::sized(WINDOW, 512, 1);
        black_box(cardinality_re(&mut a, &keys, WINDOW as usize, 2));
    });
    g.bench("swamp_512B", || {
        let mut a = SwampCard::sized(WINDOW, 512, 1);
        black_box(cardinality_re(&mut a, &keys, WINDOW as usize, 2));
    });
}

fn fig9d_membership_run() {
    let keys = DistinctStream::new(2).take_vec(WINDOW as usize * 6);
    let guard = WINDOW as usize * 5;
    let mut g = Group::new("fig9d_run");
    g.bench("she_bf_8KB", || {
        let mut a = SheBfAdapter::sized(WINDOW, 8 << 10, 2);
        black_box(membership_fpr(&mut a, &keys, guard, 2, 1_000));
    });
    g.bench("tbf_8KB", || {
        let mut a = TbfAdapter::sized(WINDOW, 8 << 10, 2);
        black_box(membership_fpr(&mut a, &keys, guard, 2, 1_000));
    });
}

fn fig9e_similarity_run() {
    let mut gen = RelevantPair::new(5_000, 0.6, 3);
    let pairs: Vec<(u64, u64)> = (0..WINDOW as usize * 5).map(|_| gen.next_pair()).collect();
    let mut g = Group::new("fig9e_run");
    g.bench("she_mh_2KB", || {
        let mut a = SheMhAdapter::sized(WINDOW, 2 << 10, 3);
        black_box(similarity_re(&mut a, &pairs, WINDOW as usize, 2));
    });
}

fn query_paths() {
    // Per-query latency of the SHE adapters after a realistic load.
    let keys = CaidaLike::new(20_000, 1.05, 4).take_vec(WINDOW as usize * 4);
    let mut g = Group::new("she_query");

    let mut bf = SheBfAdapter::sized(WINDOW, 8 << 10, 5);
    keys.iter().for_each(|&k| bf.insert(k));
    let mut i = 0u64;
    g.bench("bf_contains", || {
        i = i.wrapping_add(1);
        black_box(bf.query(she_hash::mix64(i)));
    });

    let mut bm = SheBmAdapter::sized(WINDOW, 8 << 10, 5);
    keys.iter().for_each(|&k| bm.insert(k));
    g.bench("bm_estimate", || {
        black_box(bm.estimate());
    });

    let mut cm = SheCmAdapter::sized(WINDOW, 256 << 10, 5);
    keys.iter().for_each(|&k| cm.insert(k));
    g.bench("cm_query", || {
        i = i.wrapping_add(1);
        black_box(cm.query(keys[(i as usize) % keys.len()]));
    });
}

fn main() {
    fig9a_cardinality_run();
    fig9d_membership_run();
    fig9e_similarity_run();
    query_paths();
}
