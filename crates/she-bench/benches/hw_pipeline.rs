//! Criterion companion to Tables 2–3: simulated pipeline insertion cost and
//! the audit overhead, for the paper's exact FPGA configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use she_hwsim::{ShePipeline, SheVariant};

fn pipeline_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("hw_pipeline");
    g.sample_size(20);
    for (name, variant) in
        [("she_bm_1lane", SheVariant::Bitmap), ("she_bf_8lane", SheVariant::Bloom { k: 8 })]
    {
        g.bench_function(name, |b| {
            let mut p = ShePipeline::paper_config(variant);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                p.insert(black_box(she_hash::mix64(i)));
            })
        });
    }
    g.finish();
}

fn pipeline_run_with_audit(c: &mut Criterion) {
    let keys: Vec<u64> = (0..50_000u64).map(she_hash::mix64).collect();
    let mut g = c.benchmark_group("hw_pipeline_run");
    g.sample_size(10);
    g.bench_function("bm_50k_items_audited", |b| {
        b.iter(|| {
            let mut p = ShePipeline::paper_config(SheVariant::Bitmap);
            let stats = p.run(keys.iter().copied());
            assert_eq!(stats.violations, 0);
            black_box(stats)
        })
    });
    g.finish();
}

criterion_group!(benches, pipeline_insert, pipeline_run_with_audit);
criterion_main!(benches);
