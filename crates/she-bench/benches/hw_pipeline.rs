//! Companion to Tables 2–3: simulated pipeline insertion cost and the
//! audit overhead, for the paper's exact FPGA configuration.

use she_bench::harness::{black_box, Group};
use she_hwsim::{ShePipeline, SheVariant};

fn pipeline_insert() {
    let mut g = Group::new("hw_pipeline");
    for (name, variant) in
        [("she_bm_1lane", SheVariant::Bitmap), ("she_bf_8lane", SheVariant::Bloom { k: 8 })]
    {
        let mut p = ShePipeline::paper_config(variant);
        let mut i = 0u64;
        g.bench(name, || {
            i = i.wrapping_add(1);
            p.insert(black_box(she_hash::mix64(i)));
        });
    }
}

fn pipeline_run_with_audit() {
    let keys: Vec<u64> = (0..50_000u64).map(she_hash::mix64).collect();
    let mut g = Group::new("hw_pipeline_run");
    g.bench("bm_50k_items_audited", || {
        let mut p = ShePipeline::paper_config(SheVariant::Bitmap);
        let stats = p.run(keys.iter().copied());
        assert_eq!(stats.violations, 0);
        black_box(stats);
    });
}

fn main() {
    pipeline_insert();
    pipeline_run_with_audit();
}
