//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * group size `w` — the group-cleaning trade-off (§3.3): larger groups
//!   mean fewer mark checks per array bit but coarser ages;
//! * software vs hardware cleaning — the per-cell sweep of §3.2 against
//!   the lazy group marks of §3.3;
//! * α — cleaning-cycle length vs insertion cost (more mark flips).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use she_core::{She, SheConfig, SoftClock};
use she_sketch::BloomSpec;
use she_streams::{CaidaLike, KeyStream};

const WINDOW: u64 = 1 << 14;
const M_BITS: usize = 1 << 16;

fn group_size_sweep(c: &mut Criterion) {
    let keys = CaidaLike::default_trace(1).take_vec(20_000);
    let mut g = c.benchmark_group("ablation_group_size");
    g.sample_size(15);
    for w in [1usize, 8, 64, 512, 4096] {
        g.bench_function(format!("w{w}"), |b| {
            let cfg = SheConfig::builder().window(WINDOW).alpha(0.5).group_cells(w).build();
            let mut s = She::new(BloomSpec::new(M_BITS, 8, 1), cfg);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                s.insert(black_box(&keys[i]));
            })
        });
    }
    g.finish();
}

fn soft_vs_hw_cleaning(c: &mut Criterion) {
    let keys = CaidaLike::default_trace(2).take_vec(20_000);
    let cfg = SheConfig::builder().window(WINDOW).alpha(0.5).group_cells(64).build();
    let mut g = c.benchmark_group("ablation_cleaning");
    g.sample_size(15);
    g.bench_function("hardware_marks", |b| {
        let mut s = She::new(BloomSpec::new(M_BITS, 8, 1), cfg);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            s.insert(black_box(&keys[i]));
        })
    });
    g.bench_function("software_sweep", |b| {
        let mut s = SoftClock::new(BloomSpec::new(M_BITS, 8, 1), cfg);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            s.insert(black_box(&keys[i]));
        })
    });
    g.finish();
}

fn alpha_sweep(c: &mut Criterion) {
    let keys = CaidaLike::default_trace(3).take_vec(20_000);
    let mut g = c.benchmark_group("ablation_alpha");
    g.sample_size(15);
    for alpha in [0.1f64, 0.5, 1.0, 3.0] {
        g.bench_function(format!("alpha{alpha}"), |b| {
            let cfg = SheConfig::builder().window(WINDOW).alpha(alpha).group_cells(64).build();
            let mut s = She::new(BloomSpec::new(M_BITS, 8, 1), cfg);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % keys.len();
                s.insert(black_box(&keys[i]));
            })
        });
    }
    g.finish();
}

criterion_group!(benches, group_size_sweep, soft_vs_hw_cleaning, alpha_sweep);
criterion_main!(benches);
