//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * group size `w` — the group-cleaning trade-off (§3.3): larger groups
//!   mean fewer mark checks per array bit but coarser ages;
//! * software vs hardware cleaning — the per-cell sweep of §3.2 against
//!   the lazy group marks of §3.3;
//! * α — cleaning-cycle length vs insertion cost (more mark flips).

use she_bench::harness::{black_box, Group};
use she_core::{She, SheConfig, SoftClock};
use she_sketch::BloomSpec;
use she_streams::{CaidaLike, KeyStream};

const WINDOW: u64 = 1 << 14;
const M_BITS: usize = 1 << 16;

fn group_size_sweep() {
    let keys = CaidaLike::default_trace(1).take_vec(20_000);
    let mut g = Group::new("ablation_group_size");
    for w in [1usize, 8, 64, 512, 4096] {
        let cfg = SheConfig::builder().window(WINDOW).alpha(0.5).group_cells(w).build();
        let mut s = She::new(BloomSpec::new(M_BITS, 8, 1), cfg);
        let mut i = 0usize;
        g.bench(&format!("w{w}"), || {
            i = (i + 1) % keys.len();
            s.insert(black_box(&keys[i]));
        });
    }
}

fn soft_vs_hw_cleaning() {
    let keys = CaidaLike::default_trace(2).take_vec(20_000);
    let cfg = SheConfig::builder().window(WINDOW).alpha(0.5).group_cells(64).build();
    let mut g = Group::new("ablation_cleaning");
    {
        let mut s = She::new(BloomSpec::new(M_BITS, 8, 1), cfg);
        let mut i = 0usize;
        g.bench("hardware_marks", || {
            i = (i + 1) % keys.len();
            s.insert(black_box(&keys[i]));
        });
    }
    {
        let mut s = SoftClock::new(BloomSpec::new(M_BITS, 8, 1), cfg);
        let mut i = 0usize;
        g.bench("software_sweep", || {
            i = (i + 1) % keys.len();
            s.insert(black_box(&keys[i]));
        });
    }
}

fn alpha_sweep() {
    let keys = CaidaLike::default_trace(3).take_vec(20_000);
    let mut g = Group::new("ablation_alpha");
    for alpha in [0.1f64, 0.5, 1.0, 3.0] {
        let cfg = SheConfig::builder().window(WINDOW).alpha(alpha).group_cells(64).build();
        let mut s = She::new(BloomSpec::new(M_BITS, 8, 1), cfg);
        let mut i = 0usize;
        g.bench(&format!("alpha{alpha}"), || {
            i = (i + 1) % keys.len();
            s.insert(black_box(&keys[i]));
        });
    }
}

fn main() {
    group_size_sweep();
    soft_vs_hw_cleaning();
    alpha_sweep();
}
