//! Synthetic workload generators.
//!
//! Stand-ins for the paper's proprietary datasets (§7.1), matching the
//! statistics that actually drive sketch behaviour — frequency skew,
//! distinct ratio, stream length, and (for similarity) the true Jaccard
//! index — while being deterministic from a seed:
//!
//! * [`CaidaLike`] — Zipf-skewed keyed stream shaped like a CAIDA trace
//!   slice (~2% distinct ratio at the default skew);
//! * [`DistinctStream`] — every item distinct (frequency 1), the paper's
//!   worst case for SHE-BF;
//! * [`CampusLike`] / [`WebpageLike`] — the two extra throughput datasets,
//!   differing in skew and alphabet size;
//! * [`RelevantPair`] — two streams sharing a configurable fraction of
//!   their key space, standing in for the IMC10-derived "Relevant Stream"
//!   pairs used by the MinHash experiments.

mod adversarial;
mod alias;
mod zipf;

pub use adversarial::{OnOffBurst, RepeatedKey, SlidingPhase};
pub use alias::AliasTable;
pub use zipf::Zipf;

use she_hash::{RandomSource, Xoshiro256};

/// A deterministic stream of `u64` keys.
pub trait KeyStream {
    /// Produce the next key.
    fn next_key(&mut self) -> u64;

    /// Fill a vector with the next `n` keys.
    fn take_vec(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_key()).collect()
    }
}

/// Zipf-distributed keyed stream shaped like a CAIDA trace slice.
///
/// The public CAIDA traces used by the paper have ~30 M items and ~600 K
/// distinct srcIPs (a 2% distinct ratio) with heavy-tailed flow sizes; a
/// Zipf(≈1.05) draw over a 600 K universe reproduces both statistics. Keys
/// are scrambled through a fixed permutation so that rank order does not
/// leak into hash behaviour.
#[derive(Debug, Clone)]
pub struct CaidaLike {
    zipf: Zipf,
    rng: Xoshiro256,
}

impl CaidaLike {
    /// Stream over `universe` distinct keys with Zipf exponent `skew`.
    pub fn new(universe: usize, skew: f64, seed: u64) -> Self {
        Self { zipf: Zipf::new(universe, skew), rng: Xoshiro256::new(seed) }
    }

    /// The paper-shaped default: 600 K universe, skew 1.05.
    pub fn default_trace(seed: u64) -> Self {
        Self::new(600_000, 1.05, seed)
    }
}

impl KeyStream for CaidaLike {
    fn next_key(&mut self) -> u64 {
        let rank = self.zipf.sample(&mut self.rng) as u64;
        // Fixed permutation (splitmix-style) so key values are unordered.
        she_hash::mix64(rank)
    }
}

/// Every item distinct: the frequency-1 stream of §7.1, SHE-BF's worst case
/// (no key is ever re-inserted, so every membership bit decays exactly
/// once).
#[derive(Debug, Clone)]
pub struct DistinctStream {
    next: u64,
    stride: u64,
}

impl DistinctStream {
    /// Distinct keys starting from a seed-derived origin.
    pub fn new(seed: u64) -> Self {
        Self { next: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), stride: 1 }
    }
}

impl KeyStream for DistinctStream {
    fn next_key(&mut self) -> u64 {
        let k = self.next;
        self.next = self.next.wrapping_add(self.stride);
        she_hash::mix64(k)
    }
}

/// Campus-gateway-like trace: burstier and more skewed than CAIDA
/// (a smaller user population with heavy hitters).
#[derive(Debug, Clone)]
pub struct CampusLike {
    zipf: Zipf,
    rng: Xoshiro256,
    burst_key: u64,
    burst_left: u32,
}

impl CampusLike {
    /// Stream over `universe` keys with occasional per-key bursts.
    pub fn new(universe: usize, seed: u64) -> Self {
        Self {
            zipf: Zipf::new(universe, 1.2),
            rng: Xoshiro256::new(seed),
            burst_key: 0,
            burst_left: 0,
        }
    }

    /// Default shape: 50 K universe.
    pub fn default_trace(seed: u64) -> Self {
        Self::new(50_000, seed)
    }
}

impl KeyStream for CampusLike {
    fn next_key(&mut self) -> u64 {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return self.burst_key;
        }
        let rank = self.zipf.sample(&mut self.rng) as u64;
        let key = she_hash::mix64(rank ^ 0xCAFE);
        // 1-in-64 items start a short burst of the same key (TCP trains).
        if self.rng.next_below(64) == 0 {
            self.burst_key = key;
            self.burst_left = self.rng.next_range(4, 16) as u32;
        }
        key
    }
}

/// Webpage-dataset-like trace: light skew over a large alphabet (frequent
/// itemset data has many near-uniform item ids).
#[derive(Debug, Clone)]
pub struct WebpageLike {
    zipf: Zipf,
    rng: Xoshiro256,
}

impl WebpageLike {
    /// Stream over `universe` keys with mild skew.
    pub fn new(universe: usize, seed: u64) -> Self {
        Self { zipf: Zipf::new(universe, 0.7), rng: Xoshiro256::new(seed) }
    }

    /// Default shape: 2 M universe.
    pub fn default_trace(seed: u64) -> Self {
        Self::new(2_000_000, seed)
    }
}

impl KeyStream for WebpageLike {
    fn next_key(&mut self) -> u64 {
        she_hash::mix64(self.zipf.sample(&mut self.rng) as u64 ^ 0x3EB_0000)
    }
}

/// A pair of streams with a controlled shared key space, standing in for
/// the IMC10-derived "Relevant Stream" pairs (two traces of 100 K distinct
/// items each).
///
/// At every step each stream draws from the shared universe with
/// probability `overlap`, otherwise from its private universe. For aligned
/// windows of `W` items each, the expected Jaccard similarity of the
/// distinct sets approaches `overlap / (2 - overlap)` as the universes
/// saturate (both windows see the same shared keys).
#[derive(Debug, Clone)]
pub struct RelevantPair {
    shared: Zipf,
    private_a: Zipf,
    private_b: Zipf,
    overlap: f64,
    rng: Xoshiro256,
}

impl RelevantPair {
    /// `universe` keys per component, sharing a `overlap` fraction of draws.
    pub fn new(universe: usize, overlap: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&overlap));
        Self {
            shared: Zipf::new(universe, 0.9),
            private_a: Zipf::new(universe, 0.9),
            private_b: Zipf::new(universe, 0.9),
            overlap,
            rng: Xoshiro256::new(seed),
        }
    }

    /// Draw the next aligned pair `(key_a, key_b)`.
    pub fn next_pair(&mut self) -> (u64, u64) {
        let a = if self.rng.next_bool(self.overlap) {
            she_hash::mix64(self.shared.sample(&mut self.rng) as u64)
        } else {
            she_hash::mix64(self.private_a.sample(&mut self.rng) as u64 | 1 << 62)
        };
        let b = if self.rng.next_bool(self.overlap) {
            she_hash::mix64(self.shared.sample(&mut self.rng) as u64)
        } else {
            she_hash::mix64(self.private_b.sample(&mut self.rng) as u64 | 1 << 63)
        };
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn caida_like_distinct_ratio() {
        let mut s = CaidaLike::default_trace(1);
        let n = 1_000_000;
        let keys = s.take_vec(n);
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        let ratio = distinct.len() as f64 / n as f64;
        // The real trace slice is ~2%; accept a broad band since the ratio
        // depends on stream length.
        assert!((0.005..0.30).contains(&ratio), "distinct ratio {ratio} out of CAIDA-like band");
    }

    #[test]
    fn caida_like_is_heavy_tailed() {
        let mut s = CaidaLike::default_trace(2);
        let keys = s.take_vec(200_000);
        let mut counts = std::collections::HashMap::new();
        for k in keys {
            *counts.entry(k).or_insert(0u32) += 1;
        }
        let mut freqs: Vec<u32> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u32 = freqs.iter().take(10).sum();
        // Top-10 keys must dominate far beyond a uniform share.
        assert!(top10 as f64 / 200_000.0 > 0.05, "top10 share {}", top10);
    }

    #[test]
    fn distinct_stream_never_repeats() {
        let mut s = DistinctStream::new(9);
        let keys = s.take_vec(100_000);
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), keys.len());
    }

    #[test]
    fn streams_are_deterministic() {
        let a = CaidaLike::default_trace(7).take_vec(1000);
        let b = CaidaLike::default_trace(7).take_vec(1000);
        assert_eq!(a, b);
        let c = CaidaLike::default_trace(8).take_vec(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn relevant_pair_tracks_target_overlap() {
        let mut p = RelevantPair::new(10_000, 0.5, 3);
        let mut wa = HashSet::new();
        let mut wb = HashSet::new();
        for _ in 0..50_000 {
            let (a, b) = p.next_pair();
            wa.insert(a);
            wb.insert(b);
        }
        let inter = wa.intersection(&wb).count();
        let union = wa.len() + wb.len() - inter;
        let j = inter as f64 / union as f64;
        // overlap/(2-overlap) = 1/3 at saturation; accept a band.
        assert!((0.15..0.5).contains(&j), "jaccard {j}");
    }

    #[test]
    fn relevant_pair_extremes() {
        let mut full = RelevantPair::new(1000, 1.0, 4);
        let mut wa = HashSet::new();
        let mut wb = HashSet::new();
        for _ in 0..20_000 {
            let (a, b) = full.next_pair();
            wa.insert(a);
            wb.insert(b);
        }
        let inter = wa.intersection(&wb).count();
        let union = wa.len() + wb.len() - inter;
        assert!(inter as f64 / union as f64 > 0.95);

        let mut none = RelevantPair::new(1000, 0.0, 5);
        let mut wa = HashSet::new();
        let mut wb = HashSet::new();
        for _ in 0..20_000 {
            let (a, b) = none.next_pair();
            wa.insert(a);
            wb.insert(b);
        }
        assert_eq!(wa.intersection(&wb).count(), 0);
    }

    #[test]
    fn campus_and_webpage_differ_in_skew() {
        let mut campus = CampusLike::default_trace(1);
        let mut web = WebpageLike::default_trace(1);
        let n = 100_000;
        let dc: HashSet<u64> = campus.take_vec(n).into_iter().collect();
        let dw: HashSet<u64> = web.take_vec(n).into_iter().collect();
        // Heavier skew + smaller universe => far fewer distinct keys.
        assert!(dc.len() * 2 < dw.len(), "campus {} web {}", dc.len(), dw.len());
    }
}
