//! Zipf(α) sampling over a finite universe, implemented in-house so the
//! workspace stays within its approved dependency list.
//!
//! Sampling goes through a Walker/Vose [`crate::AliasTable`] (O(1) per
//! draw); an inverse-CDF path is kept for the differential test between
//! the two samplers.

use crate::AliasTable;
use she_hash::RandomSource;

/// A Zipf distribution over ranks `0..universe` with exponent `skew`:
/// `P(rank = r) ∝ 1 / (r + 1)^skew`.
#[derive(Debug, Clone)]
pub struct Zipf {
    alias: AliasTable,
    /// Cumulative probabilities, `cdf[r] = P(rank ≤ r)` (reference path).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. `skew = 0` is uniform; larger is heavier-tailed.
    pub fn new(universe: usize, skew: f64) -> Self {
        assert!(universe > 0);
        assert!(skew >= 0.0);
        let weights: Vec<f64> = (0..universe).map(|r| 1.0 / ((r + 1) as f64).powf(skew)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { alias: AliasTable::new(&weights), cdf }
    }

    /// Number of ranks.
    pub fn universe(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank (alias method, O(1)).
    #[inline]
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> usize {
        self.alias.sample(rng)
    }

    /// Draw one rank by inverting the CDF (O(log n); reference path used by
    /// the sampler-equivalence test).
    pub fn sample_cdf<R: RandomSource>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use she_hash::Xoshiro256;

    #[test]
    fn uniform_when_skew_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Xoshiro256::new(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn rank_zero_dominates_with_skew() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = Xoshiro256::new(2);
        let mut zero = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        // P(0) = 1/H where H = Σ_{r=1}^{1000} r^{-1.2} ≈ 4.3, so ~23%.
        let p = zero as f64 / n as f64;
        assert!((0.15..0.35).contains(&p), "p(rank 0) = {p}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(17, 1.0);
        let mut rng = Xoshiro256::new(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn frequencies_follow_power_law() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = Xoshiro256::new(4);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..1_000_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // count(rank 0) / count(rank 9) should be close to 10 for α = 1.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((6.0..16.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn alias_and_cdf_samplers_agree_in_distribution() {
        let z = Zipf::new(500, 1.1);
        let n = 200_000;
        let mut rng = Xoshiro256::new(5);
        let mut a = vec![0f64; 500];
        let mut c = vec![0f64; 500];
        for _ in 0..n {
            a[z.sample(&mut rng)] += 1.0;
            c[z.sample_cdf(&mut rng)] += 1.0;
        }
        // Compare the head of the distribution (the tail is too sparse for
        // per-rank comparison).
        for r in 0..20 {
            let pa = a[r] / n as f64;
            let pc = c[r] / n as f64;
            assert!((pa - pc).abs() < 0.01 + 0.1 * pc, "rank {r}: alias {pa:.4} vs cdf {pc:.4}");
        }
    }
}
