//! Walker/Vose alias method: O(1) sampling from any finite discrete
//! distribution after an O(n) build.
//!
//! The inverse-CDF sampler in [`crate::Zipf`] costs a binary search per
//! draw (`O(log n)`); trace generation for the throughput figures draws
//! tens of millions of samples, where the alias table's constant time and
//! single cache line per draw matter.

use she_hash::RandomSource;

/// An alias table over `n` outcomes.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per slot, scaled to u32 for a branch-cheap
    /// compare (probability = prob[i] / 2^32).
    prob: Vec<u32>,
    /// Alias outcome per slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from non-negative weights (not necessarily normalized).
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one outcome");
        assert!(n <= u32::MAX as usize, "too many outcomes");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative with positive sum"
        );

        // Scaled probabilities: mean 1.0.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut prob = vec![u32::MAX; n];
        let mut alias = vec![0u32; n];
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = (scaled[s as usize].clamp(0.0, 1.0) * u32::MAX as f64) as u32;
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical residue) accept unconditionally.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = u32::MAX;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True iff the table has no outcomes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one outcome.
    #[inline]
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> usize {
        let r: u64 = rng.next_u64();
        let slot = she_hash::reduce_range(r, self.prob.len());
        // Reuse the low bits as the acceptance coin (independent enough for
        // sampling once mixed; rigorous users can draw twice).
        let coin = (r as u32) ^ (r >> 32) as u32;
        if coin <= self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use she_hash::Xoshiro256;

    fn empirical(weights: &[f64], draws: usize) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = Xoshiro256::new(42);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let freqs = empirical(&weights, 400_000);
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            assert!((freqs[i] - expect).abs() < 0.01, "outcome {i}: {} vs {expect}", freqs[i]);
        }
    }

    #[test]
    fn single_outcome() {
        let freqs = empirical(&[7.0], 1_000);
        assert_eq!(freqs, vec![1.0]);
    }

    #[test]
    fn zero_weight_outcomes_never_drawn() {
        let freqs = empirical(&[0.0, 1.0, 0.0, 1.0], 100_000);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
        assert!((freqs[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn heavy_tail() {
        // Zipf-like weights: rank 0 dominates as expected.
        let weights: Vec<f64> = (1..=1000).map(|r| 1.0 / r as f64).collect();
        let freqs = empirical(&weights, 300_000);
        let h: f64 = weights.iter().sum();
        assert!((freqs[0] - 1.0 / h).abs() < 0.01, "p(0) = {}", freqs[0]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
