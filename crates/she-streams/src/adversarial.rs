//! Adversarial and stress workloads for robustness testing.
//!
//! These streams target SHE's specific failure modes rather than matching
//! any real trace:
//!
//! * [`RepeatedKey`] — one key forever. Only the groups that key hashes to
//!   are ever touched; every other group relies on query-time
//!   `CheckGroup`, and an idle even number of cycles aliases the mark
//!   parity (§5.1's worst case).
//! * [`OnOffBurst`] — alternating dense bursts and near-silence, stressing
//!   time-based expiry and the on-demand cleaner's dependence on traffic.
//! * [`SlidingPhase`] — the key space rotates continuously, so every
//!   window has a different cardinality/identity profile; estimators must
//!   track it (no steady state to hide in).

use crate::KeyStream;

/// One key, forever.
#[derive(Debug, Clone)]
pub struct RepeatedKey {
    key: u64,
}

impl RepeatedKey {
    /// Stream that always yields `key`.
    pub fn new(key: u64) -> Self {
        Self { key }
    }
}

impl KeyStream for RepeatedKey {
    fn next_key(&mut self) -> u64 {
        self.key
    }
}

/// Alternating bursts and silence: `burst_len` distinct keys, then
/// `gap_len` repeats of a single filler key (approximating silence while
/// still advancing count-based clocks).
#[derive(Debug, Clone)]
pub struct OnOffBurst {
    burst_len: u64,
    gap_len: u64,
    pos: u64,
    counter: u64,
}

impl OnOffBurst {
    /// Bursts of `burst_len` fresh keys separated by `gap_len` filler items.
    pub fn new(burst_len: u64, gap_len: u64, seed: u64) -> Self {
        assert!(burst_len > 0 && gap_len > 0);
        Self { burst_len, gap_len, pos: 0, counter: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// True while the stream is inside a burst.
    pub fn in_burst(&self) -> bool {
        self.pos < self.burst_len
    }
}

impl KeyStream for OnOffBurst {
    fn next_key(&mut self) -> u64 {
        let period = self.burst_len + self.gap_len;
        let in_burst = self.pos < self.burst_len;
        self.pos = (self.pos + 1) % period;
        if in_burst {
            self.counter += 1;
            she_hash::mix64(self.counter)
        } else {
            0x00F1_11E4u64
        }
    }
}

/// Continuously rotating key space: at step `t` the live keys are
/// `{t/phase · width .. t/phase · width + width}`, so consecutive windows
/// overlap partially and the stream never reaches a steady state.
#[derive(Debug, Clone)]
pub struct SlidingPhase {
    width: u64,
    phase: u64,
    t: u64,
    salt: u64,
}

impl SlidingPhase {
    /// Key space of `width` keys advancing one notch every `phase` items.
    pub fn new(width: u64, phase: u64, seed: u64) -> Self {
        assert!(width > 0 && phase > 0);
        Self { width, phase, t: 0, salt: seed }
    }
}

impl KeyStream for SlidingPhase {
    fn next_key(&mut self) -> u64 {
        let base = self.t / self.phase;
        let k = base + self.t % self.width;
        self.t += 1;
        she_hash::mix64(k ^ self.salt.rotate_left(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn repeated_key_never_varies() {
        let mut s = RepeatedKey::new(42);
        assert!(s.take_vec(100).iter().all(|&k| k == 42));
    }

    #[test]
    fn burst_structure() {
        let mut s = OnOffBurst::new(10, 90, 1);
        let keys = s.take_vec(300);
        // Exactly 30 distinct burst keys + the filler across 3 periods.
        let distinct: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(distinct.len(), 31);
        let filler = keys[50]; // deep in the first gap
        assert_eq!(keys.iter().filter(|&&k| k == filler).count(), 270);
    }

    #[test]
    fn sliding_phase_rotates() {
        let mut s = SlidingPhase::new(100, 10, 7);
        let early: HashSet<u64> = s.take_vec(100).into_iter().collect();
        let mut s2 = SlidingPhase::new(100, 10, 7);
        let _ = s2.take_vec(100_000);
        let late: HashSet<u64> = s2.take_vec(100).into_iter().collect();
        assert!(early.is_disjoint(&late), "key space failed to rotate");
    }
}
