//! Property test for [`LatencyHistogram::merge`]: for every quantile
//! `q`, the merged histogram's estimate is bracketed by the two inputs'
//! estimates,
//!
//! ```text
//! min(Qa(q), Qb(q)) ≤ Qmerged(q) ≤ max(Qa(q), Qb(q))
//! ```
//!
//! which is the exact mixture-quantile property specialized to shared
//! bucket boundaries: cumulative counts add, so the merged rank-`q`
//! bucket index lands between the inputs' rank-`q` bucket indices, and
//! the per-bucket midpoint is monotone in the index. Randomized over
//! sizes, magnitudes, and quantiles with a fixed-seed generator — the
//! std-only equivalent of a proptest.

use she_metrics::LatencyHistogram;

/// Tiny deterministic xorshift64 generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A histogram with `n` samples spread over random magnitudes (1 ns to
/// ~1 s), plus the raw samples for cross-checks.
fn random_histogram(rng: &mut Rng, n: u64) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for _ in 0..n {
        let magnitude = rng.below(30); // buckets up to ~1 s
        h.record_ns((1u64 << magnitude) + rng.below(1 + (1u64 << magnitude)));
    }
    h
}

#[test]
fn merged_quantiles_are_bracketed_by_the_inputs() {
    let mut rng = Rng(0x5EED_CAFE);
    let quantiles = [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
    for case in 0..500 {
        let na = rng.below(200);
        let nb = 1 + rng.below(200);
        let a = random_histogram(&mut rng, na);
        let b = random_histogram(&mut rng, nb);
        let mut merged = a.clone();
        merged.merge(&b);

        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.max_ns(), a.max_ns().max(b.max_ns()));
        for &q in &quantiles {
            let (qa, qb, qm) = (a.quantile_ns(q), b.quantile_ns(q), merged.quantile_ns(q));
            let (lo, hi) = (qa.min(qb), qa.max(qb));
            // An empty input reports 0 for every quantile; the merge is
            // then the other histogram verbatim.
            if a.count() == 0 {
                assert_eq!(qm, qb, "case {case} q={q}: empty-a merge changed the quantile");
                continue;
            }
            assert!(
                lo <= qm && qm <= hi,
                "case {case} q={q}: merged {qm} outside [{lo}, {hi}] \
                 (counts {} + {})",
                a.count(),
                b.count(),
            );
        }
    }
}

#[test]
fn merge_is_commutative_and_associative_on_quantiles() {
    let mut rng = Rng(0x0D15_EA5E);
    for _ in 0..100 {
        let (na, nb, nc) = (1 + rng.below(100), 1 + rng.below(100), 1 + rng.below(100));
        let a = random_histogram(&mut rng, na);
        let b = random_histogram(&mut rng, nb);
        let c = random_histogram(&mut rng, nc);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        for &q in &[0.1, 0.5, 0.9, 0.99] {
            assert_eq!(ab.quantile_ns(q), ba.quantile_ns(q), "commutativity at q={q}");
            assert_eq!(ab_c.quantile_ns(q), a_bc.quantile_ns(q), "associativity at q={q}");
        }
        assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
    }
}
