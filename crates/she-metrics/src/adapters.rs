//! Adapters plugging every algorithm — SHE, baselines, and the Ideal goal —
//! into the task traits, each sized from a `(window, memory-bytes, seed)`
//! triple so the memory-sweep figures can treat them uniformly.
//!
//! The **Ideal** adapters implement the paper's "ideal goal": at query time
//! the exact window contents (tracked by a `WindowTruth`) are replayed into
//! a fresh fixed-window original of the same memory budget, so the answer
//! carries only the original algorithm's error, none of the sliding error.

use crate::{CardinalitySketch, FrequencySketch, MemberSketch, SimilaritySketch};
use she_baselines::{
    CounterVectorSketch, EcmSketch, SlidingHyperLogLog, StrawmanMinHash, Swamp, TimeOutBloomFilter,
    TimestampVector, TimingBloomFilter,
};
use she_core::{SheBitmap, SheBloomFilter, SheCountMin, SheHyperLogLog, SheMinHash};
use she_sketch::{Bitmap, BloomFilter, CountMin, HyperLogLog, MinHash};
use she_window::{PairTruth, WindowTruth};

// ---------------------------------------------------------------------------
// Membership (Fig. 9d): SHE-BF, SWAMP, TOBF, TBF, Ideal.
// ---------------------------------------------------------------------------

/// SHE-BF under the membership harness.
#[derive(Debug)]
pub struct SheBfAdapter(pub SheBloomFilter);

impl SheBfAdapter {
    /// Paper §7.1 settings: 8 hash functions, α from Eq. 2.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(
            SheBloomFilter::builder()
                .window(window)
                .memory_bytes(bytes)
                .hash_functions(8)
                .seed(seed)
                .build(),
        )
    }
}

impl MemberSketch for SheBfAdapter {
    fn name(&self) -> &'static str {
        "SHE-BF"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn query(&mut self, key: u64) -> bool {
        self.0.contains(&key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// SWAMP's `ISMEMBER` under the membership harness.
#[derive(Debug)]
pub struct SwampMember(pub Swamp);

impl SwampMember {
    /// Budgeted SWAMP (fingerprint width from the memory budget).
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(Swamp::with_memory(window as usize, bytes, seed))
    }
}

impl MemberSketch for SwampMember {
    fn name(&self) -> &'static str {
        "SWAMP"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn query(&mut self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// TOBF under the membership harness.
#[derive(Debug)]
pub struct TobfAdapter(pub TimeOutBloomFilter);

impl TobfAdapter {
    /// Budgeted TOBF (64-bit timestamps, 8 hashes like SHE-BF).
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(TimeOutBloomFilter::with_memory(bytes, 8, window, seed))
    }
}

impl MemberSketch for TobfAdapter {
    fn name(&self) -> &'static str {
        "TOBF"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn query(&mut self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// TBF under the membership harness.
#[derive(Debug)]
pub struct TbfAdapter(pub TimingBloomFilter);

impl TbfAdapter {
    /// Budgeted TBF (paper settings: 18-bit counters, 8 hashes).
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(TimingBloomFilter::with_memory(bytes, 8, window, seed))
    }
}

impl MemberSketch for TbfAdapter {
    fn name(&self) -> &'static str {
        "TBF"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn query(&mut self, key: u64) -> bool {
        self.0.contains(key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// Ideal membership: a fresh fixed-window Bloom filter over the exact
/// window contents.
#[derive(Debug)]
pub struct IdealBloom {
    truth: WindowTruth,
    bytes: usize,
    seed: u32,
    /// Cached rebuild, invalidated on insert.
    cache: Option<BloomFilter>,
}

impl IdealBloom {
    /// Same memory budget and hash count as SHE-BF.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self { truth: WindowTruth::new(window as usize), bytes, seed, cache: None }
    }
}

impl MemberSketch for IdealBloom {
    fn name(&self) -> &'static str {
        "Ideal"
    }
    fn insert(&mut self, key: u64) {
        self.truth.insert(key);
        self.cache = None;
    }
    fn query(&mut self, key: u64) -> bool {
        if self.cache.is_none() {
            let mut bf = BloomFilter::with_memory(self.bytes, 8, self.seed);
            for k in self.truth.iter_items() {
                bf.insert(&k);
            }
            self.cache = Some(bf);
        }
        self.cache.as_ref().expect("cache just built").contains(&key)
    }
    fn memory_bits(&self) -> usize {
        self.bytes * 8
    }
}

// ---------------------------------------------------------------------------
// Cardinality (Figs. 9a, 9b): SHE-BM, SHE-HLL, SWAMP, TSV, CVS, SHLL, Ideal.
// ---------------------------------------------------------------------------

/// SHE-BM under the cardinality harness.
#[derive(Debug)]
pub struct SheBmAdapter(pub SheBitmap);

impl SheBmAdapter {
    /// Paper defaults: α = 0.2, w = 64.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(SheBitmap::builder().window(window).memory_bytes(bytes).seed(seed).build())
    }
}

impl CardinalitySketch for SheBmAdapter {
    fn name(&self) -> &'static str {
        "SHE-BM"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn estimate(&mut self) -> f64 {
        self.0.estimate()
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// SHE-HLL under the cardinality harness.
#[derive(Debug)]
pub struct SheHllAdapter(pub SheHyperLogLog);

impl SheHllAdapter {
    /// Paper defaults: α = 0.2, w = 1, 5-bit registers.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(SheHyperLogLog::builder().window(window).memory_bytes(bytes).seed(seed).build())
    }
}

impl CardinalitySketch for SheHllAdapter {
    fn name(&self) -> &'static str {
        "SHE-HLL"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn estimate(&mut self) -> f64 {
        self.0.estimate()
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// SWAMP's `DISTINCT` MLE under the cardinality harness.
#[derive(Debug)]
pub struct SwampCard(pub Swamp);

impl SwampCard {
    /// Budgeted SWAMP.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(Swamp::with_memory(window as usize, bytes, seed))
    }
}

impl CardinalitySketch for SwampCard {
    fn name(&self) -> &'static str {
        "SWAMP"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn estimate(&mut self) -> f64 {
        self.0.distinct_mle()
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// TSV under the cardinality harness.
#[derive(Debug)]
pub struct TsvAdapter(pub TimestampVector);

impl TsvAdapter {
    /// Budgeted TSV (64-bit timestamps).
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(TimestampVector::with_memory(bytes, window, seed))
    }
}

impl CardinalitySketch for TsvAdapter {
    fn name(&self) -> &'static str {
        "TSV"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn estimate(&mut self) -> f64 {
        self.0.estimate()
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// CVS under the cardinality harness.
#[derive(Debug)]
pub struct CvsAdapter(pub CounterVectorSketch);

impl CvsAdapter {
    /// Budgeted CVS (counter ceiling 10 per §7.1).
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(CounterVectorSketch::with_memory(bytes, 10, window, seed as u64))
    }
}

impl CardinalitySketch for CvsAdapter {
    fn name(&self) -> &'static str {
        "CVS"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn estimate(&mut self) -> f64 {
        self.0.estimate()
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// SHLL under the cardinality harness.
///
/// SHLL's memory is input-dependent; `sized` provisions registers assuming
/// the paper's observation of a few LPFM records per register
/// (`bytes / (3 · 69 bits)` registers), and `memory_bits` reports the live
/// usage.
#[derive(Debug)]
pub struct ShllAdapter(pub SlidingHyperLogLog);

impl ShllAdapter {
    /// Budgeted SHLL.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        let m = ((bytes * 8) / (3 * 69)).max(16);
        Self(SlidingHyperLogLog::new(m, window, seed))
    }
}

impl CardinalitySketch for ShllAdapter {
    fn name(&self) -> &'static str {
        "SHLL"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn estimate(&mut self) -> f64 {
        self.0.estimate()
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// Ideal cardinality via a fixed-window Bitmap over the exact window.
#[derive(Debug)]
pub struct IdealBitmap {
    truth: WindowTruth,
    bytes: usize,
    seed: u32,
}

impl IdealBitmap {
    /// Same memory budget as SHE-BM.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self { truth: WindowTruth::new(window as usize), bytes, seed }
    }
}

impl CardinalitySketch for IdealBitmap {
    fn name(&self) -> &'static str {
        "Ideal"
    }
    fn insert(&mut self, key: u64) {
        self.truth.insert(key);
    }
    fn estimate(&mut self) -> f64 {
        let mut bm = Bitmap::with_memory(self.bytes, self.seed);
        for k in self.truth.iter_items() {
            bm.insert(&k);
        }
        bm.estimate()
    }
    fn memory_bits(&self) -> usize {
        self.bytes * 8
    }
}

/// Ideal cardinality via a fixed-window HyperLogLog over the exact window.
#[derive(Debug)]
pub struct IdealHll {
    truth: WindowTruth,
    bytes: usize,
    seed: u32,
}

impl IdealHll {
    /// Same memory budget as SHE-HLL.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self { truth: WindowTruth::new(window as usize), bytes, seed }
    }
}

impl CardinalitySketch for IdealHll {
    fn name(&self) -> &'static str {
        "Ideal"
    }
    fn insert(&mut self, key: u64) {
        self.truth.insert(key);
    }
    fn estimate(&mut self) -> f64 {
        let mut h = HyperLogLog::with_memory(self.bytes, self.seed);
        for k in self.truth.iter_items() {
            h.insert(&k);
        }
        h.estimate()
    }
    fn memory_bits(&self) -> usize {
        self.bytes * 8
    }
}

// ---------------------------------------------------------------------------
// Frequency (Fig. 9c): SHE-CM, SWAMP, ECM, Ideal.
// ---------------------------------------------------------------------------

/// SHE-CM under the frequency harness.
#[derive(Debug)]
pub struct SheCmAdapter(pub SheCountMin);

impl SheCmAdapter {
    /// Paper defaults: k = 8 hashes, α = 1.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(SheCountMin::builder().window(window).memory_bytes(bytes).seed(seed).build())
    }
}

impl FrequencySketch for SheCmAdapter {
    fn name(&self) -> &'static str {
        "SHE-CM"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn query(&mut self, key: u64) -> u64 {
        self.0.query(&key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// SHE-CS (sliding count sketch) under the frequency harness.
///
/// Negative estimates (count sketch has two-sided error) clamp to zero for
/// the ARE metric, as is standard when the true frequencies are counts.
#[derive(Debug)]
pub struct SheCsAdapter(pub she_core::SheCountSketch);

impl SheCsAdapter {
    /// Defaults: 5 hash pairs, α = 1, β = 0.9.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(
            she_core::SheCountSketch::builder()
                .window(window)
                .memory_bytes(bytes)
                .seed(seed)
                .build(),
        )
    }
}

impl FrequencySketch for SheCsAdapter {
    fn name(&self) -> &'static str {
        "SHE-CS"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(&key);
    }
    fn query(&mut self, key: u64) -> u64 {
        self.0.query(&key).max(0) as u64
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// SWAMP's fingerprint-multiplicity frequency under the harness.
#[derive(Debug)]
pub struct SwampFreq(pub Swamp);

impl SwampFreq {
    /// Budgeted SWAMP.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(Swamp::with_memory(window as usize, bytes, seed))
    }
}

impl FrequencySketch for SwampFreq {
    fn name(&self) -> &'static str {
        "SWAMP"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn query(&mut self, key: u64) -> u64 {
        self.0.frequency(key) as u64
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// ECM under the frequency harness.
#[derive(Debug)]
pub struct EcmAdapter(pub EcmSketch);

impl EcmAdapter {
    /// Budgeted ECM (4 hash functions per §7.1, EH parameter 8).
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self(EcmSketch::with_memory(bytes, 4, 8, window, seed))
    }
}

impl FrequencySketch for EcmAdapter {
    fn name(&self) -> &'static str {
        "ECM"
    }
    fn insert(&mut self, key: u64) {
        self.0.insert(key);
    }
    fn query(&mut self, key: u64) -> u64 {
        self.0.query(key)
    }
    fn memory_bits(&self) -> usize {
        self.0.memory_bits()
    }
}

/// Ideal frequency via a fixed-window Count-Min over the exact window.
#[derive(Debug)]
pub struct IdealCm {
    truth: WindowTruth,
    bytes: usize,
    seed: u32,
    cache: Option<CountMin>,
}

impl IdealCm {
    /// Same memory budget as SHE-CM.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self { truth: WindowTruth::new(window as usize), bytes, seed, cache: None }
    }
}

impl FrequencySketch for IdealCm {
    fn name(&self) -> &'static str {
        "Ideal"
    }
    fn insert(&mut self, key: u64) {
        self.truth.insert(key);
        self.cache = None;
    }
    fn query(&mut self, key: u64) -> u64 {
        if self.cache.is_none() {
            let mut cm = CountMin::with_memory(self.bytes, 8, self.seed);
            for k in self.truth.iter_items() {
                cm.insert(&k);
            }
            self.cache = Some(cm);
        }
        self.cache.as_ref().expect("cache just built").query(&key)
    }
    fn memory_bits(&self) -> usize {
        self.bytes * 8
    }
}

// ---------------------------------------------------------------------------
// Similarity (Fig. 9e): SHE-MH, straw-man, Ideal.
// ---------------------------------------------------------------------------

/// SHE-MH pair under the similarity harness.
#[derive(Debug)]
pub struct SheMhAdapter {
    a: SheMinHash,
    b: SheMinHash,
}

impl SheMhAdapter {
    /// Paper defaults: α = 0.2, w = 1; `bytes` covers both signatures.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        let builder = SheMinHash::builder().window(window).memory_bytes(bytes / 2).seed(seed);
        Self { a: builder.clone().build(), b: builder.build() }
    }
}

impl SimilaritySketch for SheMhAdapter {
    fn name(&self) -> &'static str {
        "SHE-MH"
    }
    fn insert_pair(&mut self, a: u64, b: u64) {
        self.a.insert(&a);
        self.b.insert(&b);
    }
    fn estimate(&mut self) -> f64 {
        self.a.similarity(&mut self.b)
    }
    fn memory_bits(&self) -> usize {
        self.a.memory_bits() + self.b.memory_bits()
    }
}

/// Straw-man MinHash pair under the similarity harness.
#[derive(Debug)]
pub struct StrawmanMhAdapter {
    a: StrawmanMinHash,
    b: StrawmanMinHash,
}

impl StrawmanMhAdapter {
    /// `bytes` covers both signatures (each cell charges a 64-bit
    /// timestamp, so the straw-man affords far fewer hash functions).
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self {
            a: StrawmanMinHash::with_memory(bytes / 2, window, seed),
            b: StrawmanMinHash::with_memory(bytes / 2, window, seed),
        }
    }
}

impl SimilaritySketch for StrawmanMhAdapter {
    fn name(&self) -> &'static str {
        "Straw"
    }
    fn insert_pair(&mut self, a: u64, b: u64) {
        self.a.insert(a);
        self.b.insert(b);
    }
    fn estimate(&mut self) -> f64 {
        self.a.similarity(&self.b)
    }
    fn memory_bits(&self) -> usize {
        self.a.memory_bits() + self.b.memory_bits()
    }
}

/// Ideal similarity via fixed-window MinHash signatures over the exact
/// windows.
#[derive(Debug)]
pub struct IdealMh {
    truth: PairTruth,
    bytes: usize,
    seed: u32,
}

impl IdealMh {
    /// Same total memory budget as SHE-MH.
    pub fn sized(window: u64, bytes: usize, seed: u32) -> Self {
        Self { truth: PairTruth::new(window as usize), bytes, seed }
    }
}

impl SimilaritySketch for IdealMh {
    fn name(&self) -> &'static str {
        "Ideal"
    }
    fn insert_pair(&mut self, a: u64, b: u64) {
        self.truth.insert_a(a);
        self.truth.insert_b(b);
    }
    fn estimate(&mut self) -> f64 {
        let mut ma = MinHash::with_memory(self.bytes / 2, self.seed);
        let mut mb = MinHash::with_memory(self.bytes / 2, self.seed);
        for k in self.truth.a().iter_items() {
            ma.insert(&k);
        }
        for k in self.truth.b().iter_items() {
            mb.insert(&k);
        }
        ma.similarity(&mb)
    }
    fn memory_bits(&self) -> usize {
        self.bytes * 8
    }
}
